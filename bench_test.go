// Package repro's top-level benchmarks enumerate the experiment and workload
// registries, one sub-benchmark per entry:
//
//	go test -bench=. -benchmem
//
// BenchmarkExperiments regenerates every table and figure of the paper's
// evaluation; each iteration rebuilds the experiment from scratch (caches
// reset), so the reported time is the full cost of reproducing that table
// with the machine models. The custom metric "key-model-s" is the
// experiment's headline model value in normalized simulated seconds (e.g.
// the Tera row of a sequential table, or the maximum-processor-count row of
// a speedup table), so shape regressions show up in benchmark output
// directly. BenchmarkWorkloadVariants times each registered workload variant
// over its suite on the AlphaStation model — new workloads get benchmarked
// by registering, with no edits here.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/c3i/suite"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/platforms"
)

// benchCfg keeps benchmark runs quick; shapes are unaffected (times are
// normalized to the paper's workload size).
var benchCfg = experiments.Config{Scales: map[string]float64{
	experiments.TA: 0.1,
	experiments.TM: 0.2,
	experiments.RO: 0.1,
	experiments.PT: 0.1,
}}

// benchVariantScale sizes the per-variant workload benchmarks.
const benchVariantScale = 0.05

// lastCell parses the last column of the table's last row as a float metric.
func lastCell(res *experiments.Result) float64 {
	if len(res.Tables) == 0 {
		return 0
	}
	tb := res.Tables[0]
	if len(tb.Rows) == 0 {
		return 0
	}
	row := tb.Rows[len(tb.Rows)-1]
	for i := len(row) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(row[i], 64); err == nil {
			return v
		}
	}
	return 0
}

// BenchmarkExperiments regenerates each registered experiment from scratch.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.ResetCaches()
				res, err := e.Run(benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(lastCell(res), "key-model-s")
				}
			}
		})
	}
}

// BenchmarkWorkloadVariants runs every registered workload variant (default
// params) over its scenario suite on the AlphaStation model. The metric
// "model-s" is the run's simulated seconds normalized to paper scale.
func BenchmarkWorkloadVariants(b *testing.B) {
	for _, w := range suite.All() {
		// Generation and warming live inside the per-workload group, so
		// -bench filters skip the setup of unselected workloads.
		b.Run(w.Key, func(b *testing.B) {
			scs := w.Generate(benchVariantScale)
			for _, sc := range scs {
				sc.Warm()
			}
			norm := w.Norm(scs)
			for _, v := range w.Variants {
				b.Run(v.Name, func(b *testing.B) {
					var modelSec float64
					for i := 0; i < b.N; i++ {
						spec, err := benchAlpha()
						if err != nil {
							b.Fatal(err)
						}
						res, err := spec.Run(w.Key+"/"+v.Name, func(t *machine.Thread) {
							for _, sc := range scs {
								v.Exec(t, sc, nil)
							}
						})
						if err != nil {
							b.Fatal(err)
						}
						modelSec = res.Seconds * norm
					}
					b.ReportMetric(modelSec, "model-s")
				})
			}
		})
	}
}

// benchAlpha builds a fresh AlphaStation engine.
func benchAlpha() (*machine.Engine, error) {
	spec, err := platforms.Get("alpha")
	if err != nil {
		return nil, err
	}
	return spec.New(1), nil
}
