// Package repro's top-level benchmarks enumerate the experiment and workload
// registries, one sub-benchmark per entry:
//
//	go test -bench=. -benchmem
//
// BenchmarkExperiments regenerates every table and figure of the paper's
// evaluation; each iteration rebuilds the experiment from scratch (caches
// reset), so the reported time is the full cost of reproducing that table
// with the machine models. The custom metric "key-model-s" is the
// experiment's headline model value in normalized simulated seconds (e.g.
// the Tera row of a sequential table, or the maximum-processor-count row of
// a speedup table), so shape regressions show up in benchmark output
// directly. BenchmarkWorkloadVariants times each registered workload variant
// over its suite on the AlphaStation model, executed through the
// internal/run API (Runner.Execute bypasses the record cache so every
// iteration measures a real engine run) — new workloads get benchmarked by
// registering, with no edits here.
package repro

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/c3i/suite"
	"repro/internal/experiments"
	"repro/internal/run"
)

// benchCfg keeps benchmark runs quick; shapes are unaffected (times are
// normalized to the paper's workload size).
var benchCfg = experiments.Config{Scales: map[string]float64{
	experiments.TA: 0.1,
	experiments.TM: 0.2,
	experiments.RO: 0.1,
	experiments.PT: 0.1,
	experiments.HT: 0.1,
}}

// benchVariantScale sizes the per-variant workload benchmarks.
const benchVariantScale = 0.05

// lastCell parses the last column of the table's last row as a float metric.
func lastCell(res *experiments.Result) float64 {
	if len(res.Tables) == 0 {
		return 0
	}
	tb := res.Tables[0]
	if len(tb.Rows) == 0 {
		return 0
	}
	row := tb.Rows[len(tb.Rows)-1]
	for i := len(row) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(row[i], 64); err == nil {
			return v
		}
	}
	return 0
}

// BenchmarkExperiments regenerates each registered experiment from scratch.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.ResetCaches()
				res, err := e.Run(benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(lastCell(res), "key-model-s")
				}
			}
		})
	}
}

// BenchmarkWorkloadVariants runs every registered workload variant (default
// params) over its scenario suite on the AlphaStation model through
// run.Runner. The metric "model-s" is the run's simulated seconds normalized
// to paper scale (the Record's PaperSeconds).
func BenchmarkWorkloadVariants(b *testing.B) {
	ctx := context.Background()
	runner := run.NewRunner(1)
	for _, w := range suite.All() {
		// Suite generation and warming live inside the per-workload group
		// (Runner.Warm memoizes them outside the timed sub-benchmarks), so
		// -bench filters skip the setup of unselected workloads.
		b.Run(w.Key, func(b *testing.B) {
			if _, err := runner.Warm(w.Name, benchVariantScale); err != nil {
				b.Fatal(err)
			}
			for _, v := range w.Variants {
				spec := run.Spec{
					Workload: w.Name, Variant: v.Name,
					Platform: "alpha", Procs: 1,
					Scale: benchVariantScale,
				}
				b.Run(v.Name, func(b *testing.B) {
					var modelSec float64
					for i := 0; i < b.N; i++ {
						rec, err := runner.Execute(ctx, spec)
						if err != nil {
							b.Fatal(err)
						}
						modelSec = rec.PaperSeconds
					}
					b.ReportMetric(modelSec, "model-s")
				})
			}
		})
	}
}
