// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation, one benchmark per experiment:
//
//	go test -bench=. -benchmem
//
// Each iteration rebuilds the experiment from scratch (caches reset), so the
// reported time is the full cost of reproducing that table with the machine
// models. The custom metric "key-model-s" is the experiment's headline model
// value in normalized simulated seconds (e.g. the Tera row of a sequential
// table, or the maximum-processor-count row of a speedup table), so shape
// regressions show up in benchmark output directly.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchCfg keeps benchmark runs quick; shapes are unaffected (times are
// normalized to the paper's workload size).
var benchCfg = experiments.Config{ScaleTA: 0.1, ScaleTM: 0.2, ScaleRO: 0.1}

// lastCell parses the last column of the table's last row as a float metric.
func lastCell(res *experiments.Result) float64 {
	if len(res.Tables) == 0 {
		return 0
	}
	tb := res.Tables[0]
	if len(tb.Rows) == 0 {
		return 0
	}
	row := tb.Rows[len(tb.Rows)-1]
	for i := len(row) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(row[i], 64); err == nil {
			return v
		}
	}
	return 0
}

// runExperiment is the shared benchmark body.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		res, err := e.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(lastCell(res), "key-model-s")
		}
	}
}

func BenchmarkTable1_Platforms(b *testing.B)            { runExperiment(b, "table1") }
func BenchmarkTable2_SequentialTA(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkTable3_Figure1_TAPentiumPro(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4_Figure2_TAExemplar(b *testing.B)   { runExperiment(b, "table4") }
func BenchmarkTable5_TATera(b *testing.B)               { runExperiment(b, "table5") }
func BenchmarkTable6_TAChunkSweep(b *testing.B)         { runExperiment(b, "table6") }
func BenchmarkTable7_TASummary(b *testing.B)            { runExperiment(b, "table7") }
func BenchmarkTable8_SequentialTM(b *testing.B)         { runExperiment(b, "table8") }
func BenchmarkTable9_Figure3_TMPentiumPro(b *testing.B) { runExperiment(b, "table9") }
func BenchmarkTable10_Figure4_TMExemplar(b *testing.B)  { runExperiment(b, "table10") }
func BenchmarkTable11_TMTera(b *testing.B)              { runExperiment(b, "table11") }
func BenchmarkTable12_TMSummary(b *testing.B)           { runExperiment(b, "table12") }
func BenchmarkAutopar(b *testing.B)                     { runExperiment(b, "autopar") }
func BenchmarkAblationStreams(b *testing.B)             { runExperiment(b, "ablation-streams") }
func BenchmarkAblationLatency(b *testing.B)             { runExperiment(b, "ablation-latency") }
func BenchmarkAblationNetwork(b *testing.B)             { runExperiment(b, "ablation-network") }
func BenchmarkAblationBlocking(b *testing.B)            { runExperiment(b, "ablation-blocking") }
func BenchmarkAblationFineGrainSMP(b *testing.B)        { runExperiment(b, "ablation-finegrain-smp") }
func BenchmarkProjectionScaling(b *testing.B)           { runExperiment(b, "projection-scaling") }
func BenchmarkRouteSequential(b *testing.B)             { runExperiment(b, "ro-sequential") }
func BenchmarkRouteStreams(b *testing.B)                { runExperiment(b, "ro-streams") }
func BenchmarkRouteVariants(b *testing.B)               { runExperiment(b, "ro-variants") }
