package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestSingleProcSleep(t *testing.T) {
	k := NewKernel()
	var at []Time
	k.Spawn("p", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(10)
		at = append(at, p.Now())
		p.Sleep(5.5)
		at = append(at, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 15.5}
	if len(at) != len(want) {
		t.Fatalf("got %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %v, want %v", i, at[i], want[i])
		}
	}
}

func TestSleepNegativeClampsToZero(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-3)
		if p.Now() != 0 {
			t.Errorf("Now() = %v after Sleep(-3), want 0", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepUntilPast(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10)
		p.SleepUntil(5) // in the past: no-op in time
		if p.Now() != 10 {
			t.Errorf("Now() = %v, want 10", p.Now())
		}
		p.SleepUntil(20)
		if p.Now() != 20 {
			t.Errorf("Now() = %v, want 20", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderAtSameTime(t *testing.T) {
	k := NewKernel()
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		k.Spawn(name, func(p *Proc) {
			order = append(order, p.Name())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "p0 p1 p2 p3 p4"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(i + 1))
					trace = append(trace, fmt.Sprintf("%s@%g", p.Name(), p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a := run()
	b := run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("nondeterministic interleaving:\n%v\n%v", a, b)
	}
}

func TestKernelCallbacks(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.After(5, func() { fired = append(fired, k.Now()) })
	k.At(2, func() { fired = append(fired, k.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Errorf("fired = %v, want [2 5]", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.After(5, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double-cancel is safe
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	k := NewKernel()
	n := 0
	var tm *Timer
	tm = k.After(1, func() { n++ })
	k.After(2, func() { tm.Cancel() }) // cancel after it fired
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("callback ran %d times, want 1", n)
	}
}

func TestWaitQWakeOne(t *testing.T) {
	k := NewKernel()
	q := NewWaitQ("test")
	var order []string
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p, "waiting")
			order = append(order, p.Name()+fmt.Sprintf("@%g", p.Now()))
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		q.WakeOne(p.Kernel())
		p.Sleep(10)
		q.WakeOne(p.Kernel())
		p.Sleep(10)
		q.WakeOne(p.Kernel())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "w0@10 w1@20 w2@30"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestWaitQWakeAll(t *testing.T) {
	k := NewKernel()
	q := NewWaitQ("test")
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p, "barrier")
			woken++
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(7)
		if n := q.WakeAll(p.Kernel()); n != 4 {
			t.Errorf("WakeAll = %d, want 4", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Errorf("woken = %d, want 4", woken)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
}

func TestWakeOneEmptyQueue(t *testing.T) {
	k := NewKernel()
	q := NewWaitQ("empty")
	if q.WakeOne(k) {
		t.Error("WakeOne on empty queue returned true")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	q := NewWaitQ("nobody-wakes-this")
	k.Spawn("stuck", func(p *Proc) {
		q.Wait(p, "forever")
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck") {
		t.Errorf("Blocked = %v, want [stuck (...)]", de.Blocked)
	}
	if !strings.Contains(de.Error(), "forever") {
		t.Errorf("error message %q missing park reason", de.Error())
	}
}

func TestDeadlockPartial(t *testing.T) {
	// One proc completes, one deadlocks; kernel must report only the stuck one
	// and still terminate cleanly.
	k := NewKernel()
	q := NewWaitQ("q")
	k.Spawn("finishes", func(p *Proc) { p.Sleep(100) })
	k.Spawn("stuck", func(p *Proc) { q.Wait(p, "never") })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if de.Time != 100 {
		t.Errorf("deadlock time = %v, want 100", de.Time)
	}
	if len(de.Blocked) != 1 {
		t.Errorf("Blocked = %v, want exactly one", de.Blocked)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var events []string
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		p.Kernel().Spawn("child", func(c *Proc) {
			events = append(events, fmt.Sprintf("child@%g", c.Now()))
			c.Sleep(3)
			events = append(events, fmt.Sprintf("child-done@%g", c.Now()))
		})
		events = append(events, fmt.Sprintf("parent@%g", p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Parent continues before the child's start event is processed.
	want := "parent@5 child@5 child-done@8"
	if got := strings.Join(events, " "); got != want {
		t.Errorf("events = %q, want %q", got, want)
	}
}

func TestManyProcsStress(t *testing.T) {
	k := NewKernel()
	const n = 500
	total := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(Time(1 + i%7))
			}
			total++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Errorf("total = %d, want %d", total, n)
	}
}

func TestProcIDsSequential(t *testing.T) {
	k := NewKernel()
	p0 := k.Spawn("a", func(p *Proc) {})
	p1 := k.Spawn("b", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Errorf("IDs = %d,%d want 0,1", p0.ID(), p1.ID())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapRandomOrder(t *testing.T) {
	// Events inserted in random time order must fire in time order.
	k := NewKernel()
	rng := rand.New(rand.NewSource(42))
	var fired []Time
	times := make([]Time, 100)
	for i := range times {
		times[i] = Time(rng.Intn(1000))
	}
	for _, tt := range times {
		tt := tt
		k.At(tt, func() { fired = append(fired, tt) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events out of order: %v then %v", fired[i-1], fired[i])
		}
	}
}

func TestShutdownKillsSleepers(t *testing.T) {
	// A proc sleeping when deadlock is declared elsewhere should be killed
	// without running further.
	k := NewKernel()
	q := NewWaitQ("q")
	ran := false
	k.Spawn("stuck", func(p *Proc) { q.Wait(p, "never") })
	k.Spawn("sleeper", func(p *Proc) {
		q.Wait(p, "also never")
		ran = true
	})
	if err := k.Run(); err == nil {
		t.Fatal("want deadlock error")
	}
	if ran {
		t.Error("killed proc continued running")
	}
}
