package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel event processing: one proc
// sleeping repeatedly (schedule + heap + context switch per event).
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcsRoundRobin measures switching across many procs.
func BenchmarkManyProcsRoundRobin(b *testing.B) {
	k := NewKernel()
	const procs = 100
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(1)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitQWake measures park/wake pairs through a WaitQ.
func BenchmarkWaitQWake(b *testing.B) {
	k := NewKernel()
	q := NewWaitQ("bench")
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Wait(p, "turn")
		}
	})
	k.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for !q.WakeOne(p.Kernel()) {
				p.Sleep(1)
			}
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
