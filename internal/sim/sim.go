// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock measured in machine cycles and an event
// queue ordered by (time, insertion sequence), so simulations are exactly
// reproducible. Simulated threads of control ("procs") are coroutines: each
// proc runs on its own goroutine but strictly alternates with the kernel, so
// at most one goroutine in the simulation is ever runnable. Procs advance
// the clock only by calling Sleep, or by parking on a WaitQ until another
// proc (or a kernel callback) wakes them.
//
// The kernel detects deadlock (live procs but no pending events) and reports
// it as an error rather than hanging. Shutdown kills all live procs so no
// goroutines leak even after an error.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in cycles. Fractional cycles are permitted; they
// arise from fluid resource models (see package psq).
type Time = float64

// procState tracks where a proc is in its lifecycle.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateSleeping
	stateParked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateParked:
		return "parked"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// event is a scheduled occurrence: either resuming a proc or invoking a
// kernel-side callback (which must not block).
type event struct {
	t        Time
	seq      uint64
	proc     *Proc  // non-nil: resume this proc
	fn       func() // non-nil: kernel callback
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. Create one with NewKernel,
// spawn procs, then call Run. A Kernel must not be reused after Run returns.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	live   int // procs spawned and not yet done

	yield   chan struct{} // proc -> kernel baton
	running bool          // inside Run
	closed  bool
	trap    interface{} // panic value captured from a proc

	procs []*Proc // all spawned procs, for diagnostics and shutdown
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time in cycles.
func (k *Kernel) Now() Time { return k.now }

// nextSeq returns a fresh FIFO tiebreak sequence number.
func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

// schedule inserts an event and returns it (for cancellation).
func (k *Kernel) schedule(t Time, p *Proc, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	e := &event{t: t, seq: k.nextSeq(), proc: p, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// Timer is a cancellable kernel callback handle returned by At/After.
type Timer struct{ e *event }

// Cancel prevents the timer's callback from running. Safe to call more than
// once, and safe to call after the callback has fired.
func (t *Timer) Cancel() {
	if t != nil && t.e != nil {
		t.e.canceled = true
	}
}

// At schedules fn to run kernel-side at absolute time t (clamped to now).
// fn must not block; it may schedule further events and wake procs.
func (k *Kernel) At(t Time, fn func()) *Timer {
	return &Timer{e: k.schedule(t, nil, fn)}
}

// After schedules fn to run kernel-side d cycles from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	return k.At(k.now+d, fn)
}

// Proc is a simulated thread of control. Procs may only call their methods
// from inside their own body function.
type Proc struct {
	k      *Kernel
	name   string
	id     int
	resume chan resumeMsg
	state  procState
	why    string // park reason, for deadlock diagnostics
	killed bool
}

type resumeMsg struct{ kill bool }

// killPanic is the sentinel used to unwind a killed proc's stack.
type killPanic struct{}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's spawn-ordered identifier.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn creates a proc that will begin executing fn at the current virtual
// time (after already-scheduled events at this time). It may be called
// before Run or from inside a running proc or kernel callback.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if k.closed {
		panic("sim: Spawn on closed kernel")
	}
	p := &Proc{k: k, name: name, id: len(k.procs), resume: make(chan resumeMsg), state: stateNew}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		msg := <-p.resume
		if !msg.kill {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(killPanic); !ok {
							// Forward the panic to the kernel; Run re-panics
							// on its caller's goroutine after shutdown.
							if k.trap == nil {
								k.trap = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
							}
						}
					}
				}()
				fn(p)
			}()
		}
		p.state = stateDone
		k.live--
		k.yield <- struct{}{}
	}()
	k.schedule(k.now, p, nil)
	p.state = stateRunnable
	return p
}

// yieldToKernel hands the baton back and waits to be resumed. Must only be
// called from the proc's own goroutine, after recording why it is blocked.
func (p *Proc) yieldToKernel() {
	p.k.yield <- struct{}{}
	msg := <-p.resume
	if msg.kill {
		p.killed = true
		panic(killPanic{})
	}
	p.state = stateRunning
}

// Sleep advances the proc's local time by d cycles (d < 0 is treated as 0).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+d, p, nil)
	p.state = stateSleeping
	p.why = ""
	p.yieldToKernel()
}

// SleepUntil advances the proc's local time to absolute time t (if in the
// future).
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.schedule(t, p, nil)
	p.state = stateSleeping
	p.why = ""
	p.yieldToKernel()
}

// park blocks the proc with no pending event; something else must Unpark it.
func (p *Proc) park(reason string) {
	p.state = stateParked
	p.why = reason
	p.yieldToKernel()
}

// unpark schedules p to resume at the current time. It is the caller's
// responsibility to ensure p is actually parked.
func (k *Kernel) unpark(p *Proc) {
	if p.state != stateParked {
		panic(fmt.Sprintf("sim: unpark of proc %q in state %v", p.name, p.state))
	}
	p.state = stateRunnable
	p.why = ""
	k.schedule(k.now, p, nil)
}

// DeadlockError reports that live procs remain but no events are pending.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name (reason)" for each stuck proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.1f: %d procs blocked: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes events until none remain and all procs have finished. It
// returns a *DeadlockError if procs remain blocked with no pending events.
// In all cases every proc goroutine has exited by the time Run returns.
func (k *Kernel) Run() error {
	if k.running || k.closed {
		panic("sim: Run called twice")
	}
	k.running = true
	var err error
	for {
		if k.trap != nil {
			break
		}
		if len(k.events) == 0 {
			if k.live > 0 {
				err = k.deadlock()
			}
			break
		}
		e := heap.Pop(&k.events).(*event)
		if e.canceled {
			continue
		}
		if e.t > k.now {
			k.now = e.t
		}
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.proc
		if p.state == stateDone {
			continue // stale wake of a finished proc
		}
		p.state = stateRunning
		p.resume <- resumeMsg{}
		<-k.yield
	}
	k.shutdown()
	if k.trap != nil {
		panic(k.trap)
	}
	return err
}

// deadlock builds the diagnostic error for stuck procs.
func (k *Kernel) deadlock() error {
	var blocked []string
	for _, p := range k.procs {
		if p.state != stateDone {
			why := p.why
			if why == "" {
				why = p.state.String()
			}
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, why))
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Time: k.now, Blocked: blocked}
}

// shutdown kills every live proc so their goroutines exit.
func (k *Kernel) shutdown() {
	k.closed = true
	for _, p := range k.procs {
		if p.state == stateDone || p.state == stateNew {
			continue
		}
		p.resume <- resumeMsg{kill: true}
		<-k.yield
	}
}

// WaitQ is a FIFO queue of parked procs, the building block for locks,
// condition variables, full/empty cells and resource queues.
type WaitQ struct {
	name string
	q    []*Proc
}

// NewWaitQ returns an empty wait queue with a diagnostic name.
func NewWaitQ(name string) *WaitQ { return &WaitQ{name: name} }

// Len reports how many procs are parked on the queue.
func (w *WaitQ) Len() int { return len(w.q) }

// Wait parks p at the tail of the queue until woken. reason augments
// deadlock diagnostics.
func (w *WaitQ) Wait(p *Proc, reason string) {
	w.q = append(w.q, p)
	p.park(w.name + ": " + reason)
}

// WakeOne resumes the proc at the head of the queue, if any, and reports
// whether one was woken. The proc resumes at the current virtual time.
func (w *WaitQ) WakeOne(k *Kernel) bool {
	if len(w.q) == 0 {
		return false
	}
	p := w.q[0]
	copy(w.q, w.q[1:])
	w.q[len(w.q)-1] = nil
	w.q = w.q[:len(w.q)-1]
	k.unpark(p)
	return true
}

// WakeAll resumes every parked proc in FIFO order and returns the count.
func (w *WaitQ) WakeAll(k *Kernel) int {
	n := len(w.q)
	for i, p := range w.q {
		k.unpark(p)
		w.q[i] = nil
	}
	w.q = w.q[:0]
	return n
}
