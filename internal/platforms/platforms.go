// Package platforms is the registry of the paper's four evaluation platforms
// (Table 1 of the paper), mapping each to its machine model constructor.
package platforms

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// Spec describes one platform from the paper's Table 1.
type Spec struct {
	Key         string // short CLI name
	Name        string // paper's machine name
	Processors  string // paper's processor description
	MemoryBytes uint64 // paper's memory column
	OS          string // paper's operating system column
	MaxProcs    int
	New         func(procs int) *machine.Engine
}

// All returns the four platforms in the paper's order.
func All() []Spec {
	return []Spec{
		{
			Key: "alpha", Name: "Digital AlphaStation",
			Processors:  "1 x 500 MHz Digital Alpha 21164A",
			MemoryBytes: 500 << 20, OS: "Digital Unix 4.0C",
			MaxProcs: 1,
			New:      func(procs int) *machine.Engine { return smp.New(smp.AlphaStation()) },
		},
		{
			Key: "ppro", Name: "NeTpower Sparta",
			Processors:  "4 x 200 MHz Intel Pentium Pro",
			MemoryBytes: 500 << 20, OS: "Windows NT 4.0",
			MaxProcs: 4,
			New:      func(procs int) *machine.Engine { return smp.New(smp.PentiumProSMP(procs)) },
		},
		{
			Key: "exemplar", Name: "Hewlett-Packard Exemplar",
			Processors:  "16 x 180 MHz HP PA-8000",
			MemoryBytes: 4 << 30, OS: "SPP-UX 5.3",
			MaxProcs: 16,
			New:      func(procs int) *machine.Engine { return smp.New(smp.Exemplar(procs)) },
		},
		{
			Key: "tera", Name: "Tera MTA",
			Processors:  "2 x 255 MHz Tera MTA-1",
			MemoryBytes: 2 << 30, OS: "Carlos",
			MaxProcs: 2,
			New:      func(procs int) *machine.Engine { return mta.New(mta.Params{Procs: procs}) },
		},
	}
}

// Get returns the platform with the given key.
func Get(key string) (Spec, error) {
	for _, s := range All() {
		if s.Key == key {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("platforms: unknown platform %q", key)
}
