package platforms

import (
	"testing"

	"repro/internal/machine"
)

func TestAllPlatformsConstruct(t *testing.T) {
	for _, s := range All() {
		e := s.New(1)
		if e == nil {
			t.Fatalf("%s: nil engine", s.Key)
		}
		if e.Config().Procs != 1 {
			t.Errorf("%s: procs = %d, want 1", s.Key, e.Config().Procs)
		}
		res, err := e.Run("smoke", func(th *machine.Thread) { th.Compute(1000) })
		if err != nil {
			t.Fatalf("%s: %v", s.Key, err)
		}
		if res.Seconds <= 0 {
			t.Errorf("%s: zero simulated time", s.Key)
		}
	}
}

func TestMaxProcsMatchPaperTable1(t *testing.T) {
	want := map[string]int{"alpha": 1, "ppro": 4, "exemplar": 16, "tera": 2}
	for _, s := range All() {
		if s.MaxProcs != want[s.Key] {
			t.Errorf("%s: MaxProcs = %d, want %d", s.Key, s.MaxProcs, want[s.Key])
		}
	}
}

func TestMemorySizesMatchPaperTable1(t *testing.T) {
	want := map[string]uint64{
		"alpha":    500 << 20,
		"ppro":     500 << 20,
		"exemplar": 4 << 30,
		"tera":     2 << 30,
	}
	for _, s := range All() {
		if s.MemoryBytes != want[s.Key] {
			t.Errorf("%s: memory = %d, want %d", s.Key, s.MemoryBytes, want[s.Key])
		}
	}
}

func TestGet(t *testing.T) {
	s, err := Get("tera")
	if err != nil || s.Name != "Tera MTA" {
		t.Errorf("Get(tera) = %+v, %v", s, err)
	}
	if _, err := Get("cray"); err == nil {
		t.Error("Get(cray) did not fail")
	}
}

func TestClockRatesMatchPaper(t *testing.T) {
	want := map[string]float64{"alpha": 500e6, "ppro": 200e6, "exemplar": 180e6, "tera": 255e6}
	for _, s := range All() {
		e := s.New(1)
		if hz := e.Config().ClockHz; hz != want[s.Key] {
			t.Errorf("%s: clock = %g, want %g", s.Key, hz, want[s.Key])
		}
	}
}
