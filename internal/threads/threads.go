// Package threads is the structured multithreaded programming layer the
// benchmark programs are written against — the reproduction's counterpart of
// the programming systems used in the paper: the Caltech Sthreads library on
// Windows NT, the Exemplar shared-memory pragmas, and the Tera
// parallelization pragmas and futures.
//
// ParChunks is the paper's Program 2 pattern: a "#pragma multithreaded"
// outer loop over chunk subranges. DynamicFor is Program 4's dynamic work
// queue ("while (unprocessed threats) { threat = next unprocessed threat;
// … }"). Future is the Tera future construct: explicit thread creation with
// a full/empty synchronization variable carrying the result.
//
// Everything is built on *machine.Thread, so the cost of each construct is
// whatever the underlying platform charges: near-free on the Tera MTA model,
// tens of thousands of cycles per thread on the conventional machines.
package threads

import (
	"fmt"

	"repro/internal/machine"
)

// ChunkBounds returns the half-open range [lo, hi) of chunk c when n items
// are split into chunks pieces — the paper's first_threat/last_threat
// formula: lo = (c·n)/chunks, hi = ((c+1)·n)/chunks.
func ChunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// ParChunks runs body(chunk, lo, hi) for every chunk of 0..n-1 split into
// the given number of chunks, each chunk on its own thread, and waits for
// all of them. Chunks with empty ranges still run (their loop bodies simply
// iterate zero times), matching the paper's program structure.
func ParChunks(t *machine.Thread, name string, n, chunks int, body func(c *machine.Thread, chunk, lo, hi int)) {
	if chunks < 1 {
		panic("threads: ParChunks with no chunks: " + name)
	}
	ts := make([]*machine.Thread, chunks)
	for c := 0; c < chunks; c++ {
		c := c
		lo, hi := ChunkBounds(n, chunks, c)
		ts[c] = t.Go(fmt.Sprintf("%s[%d]", name, c), func(th *machine.Thread) {
			body(th, c, lo, hi)
		})
	}
	t.JoinAll(ts)
}

// ParDo runs each function on its own thread and waits for all of them.
func ParDo(t *machine.Thread, name string, fns ...func(*machine.Thread)) {
	ts := make([]*machine.Thread, len(fns))
	for i, fn := range fns {
		ts[i] = t.Go(fmt.Sprintf("%s[%d]", name, i), fn)
	}
	t.JoinAll(ts)
}

// DynamicFor processes items 0..n-1 with the given number of worker
// threads, each repeatedly claiming the next unprocessed item from a shared
// atomic counter. This is the paper's coarse-grained Terrain Masking
// structure and load-balances uneven item costs.
func DynamicFor(t *machine.Thread, name string, n, workers int, body func(c *machine.Thread, item int)) {
	if workers < 1 {
		panic("threads: DynamicFor with no workers: " + name)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	next := t.NewCounter(name+" next", 0)
	ts := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		ts[w] = t.Go(fmt.Sprintf("%s[w%d]", name, w), func(th *machine.Thread) {
			for {
				item := next.Next(th)
				if item >= int64(n) {
					return
				}
				body(th, int(item))
			}
		})
	}
	t.JoinAll(ts)
}

// Future is an explicit thread whose int64 result is delivered through a
// full/empty synchronization variable — the Tera futures construct.
type Future struct {
	th *machine.Thread
	sv *machine.SyncVar
}

// Spawn starts fn on a new thread; its return value fills the future.
func Spawn(t *machine.Thread, name string, fn func(*machine.Thread) int64) *Future {
	f := &Future{sv: t.NewSyncVar("future " + name)}
	f.th = t.Go(name, func(th *machine.Thread) {
		f.sv.Write(th, fn(th))
	})
	return f
}

// Force blocks until the future's value is available and returns it. Forcing
// more than once is allowed (the variable stays full).
func (f *Future) Force(t *machine.Thread) int64 {
	v := f.sv.ReadFF(t)
	t.Join(f.th) // the thread has written its result; reap it
	return v
}

// Reduce runs body(lo,hi) over chunked subranges in parallel and combines
// the per-chunk int64 results with combine, returning the total. combine
// must be associative and commutative.
func Reduce(t *machine.Thread, name string, n, chunks int, init int64,
	body func(c *machine.Thread, lo, hi int) int64,
	combine func(a, b int64) int64) int64 {
	if chunks < 1 {
		panic("threads: Reduce with no chunks: " + name)
	}
	futures := make([]*Future, chunks)
	for c := 0; c < chunks; c++ {
		lo, hi := ChunkBounds(n, chunks, c)
		futures[c] = Spawn(t, fmt.Sprintf("%s[%d]", name, c), func(th *machine.Thread) int64 {
			return body(th, lo, hi)
		})
	}
	acc := init
	for _, f := range futures {
		acc = combine(acc, f.Force(t))
	}
	return acc
}
