package threads

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// onMTA runs fn inside a single-processor MTA simulation.
func onMTA(t *testing.T, fn func(*machine.Thread)) machine.Result {
	t.Helper()
	e := mta.New(mta.Params{Procs: 1})
	res, err := e.Run("main", fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChunkBoundsPartition(t *testing.T) {
	// Exhaustive small cases: the chunks exactly tile [0, n).
	for n := 0; n <= 50; n++ {
		for chunks := 1; chunks <= 12; chunks++ {
			covered := 0
			prevHi := 0
			for c := 0; c < chunks; c++ {
				lo, hi := ChunkBounds(n, chunks, c)
				if lo != prevHi {
					t.Fatalf("n=%d chunks=%d c=%d: lo=%d, want %d", n, chunks, c, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d chunks=%d c=%d: hi %d < lo %d", n, chunks, c, hi, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if prevHi != n || covered != n {
				t.Fatalf("n=%d chunks=%d: covered %d, end %d", n, chunks, covered, prevHi)
			}
		}
	}
}

func TestPropertyChunkBoundsBalanced(t *testing.T) {
	// Chunk sizes differ by at most one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10000)
		chunks := 1 + rng.Intn(300)
		minSz, maxSz := n+1, -1
		for c := 0; c < chunks; c++ {
			lo, hi := ChunkBounds(n, chunks, c)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParChunksCoversAll(t *testing.T) {
	const n = 100
	hit := make([]int, n)
	onMTA(t, func(th *machine.Thread) {
		ParChunks(th, "loop", n, 7, func(c *machine.Thread, chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("item %d visited %d times", i, h)
		}
	}
}

func TestParChunksMoreChunksThanItems(t *testing.T) {
	const n = 3
	hit := make([]int, n)
	onMTA(t, func(th *machine.Thread) {
		ParChunks(th, "loop", n, 10, func(c *machine.Thread, chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("item %d visited %d times", i, h)
		}
	}
}

func TestParChunksPanicsOnZeroChunks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero chunks")
		}
	}()
	e := mta.New(mta.Params{Procs: 1})
	e.Run("main", func(th *machine.Thread) {
		ParChunks(th, "bad", 10, 0, func(*machine.Thread, int, int, int) {})
	})
}

func TestParDo(t *testing.T) {
	var ran [3]bool
	onMTA(t, func(th *machine.Thread) {
		ParDo(th, "trio",
			func(c *machine.Thread) { ran[0] = true },
			func(c *machine.Thread) { ran[1] = true },
			func(c *machine.Thread) { ran[2] = true },
		)
	})
	for i, r := range ran {
		if !r {
			t.Errorf("fn %d did not run", i)
		}
	}
}

func TestDynamicForExactCoverage(t *testing.T) {
	const n = 57
	var items []int
	onMTA(t, func(th *machine.Thread) {
		DynamicFor(th, "q", n, 8, func(c *machine.Thread, item int) {
			items = append(items, item)
		})
	})
	if len(items) != n {
		t.Fatalf("processed %d items, want %d", len(items), n)
	}
	sort.Ints(items)
	for i, it := range items {
		if it != i {
			t.Fatalf("items = %v: missing or duplicated work", items)
		}
	}
}

func TestDynamicForLoadBalances(t *testing.T) {
	// One expensive item plus many cheap ones on 4 workers: makespan must be
	// far below the serial sum (the expensive item overlaps the cheap ones).
	costs := make([]int64, 40)
	for i := range costs {
		costs[i] = 1000
	}
	costs[0] = 40_000
	var serial int64
	for _, c := range costs {
		serial += c
	}
	res := onMTA(t, func(th *machine.Thread) {
		DynamicFor(th, "q", len(costs), 4, func(c *machine.Thread, item int) {
			c.Compute(costs[item])
		})
	})
	// The makespan is bounded below by the critical path: the expensive item
	// runs on one stream capped at 1/21 instr/cycle. Good load balancing
	// finishes close to that bound; a bad static split would serialize the
	// cheap items behind it on the same worker.
	p := mta.DefaultParams(1)
	critical := float64(costs[0]) / p.OpsPerInstr * p.IssueGap
	if res.Stats.Cycles > critical*1.1 {
		t.Errorf("cycles = %v, want ≤ %v (load balancing)", res.Stats.Cycles, critical*1.1)
	}
	serialAtCap := float64(serial) / p.OpsPerInstr * p.IssueGap
	if res.Stats.Cycles > serialAtCap/1.5 {
		t.Errorf("cycles = %v, not meaningfully parallel vs serial %v", res.Stats.Cycles, serialAtCap)
	}
}

func TestDynamicForWorkersClampedToItems(t *testing.T) {
	count := 0
	onMTA(t, func(th *machine.Thread) {
		DynamicFor(th, "q", 2, 50, func(c *machine.Thread, item int) { count++ })
	})
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestDynamicForEmpty(t *testing.T) {
	onMTA(t, func(th *machine.Thread) {
		DynamicFor(th, "q", 0, 4, func(c *machine.Thread, item int) {
			t.Error("body ran for empty range")
		})
	})
}

func TestFutureValue(t *testing.T) {
	onMTA(t, func(th *machine.Thread) {
		f := Spawn(th, "f", func(c *machine.Thread) int64 {
			c.Compute(500)
			return 123
		})
		if v := f.Force(th); v != 123 {
			t.Errorf("Force = %d, want 123", v)
		}
		// Forcing again still works (variable remains full).
		if v := f.Force(th); v != 123 {
			t.Errorf("second Force = %d, want 123", v)
		}
	})
}

func TestFutureForcesBlockUntilReady(t *testing.T) {
	onMTA(t, func(th *machine.Thread) {
		f := Spawn(th, "slow", func(c *machine.Thread) int64 {
			c.Compute(10_000)
			return 1
		})
		start := th.NowCycles()
		f.Force(th)
		if th.NowCycles() <= start {
			t.Error("Force returned without waiting for the future")
		}
	})
}

func TestReduceSum(t *testing.T) {
	// Sum 1..100 via 8 chunks.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	onMTA(t, func(th *machine.Thread) {
		got := Reduce(th, "sum", len(vals), 8, 0,
			func(c *machine.Thread, lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		if got != 5050 {
			t.Errorf("Reduce = %d, want 5050", got)
		}
	})
}

func TestConstructsWorkOnSMPToo(t *testing.T) {
	// The same source runs on a conventional machine (the portability claim).
	e := smp.New(smp.Exemplar(4))
	total := 0
	_, err := e.Run("main", func(th *machine.Thread) {
		ParChunks(th, "loop", 64, 4, func(c *machine.Thread, chunk, lo, hi int) {
			total += hi - lo
		})
		DynamicFor(th, "q", 10, 3, func(c *machine.Thread, item int) { total++ })
		f := Spawn(th, "f", func(c *machine.Thread) int64 { return 5 })
		total += int(f.Force(th))
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 64+10+5 {
		t.Errorf("total = %d, want 79", total)
	}
}

// Property: Reduce equals the sequential fold for random inputs, chunk
// counts and associative/commutative combine (here: sum and max).
func TestPropertyReduceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		vals := make([]int64, n)
		var wantSum, wantMax int64
		wantMax = -1 << 62
		for i := range vals {
			vals[i] = int64(rng.Intn(1000) - 500)
			wantSum += vals[i]
			if vals[i] > wantMax {
				wantMax = vals[i]
			}
		}
		if n == 0 {
			wantMax = -1 << 62
		}
		chunks := 1 + rng.Intn(16)
		var gotSum, gotMax int64
		e := mta.New(mta.Params{Procs: 1})
		_, err := e.Run("main", func(th *machine.Thread) {
			gotSum = Reduce(th, "sum", n, chunks, 0,
				func(c *machine.Thread, lo, hi int) int64 {
					var s int64
					for i := lo; i < hi; i++ {
						s += vals[i]
					}
					return s
				},
				func(a, b int64) int64 { return a + b })
			gotMax = Reduce(th, "max", n, chunks, -1<<62,
				func(c *machine.Thread, lo, hi int) int64 {
					m := int64(-1 << 62)
					for i := lo; i < hi; i++ {
						if vals[i] > m {
							m = vals[i]
						}
					}
					return m
				},
				func(a, b int64) int64 {
					if a > b {
						return a
					}
					return b
				})
		})
		if err != nil {
			return false
		}
		return gotSum == wantSum && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: DynamicFor and ParChunks process identical item sets for random
// sizes and worker counts.
func TestPropertyDynamicForCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150)
		workers := 1 + rng.Intn(12)
		seen := make([]int, n)
		e := mta.New(mta.Params{Procs: 2})
		_, err := e.Run("main", func(th *machine.Thread) {
			DynamicFor(th, "q", n, workers, func(c *machine.Thread, item int) {
				seen[item]++
			})
		})
		if err != nil {
			return false
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
