package suite

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// testWorkload builds a minimal valid descriptor for registry-mechanics
// tests (names are prefixed so they cannot collide with real workloads).
func testWorkload(name, key string) *Workload {
	run := func(t *machine.Thread, sc Scenario, p Params) Output { return Output{Checksum: 1} }
	return &Workload{
		Name: name, Key: key, FileTag: name, Title: name,
		PaperUnits: 10, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential"},
		Generate:         func(scale float64) []Scenario { return nil },
		Variants: []*Variant{
			{Name: "sequential", Style: Sequential, Run: run},
			{Name: "coarse", Style: Coarse, Defaults: Params{"workers": 4}, Run: run},
			{Name: "fine", Style: Fine, Run: run},
		},
	}
}

func TestRegisterRejectsIncompleteDescriptors(t *testing.T) {
	run := func(t *machine.Thread, sc Scenario, p Params) Output { return Output{} }
	cases := []struct {
		label  string
		mutate func(w *Workload)
		want   string
	}{
		{"missing name", func(w *Workload) { w.Name = "" }, "needs Name"},
		{"missing file tag", func(w *Workload) { w.FileTag = "" }, "needs Name"},
		{"zero paper units", func(w *Workload) { w.PaperUnits = 0 }, "positive PaperUnits"},
		{"zero default scale", func(w *Workload) { w.DefaultScale = 0 }, "positive DefaultScale"},
		{"zero data scale", func(w *Workload) { w.DataScale = 0 }, "positive DefaultScale"},
		{"zero small scale", func(w *Workload) { w.SmallScale = 0 }, "SmallScale"},
		{"nil generate", func(w *Workload) { w.Generate = nil }, "Generate hook"},
		{"no variants", func(w *Workload) { w.Variants = nil }, "no variants"},
		{"unnamed variant", func(w *Workload) {
			w.Variants = append(w.Variants, &Variant{Style: Fine, Run: run})
		}, "unnamed variant"},
		{"bad style", func(w *Workload) {
			w.Variants = append(w.Variants, &Variant{Name: "x", Style: "medium", Run: run})
		}, "invalid style"},
		{"nil run", func(w *Workload) {
			w.Variants = append(w.Variants, &Variant{Name: "x", Style: Fine})
		}, "no Run hook"},
		{"duplicate variant", func(w *Workload) {
			w.Variants = append(w.Variants, &Variant{Name: "fine", Style: Fine, Run: run})
		}, "twice"},
		{"bad reference", func(w *Workload) { w.Reference = "nope" }, "reference variant"},
		{"bad validate list", func(w *Workload) { w.ValidateVariants = []string{"nope"} }, "validate variant"},
	}
	for _, tc := range cases {
		w := testWorkload("test-invalid", "t-inv")
		tc.mutate(w)
		err := Register(w)
		if err == nil {
			t.Errorf("%s: Register did not fail", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
		// Rejected descriptors must not be registered.
		if _, err := Lookup(w.Name); err == nil {
			t.Errorf("%s: invalid workload was registered anyway", tc.label)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(testWorkload("test-dup", "t-dup")); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register(testWorkload("test-dup", "t-dup2")); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate name: err = %v", err)
	}
	if err := Register(testWorkload("test-dup2", "t-dup")); err == nil ||
		!strings.Contains(err.Error(), "already taken") {
		t.Errorf("duplicate key: err = %v", err)
	}
}

func TestLookupAndVariantUnknown(t *testing.T) {
	if _, err := Lookup("no-such-workload"); err == nil {
		t.Error("Lookup(no-such-workload) did not fail")
	}
	w := testWorkload("test-lookup", "t-lkp")
	MustRegister(w)
	got, err := Lookup("test-lookup")
	if err != nil || got != w {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := got.Variant("sequential"); err != nil {
		t.Errorf("Variant(sequential): %v", err)
	}
	if _, err := got.Variant("no-such-variant"); err == nil {
		t.Error("Variant(no-such-variant) did not fail")
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Order > b.Order || (a.Order == b.Order && a.Name > b.Name) {
			t.Errorf("All() out of order: %s (%d) before %s (%d)", a.Name, a.Order, b.Name, b.Order)
		}
	}
	names := Names()
	if len(names) != len(all) {
		t.Fatalf("Names() len %d != All() len %d", len(names), len(all))
	}
	for i := range all {
		if names[i] != all[i].Name {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], all[i].Name)
		}
	}
}

func TestParamsMergedAndString(t *testing.T) {
	defaults := Params{"workers": 4, "blocks": 10}
	p := Params{"workers": 16}.Merged(defaults)
	if p["workers"] != 16 || p["blocks"] != 10 {
		t.Errorf("Merged = %v", p)
	}
	if defaults["workers"] != 4 {
		t.Error("Merged modified the defaults")
	}
	if got := p.String(); got != "blocks=10,workers=16" {
		t.Errorf("String() = %q, want canonical sorted form", got)
	}
	if got := (Params{}).String(); got != "-" {
		t.Errorf("empty String() = %q, want -", got)
	}
	if p := Params(nil).Merged(nil); p == nil || len(p) != 0 {
		t.Errorf("nil Merged nil = %v, want empty non-nil", p)
	}
}

func TestStylesAndNorm(t *testing.T) {
	w := testWorkload("test-styles", "t-sty")
	styles := w.Styles()
	if len(styles) != 3 {
		t.Fatalf("Styles() = %v, want all three", styles)
	}
	for _, s := range styles {
		if !s.Valid() {
			t.Errorf("style %q invalid", s)
		}
	}
	if Style("medium").Valid() {
		t.Error("invalid style accepted")
	}
	if n := w.Norm(nil); n != 1 {
		t.Errorf("Norm(nil) = %g, want 1", n)
	}
}
