package suite_test

// Conformance tests for the real registered workloads: every workload the
// repo ships must expose the full registry contract (≥3 variants spanning
// all three program styles, resolvable reference/validate hooks), and all of
// a workload's variants must agree on the output checksum at small scale —
// the registry-level restatement of the suite's correctness test.

import (
	"fmt"
	"strings"
	"testing"

	_ "repro/internal/c3i/plottrack" // register the four shipped workloads
	_ "repro/internal/c3i/route"
	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/terrain"
	_ "repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/platforms"
)

// shipped lists the repo's registered workloads in paper order. The
// agreement tests solve each at its registered SmallScale — the same
// registry-derived preset CI's `c3idata -scale-small` uses — so outputs
// stay cheap to compute fully.
var shipped = []string{
	"threat-analysis",
	"terrain-masking",
	"route-optimization",
	"plot-track-assignment",
}

// smallScale returns a shipped workload's registered smoke-test scale.
func smallScale(t *testing.T, name string) float64 {
	t.Helper()
	w, err := suite.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if w.SmallScale <= 0 {
		t.Fatalf("%s: SmallScale %g, want positive", name, w.SmallScale)
	}
	return w.SmallScale
}

func TestShippedWorkloadsConform(t *testing.T) {
	if len(shipped) != 4 {
		t.Fatalf("%d shipped workloads listed, want 4", len(shipped))
	}
	for _, name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if len(w.Variants) < 3 {
			t.Errorf("%s: %d variants, want ≥ 3", name, len(w.Variants))
		}
		styles := map[suite.Style]bool{}
		for _, s := range w.Styles() {
			styles[s] = true
		}
		for _, s := range []suite.Style{suite.Sequential, suite.Coarse, suite.Fine} {
			if !styles[s] {
				t.Errorf("%s: no %s-style variant", name, s)
			}
		}
		if w.Reference == "" {
			t.Errorf("%s: no reference variant", name)
		} else if _, err := w.Variant(w.Reference); err != nil {
			t.Errorf("%s: reference: %v", name, err)
		}
		if len(w.ValidateVariants) == 0 {
			t.Errorf("%s: no validate variants", name)
		}
		if w.Key == "" || w.FileTag == "" || w.PaperUnits <= 0 ||
			w.DefaultScale <= 0 || w.DataScale <= 0 || w.SmallScale <= 0 {
			t.Errorf("%s: incomplete metadata: %+v", name, w)
		}
	}
	// All() must list the shipped workloads in paper order (this test
	// binary registers extra mechanics-test workloads; only relative order
	// of the shipped four matters).
	pos := map[string]int{}
	for i, w := range suite.All() {
		pos[w.Name] = i
	}
	for i := 1; i < len(shipped); i++ {
		a, b := shipped[i-1], shipped[i]
		if _, ok := pos[a]; !ok {
			t.Fatalf("All() missing %s", a)
		}
		if pos[a] >= pos[b] {
			t.Errorf("All() lists %s (index %d) after %s (index %d)", a, pos[a], b, pos[b])
		}
	}
}

// solveRef runs one variant over a scenario on the Alpha model in validate
// mode and returns the checksummed output.
func solveRef(t *testing.T, v *suite.Variant, sc suite.Scenario) suite.Output {
	t.Helper()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	var out suite.Output
	if _, err := alpha.New(1).Run("conformance", func(th *machine.Thread) {
		out = v.Exec(th, sc, suite.Params{suite.ValidateParam: 1})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestVariantChecksumsAgree(t *testing.T) {
	for _, name := range shipped {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := suite.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			scs := w.Generate(smallScale(t, name))
			if len(scs) == 0 {
				t.Fatal("Generate returned no scenarios")
			}
			sc := scs[0]
			sc.Warm()
			var golden uint64
			for i, v := range w.Variants {
				out := solveRef(t, v, sc)
				if out.Checksum == 0 {
					t.Errorf("%s/%s: validate run produced no checksum", name, v.Name)
					continue
				}
				if i == 0 {
					golden = out.Checksum
					continue
				}
				if out.Checksum != golden {
					t.Errorf("%s/%s: checksum %016x != %s's %016x",
						name, v.Name, out.Checksum, w.Variants[0].Name, golden)
				}
			}
		})
	}
}

func TestVariantDefaultsAreComplete(t *testing.T) {
	// Exec must hand Run a fully-populated param set: running every shipped
	// variant with nil params must not panic (zero workers/chunks would).
	for _, name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		scs := w.Generate(smallScale(t, name))
		sc := scs[0]
		sc.Warm()
		alpha, err := platforms.Get("alpha")
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants {
			if _, err := alpha.New(1).Run("defaults", func(th *machine.Thread) {
				v.Exec(th, sc, nil)
			}); err != nil {
				t.Errorf("%s/%s with default params: %v", name, v.Name, err)
			}
		}
	}
}

// TestPlotTrackParamErrors exercises the registry-level error paths of the
// newest workload: every variant must reject an invalid gating window,
// auction epsilon, or convergence guard with a diagnostic panic rather than
// silently computing a wrong (checksum-breaking) assignment.
func TestPlotTrackParamErrors(t *testing.T) {
	w, err := suite.Lookup("plot-track-assignment")
	if err != nil {
		t.Fatal(err)
	}
	scs := w.Generate(smallScale(t, w.Name))
	sc := scs[0]
	sc.Warm()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		label string
		p     suite.Params
		want  string
	}{
		{"zero gate", suite.Params{"gate": 0}, "gate"},
		{"negative gate", suite.Params{"gate": -3}, "gate"},
		{"zero epsilon", suite.Params{"epsilon": 0}, "epsilon"},
		{"negative rounds", suite.Params{"rounds": -1}, "rounds"},
	}
	for _, v := range w.Variants {
		for _, tc := range bad {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Errorf("%s/%s: no panic", v.Name, tc.label)
						return
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, tc.want) {
						t.Errorf("%s/%s: panic %q does not mention %q", v.Name, tc.label, msg, tc.want)
					}
				}()
				alpha.New(1).Run("bad-params", func(th *machine.Thread) {
					v.Exec(th, sc, tc.p)
				})
			}()
		}
	}
}
