package suite_test

// Conformance tests for the real registered workloads: every workload the
// repo ships must expose the full registry contract (≥3 variants spanning
// all three program styles, resolvable reference/validate hooks), and all of
// a workload's variants must agree on the output checksum at small scale —
// the registry-level restatement of the suite's correctness test.

import (
	"testing"

	_ "repro/internal/c3i/route" // register the three shipped workloads
	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/terrain"
	_ "repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/platforms"
)

// shipped lists the repo's registered workloads with the small scales the
// agreement test solves at (kept tiny: outputs are fully computed).
var shipped = map[string]float64{
	"threat-analysis":    0.02,
	"terrain-masking":    0.05,
	"route-optimization": 0.1,
}

func TestShippedWorkloadsConform(t *testing.T) {
	for name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if len(w.Variants) < 3 {
			t.Errorf("%s: %d variants, want ≥ 3", name, len(w.Variants))
		}
		styles := map[suite.Style]bool{}
		for _, s := range w.Styles() {
			styles[s] = true
		}
		for _, s := range []suite.Style{suite.Sequential, suite.Coarse, suite.Fine} {
			if !styles[s] {
				t.Errorf("%s: no %s-style variant", name, s)
			}
		}
		if w.Reference == "" {
			t.Errorf("%s: no reference variant", name)
		} else if _, err := w.Variant(w.Reference); err != nil {
			t.Errorf("%s: reference: %v", name, err)
		}
		if len(w.ValidateVariants) == 0 {
			t.Errorf("%s: no validate variants", name)
		}
		if w.Key == "" || w.FileTag == "" || w.PaperUnits <= 0 || w.DefaultScale <= 0 || w.DataScale <= 0 {
			t.Errorf("%s: incomplete metadata: %+v", name, w)
		}
	}
	// All() must list the shipped workloads in paper order (other test
	// binaries may have registered extra workloads; only relative order of
	// the shipped three matters).
	pos := map[string]int{}
	for i, w := range suite.All() {
		pos[w.Name] = i
	}
	order := []string{"threat-analysis", "terrain-masking", "route-optimization"}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if _, ok := pos[a]; !ok {
			t.Fatalf("All() missing %s", a)
		}
		if pos[a] >= pos[b] {
			t.Errorf("All() lists %s (index %d) after %s (index %d)", a, pos[a], b, pos[b])
		}
	}
}

// solveRef runs one variant over a scenario on the Alpha model in validate
// mode and returns the checksummed output.
func solveRef(t *testing.T, v *suite.Variant, sc suite.Scenario) suite.Output {
	t.Helper()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	var out suite.Output
	if _, err := alpha.New(1).Run("conformance", func(th *machine.Thread) {
		out = v.Exec(th, sc, suite.Params{suite.ValidateParam: 1})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestVariantChecksumsAgree(t *testing.T) {
	for name, scale := range shipped {
		name, scale := name, scale
		t.Run(name, func(t *testing.T) {
			w, err := suite.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			scs := w.Generate(scale)
			if len(scs) == 0 {
				t.Fatal("Generate returned no scenarios")
			}
			sc := scs[0]
			sc.Warm()
			var golden uint64
			for i, v := range w.Variants {
				out := solveRef(t, v, sc)
				if out.Checksum == 0 {
					t.Errorf("%s/%s: validate run produced no checksum", name, v.Name)
					continue
				}
				if i == 0 {
					golden = out.Checksum
					continue
				}
				if out.Checksum != golden {
					t.Errorf("%s/%s: checksum %016x != %s's %016x",
						name, v.Name, out.Checksum, w.Variants[0].Name, golden)
				}
			}
		})
	}
}

func TestVariantDefaultsAreComplete(t *testing.T) {
	// Exec must hand Run a fully-populated param set: running every shipped
	// variant with nil params must not panic (zero workers/chunks would).
	for name, scale := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		scs := w.Generate(scale)
		sc := scs[0]
		sc.Warm()
		alpha, err := platforms.Get("alpha")
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants {
			if _, err := alpha.New(1).Run("defaults", func(th *machine.Thread) {
				v.Exec(th, sc, nil)
			}); err != nil {
				t.Errorf("%s/%s with default params: %v", name, v.Name, err)
			}
		}
	}
}
