package suite_test

// Conformance tests for the real registered workloads: every workload the
// repo ships must expose the full registry contract (≥3 variants spanning
// all three program styles, resolvable reference/validate hooks), and all of
// a workload's variants must agree on the output checksum at small scale —
// the registry-level restatement of the suite's correctness test.

import (
	"fmt"
	"strings"
	"testing"

	_ "repro/internal/c3i/hypothesis" // register the five shipped workloads
	_ "repro/internal/c3i/plottrack"
	_ "repro/internal/c3i/route"
	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/terrain"
	_ "repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/platforms"
)

// shipped lists the repo's registered workloads in paper order. The
// agreement tests solve each at its registered SmallScale — the same
// registry-derived preset CI's `c3idata -scale-small` uses — so outputs
// stay cheap to compute fully.
var shipped = []string{
	"threat-analysis",
	"terrain-masking",
	"route-optimization",
	"plot-track-assignment",
	"hypothesis-testing",
}

// smallScale returns a shipped workload's registered smoke-test scale.
func smallScale(t *testing.T, name string) float64 {
	t.Helper()
	w, err := suite.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if w.SmallScale <= 0 {
		t.Fatalf("%s: SmallScale %g, want positive", name, w.SmallScale)
	}
	return w.SmallScale
}

func TestShippedWorkloadsConform(t *testing.T) {
	if len(shipped) != 5 {
		t.Fatalf("%d shipped workloads listed, want 5", len(shipped))
	}
	for _, name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if len(w.Variants) < 3 {
			t.Errorf("%s: %d variants, want ≥ 3", name, len(w.Variants))
		}
		styles := map[suite.Style]bool{}
		for _, s := range w.Styles() {
			styles[s] = true
		}
		for _, s := range []suite.Style{suite.Sequential, suite.Coarse, suite.Fine} {
			if !styles[s] {
				t.Errorf("%s: no %s-style variant", name, s)
			}
		}
		if w.Reference == "" {
			t.Errorf("%s: no reference variant", name)
		} else if _, err := w.Variant(w.Reference); err != nil {
			t.Errorf("%s: reference: %v", name, err)
		}
		if len(w.ValidateVariants) == 0 {
			t.Errorf("%s: no validate variants", name)
		}
		if w.Key == "" || w.FileTag == "" || w.PaperUnits <= 0 ||
			w.DefaultScale <= 0 || w.DataScale <= 0 || w.SmallScale <= 0 {
			t.Errorf("%s: incomplete metadata: %+v", name, w)
		}
	}
	// All() must list the shipped workloads in paper order (this test
	// binary registers extra mechanics-test workloads; only relative order
	// of the shipped four matters).
	pos := map[string]int{}
	for i, w := range suite.All() {
		pos[w.Name] = i
	}
	for i := 1; i < len(shipped); i++ {
		a, b := shipped[i-1], shipped[i]
		if _, ok := pos[a]; !ok {
			t.Fatalf("All() missing %s", a)
		}
		if pos[a] >= pos[b] {
			t.Errorf("All() lists %s (index %d) after %s (index %d)", a, pos[a], b, pos[b])
		}
	}
}

// solveRef runs one variant over a scenario on the Alpha model in validate
// mode and returns the checksummed output.
func solveRef(t *testing.T, v *suite.Variant, sc suite.Scenario) suite.Output {
	t.Helper()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	var out suite.Output
	if _, err := alpha.New(1).Run("conformance", func(th *machine.Thread) {
		out = v.Exec(th, sc, suite.Params{suite.ValidateParam: 1})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestVariantChecksumsAgree(t *testing.T) {
	for _, name := range shipped {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := suite.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			scs := w.Generate(smallScale(t, name))
			if len(scs) == 0 {
				t.Fatal("Generate returned no scenarios")
			}
			sc := scs[0]
			sc.Warm()
			var golden uint64
			for i, v := range w.Variants {
				out := solveRef(t, v, sc)
				if out.Checksum == 0 {
					t.Errorf("%s/%s: validate run produced no checksum", name, v.Name)
					continue
				}
				if i == 0 {
					golden = out.Checksum
					continue
				}
				if out.Checksum != golden {
					t.Errorf("%s/%s: checksum %016x != %s's %016x",
						name, v.Name, out.Checksum, w.Variants[0].Name, golden)
				}
			}
		})
	}
}

func TestVariantDefaultsAreComplete(t *testing.T) {
	// Exec must hand Run a fully-populated param set: running every shipped
	// variant with nil params must not panic (zero workers/chunks would).
	for _, name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		scs := w.Generate(smallScale(t, name))
		sc := scs[0]
		sc.Warm()
		alpha, err := platforms.Get("alpha")
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants {
			if _, err := alpha.New(1).Run("defaults", func(th *machine.Thread) {
				v.Exec(th, sc, nil)
			}); err != nil {
				t.Errorf("%s/%s with default params: %v", name, v.Name, err)
			}
		}
	}
}

// solveAt runs one variant over the first scenario of a workload at a grid
// binding (scale + params) in validate mode and returns the checksum.
func solveAt(t *testing.T, w *suite.Workload, v *suite.Variant, b suite.Binding) uint64 {
	t.Helper()
	scale := b.Scale
	if scale == 0 {
		scale = w.SmallScale
	}
	scs := w.Generate(scale)
	if len(scs) == 0 {
		t.Fatalf("%s: Generate(%g) returned no scenarios", w.Name, scale)
	}
	sc := scs[0]
	sc.Warm()
	out := solveRef2(t, v, sc, suite.Params{suite.ValidateParam: 1}.Merged(b.Params))
	if out.Checksum == 0 {
		t.Fatalf("%s/%s at scale %g params %s: validate run produced no checksum",
			w.Name, v.Name, scale, b.Params.String())
	}
	return out.Checksum
}

// solveRef2 is solveRef with explicit params.
func solveRef2(t *testing.T, v *suite.Variant, sc suite.Scenario, p suite.Params) suite.Output {
	t.Helper()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	var out suite.Output
	if _, err := alpha.New(1).Run("conformance", func(th *machine.Thread) {
		out = v.Exec(th, sc, p)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// semanticKey collapses grid bindings that cannot change a workload's
// output: the net axis only rescales the machine model's time, so points
// differing only in network maturity share one conformance obligation.
func semanticKey(b suite.Binding) string {
	return fmt.Sprintf("s%g|%s", b.Scale, b.Params.String())
}

// TestVariantsAgreeAtEveryGridPoint is the grid-wide conformance contract:
// for every shipped workload that declares a scenario grid, all of its
// program styles must produce the same output checksum at every declared
// grid point — not just at the paper defaults.
func TestVariantsAgreeAtEveryGridPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweep skipped in -short mode")
	}
	gridded := 0
	for _, name := range shipped {
		w, err := suite.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Grid == nil {
			continue
		}
		gridded++
		t.Run(name, func(t *testing.T) {
			seen := map[string]bool{}
			for _, pt := range w.Grid.Points() {
				b, err := w.Grid.Apply(pt)
				if err != nil {
					t.Fatalf("point %s: %v", w.Grid.PointLabel(pt), err)
				}
				if k := semanticKey(b); seen[k] {
					continue
				} else {
					seen[k] = true
				}
				var golden uint64
				for i, v := range w.Variants {
					sum := solveAt(t, w, v, b)
					if i == 0 {
						golden = sum
						continue
					}
					if sum != golden {
						t.Errorf("%s at %s: checksum %016x != %s's %016x",
							v.Name, w.Grid.PointLabel(pt), sum, w.Variants[0].Name, golden)
					}
				}
			}
			if len(seen) < 2 {
				t.Errorf("grid collapses to %d distinct problem shapes — not a grid", len(seen))
			}
		})
	}
	if gridded == 0 {
		t.Fatal("no shipped workload declares a scenario grid")
	}
}

// TestHypothesisGridPropertySquare is the always-on property check over a
// 2×2 sub-grid of the hypothesis-testing grid: at every point the three
// styles agree, and across points the checksums differ — the grid axes
// actually change the problem, and agreement at one point is not agreement
// everywhere.
func TestHypothesisGridPropertySquare(t *testing.T) {
	w, err := suite.Lookup("hypothesis-testing")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.Grid.Sub(map[string][]float64{
		"scale": {0.05},
		"gate":  {24, 48},
		"prune": {0, 500},
		"net":   {0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := sub.Points()
	if len(pts) != 4 {
		t.Fatalf("2×2 sub-grid has %d points", len(pts))
	}
	sums := map[uint64]string{}
	for _, pt := range pts {
		b, err := sub.Apply(pt)
		if err != nil {
			t.Fatal(err)
		}
		var golden uint64
		for i, v := range w.Variants {
			sum := solveAt(t, w, v, b)
			if i == 0 {
				golden = sum
				continue
			}
			if sum != golden {
				t.Errorf("%s at %s: checksum %016x != %s's %016x",
					v.Name, sub.PointLabel(pt), sum, w.Variants[0].Name, golden)
			}
		}
		if prev, dup := sums[golden]; dup {
			t.Errorf("points %s and %s share checksum %016x — an axis is inert",
				prev, sub.PointLabel(pt), golden)
		}
		sums[golden] = sub.PointLabel(pt)
	}
}

// TestHypothesisParamErrors exercises the registry-level error paths of the
// fifth workload: every variant must reject an invalid gating window or
// prune threshold with a diagnostic panic rather than silently computing a
// wrong (checksum-breaking) score vector.
func TestHypothesisParamErrors(t *testing.T) {
	w, err := suite.Lookup("hypothesis-testing")
	if err != nil {
		t.Fatal(err)
	}
	scs := w.Generate(smallScale(t, w.Name))
	sc := scs[0]
	sc.Warm()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		label string
		p     suite.Params
		want  string
	}{
		{"zero gate", suite.Params{"gate": 0}, "gating window"},
		{"negative gate", suite.Params{"gate": -3}, "gating window"},
		{"negative prune", suite.Params{"prune": -1}, "prune threshold"},
		{"prune over 1000", suite.Params{"prune": 1001}, "prune threshold"},
	}
	for _, v := range w.Variants {
		for _, tc := range bad {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Errorf("%s/%s: no panic", v.Name, tc.label)
						return
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, tc.want) {
						t.Errorf("%s/%s: panic %q does not mention %q", v.Name, tc.label, msg, tc.want)
					}
				}()
				alpha.New(1).Run("bad-params", func(th *machine.Thread) {
					v.Exec(th, sc, tc.p)
				})
			}()
		}
	}
}

// TestPlotTrackParamErrors exercises the registry-level error paths of the
// newest workload: every variant must reject an invalid gating window,
// auction epsilon, or convergence guard with a diagnostic panic rather than
// silently computing a wrong (checksum-breaking) assignment.
func TestPlotTrackParamErrors(t *testing.T) {
	w, err := suite.Lookup("plot-track-assignment")
	if err != nil {
		t.Fatal(err)
	}
	scs := w.Generate(smallScale(t, w.Name))
	sc := scs[0]
	sc.Warm()
	alpha, err := platforms.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		label string
		p     suite.Params
		want  string
	}{
		{"zero gate", suite.Params{"gate": 0}, "gate"},
		{"negative gate", suite.Params{"gate": -3}, "gate"},
		{"zero epsilon", suite.Params{"epsilon": 0}, "epsilon"},
		{"negative rounds", suite.Params{"rounds": -1}, "rounds"},
	}
	for _, v := range w.Variants {
		for _, tc := range bad {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Errorf("%s/%s: no panic", v.Name, tc.label)
						return
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, tc.want) {
						t.Errorf("%s/%s: panic %q does not mention %q", v.Name, tc.label, msg, tc.want)
					}
				}()
				alpha.New(1).Run("bad-params", func(th *machine.Thread) {
					v.Exec(th, sc, tc.p)
				})
			}()
		}
	}
}
