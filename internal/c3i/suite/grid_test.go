package suite

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// gridWorkload builds a minimal valid descriptor with a declared grid: a
// scale axis, an integer param axis present in every variant's defaults,
// and a net axis.
func gridWorkload(name, key string) *Workload {
	run := func(t *machine.Thread, sc Scenario, p Params) Output { return Output{Checksum: 1} }
	shared := Params{"gate": 20}
	return &Workload{
		Name: name, Key: key, FileTag: name, Title: name,
		PaperUnits: 10, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential"},
		Generate:         func(scale float64) []Scenario { return nil },
		Grid: &Grid{Axes: []Axis{
			{Name: "scale", Kind: AxisScale, Values: []float64{0.1, 0.5, 1}, Default: 1},
			{Name: "gate", Kind: AxisParam, Values: []float64{10, 20, 40}, Default: 20},
			{Name: "net", Kind: AxisNet, Values: []float64{0, 1.4}, Default: 0},
		}},
		Variants: []*Variant{
			{Name: "sequential", Style: Sequential, Defaults: shared, Run: run},
			{Name: "coarse", Style: Coarse, Defaults: shared.Merged(Params{"workers": 4}), Run: run},
			{Name: "fine", Style: Fine, Defaults: shared.Merged(Params{"threads": 8}), Run: run},
		},
	}
}

func TestGridPointsRowMajor(t *testing.T) {
	g := &Grid{Axes: []Axis{
		{Name: "a", Kind: AxisParam, Values: []float64{1, 2}, Default: 1},
		{Name: "b", Kind: AxisParam, Values: []float64{10, 20}, Default: 10},
	}}
	if n := g.NumPoints(); n != 4 {
		t.Fatalf("NumPoints = %d, want 4", n)
	}
	pts := g.Points()
	want := []Point{
		{"a": 1, "b": 10}, {"a": 1, "b": 20},
		{"a": 2, "b": 10}, {"a": 2, "b": 20},
	}
	if len(pts) != len(want) {
		t.Fatalf("Points len %d, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		for k, v := range want[i] {
			if p[k] != v {
				t.Errorf("point %d: %s = %g, want %g (row-major, first axis slowest)", i, k, p[k], v)
			}
		}
	}
}

func TestGridDefaultPointAndLabel(t *testing.T) {
	w := gridWorkload("test-grid-label", "t-glb")
	g := w.Grid
	dp := g.DefaultPoint()
	if dp["scale"] != 1 || dp["gate"] != 20 || dp["net"] != 0 {
		t.Errorf("DefaultPoint = %v", dp)
	}
	if got := g.PointLabel(dp); got != "scale=1,gate=20,net=0" {
		t.Errorf("PointLabel(default) = %q", got)
	}
	// Omitted axes render their defaults, so equal bindings label equally.
	if got := g.PointLabel(Point{"gate": 40}); got != "scale=1,gate=40,net=0" {
		t.Errorf("PointLabel(partial) = %q", got)
	}
}

func TestGridApply(t *testing.T) {
	g := gridWorkload("test-grid-apply", "t-gap").Grid
	b, err := g.Apply(Point{"scale": 0.5, "gate": 40, "net": 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Scale != 0.5 || b.Params["gate"] != 40 || b.NetLatencyMult != 1.4 {
		t.Errorf("Apply = %+v", b)
	}
	// Omitted axes resolve to defaults.
	b, err = g.Apply(Point{"gate": 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Scale != 1 || b.Params["gate"] != 10 || b.NetLatencyMult != 0 {
		t.Errorf("Apply(partial) = %+v", b)
	}
	if _, err := g.Apply(Point{"bogus": 1}); err == nil ||
		!strings.Contains(err.Error(), "no axis") {
		t.Errorf("unknown key: err = %v", err)
	}
	if _, err := g.Apply(Point{"gate": 15}); err == nil ||
		!strings.Contains(err.Error(), "no declared value") {
		t.Errorf("undeclared value: err = %v", err)
	}
}

func TestGridSub(t *testing.T) {
	g := gridWorkload("test-grid-sub", "t-gsb").Grid
	sub, err := g.Sub(map[string][]float64{"gate": {40, 10}, "net": {0}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumPoints() != 3*2*1 {
		t.Errorf("sub NumPoints = %d, want 6", sub.NumPoints())
	}
	ax, err := sub.Axis("gate")
	if err != nil {
		t.Fatal(err)
	}
	// Declared order is kept, whatever order the restriction listed.
	if len(ax.Values) != 2 || ax.Values[0] != 10 || ax.Values[1] != 40 {
		t.Errorf("sub gate values = %v, want declared order [10 40]", ax.Values)
	}
	// The default (20) was dropped; the sub-grid re-defaults to the first
	// kept value.
	if ax.Default != 10 {
		t.Errorf("sub gate default = %g, want 10", ax.Default)
	}
	// The original grid is untouched.
	orig, _ := g.Axis("gate")
	if len(orig.Values) != 3 || orig.Default != 20 {
		t.Errorf("Sub mutated the original grid: %v default %g", orig.Values, orig.Default)
	}
	if _, err := g.Sub(map[string][]float64{"bogus": {1}}); err == nil ||
		!strings.Contains(err.Error(), "no axis") {
		t.Errorf("unknown axis: err = %v", err)
	}
	if _, err := g.Sub(map[string][]float64{"gate": {}}); err == nil ||
		!strings.Contains(err.Error(), "no values") {
		t.Errorf("empty restriction: err = %v", err)
	}
	if _, err := g.Sub(map[string][]float64{"gate": {15}}); err == nil ||
		!strings.Contains(err.Error(), "no declared value") {
		t.Errorf("undeclared value: err = %v", err)
	}
}

func TestGridRegistersAndValidates(t *testing.T) {
	// A valid grid registers.
	if err := Register(gridWorkload("test-grid-ok", "t-gok")); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	cases := []struct {
		label  string
		mutate func(w *Workload)
		want   string
	}{
		{"empty grid", func(w *Workload) { w.Grid = &Grid{} }, "empty grid"},
		{"unnamed axis", func(w *Workload) { w.Grid.Axes[1].Name = "" }, "unnamed"},
		{"unsafe name", func(w *Workload) { w.Grid.Axes[1].Name = "ga te" }, "flag-syntax safe"},
		{"duplicate axis", func(w *Workload) { w.Grid.Axes[1].Name = "scale" }, "twice"},
		{"invalid kind", func(w *Workload) { w.Grid.Axes[1].Kind = "fuzzy" }, "invalid kind"},
		{"no values", func(w *Workload) { w.Grid.Axes[1].Values = nil }, "no values"},
		{"undeclared default", func(w *Workload) { w.Grid.Axes[1].Default = 99 }, "not a declared value"},
		{"duplicate value", func(w *Workload) { w.Grid.Axes[1].Values = []float64{10, 20, 10} }, "twice"},
		{"misnamed scale axis", func(w *Workload) { w.Grid.Axes[0].Name = "size" }, `named "scale"`},
		{"non-positive scale", func(w *Workload) {
			w.Grid.Axes[0].Values = []float64{0, 1}
			w.Grid.Axes[0].Default = 1
		}, "positive"},
		{"misnamed net axis", func(w *Workload) { w.Grid.Axes[2].Name = "latency" }, `named "net"`},
		{"negative net", func(w *Workload) {
			w.Grid.Axes[2].Values = []float64{-1, 0}
			w.Grid.Axes[2].Default = 0
		}, "≥ 0"},
		{"reserved param name", func(w *Workload) {
			w.Grid.Axes[1] = Axis{Name: ValidateParam, Kind: AxisParam, Values: []float64{1}, Default: 1}
		}, "reserved"},
		{"non-integer param", func(w *Workload) {
			w.Grid.Axes[1].Values = []float64{10, 20, 20.5}
		}, "not an integer"},
		{"param missing from a variant", func(w *Workload) {
			w.Grid.Axes[1] = Axis{Name: "depth", Kind: AxisParam, Values: []float64{2}, Default: 2}
		}, "silently ignore"},
		{"two scale axes", func(w *Workload) {
			w.Grid.Axes[1] = w.Grid.Axes[0]
			w.Grid.Axes[1].Name = "scale2"
		}, `named "scale"`},
	}
	for _, tc := range cases {
		w := gridWorkload("test-grid-bad", "t-gbad")
		tc.mutate(w)
		err := Register(w)
		if err == nil {
			t.Errorf("%s: Register did not fail", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
		if _, err := Lookup(w.Name); err == nil {
			t.Errorf("%s: invalid workload was registered anyway", tc.label)
		}
	}
}
