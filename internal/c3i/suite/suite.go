// Package suite is the registry that makes C3I benchmark workloads and their
// parallelization styles first-class values. Each workload (Threat Analysis,
// Terrain Masking, Route Optimization, …) registers one Workload descriptor
// — paper-scale constants, a scenario generator, serialization tags and
// validation hooks — plus a set of Variant descriptors, one per program
// style (sequential / coarse-grained / fine-grained), each with its tunable
// parameters and a Run hook against *machine.Thread.
//
// Consumers (internal/experiments, cmd/c3ibench, cmd/c3idata, the top-level
// benchmarks) drive workloads exclusively through this registry, so adding a
// workload is O(1) integration work: write the solver package, register it,
// and every experiment runner, data tool and benchmark picks it up — the
// Task Bench argument of O(workloads + runners) instead of
// O(workloads × runners) effort.
package suite

import (
	"cmp"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/machine"
)

// Style is one of the paper's three program styles.
type Style string

const (
	// Sequential is the original single-threaded program (Programs 1, 3).
	Sequential Style = "sequential"
	// Coarse is the manual coarse-grained parallelization: a small crew of
	// chunk/worker threads with private buffers (Programs 2, 4).
	Coarse Style = "coarse"
	// Fine is the Tera style: abundant short-lived threads synchronizing on
	// individual words — practical only where threads are nearly free.
	Fine Style = "fine"
)

// Valid reports whether s is one of the three registered styles.
func (s Style) Valid() bool {
	return s == Sequential || s == Coarse || s == Fine
}

// ValidateParam is the reserved parameter consumers set to 1 to request a
// fully-computed, checksummed output. With it unset (0), variants may run in
// charge-only mode: identical machine charges, no semantic output (the
// timing sweeps' fast path).
const ValidateParam = "validate"

// Params are a variant's integer tunables (chunk counts, worker counts,
// ∆-stepping widths, …). The zero value is usable.
type Params map[string]int

// Merged returns defaults overlaid with p (p wins). Neither input is
// modified; the result is always non-nil.
func (p Params) Merged(defaults Params) Params {
	out := make(Params, len(defaults)+len(p))
	for k, v := range defaults {
		out[k] = v
	}
	for k, v := range p {
		out[k] = v
	}
	return out
}

// String renders the params canonically (sorted, "k=v" joined with ","), so
// it is usable as a cache-key component. Empty params render as "-".
func (p Params) String() string {
	if len(p) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(p))
	for _, k := range SortedKeys(p) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, p[k]))
	}
	return strings.Join(parts, ",")
}

// Scenario is one benchmark input as the registry sees it. The concrete
// types live in the workload packages; consumers that need more than the
// name and workload-unit count go through Variant.Run.
type Scenario interface {
	// ScenarioName identifies the scenario ("scenario-3") for goldens.
	ScenarioName() string
	// Units is the scenario's workload-unit count (threats, route requests);
	// paired with Workload.PaperUnits it defines scale normalization.
	Units() int
	// Warm populates every internal memoization cache so that subsequent
	// solver runs only read the scenario — required before concurrent
	// experiment runs share one scenario. A no-op where nothing is cached.
	Warm()
}

// Scenarios converts a typed scenario slice to the interface slice a
// Workload's Generate hook returns.
func Scenarios[S Scenario](scs []S) []Scenario {
	out := make([]Scenario, len(scs))
	for i, s := range scs {
		out[i] = s
	}
	return out
}

// Output is a variant run's registry-level result.
type Output struct {
	// Checksum is the stable checksum of the semantic output (the suite's
	// "correctness test for the benchmark output data"). Zero when the run
	// was charge-only (ValidateParam unset for a workload that supports it).
	Checksum uint64
	// OverheadBytes is the private-buffer storage the variant had to
	// allocate — the memory-overhead drawback the paper charges against
	// coarse-grained parallelization.
	OverheadBytes uint64
}

// Variant is one program style of a workload.
type Variant struct {
	// Name is unique within the workload ("sequential", "coarse", "fine",
	// "hybrid").
	Name string
	// Style classifies the variant into the paper's three program styles.
	Style Style
	// Defaults hold every tunable parameter with its default value; Exec
	// merges caller params over these, so Run always sees complete params.
	Defaults Params
	// Run executes the variant over one scenario against the machine
	// thread, charging the machine for the work.
	Run func(t *machine.Thread, sc Scenario, p Params) Output
	// OverheadFullScale, when set, projects the variant's private-buffer
	// storage for a worker count at the paper's full problem size — the
	// feasibility argument the tables quote (optional).
	OverheadFullScale func(workers int) uint64
}

// Exec runs the variant with the caller's params merged over the defaults.
func (v *Variant) Exec(t *machine.Thread, sc Scenario, p Params) Output {
	return v.Run(t, sc, p.Merged(v.Defaults))
}

// Workload is one registered benchmark problem.
type Workload struct {
	// Name is the canonical workload id ("threat-analysis") — the golden
	// record kind and the experiments Config key.
	Name string
	// Key is the short flag/scale key ("ta" → -scale-ta).
	Key string
	// FileTag prefixes scenario file names ("threat" → threat-1.c3i).
	FileTag string
	// Title is the human-readable problem name ("Threat Analysis").
	Title string
	// Order positions the workload in listings (paper order first).
	Order int
	// PaperUnits is the per-scenario workload-unit count at scale 1 (the
	// paper's 1000 threats, 60 threat sites, the suite's 12 requests).
	PaperUnits int
	// UnitName names the unit for flag help ("threats/scenario").
	UnitName string
	// DefaultScale is the experiments' default workload scale.
	DefaultScale float64
	// DataScale is cmd/c3idata's default generation scale.
	DataScale float64
	// SmallScale is the workload's smoke-test scale: large enough that all
	// variants exercise their parallel structure, small enough for per-PR
	// validation. CI (`c3idata -scale-small`) and the registry conformance
	// tests derive their sizes from it, so new workloads are covered with
	// no pipeline edits.
	SmallScale float64
	// Reference names the variant whose validated output defines the
	// golden checksum (conventionally "sequential").
	Reference string
	// ValidateVariants names the variants cmd/c3idata -check re-runs
	// against the goldens.
	ValidateVariants []string
	// Generate builds the benchmark's scenario suite at a workload scale
	// (scale 1 ≈ the paper's inputs).
	Generate func(scale float64) []Scenario
	// Variants are the workload's program styles, listing order preserved.
	Variants []*Variant
	// Grid, when non-nil, declares the workload's swept scenario-parameter
	// space (see Grid): named axes with discrete values and a registered
	// paper-point default each. Every program style must agree on the
	// output checksum at every declared point — the conformance tests
	// enforce it, `c3ibench -grid` sweeps it.
	Grid *Grid
}

// Variant returns the named variant.
func (w *Workload) Variant(name string) (*Variant, error) {
	for _, v := range w.Variants {
		if v.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("suite: workload %s has no variant %q", w.Name, name)
}

// MustVariant is Variant for registration-time-verified names.
func (w *Workload) MustVariant(name string) *Variant {
	v, err := w.Variant(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Norm converts measured suite seconds at a reduced scale to paper-scale
// seconds: the paper's per-scenario unit count over the generated one.
func (w *Workload) Norm(scs []Scenario) float64 {
	if len(scs) == 0 || scs[0].Units() == 0 {
		return 1
	}
	return float64(w.PaperUnits) / float64(scs[0].Units())
}

// Styles returns the distinct styles the workload's variants span.
func (w *Workload) Styles() []Style {
	seen := map[Style]bool{}
	var out []Style
	for _, v := range w.Variants {
		if !seen[v.Style] {
			seen[v.Style] = true
			out = append(out, v.Style)
		}
	}
	return out
}

// --- Registry ---------------------------------------------------------------

var (
	regMu  sync.Mutex
	byName = map[string]*Workload{}
	byKey  = map[string]*Workload{}
)

// Register adds a workload to the registry, rejecting incomplete
// descriptors and duplicate names/keys.
func Register(w *Workload) error {
	if err := check(w); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := byName[w.Name]; ok {
		return fmt.Errorf("suite: workload %q already registered", w.Name)
	}
	if prev, ok := byKey[w.Key]; ok {
		return fmt.Errorf("suite: workload key %q already taken by %s", w.Key, prev.Name)
	}
	byName[w.Name] = w
	byKey[w.Key] = w
	return nil
}

// MustRegister is Register for package init blocks.
func MustRegister(w *Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// check validates a descriptor before registration.
func check(w *Workload) error {
	switch {
	case w == nil:
		return fmt.Errorf("suite: nil workload")
	case w.Name == "" || w.Key == "" || w.FileTag == "" || w.Title == "":
		return fmt.Errorf("suite: workload %q needs Name, Key, FileTag and Title", w.Name)
	case w.PaperUnits <= 0:
		return fmt.Errorf("suite: workload %s needs a positive PaperUnits", w.Name)
	case w.DefaultScale <= 0 || w.DataScale <= 0 || w.SmallScale <= 0:
		return fmt.Errorf("suite: workload %s needs positive DefaultScale, DataScale and SmallScale", w.Name)
	case w.Generate == nil:
		return fmt.Errorf("suite: workload %s needs a Generate hook", w.Name)
	case len(w.Variants) == 0:
		return fmt.Errorf("suite: workload %s registers no variants", w.Name)
	}
	seen := map[string]bool{}
	for _, v := range w.Variants {
		switch {
		case v == nil || v.Name == "":
			return fmt.Errorf("suite: workload %s has an unnamed variant", w.Name)
		case !v.Style.Valid():
			return fmt.Errorf("suite: workload %s variant %s has invalid style %q", w.Name, v.Name, v.Style)
		case v.Run == nil:
			return fmt.Errorf("suite: workload %s variant %s has no Run hook", w.Name, v.Name)
		case seen[v.Name]:
			return fmt.Errorf("suite: workload %s registers variant %q twice", w.Name, v.Name)
		}
		seen[v.Name] = true
	}
	if w.Reference != "" && !seen[w.Reference] {
		return fmt.Errorf("suite: workload %s reference variant %q not registered", w.Name, w.Reference)
	}
	for _, name := range w.ValidateVariants {
		if !seen[name] {
			return fmt.Errorf("suite: workload %s validate variant %q not registered", w.Name, name)
		}
	}
	if w.Grid != nil {
		if err := checkGrid(w); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the workload registered under name.
func Lookup(name string) (*Workload, error) {
	regMu.Lock()
	defer regMu.Unlock()
	if w, ok := byName[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("suite: unknown workload %q", name)
}

// All returns every registered workload in listing order (Order, then Name),
// independent of package-init order.
func All() []*Workload {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Workload, 0, len(byName))
	for _, w := range byName {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns every registered workload name in listing order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// SortedKeys returns a map's keys in ascending order — the shared helper for
// deterministic iteration over param maps and paper-number tables.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
