package suite

// The scenario grid: Task Bench's parameterized-benchmark idea applied to
// the registry. A workload's paper numbers pin one point in a larger
// problem-shape space (workload scale, gating window, prune threshold,
// network maturity, …); a Grid declares that space explicitly — named axes
// with discrete values and a registered paper-point default each — so every
// consumer (c3ibench sweeps, conformance tests, the serving tier) can
// enumerate the same points instead of inventing ad-hoc sweeps. The
// conformance contract extends along with it: all of a workload's program
// styles must agree on the output checksum at every declared grid point,
// not just at the paper scales.

import (
	"fmt"
	"math"
	"strings"
)

// AxisKind says how one grid axis lands on a run description.
type AxisKind string

const (
	// AxisScale values are workload scales (fractions of the paper-scale
	// unit count); the axis must be named "scale" and a grid declares at
	// most one.
	AxisScale AxisKind = "scale"
	// AxisParam values are integer variant tunables; the axis name is the
	// parameter name and must be a default of every variant, so no program
	// style can silently ignore the axis.
	AxisParam AxisKind = "param"
	// AxisNet values are Tera MTA network-latency multipliers (0 = the
	// calibrated default); the axis must be named "net" and a grid declares
	// at most one. Sweeping it requires platform "tera".
	AxisNet AxisKind = "net-latency"
)

// Valid reports whether k is a declared axis kind.
func (k AxisKind) Valid() bool {
	return k == AxisScale || k == AxisParam || k == AxisNet
}

// Axis is one named dimension of a workload's scenario grid.
type Axis struct {
	// Name identifies the axis ("scale", "gate", "prune", "net") — the
	// parameter name for AxisParam axes, and the key of Point.
	Name string
	// Kind says how a value lands on a run description.
	Kind AxisKind
	// Unit is the human-readable unit for listings ("field units").
	Unit string
	// Values are the axis's declared discrete values. Sweeps and sub-grids
	// may only use declared values — the grid is the contract of which
	// problem shapes the conformance tests have covered.
	Values []float64
	// Default is the registered paper point; it must be a declared value.
	Default float64
}

// declared reports whether v is one of the axis's declared values.
func (a Axis) declared(v float64) bool {
	for _, dv := range a.Values {
		if dv == v {
			return true
		}
	}
	return false
}

// Grid is a workload's declared scenario-parameter space: the cross-product
// of its axes' values. The zero point of nothing — a grid needs at least
// one axis to register.
type Grid struct {
	Axes []Axis
}

// Point is one grid coordinate: axis name → declared value. Axes omitted
// from a Point resolve to their registered defaults in Apply.
type Point map[string]float64

// Binding is a Point resolved against the grid: the pieces a run.Spec is
// built from. Zero Scale means "the workload's default scale" (no scale
// axis declared); zero NetLatencyMult means "the platform's calibrated
// network".
type Binding struct {
	Scale          float64
	Params         Params
	NetLatencyMult float64
}

// Axis returns the named axis.
func (g *Grid) Axis(name string) (Axis, error) {
	for _, a := range g.Axes {
		if a.Name == name {
			return a, nil
		}
	}
	return Axis{}, fmt.Errorf("suite: grid has no axis %q", name)
}

// NumPoints returns the size of the grid's cross-product.
func (g *Grid) NumPoints() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Points enumerates every grid point in canonical order: row-major over the
// declared axes, first axis slowest, values in declared order. The order is
// part of the artifact contract — a sweep's records line up with Points.
func (g *Grid) Points() []Point {
	pts := []Point{{}}
	for _, a := range g.Axes {
		next := make([]Point, 0, len(pts)*len(a.Values))
		for _, p := range pts {
			for _, v := range a.Values {
				np := make(Point, len(p)+1)
				for k, pv := range p {
					np[k] = pv
				}
				np[a.Name] = v
				next = append(next, np)
			}
		}
		pts = next
	}
	return pts
}

// DefaultPoint returns the registered paper point: every axis at its
// default value.
func (g *Grid) DefaultPoint() Point {
	p := make(Point, len(g.Axes))
	for _, a := range g.Axes {
		p[a.Name] = a.Default
	}
	return p
}

// Sub returns the sub-grid with each named axis restricted to the listed
// values (axes not named keep their full value lists). Every restriction
// value must be declared on its axis — a sweep outside the declared grid is
// outside the conformance contract and is rejected, not silently run. The
// sub-grid keeps the declared value order, whatever order the restriction
// lists them in.
func (g *Grid) Sub(restrict map[string][]float64) (*Grid, error) {
	sub := &Grid{Axes: make([]Axis, len(g.Axes))}
	copy(sub.Axes, g.Axes)
	for name, vals := range restrict {
		if len(vals) == 0 {
			return nil, fmt.Errorf("suite: grid axis %q restricted to no values", name)
		}
		found := false
		for i, a := range sub.Axes {
			if a.Name != name {
				continue
			}
			found = true
			want := map[float64]bool{}
			for _, v := range vals {
				if !a.declared(v) {
					return nil, fmt.Errorf("suite: grid axis %q has no declared value %g (declared: %s)",
						name, v, formatValues(a.Values))
				}
				want[v] = true
			}
			kept := make([]float64, 0, len(want))
			for _, v := range a.Values {
				if want[v] {
					kept = append(kept, v)
				}
			}
			a.Values = kept
			if !a.declared(a.Default) {
				a.Default = kept[0]
			}
			sub.Axes[i] = a
		}
		if !found {
			return nil, fmt.Errorf("suite: grid has no axis %q", name)
		}
	}
	return sub, nil
}

// Apply resolves a Point against the grid: omitted axes take their
// defaults, unknown keys and undeclared values are errors.
func (g *Grid) Apply(p Point) (Binding, error) {
	for name := range p {
		if _, err := g.Axis(name); err != nil {
			return Binding{}, err
		}
	}
	b := Binding{}
	for _, a := range g.Axes {
		v := a.Default
		if pv, ok := p[a.Name]; ok {
			if !a.declared(pv) {
				return Binding{}, fmt.Errorf("suite: grid axis %q has no declared value %g (declared: %s)",
					a.Name, pv, formatValues(a.Values))
			}
			v = pv
		}
		switch a.Kind {
		case AxisScale:
			b.Scale = v
		case AxisParam:
			if b.Params == nil {
				b.Params = Params{}
			}
			b.Params[a.Name] = int(v)
		case AxisNet:
			b.NetLatencyMult = v
		}
	}
	return b, nil
}

// PointLabel renders a Point canonically: "axis=value" in declared axis
// order, joined with ",". Omitted axes render their defaults, so equal
// bindings label equally.
func (g *Grid) PointLabel(p Point) string {
	parts := make([]string, 0, len(g.Axes))
	for _, a := range g.Axes {
		v := a.Default
		if pv, ok := p[a.Name]; ok {
			v = pv
		}
		parts = append(parts, fmt.Sprintf("%s=%g", a.Name, v))
	}
	return strings.Join(parts, ",")
}

// formatValues renders a value list for listings and diagnostics.
func formatValues(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ",")
}

// checkGrid validates a workload's declared grid at registration time.
func checkGrid(w *Workload) error {
	g := w.Grid
	if len(g.Axes) == 0 {
		return fmt.Errorf("suite: workload %s declares an empty grid", w.Name)
	}
	seen := map[string]bool{}
	kinds := map[AxisKind]int{}
	for _, a := range g.Axes {
		switch {
		case a.Name == "":
			return fmt.Errorf("suite: workload %s declares an unnamed grid axis", w.Name)
		case strings.ContainsAny(a.Name, " =:;,"):
			return fmt.Errorf("suite: workload %s grid axis %q: names must be flag-syntax safe", w.Name, a.Name)
		case seen[a.Name]:
			return fmt.Errorf("suite: workload %s declares grid axis %q twice", w.Name, a.Name)
		case !a.Kind.Valid():
			return fmt.Errorf("suite: workload %s grid axis %q has invalid kind %q", w.Name, a.Name, a.Kind)
		case len(a.Values) == 0:
			return fmt.Errorf("suite: workload %s grid axis %q declares no values", w.Name, a.Name)
		case !a.declared(a.Default):
			return fmt.Errorf("suite: workload %s grid axis %q default %g is not a declared value",
				w.Name, a.Name, a.Default)
		}
		seen[a.Name] = true
		kinds[a.Kind]++
		vseen := map[float64]bool{}
		for _, v := range a.Values {
			if vseen[v] {
				return fmt.Errorf("suite: workload %s grid axis %q declares value %g twice", w.Name, a.Name, v)
			}
			vseen[v] = true
		}
		switch a.Kind {
		case AxisScale:
			if a.Name != "scale" {
				return fmt.Errorf("suite: workload %s scale axis must be named \"scale\", got %q", w.Name, a.Name)
			}
			for _, v := range a.Values {
				if v <= 0 {
					return fmt.Errorf("suite: workload %s grid axis scale value %g, need positive", w.Name, v)
				}
			}
		case AxisNet:
			if a.Name != "net" {
				return fmt.Errorf("suite: workload %s net axis must be named \"net\", got %q", w.Name, a.Name)
			}
			for _, v := range a.Values {
				if v < 0 {
					return fmt.Errorf("suite: workload %s grid axis net value %g, need ≥ 0", w.Name, v)
				}
			}
		case AxisParam:
			if a.Name == ValidateParam || a.Name == "scale" || a.Name == "net" {
				return fmt.Errorf("suite: workload %s param axis name %q is reserved", w.Name, a.Name)
			}
			for _, v := range a.Values {
				if v != math.Trunc(v) {
					return fmt.Errorf("suite: workload %s param axis %q value %g is not an integer", w.Name, a.Name, v)
				}
			}
			for _, vr := range w.Variants {
				if _, ok := vr.Defaults[a.Name]; !ok {
					return fmt.Errorf("suite: workload %s grid axis %q is not a default of variant %s — a style would silently ignore the axis",
						w.Name, a.Name, vr.Name)
				}
			}
		}
	}
	if kinds[AxisScale] > 1 || kinds[AxisNet] > 1 {
		return fmt.Errorf("suite: workload %s declares more than one scale or net grid axis", w.Name)
	}
	return nil
}
