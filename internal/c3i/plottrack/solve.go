package plottrack

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/threads"
)

// Costs is the charging calibration for the Plot-Track Assignment kernel:
// abstract operations and memory references per unit of auction work. The
// gating scan streams the track database; bid computation chases prices at
// assignment-scattered addresses (dependent loads — cheap under a cache,
// exposed latency on the cache-less MTA); commits touch the price and
// ownership words of contested tracks.
type Costs struct {
	OpsPerGate        int64 // per (plot, track) gate test: deltas, compare
	StreamRefsPerGate int   // streamed reads of the track state array
	OpsPerCand        int64 // per candidate scanned while bidding: add, compare
	DepRefsPerCand    int   // dependent loads: scattered price reads
	StreamRefsPerCand int   // streamed reads of the candidate list
	OpsPerCommit      int64 // per bid commit: price compare, owner swap
	DepRefsPerCommit  int   // scattered price/owner reads and writes
	SerialOpsPerPlot  int64 // serial driver work per queued plot
	BidBatch          int   // bids per charging batch (event-count control)
}

// DefaultCosts is the calibrated cost set (see Costs).
var DefaultCosts = Costs{
	OpsPerGate:        9,
	StreamRefsPerGate: 1,
	OpsPerCand:        22,
	DepRefsPerCand:    2,
	StreamRefsPerCand: 1,
	OpsPerCommit:      18,
	DepRefsPerCommit:  3,
	SerialOpsPerPlot:  3,
	BidBatch:          128,
}

// FineDefaultCosts is the calibration for the restructured fine-grained
// kernel: within one claimed batch of plots the price loads of different
// candidates are independent, so the Tera compiler's lookahead pipelines
// them — only the final compare chain stays dependent. Total references per
// candidate are unchanged; only the dependent share drops (the same
// restructuring as Terrain Masking's Feo kernel and Route Optimization's
// fine variant).
var FineDefaultCosts = Costs{
	OpsPerGate:        DefaultCosts.OpsPerGate,
	StreamRefsPerGate: DefaultCosts.StreamRefsPerGate,
	OpsPerCand:        DefaultCosts.OpsPerCand,
	DepRefsPerCand:    1,
	StreamRefsPerCand: DefaultCosts.StreamRefsPerCand + DefaultCosts.DepRefsPerCand - 1,
	OpsPerCommit:      DefaultCosts.OpsPerCommit,
	DepRefsPerCommit:  DefaultCosts.DepRefsPerCommit,
	SerialOpsPerPlot:  DefaultCosts.SerialOpsPerPlot,
	BidBatch:          DefaultCosts.BidBatch,
}

// PipelinedCosts is the perfect-lookahead ablation calibration: every
// dependent load re-priced as pipelined streaming traffic (same total
// references, no exposed-latency chains).
func PipelinedCosts() Costs {
	c := DefaultCosts
	c.StreamRefsPerCand += c.DepRefsPerCand
	c.DepRefsPerCand = 0
	return c
}

// DefaultEpsilon is the auction's ε in scaled cost units. Costs are scaled
// by #plots+1 internally, so ε = 1 satisfies n·ε < scale and the
// ε-complementary-slackness assignment is exactly optimal — the setting
// every variant must share for the golden checksums to agree. Larger values
// trade assignment quality for fewer bids. (No ε-scaling schedule is run:
// bids jump straight to the runner-up's reservation level, so price wars
// are short even at ε = 1 — and with more objects than bidders, carrying
// prices across ε phases would break the optimality bound anyway.)
const DefaultEpsilon = 1

const (
	// fineClaim is how many unassigned plots one fetch-and-add claims in the
	// fine-grained variant: one — the purest Tera style, a thread per plot,
	// so the crowd is limited by the frame, not by batching.
	fineClaim = 1
	// fineStripes is the number of full/empty track-ownership guard words
	// striped over the track database in the fine-grained variant.
	fineStripes = 64
)

// Layout holds the simulated-memory placement of a scenario's arrays.
type Layout struct {
	Scenario *Scenario
	Costs    Costs
	Tracks   *mem.Region // track states (input, streamed by the gate scan)
	Plots    *mem.Region // one frame of plot measurements (input)
	Cands    *mem.Region // gated candidate lists (built per frame, then streamed)
	Prices   *mem.Region // track + new-slot auction prices (scattered)
	Owners   *mem.Region // track ownership words (scattered, contested)
}

// framePlots returns the scenario's per-frame plot count (frames are
// generated at one size).
func (s *Scenario) framePlots() int {
	if len(s.Frames) == 0 {
		return 0
	}
	return len(s.Frames[0])
}

// NewLayout allocates the scenario's arrays in the machine's address space.
func NewLayout(t *machine.Thread, s *Scenario, c Costs) *Layout {
	if c == (Costs{}) {
		c = DefaultCosts
	}
	nt, np := uint64(len(s.Tracks)), uint64(s.framePlots())
	return &Layout{
		Scenario: s,
		Costs:    c,
		Tracks:   t.Alloc(s.Name+" tracks", nt*16),
		Plots:    t.Alloc(s.Name+" plots", (np+1)*16),
		Cands:    t.Alloc(s.Name+" cands", (np*8+1)*8),
		Prices:   t.Alloc(s.Name+" prices", (nt+np+1)*8),
		Owners:   t.Alloc(s.Name+" owners", (nt+1)*8),
	}
}

// scatterStride spaces scattered references one cache line apart: bids land
// on tracks all over the database, so consecutive references land on
// different lines.
const scatterStride = 64

// burstWrapped emits n references as one or more bursts that stay inside the
// region, wrapping to offset zero — the charge-preserving analogue of
// route's wrapped bursts.
func burstWrapped(t *machine.Thread, r *mem.Region, stride, elem uint64, n int, write, dep bool) {
	if n <= 0 {
		return
	}
	per := int((r.Size-elem)/stride) + 1
	for n > 0 {
		k := n
		if k > per {
			k = per
		}
		t.Burst(mem.Burst{Region: r, Stride: stride, Elem: elem, N: k, Write: write, Dep: dep})
		n -= k
	}
}

// chargeGate charges one batch of the gating scan: per-plot measurement
// reads, pair tests streaming the track database, and stores of the gated
// candidates found.
func (lay *Layout) chargeGate(t *machine.Thread, plots, pairs, gated int) {
	if pairs == 0 && gated == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(pairs)*c.OpsPerGate + int64(gated)*4)
	burstWrapped(t, lay.Plots, 16, 16, plots, false, false)
	burstWrapped(t, lay.Tracks, 16, 16, pairs*c.StreamRefsPerGate, false, false)
	burstWrapped(t, lay.Cands, 8, 8, gated, true, false)
}

// chargeBids charges one batch of bid computation: candidate-list streaming
// plus scattered price reads.
func (lay *Layout) chargeBids(t *machine.Thread, cands int) {
	if cands == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(cands) * c.OpsPerCand)
	burstWrapped(t, lay.Cands, 8, 8, cands*c.StreamRefsPerCand, false, false)
	burstWrapped(t, lay.Prices, scatterStride, 8, cands*c.DepRefsPerCand, false, true)
}

// chargeCommits charges one batch of bid commits: scattered price and
// ownership updates.
func (lay *Layout) chargeCommits(t *machine.Thread, n int) {
	if n == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(n) * c.OpsPerCommit)
	burstWrapped(t, lay.Prices, scatterStride, 8, n*c.DepRefsPerCommit, false, true)
	burstWrapped(t, lay.Prices, scatterStride, 8, n, true, false)
	burstWrapped(t, lay.Owners, scatterStride, 8, n, true, false)
}

// chargeStage charges staging n bids into a private buffer (the coarse
// variant's Program 2-style oversized per-worker arrays).
func (lay *Layout) chargeStage(t *machine.Thread, buf *mem.Region, n int) {
	if n <= 0 {
		return
	}
	t.Compute(int64(n) * 4)
	burstWrapped(t, buf, 24, 24, n, true, false)
}

// Output is a solver's result: the minimum assignment cost of every frame
// (in frame order — identical across all variants), the assignment
// breakdown, the bids computed (the parallel variants lose some races and
// re-bid), and the private bid-buffer storage the coarse style pays.
type Output struct {
	FrameCost      []int64 // per-frame minimum assignment cost, original units
	Assigned       int     // plot-track matches over all frames
	NewTracks      int     // plots that opened new tracks, over all frames
	Bids           int64   // bids computed (≥ plots; races add re-bids)
	BidBufferBytes uint64  // private bid-staging storage (coarse only)
}

// Params bundles the auction controls shared by every variant. Gate is the
// gating-window radius, Epsilon the ε in scaled cost units (DefaultEpsilon
// guarantees the exact optimum), Rounds a convergence guard: the parallel
// styles fail after that many bid/commit rounds per frame and the
// sequential style after Rounds×plots bids (0 = no limit).
type Params struct {
	Gate    int
	Epsilon int
	Rounds  int
}

// DefaultParams returns the auction controls every variant defaults to.
func DefaultParams() Params {
	return Params{Gate: DefaultGate, Epsilon: DefaultEpsilon, Rounds: 0}
}

func (p Params) validate() {
	if p.Gate < 1 {
		panic(fmt.Sprintf("plottrack: gate radius %d, need ≥ 1", p.Gate))
	}
	if p.Epsilon < 1 {
		panic(fmt.Sprintf("plottrack: auction epsilon %d, need ≥ 1", p.Epsilon))
	}
	if p.Rounds < 0 {
		panic(fmt.Sprintf("plottrack: %d auction rounds, need ≥ 0", p.Rounds))
	}
}

// overranGuard panics with a convergence-guard diagnostic.
func overranGuard(rounds int) {
	panic(fmt.Sprintf("plottrack: auction did not converge within the %d-round guard", rounds))
}

// auction is the shared working state of one frame's assignment auction.
// Costs are scaled by #plots+1 so that the ε = DefaultEpsilon auction
// terminates with the exact minimum-cost assignment; prices only ever rise,
// which is what makes the asynchronous variants sound.
type auction struct {
	scen     *Scenario
	frame    []Plot
	scaleF   int64
	newCost  int64     // scaled cost of a plot's private new-track slot
	cands    [][]int32 // per plot: gated track ids
	costs    [][]int64 // per plot: scaled pair costs, aligned with cands
	price    []int64   // per track: current auction price
	newPrice []int64   // per plot: price of its private new-track slot
	owner    []int32   // per track: owning plot, -1 = free
	assigned []int32   // per plot: track, newSlot for a new track, unassigned
}

const (
	newSlot    = int32(-1)
	unassigned = int32(-2)
)

func newAuction(s *Scenario, gate int, frame []Plot) *auction {
	a := &auction{
		scen:     s,
		frame:    frame,
		scaleF:   int64(len(frame)) + 1,
		cands:    make([][]int32, len(frame)),
		costs:    make([][]int64, len(frame)),
		price:    make([]int64, len(s.Tracks)),
		newPrice: make([]int64, len(frame)),
		owner:    make([]int32, len(s.Tracks)),
		assigned: make([]int32, len(frame)),
	}
	a.newCost = NewTrackCost(gate) * a.scaleF
	for j := range a.owner {
		a.owner[j] = -1
	}
	for i := range a.assigned {
		a.assigned[i] = unassigned
	}
	return a
}

// gatePlot builds plot i's gated candidate list, returning the pairs tested
// and the candidates found (for charging).
func (a *auction) gatePlot(i, gate int) (pairs, gated int) {
	p := a.frame[i]
	for j, tr := range a.scen.Tracks {
		if c, ok := a.scen.PairCost(p, tr, gate); ok {
			a.cands[i] = append(a.cands[i], int32(j))
			a.costs[i] = append(a.costs[i], c*a.scaleF)
			gated++
		}
	}
	return len(a.scen.Tracks), gated
}

// bid computes plot i's bid under the current prices: the chosen option
// (candidate index, or -1 for the plot's private new-track slot), the price
// the option will be raised to, and the options scanned (for charging). The
// bid price makes the chosen option worse than the runner-up by exactly ε —
// ε-complementary slackness — and since prices only rise, a bid committed
// against newer prices still satisfies it.
func (a *auction) bid(i int, eps int64) (choice int, bidPrice int64, scanned int) {
	const inf = int64(1) << 62
	best, second := inf, inf
	bestK := -1
	for k, tr := range a.cands[i] {
		v := a.costs[i][k] + a.price[tr]
		if v < best {
			second = best
			best, bestK = v, k
		} else if v < second {
			second = v
		}
	}
	if v := a.newCost + a.newPrice[i]; v < best {
		second = best
		best, bestK = v, -1
	} else if v < second {
		second = v
	}
	if second == inf {
		second = best // single-option plot: raise by ε alone
	}
	var cost int64
	if bestK < 0 {
		cost = a.newCost
	} else {
		cost = a.costs[i][bestK]
	}
	return bestK, best - cost + (second - best) + eps, len(a.cands[i]) + 1
}

// finish sums the frame's final assignment into out; the scaled total
// divides back exactly (every scaled cost is an original cost times scaleF).
func (a *auction) finish(out *Output) {
	var scaled int64
	for i, asg := range a.assigned {
		switch {
		case asg == newSlot:
			scaled += a.newCost
			out.NewTracks++
		case asg >= 0:
			for k, tr := range a.cands[i] {
				if tr == asg {
					scaled += a.costs[i][k]
					break
				}
			}
			out.Assigned++
		default:
			panic(fmt.Sprintf("plottrack: plot %d finished unassigned", i))
		}
	}
	out.FrameCost = append(out.FrameCost, scaled/a.scaleF)
}

// Sequential is the reference program: the Gauss-Seidel auction — greedy
// assignment with repair, one bidding plot at a time, frame after frame,
// entirely on the calling thread.
func Sequential(t *machine.Thread, s *Scenario) *Output {
	return SequentialWithCosts(t, s, DefaultParams(), DefaultCosts)
}

// SequentialWithCosts is Sequential with explicit auction controls and cost
// calibration.
func SequentialWithCosts(t *machine.Thread, s *Scenario, p Params, c Costs) *Output {
	p.validate()
	lay := NewLayout(t, s, c)
	out := &Output{}
	eps := int64(p.Epsilon)

	for _, frame := range s.Frames {
		a := newAuction(s, p.Gate, frame)
		plots, pairs, gated := 0, 0, 0
		for i := range frame {
			dp, dg := a.gatePlot(i, p.Gate)
			plots, pairs, gated = plots+1, pairs+dp, gated+dg
			if (i+1)%lay.Costs.BidBatch == 0 {
				lay.chargeGate(t, plots, pairs, gated)
				plots, pairs, gated = 0, 0, 0
			}
		}
		lay.chargeGate(t, plots, pairs, gated)

		queue := make([]int32, 0, len(frame))
		for i := range frame {
			queue = append(queue, int32(i))
		}
		bids, cands := 0, 0
		for head := 0; head < len(queue); head++ {
			if p.Rounds > 0 && head >= p.Rounds*len(frame) {
				overranGuard(p.Rounds)
			}
			i := int(queue[head])
			choice, bidPrice, scanned := a.bid(i, eps)
			bids, cands = bids+1, cands+scanned
			if choice < 0 {
				a.newPrice[i] = bidPrice
				a.assigned[i] = newSlot
			} else {
				tr := a.cands[i][choice]
				if prev := a.owner[tr]; prev >= 0 {
					a.assigned[prev] = unassigned
					queue = append(queue, prev)
				}
				a.owner[tr] = int32(i)
				a.assigned[i] = tr
				a.price[tr] = bidPrice
			}
			if bids >= lay.Costs.BidBatch {
				t.Compute(int64(bids) * lay.Costs.SerialOpsPerPlot)
				lay.chargeBids(t, cands)
				lay.chargeCommits(t, bids)
				out.Bids += int64(bids)
				bids, cands = 0, 0
			}
		}
		t.Compute(int64(bids) * lay.Costs.SerialOpsPerPlot)
		lay.chargeBids(t, cands)
		lay.chargeCommits(t, bids)
		out.Bids += int64(bids)
		a.finish(out)
	}
	return out
}

// Coarse is the manual parallelization in the style of Programs 2 and 4: the
// Jacobi auction. A persistent crew of worker threads — created once per
// run, like the paper's coarse-grained programs — partitions the unassigned
// plots each round, stages its bids in oversized private buffers (the
// storage drawback: every worker is sized for a worst-case frame), then
// commits them into the shared price and ownership arrays under per-track
// merge locks. Barriers separate the rounds, so the crew bids against
// stable prices; ties resolve to the lower plot id, which makes the run
// deterministic.
func Coarse(t *machine.Thread, s *Scenario, workers int) *Output {
	return CoarseWithCosts(t, s, workers, DefaultParams(), DefaultCosts)
}

// stagedBid is one private-buffer entry: plot i bids bid on candidate k.
type stagedBid struct {
	i   int32
	k   int32
	bid int64
}

// CoarseWithCosts is Coarse with explicit auction controls and calibration.
func CoarseWithCosts(t *machine.Thread, s *Scenario, workers int, p Params, c Costs) *Output {
	p.validate()
	if workers < 1 {
		panic("plottrack: Coarse needs ≥ 1 worker")
	}
	lay := NewLayout(t, s, c)
	out := &Output{}

	priv := make([]*mem.Region, workers)
	for w := range priv {
		priv[w] = t.Alloc(fmt.Sprintf("%s bids[%d]", s.Name, w), uint64(s.framePlots())*24)
		out.BidBufferBytes += priv[w].Size
	}
	locks := make([]*machine.Lock, len(s.Tracks))
	for j := range locks {
		locks[j] = t.NewLock(fmt.Sprintf("%s track[%d]", s.Name, j))
	}

	// Round hand-off state: the parent publishes the frame's auction and the
	// work list, both sides meet at the barrier, workers bid and commit, and
	// everyone meets again.
	var (
		a      *auction
		cur    []int32
		gating bool
		done   bool
	)
	eps := int64(p.Epsilon)
	bar := t.NewBarrier(s.Name+" round", workers+1)
	staged := make([][]stagedBid, workers)
	ws := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		ws[w] = t.Go(fmt.Sprintf("%s worker[%d]", s.Name, w), func(wt *machine.Thread) {
			for {
				bar.Arrive(wt)
				if done {
					return
				}
				lo, hi := threads.ChunkBounds(len(cur), workers, w)
				if lo < hi {
					if gating {
						lay.gateChunk(wt, a, p.Gate, cur[lo:hi])
					} else {
						out.Bids += lay.coarseChunk(wt, a, eps, cur[lo:hi], priv[w], &staged[w], locks)
					}
				}
				bar.Arrive(wt)
			}
		})
	}
	round := func() {
		bar.Arrive(t) // release the crew on this work list
		bar.Arrive(t) // wait for the commits to complete
	}

	for _, frame := range s.Frames {
		a = newAuction(s, p.Gate, frame)
		cur = cur[:0]
		for i := range frame {
			cur = append(cur, int32(i))
		}
		gating = true
		round()
		gating = false
		for nRounds := 0; len(cur) > 0; nRounds++ {
			if p.Rounds > 0 && nRounds >= p.Rounds {
				overranGuard(p.Rounds)
			}
			// Serial driver: work-list bookkeeping on the parent thread.
			t.Compute(int64(len(cur))*c.SerialOpsPerPlot + 40)
			round()
			// Rebuild the work list: plots displaced during the commits and
			// plots whose bids lost their race, in plot order (deterministic).
			cur = cur[:0]
			for i, asg := range a.assigned {
				if asg == unassigned {
					cur = append(cur, int32(i))
				}
			}
		}
		a.finish(out)
	}
	done = true
	bar.Arrive(t)
	t.JoinAll(ws)
	return out
}

// gateChunk builds the candidate lists for one chunk of plots, charging the
// streamed gating scan.
func (lay *Layout) gateChunk(wt *machine.Thread, a *auction, gate int, chunk []int32) {
	pairs, gated := 0, 0
	for _, i := range chunk {
		dp, dg := a.gatePlot(int(i), gate)
		pairs, gated = pairs+dp, gated+dg
	}
	lay.chargeGate(wt, len(chunk), pairs, gated)
}

// coarseChunk runs one worker's bid/commit round: bids for its chunk of
// unassigned plots staged into the private buffer, then committed under the
// per-track locks. A commit applies if it beats the current price (ties to
// the lower plot id); a losing plot simply stays unassigned for the next
// round.
func (lay *Layout) coarseChunk(wt *machine.Thread, a *auction, eps int64, chunk []int32,
	buf *mem.Region, stage *[]stagedBid, locks []*machine.Lock) int64 {

	bids := (*stage)[:0]
	cands := 0
	for _, i := range chunk {
		choice, bidPrice, scanned := a.bid(int(i), eps)
		cands += scanned
		bids = append(bids, stagedBid{i: i, k: int32(choice), bid: bidPrice})
	}
	*stage = bids
	lay.chargeBids(wt, cands)
	lay.chargeStage(wt, buf, len(bids))

	for _, b := range bids {
		i := int(b.i)
		if b.k < 0 {
			a.newPrice[i] = b.bid
			a.assigned[i] = newSlot
			continue
		}
		tr := a.cands[i][b.k]
		l := locks[tr]
		l.Lock(wt)
		prev := a.owner[tr]
		if b.bid > a.price[tr] || (b.bid == a.price[tr] && prev >= 0 && b.i < prev) {
			if prev >= 0 {
				a.assigned[prev] = unassigned
			}
			a.owner[tr] = b.i
			a.assigned[i] = tr
			a.price[tr] = b.bid
		}
		l.Unlock(wt)
	}
	lay.chargeCommits(wt, len(bids))
	return int64(len(bids))
}

// Fine is the Tera style: the asynchronous auction. Each round spawns a
// crowd of short-lived threads; each claims a few unassigned plots with an
// atomic fetch-and-add, computes the bid against the live prices, and
// commits it immediately through the track's full/empty ownership cell
// (striped over the track database). Displaced and out-bid plots re-enter
// through another fetch-and-add on the work-list tail. No private buffers,
// nondeterministic bid order — the prices only rise, so the auction still
// converges to the same exact optimum.
func Fine(t *machine.Thread, s *Scenario, threadsN int) *Output {
	return FineWithCosts(t, s, threadsN, DefaultParams(), FineDefaultCosts)
}

// FineWithCosts is Fine with explicit auction controls and calibration.
func FineWithCosts(t *machine.Thread, s *Scenario, threadsN int, p Params, c Costs) *Output {
	p.validate()
	if threadsN < 1 {
		panic("plottrack: Fine needs ≥ 1 thread")
	}
	lay := NewLayout(t, s, c)
	out := &Output{}

	// Full/empty ownership guard words striped over the track database,
	// created full: a committer empties the word (readFE), applies its bid,
	// and refills it (writeEF).
	stripes := make([]*machine.SyncVar, fineStripes)
	for i := range stripes {
		stripes[i] = t.NewSyncVar(fmt.Sprintf("%s fe[%d]", s.Name, i))
		stripes[i].Write(t, 0)
	}
	eps := int64(p.Epsilon)

	for _, frame := range s.Frames {
		a := newAuction(s, p.Gate, frame)
		all := make([]int32, len(frame))
		for i := range all {
			all[i] = int32(i)
		}
		// Gating: the same thread crowd, claiming plot batches by
		// fetch-and-add.
		lay.fineRound(t, threadsN, all, func(ct *machine.Thread, plots []int32) {
			lay.gateChunk(ct, a, p.Gate, plots)
		})

		cur := all
		for nRounds := 0; len(cur) > 0; nRounds++ {
			if p.Rounds > 0 && nRounds >= p.Rounds {
				overranGuard(p.Rounds)
			}
			t.Compute(int64(len(cur))*c.SerialOpsPerPlot + 40)
			var next []int32
			tail := t.NewCounter(s.Name+" tail", 0)
			lay.fineRound(t, threadsN, cur, func(ct *machine.Thread, plots []int32) {
				out.Bids += lay.fineSpan(ct, a, eps, plots, stripes, tail, &next)
			})
			cur = next
		}
		a.finish(out)
	}
	return out
}

// fineRound processes one work list with a crowd of claim threads: each
// repeatedly claims fineClaim plots by fetch-and-add and hands them to body.
func (lay *Layout) fineRound(t *machine.Thread, threadsN int, cur []int32,
	body func(ct *machine.Thread, plots []int32)) {

	nth := (len(cur) + fineClaim - 1) / fineClaim
	if nth > threadsN {
		nth = threadsN
	}
	if nth <= 1 {
		body(t, cur)
		return
	}
	claim := t.NewCounter(lay.Scenario.Name+" claim", 0)
	ws := make([]*machine.Thread, nth)
	for i := 0; i < nth; i++ {
		ws[i] = t.Go(fmt.Sprintf("%s bid[%d]", lay.Scenario.Name, i), func(ct *machine.Thread) {
			for {
				k := int(claim.Add(ct, fineClaim))
				if k >= len(cur) {
					return
				}
				hi := k + fineClaim
				if hi > len(cur) {
					hi = len(cur)
				}
				body(ct, cur[k:hi])
			}
		})
	}
	t.JoinAll(ws)
}

// fineSpan bids for one claimed batch of plots, committing each bid through
// its track's full/empty guard word. Losing bidders and displaced plots are
// appended to the next work list under a slot reserved by fetch-and-add.
func (lay *Layout) fineSpan(ct *machine.Thread, a *auction, eps int64, plots []int32,
	stripes []*machine.SyncVar, tail *machine.Counter, next *[]int32) (bids int64) {

	cands, commits := 0, 0
	requeue := func(i int32) {
		tail.Add(ct, 1) // reserve a work-list slot: int_fetch_add on the tail
		*next = append(*next, i)
	}
	for _, pi := range plots {
		i := int(pi)
		choice, bidPrice, scanned := a.bid(i, eps)
		bids++
		cands += scanned
		if choice < 0 {
			a.newPrice[i] = bidPrice
			a.assigned[i] = newSlot
			commits++
			continue
		}
		tr := a.cands[i][choice]
		sv := stripes[int(tr)%len(stripes)]
		sv.ReadFE(ct)
		if bidPrice > a.price[tr] {
			if prev := a.owner[tr]; prev >= 0 {
				a.assigned[prev] = unassigned
				requeue(prev)
			}
			a.owner[tr] = pi
			a.assigned[i] = tr
			a.price[tr] = bidPrice
			commits++
		} else {
			// Out-bid between reading the prices and committing: re-enter
			// with the fresher prices.
			requeue(pi)
		}
		sv.WriteEF(ct, 0)
	}
	lay.chargeBids(ct, cands)
	lay.chargeCommits(ct, commits)
	return bids
}

// CoarseBidBytesFullScale returns the private bid-staging storage the coarse
// crew needs for the given worker count at the full C3I surveillance
// picture (on the order of a million plots per correlation frame across all
// sensors, 24-byte staged bids, every worker sized for the worst-case
// frame). Like Terrain Masking's per-worker temp arrays, this is what makes
// the coarse style impractical at the hundreds of streams the MTA needs.
func CoarseBidBytesFullScale(workers int) uint64 {
	const fullFramePlots = 1 << 20
	return uint64(workers) * fullFramePlots * 24
}
