// Package plottrack implements the C3I Parallel Benchmark Suite Plot-Track
// Assignment problem: correlating one frame of radar plots (sensor returns)
// with the existing track database. Each plot must be assigned to at most
// one track and each track can absorb at most one plot; plots that match no
// track open a new one. Candidate pairs are restricted by a gating window
// around each track's predicted position, and each gated pair carries an
// integer association cost (position residual plus a track-quality penalty).
// The output is the minimum-cost assignment — weighted bipartite matching.
//
// Where Threat Analysis streams independent work and Terrain Masking sweeps
// dense arrays, this is the suite's synchronization-heavy workload: every
// contested track is a word of shared state that multiple bidders race to
// own, and the natural parallel algorithm (the auction algorithm) is built
// from exactly the primitives the Tera MTA makes cheap — fetch-and-add work
// claims and full/empty ownership words.
//
// The package provides the same three program styles as the other three
// benchmark problems:
//
//   - Sequential: the Gauss-Seidel auction — greedy assignment with repair:
//     one unassigned plot at a time bids for its cheapest gated track,
//     displacing the previous owner, until no plot is unassigned.
//   - Coarse: a persistent worker crew partitions the unassigned plots,
//     stages bids in oversized private buffers (the memory-overhead
//     drawback), and commits them under per-track merge locks in barrier-
//     separated bid/commit rounds (the Jacobi auction).
//   - Fine: the Tera style — threads claim unassigned plots with atomic
//     fetch-and-add and commit each bid immediately through the track's
//     full/empty ownership cell. Nondeterministic work order; viable only
//     where thread creation and per-word synchronization are nearly free.
//
// All variants run the auction to the same precision (ε = 1 on costs scaled
// by #plots+1, which makes the ε-complementary-slackness assignment exactly
// optimal), so every style converges to the identical minimum assignment
// cost and outputs validate with one checksum — package data's golden
// records.
package plottrack

import (
	"fmt"
	"math"
	"math/rand"
)

// Track is one existing track state: the predicted position for this frame
// and the track quality (0 = tentative, MaxQuality = firmly established).
// Higher-quality tracks are preferred on near-equal residuals.
type Track struct {
	ID      int
	X, Y    int32
	Quality int32
}

// Plot is one radar return: a measured position in field coordinates.
type Plot struct {
	ID   int
	X, Y int32
}

// Scenario is one benchmark input: a sequence of radar frames (one per
// scan) correlated against the same track database, all in a Field×Field
// coordinate space. Frames are independent assignment problems — the
// benchmark's outer sequential loop, like Route Optimization's route
// requests.
type Scenario struct {
	Name   string
	Field  int32
	Tracks []Track
	Frames [][]Plot
}

// Scoring constants: quality 0..MaxQuality, each quality step worth
// QualityWeight cost units against the squared position residual.
const (
	MaxQuality    = 15
	QualityWeight = 4
)

// Default scenario geometry. The paper's evaluation did not cover this
// problem; the sizes follow the suite's pattern of five scenarios per
// problem with hundreds of workload units each. The track database and the
// field stay at full size at any workload scale (preserving the gating
// scan's streaming length and the contested-formation structure); scale
// varies the sensor load — the plots per frame.
const (
	DefaultField  = 1024
	DefaultPlots  = 500 // plots per frame at scale 1
	DefaultTracks = 450
	DefaultFrames = 12 // radar scans per scenario
	DefaultGate   = 24 // gating window radius, field units
	detectSpread  = 10 // detection noise, well inside the default gate
)

// PairCost returns the association cost of (plot, track) under a gating
// radius, and whether the pair is gated at all. The cost is the squared
// position residual plus a penalty for tentative (low-quality) tracks, so
// ties between residuals break toward established tracks.
func (s *Scenario) PairCost(p Plot, tr Track, gate int) (int64, bool) {
	dx, dy := int64(p.X-tr.X), int64(p.Y-tr.Y)
	d2 := dx*dx + dy*dy
	g := int64(gate)
	if d2 > g*g {
		return 0, false
	}
	return d2 + int64(MaxQuality-tr.Quality)*QualityWeight, true
}

// NewTrackCost returns the cost of leaving a plot unmatched (opening a new
// track) under a gating radius: strictly above the worst gated pair cost, so
// a plot never prefers a new track while a gated candidate is free.
func NewTrackCost(gate int) int64 {
	return int64(gate)*int64(gate) + MaxQuality*QualityWeight + 1
}

// TotalWork returns the benchmark work metric: the gating scan is
// plots × tracks pair tests per frame.
func (s *Scenario) TotalWork() int64 {
	var w int64
	for _, f := range s.Frames {
		w += int64(len(f)) * int64(len(s.Tracks))
	}
	return w
}

// GenParams controls synthetic scenario generation. NumPlots is the plot
// count per frame; Frames defaults to 1.
type GenParams struct {
	Field     int32
	NumTracks int
	NumPlots  int
	Frames    int
	Seed      int64
}

// GenScenario builds a deterministic synthetic frame. Tracks are placed
// partly in tight formations (overlapping gates — the contested assignments
// that make the problem synchronization-heavy) and partly in the open; most
// tracks are detected (a plot near the predicted position), the remaining
// plots are clutter anywhere in the field.
func GenScenario(name string, p GenParams) *Scenario {
	if p.Field == 0 {
		p.Field = DefaultField
	}
	if p.NumTracks < 1 || p.NumPlots < 1 {
		panic(fmt.Sprintf("plottrack: scenario needs tracks and plots, got %d/%d", p.NumTracks, p.NumPlots))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Scenario{Name: name, Field: p.Field}

	pos := func() (int32, int32) {
		return rng.Int31n(p.Field), rng.Int31n(p.Field)
	}
	clamp := func(v int32) int32 {
		if v < 0 {
			return 0
		}
		if v >= p.Field {
			return p.Field - 1
		}
		return v
	}

	// Tracks: roughly 60% in formations of 3–6 whose gates overlap, the rest
	// scattered. Formation members sit within two default gates of a center.
	for len(s.Tracks) < p.NumTracks {
		if rng.Float64() < 0.6 && p.NumTracks-len(s.Tracks) >= 3 {
			cx, cy := pos()
			n := 3 + rng.Intn(4)
			if rem := p.NumTracks - len(s.Tracks); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				s.Tracks = append(s.Tracks, Track{
					ID:      len(s.Tracks),
					X:       clamp(cx + rng.Int31n(4*DefaultGate) - 2*DefaultGate),
					Y:       clamp(cy + rng.Int31n(4*DefaultGate) - 2*DefaultGate),
					Quality: rng.Int31n(MaxQuality + 1),
				})
			}
		} else {
			x, y := pos()
			s.Tracks = append(s.Tracks, Track{
				ID: len(s.Tracks), X: x, Y: y, Quality: rng.Int31n(MaxQuality + 1),
			})
		}
	}

	// Frames: per scan, detections for a prefix of the tracks (measured
	// position = predicted position + noise inside the default gate) and
	// clutter over the rest of the field, shuffled so detections and clutter
	// interleave like a real frame.
	frames := p.Frames
	if frames == 0 {
		frames = 1
	}
	nDet := int(math.Round(0.8 * float64(p.NumPlots)))
	if nDet > p.NumTracks {
		nDet = p.NumTracks
	}
	for f := 0; f < frames; f++ {
		frame := make([]Plot, 0, p.NumPlots)
		for i := 0; i < p.NumPlots; i++ {
			var pl Plot
			if i < nDet {
				tr := s.Tracks[i]
				pl = Plot{
					X: clamp(tr.X + rng.Int31n(2*detectSpread+1) - detectSpread),
					Y: clamp(tr.Y + rng.Int31n(2*detectSpread+1) - detectSpread),
				}
			} else {
				x, y := pos()
				pl = Plot{X: x, Y: y}
			}
			frame = append(frame, pl)
		}
		rng.Shuffle(len(frame), func(i, j int) {
			frame[i], frame[j] = frame[j], frame[i]
		})
		for i := range frame {
			frame[i].ID = i
		}
		s.Frames = append(s.Frames, frame)
	}
	return s
}

// SuiteScale maps a workload scale factor onto generation parameters: the
// field, the track database and the frame count stay at full size (so the
// gating scan keeps its streaming length and the per-frame structure its
// contested formations) while the plots per frame — the sensor load —
// shrink. Work is linear in the plot count, so normalization by plots/frame
// stays exact.
func SuiteScale(scale float64) GenParams {
	n := int(math.Round(DefaultPlots * scale))
	if n < 1 {
		n = 1
	}
	return GenParams{
		Field:     DefaultField,
		NumTracks: DefaultTracks,
		NumPlots:  n,
		Frames:    DefaultFrames,
	}
}

// Suite returns the benchmark's five input scenarios at the given scale; the
// benchmark time is the total over all five, matching how the paper's tables
// total the five scenarios of each problem.
func Suite(scale float64) []*Scenario {
	out := make([]*Scenario, 5)
	for i := range out {
		p := SuiteScale(scale)
		p.Seed = int64(401 + i)
		out[i] = GenScenario(fmt.Sprintf("scenario-%d", i+1), p)
	}
	return out
}
