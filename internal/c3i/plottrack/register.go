package plottrack

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// ScenarioName implements suite.Scenario.
func (s *Scenario) ScenarioName() string { return s.Name }

// Units implements suite.Scenario: the scaled unit is the plots per frame
// (the field, the track database and the frame count stay at full size at
// any scale).
func (s *Scenario) Units() int { return s.framePlots() }

// Warm implements suite.Scenario; the scenario holds no lazy caches.
func (s *Scenario) Warm() {}

// Checksum reduces a solver's result to a stable FNV-1a checksum over the
// quantities every variant provably shares: the problem shape and each
// frame's minimum assignment cost, in frame order. (The assignment itself
// may differ between equal-cost optima under nondeterministic bid orders;
// the optimal cost cannot.)
func Checksum(frameCosts []int64, plots, tracks int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(plots))
	put(int64(tracks))
	put(int64(len(frameCosts)))
	for _, c := range frameCosts {
		put(c)
	}
	return h.Sum64()
}

// paramsFrom maps registry params onto the shared auction controls.
func paramsFrom(p suite.Params) Params {
	return Params{Gate: p["gate"], Epsilon: p["epsilon"], Rounds: p["rounds"]}
}

func output(out *Output, s *Scenario) suite.Output {
	return suite.Output{
		Checksum:      Checksum(out.FrameCost, s.framePlots(), len(s.Tracks)),
		OverheadBytes: out.BidBufferBytes,
	}
}

// auctionDefaults are the tunables every variant shares: the gating-window
// radius, the auction ε (in scaled cost units; the default guarantees the
// exact optimum — see DefaultEpsilon) and the convergence-guard round limit
// (0 = none).
var auctionDefaults = suite.Params{"gate": DefaultGate, "epsilon": DefaultEpsilon, "rounds": 0}

func init() {
	suite.MustRegister(&suite.Workload{
		Name:             "plot-track-assignment",
		Key:              "pt",
		FileTag:          "plot",
		Title:            "Plot-Track Assignment",
		Order:            4,
		PaperUnits:       DefaultPlots,
		UnitName:         "plots/frame",
		DefaultScale:     0.25,
		DataScale:        0.1,
		SmallScale:       0.04,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential", "coarse", "fine"},
		Generate: func(scale float64) []suite.Scenario {
			return suite.Scenarios(Suite(scale))
		},
		// A modest declared grid: sensor load × gating radius. Gate values
		// stay at or above the generation default, so every plot keeps its
		// gated candidates and the auction stays well-conditioned at every
		// point. ("epsilon" is deliberately not an axis: values above
		// DefaultEpsilon trade exactness for speed, and the styles only
		// provably agree at the exact optimum.)
		Grid: &suite.Grid{Axes: []suite.Axis{
			{Name: "scale", Kind: suite.AxisScale, Unit: "fraction of paper scale",
				Values: []float64{0.04, 0.1, 0.25}, Default: 0.25},
			{Name: "gate", Kind: suite.AxisParam, Unit: "field units",
				Values: []float64{DefaultGate, 2 * DefaultGate}, Default: DefaultGate},
		}},
		Variants: []*suite.Variant{
			{
				// The Gauss-Seidel auction: greedy with repair — the
				// reference.
				Name: "sequential", Style: suite.Sequential,
				Defaults: auctionDefaults.Merged(suite.Params{"pipelined": 0}),
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					c := DefaultCosts
					if p["pipelined"] != 0 {
						c = PipelinedCosts()
					}
					s := sc.(*Scenario)
					return output(SequentialWithCosts(t, s, paramsFrom(p), c), s)
				},
			},
			{
				// The Jacobi auction: a persistent worker crew, private bid
				// buffers, per-track merge locks, bid/commit rounds.
				Name: "coarse", Style: suite.Coarse,
				Defaults: auctionDefaults.Merged(suite.Params{"workers": 4}),
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					s := sc.(*Scenario)
					return output(CoarseWithCosts(t, s, p["workers"], paramsFrom(p), DefaultCosts), s)
				},
				OverheadFullScale: CoarseBidBytesFullScale,
			},
			{
				// The Tera style: fetch-and-add plot claims, bids committed
				// through full/empty track-ownership cells.
				Name: "fine", Style: suite.Fine,
				Defaults: auctionDefaults.Merged(suite.Params{"threads": 64}),
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					s := sc.(*Scenario)
					return output(FineWithCosts(t, s, p["threads"], paramsFrom(p), FineDefaultCosts), s)
				},
			},
		},
	})
}
