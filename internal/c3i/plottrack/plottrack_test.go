package plottrack

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// testParams is a small but contested scenario geometry for solver tests:
// enough plots per formation that gates overlap and bids race.
var testParams = GenParams{Field: 256, NumTracks: 18, NumPlots: 20, Frames: 2, Seed: 7}

// bruteForce is an independent reference: exhaustive search over all
// feasible assignments of one frame's plots to gated tracks (or new
// tracks), returning the minimum total cost. Exponential — keep the frame
// tiny.
func bruteForce(s *Scenario, frame []Plot, gate int) int64 {
	type cand struct {
		track int
		cost  int64
	}
	cands := make([][]cand, len(frame))
	for i, p := range frame {
		for j, tr := range s.Tracks {
			if c, ok := s.PairCost(p, tr, gate); ok {
				cands[i] = append(cands[i], cand{j, c})
			}
		}
	}
	used := make([]bool, len(s.Tracks))
	var rec func(i int) int64
	rec = func(i int) int64 {
		if i == len(frame) {
			return 0
		}
		best := NewTrackCost(gate) + rec(i+1)
		for _, c := range cands[i] {
			if used[c.track] {
				continue
			}
			used[c.track] = true
			if v := c.cost + rec(i+1); v < best {
				best = v
			}
			used[c.track] = false
		}
		return best
	}
	return rec(0)
}

func runOn(t *testing.T, e *machine.Engine, solve func(*machine.Thread) *Output) *Output {
	t.Helper()
	var out *Output
	if _, err := e.Run("test", func(th *machine.Thread) { out = solve(th) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func totalCost(out *Output) int64 {
	var sum int64
	for _, c := range out.FrameCost {
		sum += c
	}
	return sum
}

func TestGenScenarioDeterministic(t *testing.T) {
	a := GenScenario("d", testParams)
	b := GenScenario("d", testParams)
	if len(a.Tracks) != len(b.Tracks) || len(a.Frames) != len(b.Frames) {
		t.Fatal("sizes differ between identical generations")
	}
	for i := range a.Tracks {
		if a.Tracks[i] != b.Tracks[i] {
			t.Fatalf("track %d differs", i)
		}
	}
	for f := range a.Frames {
		for i := range a.Frames[f] {
			if a.Frames[f][i] != b.Frames[f][i] {
				t.Fatalf("frame %d plot %d differs", f, i)
			}
		}
	}
	// The frame must actually be contested: some track gated by >1 plot.
	counts := make([]int, len(a.Tracks))
	contested := false
	for _, p := range a.Frames[0] {
		for j, tr := range a.Tracks {
			if _, ok := a.PairCost(p, tr, DefaultGate); ok {
				counts[j]++
				if counts[j] > 1 {
					contested = true
				}
			}
		}
	}
	if !contested {
		t.Error("no contested track — the scenario exercises no synchronization")
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	p := GenParams{Field: 128, NumTracks: 7, NumPlots: 8, Frames: 2, Seed: 11}
	s := GenScenario("bf", p)
	out := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	if len(out.FrameCost) != len(s.Frames) {
		t.Fatalf("%d frame costs for %d frames", len(out.FrameCost), len(s.Frames))
	}
	for f, frame := range s.Frames {
		if want := bruteForce(s, frame, DefaultGate); out.FrameCost[f] != want {
			t.Errorf("frame %d: auction cost %d, brute force %d", f, out.FrameCost[f], want)
		}
	}
	if out.Assigned+out.NewTracks != len(s.Frames)*len(s.Frames[0]) {
		t.Errorf("assignment covers %d of %d plots",
			out.Assigned+out.NewTracks, len(s.Frames)*len(s.Frames[0]))
	}
	if out.Assigned == 0 {
		t.Error("no plot matched any track — gating broken")
	}
}

func TestVariantsProduceIdenticalCosts(t *testing.T) {
	s := GenScenario("agree", testParams)
	seq := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	if totalCost(seq) <= 0 {
		t.Fatalf("sequential cost %d out of range", totalCost(seq))
	}
	variants := []struct {
		name  string
		build func() *machine.Engine
		solve func(*machine.Thread) *Output
	}{
		{"coarse/ppro", func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 4) }},
		{"coarse/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 16) }},
		{"fine/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 32) }},
		{"fine/tera2", func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 64) }},
	}
	for _, v := range variants {
		out := runOn(t, v.build(), v.solve)
		if len(out.FrameCost) != len(seq.FrameCost) {
			t.Errorf("%s: %d frame costs, want %d", v.name, len(out.FrameCost), len(seq.FrameCost))
			continue
		}
		for f := range seq.FrameCost {
			if out.FrameCost[f] != seq.FrameCost[f] {
				t.Errorf("%s: frame %d cost %d, sequential %d",
					v.name, f, out.FrameCost[f], seq.FrameCost[f])
			}
		}
		if out.Bids < int64(len(s.Frames)*len(s.Frames[0])) {
			t.Errorf("%s: %d bids for %d plots — every plot must bid at least once",
				v.name, out.Bids, len(s.Frames)*len(s.Frames[0]))
		}
	}
}

// TestPaperScaleAgreement is the acceptance check at the registered paper
// scale: one full-size scenario, all three styles, one checksum.
func TestPaperScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale agreement skipped in -short mode")
	}
	p := SuiteScale(1)
	p.Seed = 401
	s := GenScenario("paper", p)
	if len(s.Frames) != DefaultFrames || len(s.Frames[0]) != DefaultPlots {
		t.Fatalf("scale 1 generated %d frames × %d plots, want %d × %d",
			len(s.Frames), len(s.Frames[0]), DefaultFrames, DefaultPlots)
	}
	seq := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	coarse := runOn(t, smp.New(smp.Exemplar(16)), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	fine := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Fine(th, s, 256)
	})
	sum := Checksum(seq.FrameCost, len(s.Frames[0]), len(s.Tracks))
	for name, out := range map[string]*Output{"coarse": coarse, "fine": fine} {
		if got := Checksum(out.FrameCost, len(s.Frames[0]), len(s.Tracks)); got != sum {
			t.Errorf("%s checksum %016x != sequential %016x (cost %d vs %d)",
				name, got, sum, totalCost(out), totalCost(seq))
		}
	}
}

func TestCoarseRunsDeterministically(t *testing.T) {
	s := GenScenario("det", testParams)
	a := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	b := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	if a.Bids != b.Bids {
		t.Errorf("bid counts differ between identical runs: %d vs %d", a.Bids, b.Bids)
	}
	if totalCost(a) != totalCost(b) || a.Assigned != b.Assigned || a.NewTracks != b.NewTracks {
		t.Errorf("results differ between identical runs: %+v vs %+v", a, b)
	}
}

func TestCoarseBidMemoryGrowsWithWorkers(t *testing.T) {
	s := GenScenario("mem", testParams)
	few := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 2)
	})
	many := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	if many.BidBufferBytes <= few.BidBufferBytes {
		t.Errorf("bid buffer bytes did not grow with workers: %d vs %d",
			many.BidBufferBytes, few.BidBufferBytes)
	}
	fine := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Fine(th, s, 32)
	})
	if fine.BidBufferBytes != 0 {
		t.Errorf("fine-grained variant allocated %d private bid bytes, want none", fine.BidBufferBytes)
	}
	if CoarseBidBytesFullScale(256) <= 2<<30 {
		t.Error("full-scale coarse bid storage should exceed the MTA's 2 GB")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	s := GenScenario("bad", GenParams{Field: 128, NumTracks: 4, NumPlots: 4, Seed: 1})
	cases := []struct {
		label string
		p     Params
	}{
		{"zero gate", Params{Gate: 0, Epsilon: 1}},
		{"zero epsilon", Params{Gate: DefaultGate, Epsilon: 0}},
		{"negative rounds", Params{Gate: DefaultGate, Epsilon: 1, Rounds: -1}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.label)
				}
			}()
			e := smp.New(smp.AlphaStation())
			e.Run("bad", func(th *machine.Thread) {
				SequentialWithCosts(th, s, tc.p, DefaultCosts)
			})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero workers: no panic")
			}
		}()
		e := smp.New(smp.AlphaStation())
		e.Run("bad", func(th *machine.Thread) {
			CoarseWithCosts(th, s, 0, DefaultParams(), DefaultCosts)
		})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero threads: no panic")
			}
		}()
		e := smp.New(smp.AlphaStation())
		e.Run("bad", func(th *machine.Thread) {
			FineWithCosts(th, s, 0, DefaultParams(), FineDefaultCosts)
		})
	}()
}

func TestSuiteShapes(t *testing.T) {
	scs := Suite(0.1)
	if len(scs) != 5 {
		t.Fatalf("%d scenarios, want 5", len(scs))
	}
	for _, s := range scs {
		if s.Field != DefaultField {
			t.Errorf("%s: field %d, want full size at any scale", s.Name, s.Field)
		}
		if len(s.Tracks) != DefaultTracks {
			t.Errorf("%s: %d tracks, want the full database at any scale", s.Name, len(s.Tracks))
		}
		if len(s.Frames) != DefaultFrames {
			t.Errorf("%s: %d frames, want %d at any scale", s.Name, len(s.Frames), DefaultFrames)
		}
		for f, frame := range s.Frames {
			if len(frame) != 50 {
				t.Errorf("%s frame %d: %d plots at scale 0.1, want 50", s.Name, f, len(frame))
			}
		}
		if s.Units() != 50 {
			t.Errorf("%s: Units() = %d, want plots/frame", s.Name, s.Units())
		}
	}
	if p := SuiteScale(0); p.NumPlots < 1 || p.NumTracks < 1 {
		t.Error("tiny scales must keep at least one plot and track")
	}
}

// TestRoundsGuard: a generous guard must not fire on a convergent run; an
// absurdly tight one must (the diagnostic for a livelocked auction).
func TestRoundsGuard(t *testing.T) {
	s := GenScenario("guard", testParams)
	out := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return SequentialWithCosts(th, s, Params{Gate: DefaultGate, Epsilon: 1, Rounds: 100}, DefaultCosts)
	})
	if totalCost(out) <= 0 {
		t.Fatalf("guarded run produced cost %d", totalCost(out))
	}
	defer func() {
		if recover() == nil {
			t.Error("1-round guard on a contested frame did not fire")
		}
	}()
	e := mta.New(mta.Params{Procs: 1})
	e.Run("guard", func(th *machine.Thread) {
		CoarseWithCosts(th, s, 8, Params{Gate: DefaultGate, Epsilon: 1, Rounds: 1}, DefaultCosts)
	})
}
