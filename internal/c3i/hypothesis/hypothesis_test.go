package hypothesis

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// testParams is a small but contested scenario geometry for solver tests:
// ambiguity clusters ensure several hypotheses share gated observations, so
// the reduction actually contests score words.
var testParams = GenParams{Field: 256, NumHyps: 40, NumObs: 48, Steps: 8, Seed: 7}

// naiveScores is an independent reference: the scoring reduction computed
// directly from the pair-score definition, no machine, no batching.
func naiveScores(s *Scenario, gate int) []int64 {
	scores := make([]int64, len(s.Hyps))
	for _, o := range s.Obs {
		for j := range s.Hyps {
			if sc, ok := s.PairScore(s.Hyps[j], o, gate); ok {
				scores[j] += sc
			}
		}
	}
	return scores
}

func runOn(t *testing.T, e *machine.Engine, solve func(*machine.Thread) *Output) *Output {
	t.Helper()
	var out *Output
	if _, err := e.Run("test", func(th *machine.Thread) { out = solve(th) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenScenarioDeterministic(t *testing.T) {
	a := GenScenario("d", testParams)
	b := GenScenario("d", testParams)
	if len(a.Hyps) != len(b.Hyps) || len(a.Obs) != len(b.Obs) {
		t.Fatal("sizes differ between identical generations")
	}
	for i := range a.Hyps {
		if a.Hyps[i] != b.Hyps[i] {
			t.Fatalf("hypothesis %d differs", i)
		}
	}
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			t.Fatalf("observation %d differs", i)
		}
	}
	// The stream must be time-ordered with IDs in stream order.
	for i := 1; i < len(a.Obs); i++ {
		if a.Obs[i].T < a.Obs[i-1].T {
			t.Fatalf("observation stream not time-ordered at %d", i)
		}
	}
	for i, o := range a.Obs {
		if o.ID != i {
			t.Fatalf("observation %d has ID %d", i, o.ID)
		}
	}
	// The scenario must actually be contested: some observation gated by >1
	// hypothesis (the overlapping ambiguity clusters).
	contested := false
	for _, o := range a.Obs {
		n := 0
		for _, h := range a.Hyps {
			if _, ok := a.PairScore(h, o, DefaultGate); ok {
				n++
			}
		}
		if n > 1 {
			contested = true
			break
		}
	}
	if !contested {
		t.Error("no contested score word — the scenario exercises no synchronization")
	}
}

func TestSequentialMatchesNaiveReduction(t *testing.T) {
	s := GenScenario("ref", testParams)
	want := naiveScores(s, DefaultGate)
	out := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	if len(out.Scores) != len(want) {
		t.Fatalf("%d scores for %d hypotheses", len(out.Scores), len(want))
	}
	for j := range want {
		if out.Scores[j] != want[j] {
			t.Errorf("hypothesis %d: score %d, reference %d", j, out.Scores[j], want[j])
		}
	}
	if out.Best <= 0 {
		t.Errorf("best score %d — no hypothesis gathered evidence", out.Best)
	}
	if len(out.Survivors) == 0 {
		t.Error("pruning left no survivors")
	}
	if out.Gated == 0 {
		t.Error("no gated pairs — gating broken")
	}
	// Survivors must be supported and above the threshold; ascending ids.
	for i, id := range out.Survivors {
		sc := out.Scores[id]
		if sc <= 0 || sc*1000 < out.Best*DefaultPrune {
			t.Errorf("survivor %d (score %d) below threshold of best %d", id, sc, out.Best)
		}
		if i > 0 && id <= out.Survivors[i-1] {
			t.Errorf("survivor ids not ascending at %d", i)
		}
	}
}

func TestVariantsProduceIdenticalScores(t *testing.T) {
	s := GenScenario("agree", testParams)
	seq := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	sum := Checksum(seq, len(s.Hyps), len(s.Obs))
	variants := []struct {
		name  string
		build func() *machine.Engine
		solve func(*machine.Thread) *Output
	}{
		{"coarse/ppro", func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 4) }},
		{"coarse/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 16) }},
		{"fine/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 32) }},
		{"fine/tera2", func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 64) }},
	}
	for _, v := range variants {
		out := runOn(t, v.build(), v.solve)
		for j := range seq.Scores {
			if out.Scores[j] != seq.Scores[j] {
				t.Fatalf("%s: hypothesis %d score %d, sequential %d",
					v.name, j, out.Scores[j], seq.Scores[j])
			}
		}
		if got := Checksum(out, len(s.Hyps), len(s.Obs)); got != sum {
			t.Errorf("%s: checksum %016x != sequential %016x", v.name, got, sum)
		}
		if out.Gated != seq.Gated {
			t.Errorf("%s: %d gated pairs, sequential %d", v.name, out.Gated, seq.Gated)
		}
	}
}

// TestPaperScaleAgreement is the acceptance check at the registered paper
// scale: one full-size scenario, all three styles, one checksum.
func TestPaperScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale agreement skipped in -short mode")
	}
	p := SuiteScale(1)
	p.Seed = 501
	s := GenScenario("paper", p)
	if len(s.Obs) != DefaultObs || len(s.Hyps) != DefaultHyps {
		t.Fatalf("scale 1 generated %d obs × %d hyps, want %d × %d",
			len(s.Obs), len(s.Hyps), DefaultObs, DefaultHyps)
	}
	seq := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	coarse := runOn(t, smp.New(smp.Exemplar(16)), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	fine := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Fine(th, s, 256)
	})
	sum := Checksum(seq, len(s.Hyps), len(s.Obs))
	for name, out := range map[string]*Output{"coarse": coarse, "fine": fine} {
		if got := Checksum(out, len(s.Hyps), len(s.Obs)); got != sum {
			t.Errorf("%s checksum %016x != sequential %016x", name, got, sum)
		}
	}
}

func TestGateAndPruneChangeResults(t *testing.T) {
	s := GenScenario("tune", testParams)
	run := func(p Params) *Output {
		return runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
			return SequentialWithCosts(th, s, p, DefaultCosts)
		})
	}
	base := run(DefaultParams())
	wide := run(Params{Gate: 2 * DefaultGate, Prune: DefaultPrune})
	if wide.Gated <= base.Gated {
		t.Errorf("doubling the gate did not admit more pairs: %d vs %d", wide.Gated, base.Gated)
	}
	if Checksum(wide, len(s.Hyps), len(s.Obs)) == Checksum(base, len(s.Hyps), len(s.Obs)) {
		t.Error("gate change left the checksum unchanged")
	}
	all := run(Params{Gate: DefaultGate, Prune: 0})
	only := run(Params{Gate: DefaultGate, Prune: 1000})
	if len(all.Survivors) < len(base.Survivors) {
		t.Errorf("prune 0 kept %d survivors, threshold %d kept %d",
			len(all.Survivors), DefaultPrune, len(base.Survivors))
	}
	if len(only.Survivors) >= len(all.Survivors) {
		t.Errorf("prune 1000 kept %d survivors, prune 0 kept %d",
			len(only.Survivors), len(all.Survivors))
	}
	for _, id := range only.Survivors {
		if all.Scores[id] != all.Best {
			t.Errorf("prune 1000 survivor %d scores %d, best is %d", id, all.Scores[id], all.Best)
		}
	}
}

func TestCoarsePartialMemoryGrowsWithWorkers(t *testing.T) {
	s := GenScenario("mem", testParams)
	few := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 2)
	})
	many := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	if many.PartialBytes <= few.PartialBytes {
		t.Errorf("partial-score bytes did not grow with workers: %d vs %d",
			many.PartialBytes, few.PartialBytes)
	}
	if want := uint64(16) * uint64(len(s.Hyps)) * 8; many.PartialBytes != want {
		t.Errorf("16 workers allocated %d partial bytes, want %d", many.PartialBytes, want)
	}
	fine := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Fine(th, s, 32)
	})
	if fine.PartialBytes != 0 {
		t.Errorf("fine-grained variant allocated %d private bytes, want none", fine.PartialBytes)
	}
	if CoarsePartialBytesFullScale(256) <= 2<<30 {
		t.Error("full-scale coarse partial storage should exceed the MTA's 2 GB")
	}
}

func TestCoarseRunsDeterministically(t *testing.T) {
	s := GenScenario("det", testParams)
	a := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	b := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16)
	})
	if a.Gated != b.Gated || a.Best != b.Best || len(a.Survivors) != len(b.Survivors) {
		t.Errorf("results differ between identical runs: %+v vs %+v", a, b)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	s := GenScenario("bad", GenParams{Field: 128, NumHyps: 4, NumObs: 4, Steps: 4, Seed: 1})
	cases := []struct {
		label string
		p     Params
	}{
		{"zero gate", Params{Gate: 0, Prune: DefaultPrune}},
		{"negative prune", Params{Gate: DefaultGate, Prune: -1}},
		{"prune over 1000", Params{Gate: DefaultGate, Prune: 1001}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.label)
				}
			}()
			e := smp.New(smp.AlphaStation())
			e.Run("bad", func(th *machine.Thread) {
				SequentialWithCosts(th, s, tc.p, DefaultCosts)
			})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero workers: no panic")
			}
		}()
		e := smp.New(smp.AlphaStation())
		e.Run("bad", func(th *machine.Thread) {
			CoarseWithCosts(th, s, 0, DefaultParams(), DefaultCosts)
		})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero threads: no panic")
			}
		}()
		e := smp.New(smp.AlphaStation())
		e.Run("bad", func(th *machine.Thread) {
			FineWithCosts(th, s, 0, DefaultParams(), FineDefaultCosts)
		})
	}()
}

func TestSuiteShapes(t *testing.T) {
	scs := Suite(0.1)
	if len(scs) != 5 {
		t.Fatalf("%d scenarios, want 5", len(scs))
	}
	for _, s := range scs {
		if s.Field != DefaultField {
			t.Errorf("%s: field %d, want full size at any scale", s.Name, s.Field)
		}
		if len(s.Hyps) != DefaultHyps {
			t.Errorf("%s: %d hypotheses, want the full set at any scale", s.Name, len(s.Hyps))
		}
		if s.Steps != DefaultSteps {
			t.Errorf("%s: %d steps, want %d at any scale", s.Name, s.Steps, DefaultSteps)
		}
		if len(s.Obs) != 40 {
			t.Errorf("%s: %d observations at scale 0.1, want 40", s.Name, len(s.Obs))
		}
		if s.Units() != 40 {
			t.Errorf("%s: Units() = %d, want observations/scenario", s.Name, s.Units())
		}
	}
	if p := SuiteScale(0); p.NumObs < 1 {
		t.Error("tiny scales must keep at least one observation")
	}
}
