// Package hypothesis implements the C3I Parallel Benchmark Suite Hypothesis
// Testing problem: statistical scoring of candidate target hypotheses
// against a time-ordered stream of sensor observations. Each hypothesis is a
// candidate track state — a predicted position, a velocity and a prior
// weight; each observation either supports a hypothesis (it falls inside the
// gating window around the hypothesis's predicted position at the
// observation's time) or says nothing about it. Gated pairs contribute an
// integer evidence increment to the hypothesis's running score; after the
// stream is consumed, hypotheses whose total evidence falls below a prune
// threshold (a fraction of the best score) are discarded. The output is the
// surviving hypothesis set with its scores.
//
// Where Plot-Track Assignment is the suite's synchronization-heavy workload,
// this is its reduction-heavy one: the whole computation is one big
// commutative integer reduction of observation evidence into per-hypothesis
// accumulators — the scatter-add shape that cached machines privatize into
// per-worker buffers and the Tera MTA runs directly against shared memory
// under full/empty word guards.
//
// The package provides the same three program styles as the other four
// benchmark problems:
//
//   - Sequential: one scoring loop over the observation stream, accumulating
//     into a shared score array.
//   - Coarse: a persistent worker crew partitions the observation stream,
//     accumulates into oversized private partial-score buffers (the
//     memory-overhead drawback: every worker carries a full score vector),
//     then runs a barrier-separated per-hypothesis merge reduction.
//   - Fine: the Tera style — threads claim observations with atomic
//     fetch-and-add and commit each evidence increment immediately through
//     full/empty guard words striped over the running scores.
//
// Evidence increments are integers and addition commutes, so every style
// produces the identical score vector and one checksum validates all three
// — package data's golden records.
package hypothesis

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Hypothesis is one candidate track state: position at time zero, velocity
// per time step, and a prior weight (0 = speculative, MaxPrior = firmly
// held) that biases its evidence increments.
type Hypothesis struct {
	ID     int
	X, Y   int32
	VX, VY int32
	Prior  int32
}

// Observation is one sensor report: a measured position at a time step.
type Observation struct {
	ID   int
	T    int32
	X, Y int32
}

// Scenario is one benchmark input: a hypothesis set scored against a
// time-ordered observation stream in a Field×Field coordinate space over
// Steps time steps.
type Scenario struct {
	Name  string
	Field int32
	Steps int32
	Hyps  []Hypothesis
	Obs   []Observation
}

// Scoring constants: priors 0..MaxPrior, each prior step worth PriorWeight
// evidence units on every gated observation; hypothesis speeds bounded by
// MaxSpeed field units per step (what keeps predictions near the field and
// serialized scenarios checkable).
const (
	MaxPrior    = 15
	PriorWeight = 8
	MaxSpeed    = 8
)

// Default scenario geometry. The paper's evaluation did not cover this
// problem; the sizes follow the suite's pattern of five scenarios per
// problem with hundreds of workload units each. The field, the hypothesis
// set and the step count stay at full size at any workload scale
// (preserving the reduction width and the contested-cluster structure);
// scale varies the sensor load — the observations per scenario.
const (
	DefaultField = 1024
	DefaultHyps  = 300
	DefaultObs   = 400 // observations per scenario at scale 1
	DefaultSteps = 16  // time steps the stream spans
	DefaultGate  = 32  // gating window radius, field units
	DefaultPrune = 250 // prune threshold, per-mille of the best score
	detectSpread = 12  // detection noise, well inside the default gate
)

// PairScore returns the evidence increment observation o contributes to
// hypothesis h under a gating radius, and whether the pair is gated at all.
// The increment rewards small residuals against the hypothesis's predicted
// position at o's time, plus a prior-weight bias, and is always ≥ 1 for a
// gated pair.
func (s *Scenario) PairScore(h Hypothesis, o Observation, gate int) (int64, bool) {
	t := int64(o.T)
	px := int64(h.X) + int64(h.VX)*t
	py := int64(h.Y) + int64(h.VY)*t
	dx, dy := int64(o.X)-px, int64(o.Y)-py
	d2 := dx*dx + dy*dy
	g := int64(gate)
	if d2 > g*g {
		return 0, false
	}
	return g*g - d2 + 1 + int64(h.Prior)*PriorWeight, true
}

// TotalWork returns the benchmark work metric: the scoring scan is
// observations × hypotheses pair tests.
func (s *Scenario) TotalWork() int64 {
	return int64(len(s.Obs)) * int64(len(s.Hyps))
}

// ScenarioName implements suite.Scenario.
func (s *Scenario) ScenarioName() string { return s.Name }

// Units implements suite.Scenario: the scaled unit is the observation count
// (the field, the hypothesis set and the step count stay at full size at
// any scale).
func (s *Scenario) Units() int { return len(s.Obs) }

// Warm implements suite.Scenario; the scenario holds no lazy caches.
func (s *Scenario) Warm() {}

// Checksum reduces a solver's result to a stable FNV-1a checksum over the
// quantities every variant provably shares: the problem shape, the best
// score, and each surviving hypothesis with its total evidence, in
// hypothesis order. Evidence addition commutes, so the nondeterministically
// ordered fine-grained style produces the same value.
func Checksum(out *Output, hyps, obs int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(hyps))
	put(int64(obs))
	put(out.Best)
	put(int64(len(out.Survivors)))
	for _, id := range out.Survivors {
		put(int64(id))
		put(out.Scores[id])
	}
	return h.Sum64()
}

// GenParams controls synthetic scenario generation.
type GenParams struct {
	Field   int32
	NumHyps int
	NumObs  int
	Steps   int32
	Seed    int64
}

// GenScenario builds a deterministic synthetic scenario. Hypotheses are
// generated partly in ambiguity clusters — several candidate states
// explaining the same trajectory, whose gates overlap (the contested score
// words that make the reduction synchronization-visible) — and partly in
// the open. Most observations are detections generated along a hypothesis's
// trajectory with noise inside the default gate; the rest are clutter
// anywhere in the field. The stream is time-ordered.
func GenScenario(name string, p GenParams) *Scenario {
	if p.Field == 0 {
		p.Field = DefaultField
	}
	if p.Steps == 0 {
		p.Steps = DefaultSteps
	}
	if p.NumHyps < 1 || p.NumObs < 1 {
		panic(fmt.Sprintf("hypothesis: scenario needs hypotheses and observations, got %d/%d", p.NumHyps, p.NumObs))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Scenario{Name: name, Field: p.Field, Steps: p.Steps}

	pos := func() (int32, int32) {
		return rng.Int31n(p.Field), rng.Int31n(p.Field)
	}
	vel := func() int32 {
		return rng.Int31n(2*MaxSpeed+1) - MaxSpeed
	}
	clamp := func(v int32) int32 {
		if v < 0 {
			return 0
		}
		if v >= p.Field {
			return p.Field - 1
		}
		return v
	}

	// Hypotheses: roughly 50% in ambiguity clusters of 3–5 sharing a base
	// state within one default gate (near-identical predictions → overlapping
	// gates over the whole stream), the rest scattered.
	for len(s.Hyps) < p.NumHyps {
		if rng.Float64() < 0.5 && p.NumHyps-len(s.Hyps) >= 3 {
			cx, cy := pos()
			cvx, cvy := vel(), vel()
			n := 3 + rng.Intn(3)
			if rem := p.NumHyps - len(s.Hyps); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				dv := func(v int32) int32 {
					v += rng.Int31n(3) - 1
					if v > MaxSpeed {
						v = MaxSpeed
					}
					if v < -MaxSpeed {
						v = -MaxSpeed
					}
					return v
				}
				s.Hyps = append(s.Hyps, Hypothesis{
					ID:    len(s.Hyps),
					X:     clamp(cx + rng.Int31n(2*DefaultGate) - DefaultGate),
					Y:     clamp(cy + rng.Int31n(2*DefaultGate) - DefaultGate),
					VX:    dv(cvx),
					VY:    dv(cvy),
					Prior: rng.Int31n(MaxPrior + 1),
				})
			}
		} else {
			x, y := pos()
			s.Hyps = append(s.Hyps, Hypothesis{
				ID: len(s.Hyps), X: x, Y: y, VX: vel(), VY: vel(),
				Prior: rng.Int31n(MaxPrior + 1),
			})
		}
	}

	// Observations: 70% detections along a random hypothesis's trajectory
	// (measured position = prediction + noise inside the default gate), 30%
	// clutter. The stream is sorted by time step (stable, so generation
	// order breaks ties deterministically) and IDs follow stream order.
	nDet := int(math.Round(0.7 * float64(p.NumObs)))
	for i := 0; i < p.NumObs; i++ {
		t := rng.Int31n(p.Steps)
		var o Observation
		if i < nDet {
			h := s.Hyps[rng.Intn(len(s.Hyps))]
			o = Observation{
				T: t,
				X: clamp(h.X + h.VX*t + rng.Int31n(2*detectSpread+1) - detectSpread),
				Y: clamp(h.Y + h.VY*t + rng.Int31n(2*detectSpread+1) - detectSpread),
			}
		} else {
			x, y := pos()
			o = Observation{T: t, X: x, Y: y}
		}
		s.Obs = append(s.Obs, o)
	}
	sort.SliceStable(s.Obs, func(i, j int) bool { return s.Obs[i].T < s.Obs[j].T })
	for i := range s.Obs {
		s.Obs[i].ID = i
	}
	return s
}

// SuiteScale maps a workload scale factor onto generation parameters: the
// field, the hypothesis set and the step count stay at full size (so the
// reduction keeps its width and the clusters their contention) while the
// observations — the sensor load — shrink. Work is linear in the
// observation count, so normalization by observations/scenario stays exact.
func SuiteScale(scale float64) GenParams {
	n := int(math.Round(DefaultObs * scale))
	if n < 1 {
		n = 1
	}
	return GenParams{
		Field:   DefaultField,
		NumHyps: DefaultHyps,
		NumObs:  n,
		Steps:   DefaultSteps,
	}
}

// Suite returns the benchmark's five input scenarios at the given scale; the
// benchmark time is the total over all five, matching how the paper's tables
// total the five scenarios of each problem.
func Suite(scale float64) []*Scenario {
	out := make([]*Scenario, 5)
	for i := range out {
		p := SuiteScale(scale)
		p.Seed = int64(501 + i)
		out[i] = GenScenario(fmt.Sprintf("scenario-%d", i+1), p)
	}
	return out
}
