package hypothesis

import (
	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// scoreDefaults are the tunables every variant shares: the gating-window
// radius and the prune threshold (per-mille of the best score).
var scoreDefaults = suite.Params{"gate": DefaultGate, "prune": DefaultPrune}

// paramsFrom maps registry params onto the shared scoring controls.
func paramsFrom(p suite.Params) Params {
	return Params{Gate: p["gate"], Prune: p["prune"]}
}

func output(out *Output, s *Scenario) suite.Output {
	return suite.Output{
		Checksum:      Checksum(out, len(s.Hyps), len(s.Obs)),
		OverheadBytes: out.PartialBytes,
	}
}

func init() {
	suite.MustRegister(&suite.Workload{
		Name:             "hypothesis-testing",
		Key:              "ht",
		FileTag:          "hypo",
		Title:            "Hypothesis Testing",
		Order:            5,
		PaperUnits:       DefaultObs,
		UnitName:         "observations/scenario",
		DefaultScale:     0.25,
		DataScale:        0.1,
		SmallScale:       0.05,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential", "coarse", "fine"},
		Generate: func(scale float64) []suite.Scenario {
			return suite.Scenarios(Suite(scale))
		},
		// The declared scenario grid: the problem shapes the conformance
		// tests cover and `c3ibench -grid hypothesis-testing` sweeps. The
		// defaults pin the paper point (the registered default scale, the
		// default scoring controls, the calibrated network).
		Grid: &suite.Grid{Axes: []suite.Axis{
			{Name: "scale", Kind: suite.AxisScale, Unit: "fraction of paper scale",
				Values: []float64{0.05, 0.1, 0.25}, Default: 0.25},
			{Name: "gate", Kind: suite.AxisParam, Unit: "field units",
				Values: []float64{24, 32, 48}, Default: DefaultGate},
			{Name: "prune", Kind: suite.AxisParam, Unit: "per-mille of best score",
				Values: []float64{0, 250, 500}, Default: DefaultPrune},
			{Name: "net", Kind: suite.AxisNet, Unit: "latency multiplier (0 = calibrated)",
				Values: []float64{0, 1, 2.5}, Default: 0},
		}},
		Variants: []*suite.Variant{
			{
				// The scoring loop — the reference.
				Name: "sequential", Style: suite.Sequential,
				Defaults: scoreDefaults,
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					s := sc.(*Scenario)
					return output(SequentialWithCosts(t, s, paramsFrom(p), DefaultCosts), s)
				},
			},
			{
				// A persistent crew with private partial-score buffers and a
				// per-hypothesis merge reduction.
				Name: "coarse", Style: suite.Coarse,
				Defaults: scoreDefaults.Merged(suite.Params{"workers": 8}),
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					s := sc.(*Scenario)
					return output(CoarseWithCosts(t, s, p["workers"], paramsFrom(p), DefaultCosts), s)
				},
				OverheadFullScale: CoarsePartialBytesFullScale,
			},
			{
				// The Tera style: fetch-and-add observation claims, evidence
				// committed through full/empty score guards.
				Name: "fine", Style: suite.Fine,
				Defaults: scoreDefaults.Merged(suite.Params{"threads": 64}),
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					s := sc.(*Scenario)
					return output(FineWithCosts(t, s, p["threads"], paramsFrom(p), FineDefaultCosts), s)
				},
			},
		},
	})
}
