package hypothesis

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/threads"
)

// Costs is the charging calibration for the Hypothesis Testing kernel:
// abstract operations and memory references per unit of scoring work. The
// scoring scan streams the observation and hypothesis arrays; evidence
// commits are scatter-add read-modify-writes of score words at
// hypothesis-indexed addresses (dependent loads — cheap under a cache,
// exposed latency on the cache-less MTA); the coarse merge streams private
// partial buffers back into the shared scores.
type Costs struct {
	OpsPerPair       int64 // per (hypothesis, observation) test: predict, residual, compare
	ObsRefsPerObs    int   // streamed reads of the observation stream, per observation
	HypRefsPerPair   int   // streamed reads of the hypothesis-state array
	OpsPerUpdate     int64 // per gated pair: evidence add
	DepRefsPerUpdate int   // dependent loads: scattered score read-modify-writes
	OpsPerMerge      int64 // per (hypothesis, worker) partial merged in the coarse reduction
	SerialOpsPerObs  int64 // serial driver work per observation
	ObsBatch         int   // observations per charging batch (event-count control)
}

// DefaultCosts is the calibrated cost set (see Costs).
var DefaultCosts = Costs{
	OpsPerPair:       11,
	ObsRefsPerObs:    1,
	HypRefsPerPair:   1,
	OpsPerUpdate:     6,
	DepRefsPerUpdate: 2,
	OpsPerMerge:      4,
	SerialOpsPerObs:  3,
	ObsBatch:         64,
}

// FineDefaultCosts is the calibration for the restructured fine-grained
// kernel: within one claimed observation the score loads of different gated
// hypotheses are independent, so the Tera compiler's lookahead pipelines
// them — only the final read-modify-write stays dependent. Total references
// per update are unchanged; only the dependent share drops (the same
// restructuring as the other workloads' fine variants).
var FineDefaultCosts = Costs{
	OpsPerPair:       DefaultCosts.OpsPerPair,
	ObsRefsPerObs:    DefaultCosts.ObsRefsPerObs,
	HypRefsPerPair:   DefaultCosts.HypRefsPerPair + DefaultCosts.DepRefsPerUpdate - 1,
	OpsPerUpdate:     DefaultCosts.OpsPerUpdate,
	DepRefsPerUpdate: 1,
	OpsPerMerge:      DefaultCosts.OpsPerMerge,
	SerialOpsPerObs:  DefaultCosts.SerialOpsPerObs,
	ObsBatch:         DefaultCosts.ObsBatch,
}

const (
	// fineClaim is how many observations one fetch-and-add claims in the
	// fine-grained variant: one — the purest Tera style, a thread per
	// observation, so the crowd is limited by the stream, not by batching.
	fineClaim = 1
	// fineStripes is the number of full/empty guard words striped over the
	// running scores in the fine-grained variant.
	fineStripes = 64
)

// Layout holds the simulated-memory placement of a scenario's arrays.
type Layout struct {
	Scenario *Scenario
	Costs    Costs
	Hyps     *mem.Region // hypothesis states (input, streamed by the scan)
	Obs      *mem.Region // observation stream (input, streamed)
	Scores   *mem.Region // running evidence scores (scattered, contested)
}

// NewLayout allocates the scenario's arrays in the machine's address space.
func NewLayout(t *machine.Thread, s *Scenario, c Costs) *Layout {
	if c == (Costs{}) {
		c = DefaultCosts
	}
	nh, no := uint64(len(s.Hyps)), uint64(len(s.Obs))
	return &Layout{
		Scenario: s,
		Costs:    c,
		Hyps:     t.Alloc(s.Name+" hyps", nh*24),
		Obs:      t.Alloc(s.Name+" obs", (no+1)*16),
		Scores:   t.Alloc(s.Name+" scores", (nh+1)*8),
	}
}

// scatterStride spaces scattered references one cache line apart: evidence
// commits land on hypotheses all over the score array, so consecutive
// references land on different lines.
const scatterStride = 64

// burstWrapped emits n references as one or more bursts that stay inside the
// region, wrapping to offset zero — the charge-preserving analogue of the
// other workloads' wrapped bursts.
func burstWrapped(t *machine.Thread, r *mem.Region, stride, elem uint64, n int, write, dep bool) {
	if n <= 0 {
		return
	}
	per := int((r.Size-elem)/stride) + 1
	for n > 0 {
		k := n
		if k > per {
			k = per
		}
		t.Burst(mem.Burst{Region: r, Stride: stride, Elem: elem, N: k, Write: write, Dep: dep})
		n -= k
	}
}

// chargeScan charges one batch of the scoring scan: streamed observation
// reads plus pair tests streaming the hypothesis array.
func (lay *Layout) chargeScan(t *machine.Thread, obsN, pairs int) {
	if obsN == 0 && pairs == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(pairs) * c.OpsPerPair)
	burstWrapped(t, lay.Obs, 16, 16, obsN*c.ObsRefsPerObs, false, false)
	burstWrapped(t, lay.Hyps, 24, 24, pairs*c.HypRefsPerPair, false, false)
}

// chargeUpdates charges one batch of evidence commits into a score array —
// the shared scores or a worker's private partial buffer: scattered
// read-modify-writes plus the stores.
func (lay *Layout) chargeUpdates(t *machine.Thread, r *mem.Region, gated int) {
	if gated == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(gated) * c.OpsPerUpdate)
	burstWrapped(t, r, scatterStride, 8, gated*c.DepRefsPerUpdate, false, true)
	burstWrapped(t, r, scatterStride, 8, gated, true, false)
}

// chargeMerge charges merging a range of n hypotheses from every private
// partial buffer into the shared scores: one streamed pass over each
// buffer's range, and one score read and write per hypothesis (the range is
// summed in registers across buffers, not re-read per buffer).
func (lay *Layout) chargeMerge(t *machine.Thread, privs []*mem.Region, n int) {
	if n == 0 {
		return
	}
	t.Compute(int64(n) * int64(len(privs)) * lay.Costs.OpsPerMerge)
	for _, r := range privs {
		burstWrapped(t, r, 8, 8, n, false, false)
	}
	burstWrapped(t, lay.Scores, 8, 8, n, false, false)
	burstWrapped(t, lay.Scores, 8, 8, n, true, false)
}

// chargeFinish charges the final pruning reduction: two streaming passes
// over the scores (best, then survivors) on the calling thread — identical
// in every variant.
func (lay *Layout) chargeFinish(t *machine.Thread) {
	nh := len(lay.Scenario.Hyps)
	t.Compute(int64(nh) * 4)
	burstWrapped(t, lay.Scores, 8, 8, 2*nh, false, false)
}

// Output is a solver's result: the full evidence-score vector (identical
// across all variants — integer addition commutes), the best score, the
// surviving hypothesis ids after pruning, the gated pairs scored, and the
// private partial-score storage the coarse style pays.
type Output struct {
	Scores       []int64 // per-hypothesis total evidence, hypothesis order
	Best         int64   // maximum score
	Survivors    []int32 // hypothesis ids that survive the prune, ascending
	Gated        int64   // gated (hypothesis, observation) pairs scored
	PartialBytes uint64  // private partial-score storage (coarse only)
}

// Params bundles the scoring controls shared by every variant. Gate is the
// gating-window radius; Prune the survival threshold in per-mille of the
// best score (0 keeps every supported hypothesis, 1000 only the best).
type Params struct {
	Gate  int
	Prune int
}

// DefaultParams returns the scoring controls every variant defaults to.
func DefaultParams() Params {
	return Params{Gate: DefaultGate, Prune: DefaultPrune}
}

func (p Params) validate() {
	if p.Gate < 1 {
		panic(fmt.Sprintf("hypothesis: gating window %d, need ≥ 1", p.Gate))
	}
	if p.Prune < 0 || p.Prune > 1000 {
		panic(fmt.Sprintf("hypothesis: prune threshold %d‰, need 0..1000", p.Prune))
	}
}

// finish derives the pruned output from the merged score vector — identical
// arithmetic in every variant, charged as two streaming passes.
func (lay *Layout) finish(t *machine.Thread, scores []int64, prune int, out *Output) *Output {
	lay.chargeFinish(t)
	out.Scores = scores
	for _, s := range scores {
		if s > out.Best {
			out.Best = s
		}
	}
	for i, s := range scores {
		if s > 0 && s*1000 >= out.Best*int64(prune) {
			out.Survivors = append(out.Survivors, int32(i))
		}
	}
	return out
}

// Sequential is the reference program: one scoring loop over the
// observation stream, entirely on the calling thread.
func Sequential(t *machine.Thread, s *Scenario) *Output {
	return SequentialWithCosts(t, s, DefaultParams(), DefaultCosts)
}

// SequentialWithCosts is Sequential with explicit scoring controls and cost
// calibration.
func SequentialWithCosts(t *machine.Thread, s *Scenario, p Params, c Costs) *Output {
	p.validate()
	lay := NewLayout(t, s, c)
	out := &Output{}
	scores := make([]int64, len(s.Hyps))

	obsN, pairs, gated := 0, 0, 0
	for _, o := range s.Obs {
		for j := range s.Hyps {
			if sc, ok := s.PairScore(s.Hyps[j], o, p.Gate); ok {
				scores[j] += sc
				gated++
			}
		}
		obsN, pairs = obsN+1, pairs+len(s.Hyps)
		if obsN == lay.Costs.ObsBatch {
			t.Compute(int64(obsN) * lay.Costs.SerialOpsPerObs)
			lay.chargeScan(t, obsN, pairs)
			lay.chargeUpdates(t, lay.Scores, gated)
			out.Gated += int64(gated)
			obsN, pairs, gated = 0, 0, 0
		}
	}
	t.Compute(int64(obsN) * lay.Costs.SerialOpsPerObs)
	lay.chargeScan(t, obsN, pairs)
	lay.chargeUpdates(t, lay.Scores, gated)
	out.Gated += int64(gated)
	return lay.finish(t, scores, p.Prune, out)
}

// Coarse is the manual parallelization in the style of Programs 2 and 4: a
// persistent crew of worker threads — created once per run — partitions the
// observation stream, accumulates evidence into oversized private
// partial-score buffers (the storage drawback: every worker carries a full
// score vector however few hypotheses its chunk touches), then meets at a
// barrier and runs a per-hypothesis merge reduction, each worker summing a
// disjoint hypothesis range across all the partial buffers. Deterministic
// by construction.
func Coarse(t *machine.Thread, s *Scenario, workers int) *Output {
	return CoarseWithCosts(t, s, workers, DefaultParams(), DefaultCosts)
}

// CoarseWithCosts is Coarse with explicit scoring controls and calibration.
func CoarseWithCosts(t *machine.Thread, s *Scenario, workers int, p Params, c Costs) *Output {
	p.validate()
	if workers < 1 {
		panic("hypothesis: Coarse needs ≥ 1 worker")
	}
	lay := NewLayout(t, s, c)
	out := &Output{}
	nh := len(s.Hyps)
	scores := make([]int64, nh)

	priv := make([]*mem.Region, workers)
	partials := make([][]int64, workers)
	gatedBy := make([]int64, workers)
	for w := range priv {
		priv[w] = t.Alloc(fmt.Sprintf("%s partial[%d]", s.Name, w), uint64(nh)*8)
		out.PartialBytes += priv[w].Size
		partials[w] = make([]int64, nh)
	}

	// The crew lives across both phases; the barrier separates scoring from
	// merging, so every partial buffer is complete before any range of it is
	// reduced.
	bar := t.NewBarrier(s.Name+" phase", workers+1)
	ws := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		ws[w] = t.Go(fmt.Sprintf("%s worker[%d]", s.Name, w), func(wt *machine.Thread) {
			// Phase 1: score my observation chunk into my private partials.
			lo, hi := threads.ChunkBounds(len(s.Obs), workers, w)
			gatedBy[w] = lay.scoreSpan(wt, s.Obs[lo:hi], p.Gate, partials[w], priv[w])
			bar.Arrive(wt)
			// Phase 2: merge my hypothesis range from every partial buffer.
			lo, hi = threads.ChunkBounds(nh, workers, w)
			for _, part := range partials {
				for j := lo; j < hi; j++ {
					scores[j] += part[j]
				}
			}
			lay.chargeMerge(wt, priv, hi-lo)
		})
	}
	bar.Arrive(t)
	t.JoinAll(ws)
	for _, g := range gatedBy {
		out.Gated += g
	}
	return lay.finish(t, scores, p.Prune, out)
}

// scoreSpan scores a span of the observation stream into a score array
// (private partials for the coarse crew), charging in ObsBatch batches.
func (lay *Layout) scoreSpan(wt *machine.Thread, span []Observation, gate int, dst []int64, r *mem.Region) int64 {
	s := lay.Scenario
	var total int64
	obsN, pairs, gated := 0, 0, 0
	for _, o := range span {
		for j := range s.Hyps {
			if sc, ok := s.PairScore(s.Hyps[j], o, gate); ok {
				dst[j] += sc
				gated++
			}
		}
		obsN, pairs = obsN+1, pairs+len(s.Hyps)
		if obsN == lay.Costs.ObsBatch {
			lay.chargeScan(wt, obsN, pairs)
			lay.chargeUpdates(wt, r, gated)
			total += int64(gated)
			obsN, pairs, gated = 0, 0, 0
		}
	}
	lay.chargeScan(wt, obsN, pairs)
	lay.chargeUpdates(wt, r, gated)
	return total + int64(gated)
}

// Fine is the Tera style: threads claim observations one at a time with an
// atomic fetch-and-add on a shared stream cursor and commit each evidence
// increment immediately into the shared scores through a full/empty guard
// word (striped over the score array). No private buffers, nondeterministic
// commit order — evidence addition commutes, so the score vector is
// identical anyway.
func Fine(t *machine.Thread, s *Scenario, threadsN int) *Output {
	return FineWithCosts(t, s, threadsN, DefaultParams(), FineDefaultCosts)
}

// FineWithCosts is Fine with explicit scoring controls and calibration.
func FineWithCosts(t *machine.Thread, s *Scenario, threadsN int, p Params, c Costs) *Output {
	p.validate()
	if threadsN < 1 {
		panic("hypothesis: Fine needs ≥ 1 thread")
	}
	lay := NewLayout(t, s, c)
	out := &Output{}
	scores := make([]int64, len(s.Hyps))

	nth := (len(s.Obs) + fineClaim - 1) / fineClaim
	if nth > threadsN {
		nth = threadsN
	}
	if nth <= 1 {
		out.Gated = lay.scoreSpan(t, s.Obs, p.Gate, scores, lay.Scores)
		return lay.finish(t, scores, p.Prune, out)
	}

	// Full/empty guard words striped over the score array, created full: a
	// committer empties the word (readFE), adds its evidence, and refills it
	// (writeEF).
	stripes := make([]*machine.SyncVar, fineStripes)
	for i := range stripes {
		stripes[i] = t.NewSyncVar(fmt.Sprintf("%s fe[%d]", s.Name, i))
		stripes[i].Write(t, 0)
	}

	claim := t.NewCounter(s.Name+" claim", 0)
	gatedBy := make([]int64, nth)
	ws := make([]*machine.Thread, nth)
	for i := 0; i < nth; i++ {
		i := i
		ws[i] = t.Go(fmt.Sprintf("%s score[%d]", s.Name, i), func(ct *machine.Thread) {
			for {
				k := int(claim.Add(ct, fineClaim))
				if k >= len(s.Obs) {
					return
				}
				hi := k + fineClaim
				if hi > len(s.Obs) {
					hi = len(s.Obs)
				}
				gatedBy[i] += lay.fineSpan(ct, s.Obs[k:hi], p.Gate, scores, stripes)
			}
		})
	}
	t.JoinAll(ws)
	for _, g := range gatedBy {
		out.Gated += g
	}
	return lay.finish(t, scores, p.Prune, out)
}

// fineSpan scores one claimed span of observations, committing each gated
// increment through its hypothesis's full/empty guard stripe.
func (lay *Layout) fineSpan(ct *machine.Thread, span []Observation, gate int,
	scores []int64, stripes []*machine.SyncVar) int64 {

	s := lay.Scenario
	pairs, gated := 0, 0
	for _, o := range span {
		for j := range s.Hyps {
			sc, ok := s.PairScore(s.Hyps[j], o, gate)
			if !ok {
				continue
			}
			sv := stripes[j%len(stripes)]
			sv.ReadFE(ct)
			scores[j] += sc
			sv.WriteEF(ct, 0)
			gated++
		}
		pairs += len(s.Hyps)
	}
	lay.chargeScan(ct, len(span), pairs)
	lay.chargeUpdates(ct, lay.Scores, gated)
	return int64(gated)
}

// CoarsePartialBytesFullScale returns the private partial-score storage the
// coarse crew needs for the given worker count at the full C3I hypothesis
// space (a couple of million candidate hypotheses under dense multi-sensor
// ambiguity, 8-byte accumulators, every worker carrying the full score
// vector). Like the other workloads' private buffers, this is what makes
// the coarse style impractical at the hundreds of streams the MTA needs.
func CoarsePartialBytesFullScale(workers int) uint64 {
	const fullHyps = 1 << 21
	return uint64(workers) * fullHyps * 8
}
