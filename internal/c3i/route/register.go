package route

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// ScenarioName implements suite.Scenario.
func (s *Scenario) ScenarioName() string { return s.Name }

// Units implements suite.Scenario: the scaled unit is the route-request
// count (the grid stays at full size at any scale).
func (s *Scenario) Units() int { return len(s.Queries) }

// Warm implements suite.Scenario; the scenario holds no lazy caches.
func (s *Scenario) Warm() {}

// Checksum reduces a solver's per-request path costs (in query order —
// identical across all variants) to a stable FNV-1a checksum.
func Checksum(costs []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(costs)))
	h.Write(buf[:])
	for _, c := range costs {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func output(out *Output) suite.Output {
	return suite.Output{Checksum: Checksum(out.PathCost), OverheadBytes: out.FrontierBytes}
}

func init() {
	suite.MustRegister(&suite.Workload{
		Name:             "route-optimization",
		Key:              "ro",
		FileTag:          "route",
		Title:            "Route Optimization",
		Order:            3,
		PaperUnits:       DefaultQueries,
		UnitName:         "route requests/scenario",
		DefaultScale:     0.25,
		DataScale:        0.25,
		SmallScale:       0.1,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential", "coarse", "fine"},
		Generate: func(scale float64) []suite.Scenario {
			return suite.Scenarios(Suite(scale))
		},
		Variants: []*suite.Variant{
			{
				// Textbook Dijkstra with a binary heap — the reference.
				Name: "sequential", Style: suite.Sequential,
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(Sequential(t, sc.(*Scenario)))
				},
			},
			{
				// ∆-stepping with a persistent worker crew, private
				// candidate buffers and per-block merge locks.
				Name: "coarse", Style: suite.Coarse,
				Defaults: suite.Params{"workers": 4, "blocks": 4, "delta": DefaultDelta},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(CoarseWithCosts(t, sc.(*Scenario),
						p["workers"], p["blocks"], p["delta"], DefaultCosts))
				},
				OverheadFullScale: CoarseFrontierBytesFullScale,
			},
			{
				// The Tera style: fetch-and-add frontier claims and
				// full/empty distance guards, a crowd of threads per
				// wavefront.
				Name: "fine", Style: suite.Fine,
				Defaults: suite.Params{"threads": 64, "delta": DefaultDelta},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(FineWithCosts(t, sc.(*Scenario),
						p["threads"], p["delta"], FineDefaultCosts))
				},
			},
		},
	})
}
