package route

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// testParams is a small but nontrivial scenario geometry for solver tests.
var testParams = GenParams{Side: 64, NumThreats: 6, Radius: 10, NumQueries: 3, Seed: 7}

// bellmanFord is an independent reference: plain label-correcting relaxation
// with no machine, no buckets, no heap.
func bellmanFord(s *Scenario, q Query) int64 {
	dist := make([]int32, s.Cells())
	for i := range dist {
		dist[i] = inf
	}
	dist[s.Index(q.SX, q.SY)] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < s.Cells(); v++ {
			d := dist[v]
			if d == inf {
				continue
			}
			x, y := v%s.W, v/s.W
			relax := func(nb int) {
				if nd := d + s.EdgeWeight(nb); nd < dist[nb] {
					dist[nb] = nd
					changed = true
				}
			}
			if x > 0 {
				relax(v - 1)
			}
			if x+1 < s.W {
				relax(v + 1)
			}
			if y > 0 {
				relax(v - s.W)
			}
			if y+1 < s.H {
				relax(v + s.W)
			}
		}
	}
	return int64(dist[s.Index(q.GX, q.GY)])
}

func runOn(t *testing.T, e *machine.Engine, solve func(*machine.Thread) *Output) *Output {
	t.Helper()
	var out *Output
	if _, err := e.Run("test", func(th *machine.Thread) { out = solve(th) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenScenarioDeterministic(t *testing.T) {
	a := GenScenario("d", testParams)
	b := GenScenario("d", testParams)
	if len(a.Risk) != len(b.Risk) || len(a.Queries) != len(b.Queries) {
		t.Fatal("sizes differ between identical generations")
	}
	for i := range a.Risk {
		if a.Risk[i] != b.Risk[i] {
			t.Fatalf("risk[%d] differs", i)
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
	if a.MaxEdgeWeight() <= 1 {
		t.Error("risk field is flat — threats or terrain missing")
	}
}

func TestSequentialMatchesBellmanFord(t *testing.T) {
	p := GenParams{Side: 40, NumThreats: 4, Radius: 8, NumQueries: 3, Seed: 11}
	s := GenScenario("bf", p)
	out := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	for i, q := range s.Queries {
		want := bellmanFord(s, q)
		if out.PathCost[i] != want {
			t.Errorf("query %d: dijkstra cost %d, reference %d", i, out.PathCost[i], want)
		}
	}
}

func TestVariantsProduceIdenticalPathCosts(t *testing.T) {
	s := GenScenario("agree", testParams)
	seq := runOn(t, smp.New(smp.AlphaStation()), func(th *machine.Thread) *Output {
		return Sequential(th, s)
	})
	if len(seq.PathCost) != len(s.Queries) {
		t.Fatalf("%d costs for %d queries", len(seq.PathCost), len(s.Queries))
	}
	for i, c := range seq.PathCost {
		if c <= 0 || c >= int64(inf) {
			t.Fatalf("query %d cost %d out of range", i, c)
		}
	}
	variants := []struct {
		name  string
		build func() *machine.Engine
		solve func(*machine.Thread) *Output
	}{
		{"coarse/ppro", func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 4, 4) }},
		{"coarse/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Coarse(th, s, 16, 4) }},
		{"fine/tera", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 32) }},
		{"fine/tera2", func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(th *machine.Thread) *Output { return Fine(th, s, 64) }},
	}
	for _, v := range variants {
		out := runOn(t, v.build(), v.solve)
		if len(out.PathCost) != len(seq.PathCost) {
			t.Errorf("%s: %d costs, want %d", v.name, len(out.PathCost), len(seq.PathCost))
			continue
		}
		for i := range seq.PathCost {
			if out.PathCost[i] != seq.PathCost[i] {
				t.Errorf("%s: query %d cost %d, sequential %d", v.name, i, out.PathCost[i], seq.PathCost[i])
			}
		}
		if out.Relaxed < seq.Relaxed {
			t.Errorf("%s: relaxed %d < sequential %d — parallel variants cannot do less work",
				v.name, out.Relaxed, seq.Relaxed)
		}
	}
}

func TestCoarseRunsDeterministically(t *testing.T) {
	s := GenScenario("det", testParams)
	a := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16, 4)
	})
	b := runOn(t, mta.New(mta.Params{Procs: 2}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16, 4)
	})
	if a.Relaxed != b.Relaxed {
		t.Errorf("relax counts differ between identical runs: %d vs %d", a.Relaxed, b.Relaxed)
	}
	for i := range a.PathCost {
		if a.PathCost[i] != b.PathCost[i] {
			t.Errorf("query %d cost differs between identical runs", i)
		}
	}
}

func TestCoarseFrontierMemoryGrowsWithWorkers(t *testing.T) {
	s := GenScenario("mem", testParams)
	few := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 2, 4)
	})
	many := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Coarse(th, s, 16, 4)
	})
	if many.FrontierBytes <= few.FrontierBytes {
		t.Errorf("frontier bytes did not grow with workers: %d vs %d", many.FrontierBytes, few.FrontierBytes)
	}
	fine := runOn(t, mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *Output {
		return Fine(th, s, 32)
	})
	if fine.FrontierBytes >= few.FrontierBytes {
		t.Errorf("fine-grained frontier bytes %d not below coarse %d", fine.FrontierBytes, few.FrontierBytes)
	}
	if CoarseFrontierBytesFullScale(256) <= 2<<30 {
		t.Error("full-scale coarse frontier storage should exceed the MTA's 2 GB")
	}
}

func TestSuiteShapes(t *testing.T) {
	suite := Suite(0.25)
	if len(suite) != 5 {
		t.Fatalf("%d scenarios, want 5", len(suite))
	}
	for _, s := range suite {
		if s.W != DefaultSide || s.H != DefaultSide {
			t.Errorf("%s: grid %dx%d, want full size at any scale", s.Name, s.W, s.H)
		}
		if len(s.Queries) != 3 {
			t.Errorf("%s: %d queries at scale 0.25, want 3", s.Name, len(s.Queries))
		}
	}
	if p := SuiteScale(0.0); p.NumQueries < 1 {
		t.Error("tiny scales must keep at least one query")
	}
}
