// Package route implements the C3I Parallel Benchmark Suite Route
// Optimization problem: computation of minimum-risk paths for aircraft
// flying over an uneven terrain containing ground-based threats.
//
// Inputs are (i) a risk-weighted grid graph derived from a terrain elevation
// field (steep cells cost more to cross) overlaid with the lethality fields
// of a set of ground threats, and (ii) a set of route requests, each a
// (start, goal) pair. The output is, for every request, the cost of the
// cheapest path — the single-source shortest-path problem over a
// four-connected grid with positive integer edge weights. Unlike Threat
// Analysis (compute-bound streaming) and Terrain Masking (memory-bound
// passes over dense arrays), this is the suite's irregular workload: the
// wavefront of reachable cells grows and shrinks unpredictably, every step
// chases pointers into a scattered distance array, and parallel versions
// must synchronize on individual graph nodes.
//
// The package provides the same three program styles as the other two
// benchmark problems:
//
//   - Sequential: textbook Dijkstra over the grid with a binary heap — the
//     reference program, one thread, no synchronization.
//   - Coarse: the manual parallelization in the style of Programs 2/4 — a
//     bucketed (∆-stepping) relaxation where each bucket's frontier is split
//     into chunks, each chunk thread accumulates candidate relaxations into
//     its own oversized private buffer (the memory-overhead drawback), and
//     the shared distance array and bucket lists are updated under per-block
//     locks over the grid.
//   - Fine: the Tera style — the shared bucket structure itself is the
//     synchronization point: threads claim frontier slices with atomic
//     fetch-and-add, guard distance words with full/empty synchronization
//     variables, and reserve push slots with another fetch-and-add. Hundreds
//     of short-lived threads per wavefront: viable only where thread
//     creation and per-word synchronization are nearly free.
//
// All variants run against *machine.Thread and produce identical per-request
// path costs (edge weights are integers, and relaxation converges to the
// unique shortest distance regardless of processing order), so outputs
// validate with one checksum — package data's golden records.
package route

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/c3i/terrain"
)

// Query is one route request: find the cheapest path from (SX, SY) to
// (GX, GY).
type Query struct {
	ID     int
	SX, SY int
	GX, GY int
}

// Scenario is one benchmark input: a risk-weighted grid plus route requests.
// Risk holds the per-cell entry cost surcharge (terrain steepness plus
// ground-threat lethality); entering cell v costs 1 + Risk[v].
type Scenario struct {
	Name    string
	W, H    int
	Risk    []int32
	Queries []Query
}

// Index returns the row-major index of (x, y).
func (s *Scenario) Index(x, y int) int { return y*s.W + x }

// Cells returns the number of grid cells.
func (s *Scenario) Cells() int { return s.W * s.H }

// EdgeWeight returns the cost of entering cell v (from any neighbor).
func (s *Scenario) EdgeWeight(v int) int32 { return 1 + s.Risk[v] }

// MaxEdgeWeight returns the largest edge weight in the scenario.
func (s *Scenario) MaxEdgeWeight() int32 {
	var m int32
	for _, r := range s.Risk {
		if r > m {
			m = r
		}
	}
	return 1 + m
}

// TotalWork returns the benchmark work metric: grid cells times route
// requests (each request's wavefront may visit the whole grid).
func (s *Scenario) TotalWork() int64 {
	return int64(s.Cells()) * int64(len(s.Queries))
}

// ThreatSite is a ground threat contributing risk to nearby cells: lethality
// Lethality at the site, falling linearly to zero at radius R (cells).
type ThreatSite struct {
	ID        int
	X, Y      int
	R         int
	Lethality int32
}

// GenParams controls synthetic scenario generation.
type GenParams struct {
	Side       int // grid is Side×Side cells
	NumThreats int
	Radius     int // threat lethality radius in cells
	NumQueries int
	Seed       int64
}

// Default scenario geometry. The grid stays at full size at any workload
// scale (like the Terrain Masking suite) so the distance array exceeds every
// conventional cache and the irregular access pattern keeps its
// memory-system character; scale varies the number of route requests.
const (
	DefaultSide    = 256
	DefaultRadius  = 32
	DefaultThreats = 24
	DefaultQueries = 12
)

// maxRisk caps the per-cell risk surcharge so edge weights stay small
// multiples of the base cost (keeps ∆-stepping buckets dense).
const maxRisk = 60

// GenScenario builds a deterministic synthetic scenario: fractal terrain
// converted to a steepness cost field, ground threats layered on top, and
// route requests that span the grid.
func GenScenario(name string, p GenParams) *Scenario {
	if p.Side == 0 {
		p.Side = DefaultSide
	}
	if p.Radius == 0 {
		p.Radius = DefaultRadius
	}
	if p.Side <= 2*p.Radius {
		panic(fmt.Sprintf("route: side %d too small for radius %d", p.Side, p.Radius))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := terrain.GenGrid(p.Side, p.Side, p.Seed^0x00207e)
	s := &Scenario{Name: name, W: p.Side, H: p.Side, Risk: make([]int32, p.Side*p.Side)}

	// Terrain steepness: the local elevation gradient, in cost units.
	for y := 0; y < p.Side; y++ {
		for x := 0; x < p.Side; x++ {
			var grad float64
			if x+1 < p.Side {
				grad += math.Abs(float64(g.At(x+1, y) - g.At(x, y)))
			}
			if y+1 < p.Side {
				grad += math.Abs(float64(g.At(x, y+1) - g.At(x, y)))
			}
			c := int32(grad / 15)
			if c > 8 {
				c = 8
			}
			s.Risk[s.Index(x, y)] = c
		}
	}

	// Ground threats: linear lethality falloff inside each radius.
	for i := 0; i < p.NumThreats; i++ {
		site := ThreatSite{
			ID: i,
			X:  p.Radius + rng.Intn(p.Side-2*p.Radius),
			Y:  p.Radius + rng.Intn(p.Side-2*p.Radius),
			R:  p.Radius,
			// 8–24: several times the typical steepness cost, so routes
			// actually detour around threats.
			Lethality: int32(8 + rng.Intn(17)),
		}
		r2 := site.R * site.R
		for dy := -site.R; dy <= site.R; dy++ {
			y := site.Y + dy
			if y < 0 || y >= p.Side {
				continue
			}
			for dx := -site.R; dx <= site.R; dx++ {
				x := site.X + dx
				if x < 0 || x >= p.Side {
					continue
				}
				d2 := dx*dx + dy*dy
				if d2 > r2 {
					continue
				}
				d := int(math.Sqrt(float64(d2)))
				add := site.Lethality * int32(site.R-d) / int32(site.R)
				idx := s.Index(x, y)
				if v := s.Risk[idx] + add; v > maxRisk {
					s.Risk[idx] = maxRisk
				} else {
					s.Risk[idx] = v
				}
			}
		}
	}

	// Route requests: endpoints far apart, so every wavefront crosses most
	// of the grid.
	for q := 0; q < p.NumQueries; q++ {
		var sx, sy, gx, gy int
		for {
			sx, sy = rng.Intn(p.Side), rng.Intn(p.Side)
			gx, gy = rng.Intn(p.Side), rng.Intn(p.Side)
			if abs(sx-gx)+abs(sy-gy) >= p.Side {
				break
			}
		}
		s.Queries = append(s.Queries, Query{ID: q, SX: sx, SY: sy, GX: gx, GY: gy})
	}
	return s
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// SuiteScale maps a workload scale factor onto generation parameters: the
// grid, threat count and radius stay at full size (preserving the irregular,
// cache-hostile character) while the number of route requests shrinks.
func SuiteScale(scale float64) GenParams {
	n := int(math.Round(DefaultQueries * scale))
	if n < 1 {
		n = 1
	}
	return GenParams{
		Side:       DefaultSide,
		NumThreats: DefaultThreats,
		Radius:     DefaultRadius,
		NumQueries: n,
	}
}

// Suite returns the benchmark's five input scenarios at the given scale; the
// benchmark time is the total over all five, matching how the paper's tables
// total the five scenarios of each problem.
func Suite(scale float64) []*Scenario {
	out := make([]*Scenario, 5)
	for i := range out {
		p := SuiteScale(scale)
		p.Seed = int64(301 + i)
		out[i] = GenScenario(fmt.Sprintf("scenario-%d", i+1), p)
	}
	return out
}
