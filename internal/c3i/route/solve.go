package route

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/threads"
)

// Costs is the charging calibration for the Route Optimization kernel: how
// many abstract operations and memory references the benchmark performs per
// unit of shortest-path work. The kernel's character is irregular: the
// distance array is read and written at wavefront-scattered addresses
// (dependent loads — cheap under a cache that holds the working set, exposed
// memory latency on the cache-less MTA), while the risk field streams.
type Costs struct {
	OpsPerSettle       int64 // bookkeeping per frontier node claimed (pop/claim, stale test)
	OpsPerRelax        int64 // per examined edge: neighbor index, weight add, compare
	StreamRefsPerRelax int   // streamed reads of the risk/weight field
	DepRefsPerRelax    int   // dependent loads: scattered distance-array reads
	OpsPerPush         int64 // per applied improvement: distance store, frontier append
	SerialOpsPerNode   int64 // serial driver work per frontier node (bucket bookkeeping)
	SettleBatch        int   // settled nodes per charging batch (event-count control)
}

// DefaultCosts is the calibrated cost set (see Costs).
var DefaultCosts = Costs{
	OpsPerSettle:       34,
	OpsPerRelax:        46,
	StreamRefsPerRelax: 2,
	DepRefsPerRelax:    3,
	OpsPerPush:         14,
	SerialOpsPerNode:   3,
	SettleBatch:        128,
}

// FineDefaultCosts is the calibration for the restructured fine-grained
// kernel: within one claimed batch the distance loads of different edges are
// independent, so the Tera compiler's lookahead pipelines them — only the
// final compare-and-update chain stays dependent. Total references per relax
// are unchanged; only the dependent share drops (the same restructuring as
// Terrain Masking's Feo kernel).
var FineDefaultCosts = Costs{
	OpsPerSettle:       DefaultCosts.OpsPerSettle,
	OpsPerRelax:        DefaultCosts.OpsPerRelax,
	StreamRefsPerRelax: DefaultCosts.StreamRefsPerRelax + DefaultCosts.DepRefsPerRelax - 1,
	DepRefsPerRelax:    1,
	OpsPerPush:         DefaultCosts.OpsPerPush,
	SerialOpsPerNode:   DefaultCosts.SerialOpsPerNode,
	SettleBatch:        DefaultCosts.SettleBatch,
}

// DefaultDelta is the ∆-stepping bucket width used by the parallel variants:
// a few average edge weights, so buckets hold enough nodes to parallelize
// without admitting long re-relaxation chains.
const DefaultDelta = 32

// inf is the unreached distance (large, but far from int32 overflow when an
// edge weight is added).
const inf = int32(1) << 30

const (
	// fineClaim is how many frontier nodes one fetch-and-add claims in the
	// fine-grained variant.
	fineClaim = 8
	// fineStripes is the number of full/empty guard words striped over the
	// distance array in the fine-grained variant.
	fineStripes = 64
)

// Layout holds the simulated-memory placement of a scenario's arrays.
type Layout struct {
	Scenario *Scenario
	Costs    Costs
	Risk     *mem.Region // per-cell risk surcharge (input)
	Dist     *mem.Region // distance array (working/output)
	Frontier *mem.Region // shared frontier storage (heap or bucket lists)
}

// NewLayout allocates the scenario's arrays in the machine's address space.
func NewLayout(t *machine.Thread, s *Scenario, c Costs) *Layout {
	if c == (Costs{}) {
		c = DefaultCosts
	}
	cells := uint64(s.Cells())
	return &Layout{
		Scenario: s,
		Costs:    c,
		Risk:     t.Alloc(s.Name+" risk", cells*4),
		Dist:     t.Alloc(s.Name+" dist", cells*4),
		Frontier: t.Alloc(s.Name+" frontier", cells*8),
	}
}

// scatterStride spaces scattered references one cache line apart: the
// wavefront touches cells all over the grid, so consecutive references land
// on different lines.
const scatterStride = 64

// burstWrapped emits n references as one or more bursts that stay inside the
// region, wrapping to offset zero — the charge-preserving analogue of
// terrain's clamped bursts.
func burstWrapped(t *machine.Thread, r *mem.Region, stride, elem uint64, n int, write, dep bool) {
	if n <= 0 {
		return
	}
	per := int((r.Size-elem)/stride) + 1
	for n > 0 {
		k := n
		if k > per {
			k = per
		}
		t.Burst(mem.Burst{Region: r, Stride: stride, Elem: elem, N: k, Write: write, Dep: dep})
		n -= k
	}
}

// chargeScan charges one batch of frontier scanning: settled node claims and
// edge relaxations (streamed risk reads plus dependent distance loads).
func (lay *Layout) chargeScan(t *machine.Thread, settled, relaxed int) {
	if settled == 0 && relaxed == 0 {
		return
	}
	c := lay.Costs
	t.Compute(int64(settled)*c.OpsPerSettle + int64(relaxed)*c.OpsPerRelax)
	burstWrapped(t, lay.Risk, scatterStride, 4, relaxed*c.StreamRefsPerRelax, false, false)
	burstWrapped(t, lay.Dist, scatterStride, 4, relaxed*c.DepRefsPerRelax, false, true)
}

// chargeStage charges staging n candidate relaxations into a private buffer
// (the coarse variant's Program 2-style oversized per-chunk arrays).
func (lay *Layout) chargeStage(t *machine.Thread, buf *mem.Region, n int) {
	if n <= 0 {
		return
	}
	t.Compute(int64(n) * 4)
	burstWrapped(t, buf, 8, 8, n, true, false)
}

// chargeMergeCheck charges re-reading the authoritative distances for n
// candidates during a locked merge.
func (lay *Layout) chargeMergeCheck(t *machine.Thread, n int) {
	if n <= 0 {
		return
	}
	t.Compute(int64(n) * 6)
	burstWrapped(t, lay.Dist, scatterStride, 4, n, false, true)
}

// chargeApply charges n applied improvements: scattered distance stores plus
// appends to the shared frontier.
func (lay *Layout) chargeApply(t *machine.Thread, n int) {
	if n <= 0 {
		return
	}
	t.Compute(int64(n) * lay.Costs.OpsPerPush)
	burstWrapped(t, lay.Dist, scatterStride, 4, n, true, false)
	burstWrapped(t, lay.Frontier, 8, 8, n, true, false)
}

// chargeInit charges the per-request distance-array reset.
func (lay *Layout) chargeInit(t *machine.Thread) {
	cells := lay.Scenario.Cells()
	t.Compute(int64(cells) * 2)
	burstWrapped(t, lay.Dist, 4, 4, cells, true, false)
}

// Output is a solver's result: the per-request cheapest path costs (in query
// order — identical across all variants), the edge relaxations performed
// (parallel variants do some extra work), and the frontier storage the
// variant had to allocate — the memory overhead the coarse style pays for
// its private buffers.
type Output struct {
	PathCost      []int64
	Relaxed       int64
	FrontierBytes uint64
}

// heap64 is a binary min-heap of packed (distance<<32 | node) entries with
// lazy deletion — the sequential variant's priority queue.
type heap64 []uint64

func (h *heap64) push(x uint64) {
	*h = append(*h, x)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *heap64) pop() uint64 {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	*h = a[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && a[l] < a[m] {
			m = l
		}
		if r < n && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// Sequential is the reference program: Dijkstra's algorithm with a binary
// heap, one request after another, entirely on the calling thread.
func Sequential(t *machine.Thread, s *Scenario) *Output {
	return SequentialWithCosts(t, s, DefaultCosts)
}

// SequentialWithCosts is Sequential with an explicit cost calibration.
func SequentialWithCosts(t *machine.Thread, s *Scenario, c Costs) *Output {
	lay := NewLayout(t, s, c)
	out := &Output{FrontierBytes: lay.Frontier.Size}
	dist := make([]int32, s.Cells())
	for _, q := range s.Queries {
		out.PathCost = append(out.PathCost, lay.dijkstra(t, q, dist, out))
	}
	return out
}

func (lay *Layout) dijkstra(t *machine.Thread, q Query, dist []int32, out *Output) int64 {
	s, c := lay.Scenario, lay.Costs
	for i := range dist {
		dist[i] = inf
	}
	lay.chargeInit(t)
	start, goal := s.Index(q.SX, q.SY), s.Index(q.GX, q.GY)
	dist[start] = 0
	h := heap64{uint64(start)}
	settled, relaxed, pushed := 0, 0, 0
	flush := func() {
		lay.chargeScan(t, settled, relaxed)
		lay.chargeApply(t, pushed)
		out.Relaxed += int64(relaxed)
		settled, relaxed, pushed = 0, 0, 0
	}
	for len(h) > 0 {
		it := h.pop()
		d, v := int32(it>>32), int32(it&0xffffffff)
		if d != dist[v] {
			continue // stale heap entry
		}
		settled++
		if int(v) == goal {
			break
		}
		x, y := int(v)%s.W, int(v)/s.W
		relax := func(nb int) {
			relaxed++
			nd := d + s.EdgeWeight(nb)
			if nd < dist[nb] {
				dist[nb] = nd
				pushed++
				h.push(uint64(nd)<<32 | uint64(nb))
			}
		}
		if x > 0 {
			relax(int(v) - 1)
		}
		if x+1 < s.W {
			relax(int(v) + 1)
		}
		if y > 0 {
			relax(int(v) - s.W)
		}
		if y+1 < s.H {
			relax(int(v) + s.W)
		}
		if settled >= c.SettleBatch {
			flush()
		}
	}
	flush()
	return int64(dist[goal])
}

// queryState is the bucketed solvers' shared working state for one request.
type queryState struct {
	dist    []int32
	buckets [][]int32 // frontier node lists indexed by dist/delta; may hold stale entries
}

func (qs *queryState) reset() {
	for i := range qs.dist {
		qs.dist[i] = inf
	}
	for i := range qs.buckets {
		qs.buckets[i] = nil
	}
	qs.buckets = qs.buckets[:0]
}

// push files node v under its (new) distance nd. Stale entries left in old
// buckets are skipped when their bucket is processed.
func (qs *queryState) push(v, nd int32, delta int) {
	nb := int(nd) / delta
	for nb >= len(qs.buckets) {
		qs.buckets = append(qs.buckets, nil)
	}
	qs.buckets[nb] = append(qs.buckets[nb], v)
}

// cand is one candidate relaxation: node v may improve to distance nd.
type cand struct{ v, nd int32 }

// relaxInto scans the given frontier nodes, relaxing the edges of those still
// current for bucket b, and appends candidate improvements to cands. It does
// not touch shared state beyond racy distance pre-checks (the authoritative
// check happens at apply time).
func (lay *Layout) relaxInto(qs *queryState, b, delta int, nodes []int32, cands []cand) (settled, relaxed int, _ []cand) {
	s := lay.Scenario
	for _, v := range nodes {
		d := qs.dist[v]
		if int(d)/delta != b {
			continue // superseded by a better distance
		}
		settled++
		x, y := int(v)%s.W, int(v)/s.W
		relax := func(nb int) {
			relaxed++
			nd := d + s.EdgeWeight(nb)
			if nd < qs.dist[nb] {
				cands = append(cands, cand{int32(nb), nd})
			}
		}
		if x > 0 {
			relax(int(v) - 1)
		}
		if x+1 < s.W {
			relax(int(v) + 1)
		}
		if y > 0 {
			relax(int(v) - s.W)
		}
		if y+1 < s.H {
			relax(int(v) + s.W)
		}
	}
	return settled, relaxed, cands
}

// Coarse is the manual parallelization in the style of Programs 2 and 4:
// ∆-stepping where each bucket's frontier is split statically across a
// persistent crew of worker threads, created once per run (on conventional
// platforms thread creation costs tens to hundreds of thousands of cycles,
// so phase boundaries are barriers, not respawns). Each worker stages its
// candidate relaxations in a private oversized buffer (the storage drawback:
// every worker must be sized for the worst-case wavefront), then merges them
// into the shared distance array and bucket lists under per-block locks over
// the grid (blocks×blocks, as in Terrain Masking's ten-by-ten blocking).
func Coarse(t *machine.Thread, s *Scenario, workers, blocks int) *Output {
	return CoarseWithCosts(t, s, workers, blocks, DefaultDelta, DefaultCosts)
}

// CoarseWithCosts is Coarse with explicit ∆ and cost calibration.
func CoarseWithCosts(t *machine.Thread, s *Scenario, workers, blocks, delta int, c Costs) *Output {
	if workers < 1 || blocks < 1 || delta < 1 {
		panic("route: Coarse needs ≥1 worker, block and delta")
	}
	lay := NewLayout(t, s, c)
	out := &Output{FrontierBytes: lay.Frontier.Size}

	priv := make([]*mem.Region, workers)
	for w := range priv {
		priv[w] = t.Alloc(fmt.Sprintf("%s cand[%d]", s.Name, w), uint64(s.Cells())*8)
		out.FrontierBytes += priv[w].Size
	}

	locks := make([]*machine.Lock, blocks*blocks)
	for i := range locks {
		locks[i] = t.NewLock(fmt.Sprintf("%s block[%d]", s.Name, i))
	}
	blockW := (s.W + blocks - 1) / blocks
	blockH := (s.H + blocks - 1) / blocks
	lockOf := func(v int32) int {
		x, y := int(v)%s.W, int(v)/s.W
		return (y/blockH)*blocks + x/blockW
	}

	qs := &queryState{dist: make([]int32, s.Cells())}

	// Phase hand-off state: the parent publishes the wavefront, both sides
	// meet at the barrier, workers relax and merge, and everyone meets again.
	var (
		cur  []int32
		curB int
		done bool
	)
	bar := t.NewBarrier(s.Name+" phase", workers+1)
	ws := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		ws[w] = t.Go(fmt.Sprintf("%s worker[%d]", s.Name, w), func(wt *machine.Thread) {
			for {
				bar.Arrive(wt)
				if done {
					return
				}
				lo, hi := threads.ChunkBounds(len(cur), workers, w)
				if lo < hi {
					out.Relaxed += lay.coarseChunk(wt, qs, curB, delta, cur[lo:hi], priv[w], locks, lockOf)
				}
				bar.Arrive(wt)
			}
		})
	}

	for _, q := range s.Queries {
		qs.reset()
		lay.chargeInit(t)
		start, goal := s.Index(q.SX, q.SY), s.Index(q.GX, q.GY)
		qs.dist[start] = 0
		qs.push(int32(start), 0, delta)
		for b := 0; b < len(qs.buckets); b++ {
			for len(qs.buckets[b]) > 0 {
				cur = qs.buckets[b]
				qs.buckets[b] = nil
				curB = b
				// Serial driver: bucket bookkeeping on the parent thread.
				t.Compute(int64(len(cur))*c.SerialOpsPerNode + 40)
				bar.Arrive(t) // release the crew on this wavefront
				bar.Arrive(t) // wait for the merge to complete
			}
			if qs.dist[goal] != inf && int(qs.dist[goal])/delta <= b {
				break // the goal's bucket has been fully processed
			}
		}
		out.PathCost = append(out.PathCost, int64(qs.dist[goal]))
	}
	done = true
	bar.Arrive(t)
	t.JoinAll(ws)
	return out
}

// coarseChunk relaxes one chunk of the current bucket into its private
// buffer, then merges under per-block locks.
func (lay *Layout) coarseChunk(ct *machine.Thread, qs *queryState, b, delta int, nodes []int32,
	buf *mem.Region, locks []*machine.Lock, lockOf func(int32) int) int64 {

	settled, relaxed, cands := lay.relaxInto(qs, b, delta, nodes, nil)
	lay.chargeScan(ct, settled, relaxed)
	lay.chargeStage(ct, buf, len(cands))
	if len(cands) == 0 {
		return int64(relaxed)
	}
	sort.Slice(cands, func(i, j int) bool {
		bi, bj := lockOf(cands[i].v), lockOf(cands[j].v)
		if bi != bj {
			return bi < bj
		}
		if cands[i].v != cands[j].v {
			return cands[i].v < cands[j].v
		}
		return cands[i].nd < cands[j].nd
	})
	for i := 0; i < len(cands); {
		blk := lockOf(cands[i].v)
		j := i
		for j < len(cands) && lockOf(cands[j].v) == blk {
			j++
		}
		l := locks[blk]
		l.Lock(ct)
		applied := 0
		for k := i; k < j; k++ {
			cd := cands[k]
			if cd.nd < qs.dist[cd.v] {
				qs.dist[cd.v] = cd.nd
				qs.push(cd.v, cd.nd, delta)
				applied++
			}
		}
		lay.chargeMergeCheck(ct, j-i)
		lay.chargeApply(ct, applied)
		l.Unlock(ct)
		i = j
	}
	return int64(relaxed)
}

// Fine is the Tera style: the shared bucket structure is the synchronization
// point. Every wavefront spawns a crowd of short-lived threads; each claims a
// few frontier nodes with an atomic fetch-and-add, reserves push slots in the
// shared frontier with another, and guards distance updates with full/empty
// synchronization words striped over the distance array. No private buffers
// (no memory overhead), nondeterministic work order (the costs still converge
// to the unique shortest distances) — viable only where thread creation and
// per-word synchronization are nearly free.
func Fine(t *machine.Thread, s *Scenario, threadsN int) *Output {
	return FineWithCosts(t, s, threadsN, DefaultDelta, FineDefaultCosts)
}

// FineWithCosts is Fine with explicit ∆ and cost calibration.
func FineWithCosts(t *machine.Thread, s *Scenario, threadsN, delta int, c Costs) *Output {
	if threadsN < 1 || delta < 1 {
		panic("route: Fine needs ≥1 thread and delta")
	}
	lay := NewLayout(t, s, c)
	out := &Output{FrontierBytes: lay.Frontier.Size}

	// Full/empty guard words striped over the distance array, created full:
	// an updater empties a word (readFE), applies its improvements, and
	// refills it (writeEF).
	stripes := make([]*machine.SyncVar, fineStripes)
	for i := range stripes {
		stripes[i] = t.NewSyncVar(fmt.Sprintf("%s fe[%d]", s.Name, i))
		stripes[i].Write(t, 0)
	}
	tail := t.NewCounter(s.Name+" frontier tail", 0)

	qs := &queryState{dist: make([]int32, s.Cells())}
	for _, q := range s.Queries {
		qs.reset()
		lay.chargeInit(t)
		start, goal := s.Index(q.SX, q.SY), s.Index(q.GX, q.GY)
		qs.dist[start] = 0
		qs.push(int32(start), 0, delta)
		for b := 0; b < len(qs.buckets); b++ {
			for len(qs.buckets[b]) > 0 {
				cur := qs.buckets[b]
				qs.buckets[b] = nil
				t.Compute(int64(len(cur))*c.SerialOpsPerNode + 40)
				nth := (len(cur) + fineClaim - 1) / fineClaim
				if nth > threadsN {
					nth = threadsN
				}
				if nth <= 1 {
					out.Relaxed += lay.fineSpan(t, qs, b, delta, cur, 0, len(cur), stripes, tail)
					continue
				}
				claim := t.NewCounter(lay.Scenario.Name+" claim", 0)
				ws := make([]*machine.Thread, nth)
				for i := 0; i < nth; i++ {
					ws[i] = t.Go(fmt.Sprintf("%s relax[%d]", lay.Scenario.Name, i), func(ct *machine.Thread) {
						for {
							k := int(claim.Add(ct, fineClaim))
							if k >= len(cur) {
								return
							}
							hi := k + fineClaim
							if hi > len(cur) {
								hi = len(cur)
							}
							out.Relaxed += lay.fineSpan(ct, qs, b, delta, cur, k, hi, stripes, tail)
						}
					})
				}
				t.JoinAll(ws)
			}
			if qs.dist[goal] != inf && int(qs.dist[goal])/delta <= b {
				break
			}
		}
		out.PathCost = append(out.PathCost, int64(qs.dist[goal]))
	}
	return out
}

// fineSpan processes one claimed slice of the current bucket: relax, reserve
// frontier slots, and apply improvements stripe by stripe, each batch under
// its distance words' full/empty guard.
func (lay *Layout) fineSpan(ct *machine.Thread, qs *queryState, b, delta int, cur []int32,
	lo, hi int, stripes []*machine.SyncVar, tail *machine.Counter) int64 {

	settled, relaxed, local := lay.relaxInto(qs, b, delta, cur[lo:hi], nil)
	lay.chargeScan(ct, settled, relaxed)
	if len(local) == 0 {
		return int64(relaxed)
	}
	tail.Add(ct, int64(len(local))) // reserve push slots: int_fetch_add on the frontier tail
	stripeOf := func(cd cand) int { return int(cd.v) % len(stripes) }
	sort.Slice(local, func(i, j int) bool {
		si, sj := stripeOf(local[i]), stripeOf(local[j])
		if si != sj {
			return si < sj
		}
		if local[i].v != local[j].v {
			return local[i].v < local[j].v
		}
		return local[i].nd < local[j].nd
	})
	applied := 0
	for i := 0; i < len(local); {
		st := stripeOf(local[i])
		j := i
		for j < len(local) && stripeOf(local[j]) == st {
			j++
		}
		sv := stripes[st]
		sv.ReadFE(ct)
		for _, cd := range local[i:j] {
			if cd.nd < qs.dist[cd.v] {
				qs.dist[cd.v] = cd.nd
				qs.push(cd.v, cd.nd, delta)
				applied++
			}
		}
		sv.WriteEF(ct, 0)
		i = j
	}
	lay.chargeApply(ct, applied)
	return int64(relaxed)
}

// CoarseFrontierBytesFullScale returns the private candidate-buffer storage
// the coarse variant needs for the given worker count at the full C3I
// terrain resolution (2380² cells, 8-byte entries per worst-case wavefront
// slot). Like Terrain Masking's per-worker temp arrays, this is what makes
// the coarse style impractical at the hundreds of streams the MTA needs.
func CoarseFrontierBytesFullScale(workers int) uint64 {
	const fullSide = 2380
	return uint64(workers) * fullSide * fullSide * 8
}
