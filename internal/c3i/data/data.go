// Package data provides the C3I Parallel Benchmark Suite's data management:
// each benchmark problem ships with "the benchmark input data" and "a
// correctness test for the benchmark output data". Scenarios serialize to a
// versioned binary format (gob with a magic header), and outputs reduce to
// stable FNV-1a checksums so a run can be validated without storing full
// golden outputs — the Terrain Masking result alone is tens of megabytes.
//
// The command c3idata generates scenario files and golden checksums, and
// re-validates solver outputs against them.
package data

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/c3i/hypothesis"
	"repro/internal/c3i/plottrack"
	"repro/internal/c3i/route"
	"repro/internal/c3i/suite"
	"repro/internal/c3i/terrain"
	"repro/internal/c3i/threat"
)

// magic identifies scenario files; the byte after it is a format version.
// Version 2 added the Route Optimization scenario kind; version 3 added
// Plot-Track Assignment; version 4 added Hypothesis Testing.
const (
	magic   = "C3IPBS\x00"
	version = 4

	kindThreat  = "threat-analysis"
	kindTerrain = "terrain-masking"
	kindRoute   = "route-optimization"
	kindPlot    = "plot-track-assignment"
	kindHypo    = "hypothesis-testing"
)

// header is the self-describing prefix of every scenario file.
type header struct {
	Kind    string
	Version int
}

func writeFile(path, kind string, payload interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(magic); err != nil {
		return fmt.Errorf("data: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Kind: kind, Version: version}); err != nil {
		return fmt.Errorf("data: encode header: %w", err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("data: encode payload: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("data: %w", err)
	}
	return nil
}

func readFile(path, wantKind string, payload interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil || string(got) != magic {
		return fmt.Errorf("data: %s is not a C3IPBS scenario file", path)
	}
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("data: decode header: %w", err)
	}
	if h.Kind != wantKind {
		return fmt.Errorf("data: %s holds a %s scenario, want %s", path, h.Kind, wantKind)
	}
	if h.Version != version {
		return fmt.Errorf("data: %s has format version %d, want %d", path, h.Version, version)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("data: decode payload: %w", err)
	}
	return nil
}

// threatFile is the serialized form of a Threat Analysis scenario.
type threatFile struct {
	Name    string
	DT      float64
	Threats []threat.Threat
	Weapons []threat.Weapon
}

// SaveThreatScenario writes a Threat Analysis scenario to path.
func SaveThreatScenario(path string, s *threat.Scenario) error {
	return writeFile(path, kindThreat, threatFile{
		Name: s.Name, DT: s.DT, Threats: s.Threats, Weapons: s.Weapons,
	})
}

// LoadThreatScenario reads a Threat Analysis scenario from path.
func LoadThreatScenario(path string) (*threat.Scenario, error) {
	var tf threatFile
	if err := readFile(path, kindThreat, &tf); err != nil {
		return nil, err
	}
	return &threat.Scenario{Name: tf.Name, DT: tf.DT, Threats: tf.Threats, Weapons: tf.Weapons}, nil
}

// terrainFile is the serialized form of a Terrain Masking scenario.
type terrainFile struct {
	Name    string
	W, H    int
	Elev    []float32
	Threats []terrain.ThreatSite
}

// SaveTerrainScenario writes a Terrain Masking scenario to path.
func SaveTerrainScenario(path string, s *terrain.Scenario) error {
	return writeFile(path, kindTerrain, terrainFile{
		Name: s.Name, W: s.Grid.W, H: s.Grid.H, Elev: s.Grid.Elev, Threats: s.Threats,
	})
}

// LoadTerrainScenario reads a Terrain Masking scenario from path.
func LoadTerrainScenario(path string) (*terrain.Scenario, error) {
	var tf terrainFile
	if err := readFile(path, kindTerrain, &tf); err != nil {
		return nil, err
	}
	if len(tf.Elev) != tf.W*tf.H {
		return nil, fmt.Errorf("data: %s: elevation length %d != %d×%d", path, len(tf.Elev), tf.W, tf.H)
	}
	return &terrain.Scenario{
		Name:    tf.Name,
		Grid:    &terrain.Grid{W: tf.W, H: tf.H, Elev: tf.Elev},
		Threats: tf.Threats,
	}, nil
}

// routeFile is the serialized form of a Route Optimization scenario.
type routeFile struct {
	Name    string
	W, H    int
	Risk    []int32
	Queries []route.Query
}

// SaveRouteScenario writes a Route Optimization scenario to path.
func SaveRouteScenario(path string, s *route.Scenario) error {
	return writeFile(path, kindRoute, routeFile{
		Name: s.Name, W: s.W, H: s.H, Risk: s.Risk, Queries: s.Queries,
	})
}

// LoadRouteScenario reads a Route Optimization scenario from path.
func LoadRouteScenario(path string) (*route.Scenario, error) {
	var rf routeFile
	if err := readFile(path, kindRoute, &rf); err != nil {
		return nil, err
	}
	if len(rf.Risk) != rf.W*rf.H {
		return nil, fmt.Errorf("data: %s: risk length %d != %d×%d", path, len(rf.Risk), rf.W, rf.H)
	}
	for i, r := range rf.Risk {
		if r < 0 {
			return nil, fmt.Errorf("data: %s: negative risk %d at cell %d", path, r, i)
		}
	}
	for _, q := range rf.Queries {
		if q.SX < 0 || q.SX >= rf.W || q.SY < 0 || q.SY >= rf.H ||
			q.GX < 0 || q.GX >= rf.W || q.GY < 0 || q.GY >= rf.H {
			return nil, fmt.Errorf("data: %s: query %d endpoints (%d,%d)→(%d,%d) outside %d×%d grid",
				path, q.ID, q.SX, q.SY, q.GX, q.GY, rf.W, rf.H)
		}
	}
	return &route.Scenario{Name: rf.Name, W: rf.W, H: rf.H, Risk: rf.Risk, Queries: rf.Queries}, nil
}

// plotFile is the serialized form of a Plot-Track Assignment scenario.
type plotFile struct {
	Name   string
	Field  int32
	Tracks []plottrack.Track
	Frames [][]plottrack.Plot
}

// SavePlotScenario writes a Plot-Track Assignment scenario to path.
func SavePlotScenario(path string, s *plottrack.Scenario) error {
	return writeFile(path, kindPlot, plotFile{
		Name: s.Name, Field: s.Field, Tracks: s.Tracks, Frames: s.Frames,
	})
}

// LoadPlotScenario reads a Plot-Track Assignment scenario from path.
func LoadPlotScenario(path string) (*plottrack.Scenario, error) {
	var pf plotFile
	if err := readFile(path, kindPlot, &pf); err != nil {
		return nil, err
	}
	if pf.Field <= 0 {
		return nil, fmt.Errorf("data: %s: field size %d, want positive", path, pf.Field)
	}
	for _, tr := range pf.Tracks {
		if tr.X < 0 || tr.X >= pf.Field || tr.Y < 0 || tr.Y >= pf.Field {
			return nil, fmt.Errorf("data: %s: track %d at (%d,%d) outside %d×%d field",
				path, tr.ID, tr.X, tr.Y, pf.Field, pf.Field)
		}
		if tr.Quality < 0 || tr.Quality > plottrack.MaxQuality {
			return nil, fmt.Errorf("data: %s: track %d quality %d outside 0..%d",
				path, tr.ID, tr.Quality, plottrack.MaxQuality)
		}
	}
	for f, frame := range pf.Frames {
		if len(frame) != len(pf.Frames[0]) {
			return nil, fmt.Errorf("data: %s: frame %d has %d plots, frame 0 has %d — frames must be one size",
				path, f, len(frame), len(pf.Frames[0]))
		}
		for _, p := range frame {
			if p.X < 0 || p.X >= pf.Field || p.Y < 0 || p.Y >= pf.Field {
				return nil, fmt.Errorf("data: %s: frame %d plot %d at (%d,%d) outside %d×%d field",
					path, f, p.ID, p.X, p.Y, pf.Field, pf.Field)
			}
		}
	}
	return &plottrack.Scenario{Name: pf.Name, Field: pf.Field, Tracks: pf.Tracks, Frames: pf.Frames}, nil
}

// hypoFile is the serialized form of a Hypothesis Testing scenario.
type hypoFile struct {
	Name  string
	Field int32
	Steps int32
	Hyps  []hypothesis.Hypothesis
	Obs   []hypothesis.Observation
}

// SaveHypothesisScenario writes a Hypothesis Testing scenario to path.
func SaveHypothesisScenario(path string, s *hypothesis.Scenario) error {
	return writeFile(path, kindHypo, hypoFile{
		Name: s.Name, Field: s.Field, Steps: s.Steps, Hyps: s.Hyps, Obs: s.Obs,
	})
}

// LoadHypothesisScenario reads a Hypothesis Testing scenario from path.
func LoadHypothesisScenario(path string) (*hypothesis.Scenario, error) {
	var hf hypoFile
	if err := readFile(path, kindHypo, &hf); err != nil {
		return nil, err
	}
	if hf.Field <= 0 || hf.Steps <= 0 {
		return nil, fmt.Errorf("data: %s: field %d / steps %d, want positive", path, hf.Field, hf.Steps)
	}
	for _, h := range hf.Hyps {
		if h.X < 0 || h.X >= hf.Field || h.Y < 0 || h.Y >= hf.Field {
			return nil, fmt.Errorf("data: %s: hypothesis %d at (%d,%d) outside %d×%d field",
				path, h.ID, h.X, h.Y, hf.Field, hf.Field)
		}
		if h.VX < -hypothesis.MaxSpeed || h.VX > hypothesis.MaxSpeed ||
			h.VY < -hypothesis.MaxSpeed || h.VY > hypothesis.MaxSpeed {
			return nil, fmt.Errorf("data: %s: hypothesis %d velocity (%d,%d) outside ±%d",
				path, h.ID, h.VX, h.VY, hypothesis.MaxSpeed)
		}
		if h.Prior < 0 || h.Prior > hypothesis.MaxPrior {
			return nil, fmt.Errorf("data: %s: hypothesis %d prior %d outside 0..%d",
				path, h.ID, h.Prior, hypothesis.MaxPrior)
		}
	}
	for i, o := range hf.Obs {
		if o.T < 0 || o.T >= hf.Steps {
			return nil, fmt.Errorf("data: %s: observation %d at step %d outside 0..%d",
				path, o.ID, o.T, hf.Steps-1)
		}
		if o.X < 0 || o.X >= hf.Field || o.Y < 0 || o.Y >= hf.Field {
			return nil, fmt.Errorf("data: %s: observation %d at (%d,%d) outside %d×%d field",
				path, o.ID, o.X, o.Y, hf.Field, hf.Field)
		}
		if i > 0 && o.T < hf.Obs[i-1].T {
			return nil, fmt.Errorf("data: %s: observation stream not time-ordered at index %d", path, i)
		}
	}
	return &hypothesis.Scenario{
		Name: hf.Name, Field: hf.Field, Steps: hf.Steps, Hyps: hf.Hyps, Obs: hf.Obs,
	}, nil
}

// AssignmentChecksum reduces a Plot-Track Assignment result to a stable
// checksum over the problem shape and the per-frame minimum assignment
// costs — the quantities every solver variant provably shares regardless of
// which equal-cost optimum its bid order lands on.
func AssignmentChecksum(frameCosts []int64, plots, tracks int) uint64 {
	return plottrack.Checksum(frameCosts, plots, tracks)
}

// PathCostChecksum reduces a Route Optimization result to a stable checksum
// over the per-request path costs in query order. Every solver variant
// converges to the same shortest distances, so all three produce the same
// value regardless of their internal work order.
func PathCostChecksum(costs []int64) uint64 { return route.Checksum(costs) }

// IntervalsChecksum reduces a Threat Analysis result to a stable checksum:
// the intervals are canonically sorted first, so all solver variants
// (including the nondeterministically-ordered fine-grained one) produce the
// same value.
func IntervalsChecksum(ivs []threat.Interval) uint64 { return threat.Checksum(ivs) }

// MaskingChecksum reduces a Terrain Masking result to a stable checksum over
// the float32 bit patterns (+Inf cells included, so coverage changes are
// detected).
func MaskingChecksum(m *terrain.Masking) uint64 { return m.Checksum() }

// SurvivorChecksum reduces a Hypothesis Testing result to a stable checksum
// over the problem shape, the best score and the surviving hypotheses with
// their evidence totals. Evidence addition commutes, so all solver variants
// (including the nondeterministically-ordered fine-grained one) produce the
// same value.
func SurvivorChecksum(out *hypothesis.Output, hyps, obs int) uint64 {
	return hypothesis.Checksum(out, hyps, obs)
}

// Codec bundles the serialization hooks for one registered workload kind,
// so registry-driven consumers (cmd/c3idata) can save and load scenarios
// without per-kind branches. Kind equals the suite.Workload name.
type Codec struct {
	Kind string
	Save func(path string, sc suite.Scenario) error
	Load func(path string) (suite.Scenario, error)
}

// codecs maps workload names to their serialization hooks. A workload added
// to the suite registry needs exactly one entry here to join the data tools.
var codecs = map[string]Codec{
	kindThreat: {
		Kind: kindThreat,
		Save: func(path string, sc suite.Scenario) error {
			s, ok := sc.(*threat.Scenario)
			if !ok {
				return fmt.Errorf("data: %s codec got %T", kindThreat, sc)
			}
			return SaveThreatScenario(path, s)
		},
		Load: func(path string) (suite.Scenario, error) { return LoadThreatScenario(path) },
	},
	kindTerrain: {
		Kind: kindTerrain,
		Save: func(path string, sc suite.Scenario) error {
			s, ok := sc.(*terrain.Scenario)
			if !ok {
				return fmt.Errorf("data: %s codec got %T", kindTerrain, sc)
			}
			return SaveTerrainScenario(path, s)
		},
		Load: func(path string) (suite.Scenario, error) { return LoadTerrainScenario(path) },
	},
	kindRoute: {
		Kind: kindRoute,
		Save: func(path string, sc suite.Scenario) error {
			s, ok := sc.(*route.Scenario)
			if !ok {
				return fmt.Errorf("data: %s codec got %T", kindRoute, sc)
			}
			return SaveRouteScenario(path, s)
		},
		Load: func(path string) (suite.Scenario, error) { return LoadRouteScenario(path) },
	},
	kindPlot: {
		Kind: kindPlot,
		Save: func(path string, sc suite.Scenario) error {
			s, ok := sc.(*plottrack.Scenario)
			if !ok {
				return fmt.Errorf("data: %s codec got %T", kindPlot, sc)
			}
			return SavePlotScenario(path, s)
		},
		Load: func(path string) (suite.Scenario, error) { return LoadPlotScenario(path) },
	},
	kindHypo: {
		Kind: kindHypo,
		Save: func(path string, sc suite.Scenario) error {
			s, ok := sc.(*hypothesis.Scenario)
			if !ok {
				return fmt.Errorf("data: %s codec got %T", kindHypo, sc)
			}
			return SaveHypothesisScenario(path, s)
		},
		Load: func(path string) (suite.Scenario, error) { return LoadHypothesisScenario(path) },
	},
}

// CodecFor returns the serialization codec for a registered workload kind.
func CodecFor(kind string) (Codec, error) {
	c, ok := codecs[kind]
	if !ok {
		return Codec{}, fmt.Errorf("data: no codec for workload kind %q", kind)
	}
	return c, nil
}

// Golden records the expected checksum for one scenario — the benchmark's
// correctness test.
type Golden struct {
	Scenario string
	Kind     string
	Checksum uint64
}

// SaveGolden writes golden records to path (gob, same header scheme).
func SaveGolden(path string, gs []Golden) error {
	return writeFile(path, "golden", gs)
}

// LoadGolden reads golden records from path.
func LoadGolden(path string) ([]Golden, error) {
	var gs []Golden
	if err := readFile(path, "golden", &gs); err != nil {
		return nil, err
	}
	return gs, nil
}

// CheckGolden compares a computed checksum against the golden record for a
// scenario, returning a descriptive error on mismatch or missing record.
func CheckGolden(gs []Golden, scenario, kind string, checksum uint64) error {
	for _, g := range gs {
		if g.Scenario == scenario && g.Kind == kind {
			if g.Checksum != checksum {
				return fmt.Errorf("data: %s %s: checksum %016x, golden %016x — output is wrong",
					kind, scenario, checksum, g.Checksum)
			}
			return nil
		}
	}
	return fmt.Errorf("data: no golden record for %s %s", kind, scenario)
}
