package data

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/c3i/terrain"
	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/smp"
)

func TestThreatScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.c3i")
	s := threat.GenScenario("rt", threat.GenParams{NumThreats: 25, NumWeapons: 8, Seed: 5})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadThreatScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.DT != s.DT {
		t.Errorf("metadata mismatch: %q %v", got.Name, got.DT)
	}
	if len(got.Threats) != len(s.Threats) || len(got.Weapons) != len(s.Weapons) {
		t.Fatalf("count mismatch")
	}
	for i := range s.Threats {
		if got.Threats[i] != s.Threats[i] {
			t.Fatalf("threat %d differs after round trip", i)
		}
	}
	for i := range s.Weapons {
		if got.Weapons[i] != s.Weapons[i] {
			t.Fatalf("weapon %d differs after round trip", i)
		}
	}
}

func TestTerrainScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t1.c3i")
	s := terrain.GenScenario("rt", terrain.GenParams{Side: 200, NumThreats: 4, Radius: 30, Seed: 9})
	if err := SaveTerrainScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTerrainScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid.W != s.Grid.W || got.Grid.H != s.Grid.H {
		t.Fatalf("grid dims differ")
	}
	for i := range s.Grid.Elev {
		if got.Grid.Elev[i] != s.Grid.Elev[i] {
			t.Fatalf("elevation %d differs", i)
		}
	}
	for i := range s.Threats {
		if got.Threats[i] != s.Threats[i] {
			t.Fatalf("site %d differs", i)
		}
	}
}

func TestLoadedScenarioSolvesIdentically(t *testing.T) {
	// The serialized scenario must produce exactly the same benchmark output.
	dir := t.TempDir()
	path := filepath.Join(dir, "s.c3i")
	s := threat.GenScenario("eq", threat.GenParams{NumThreats: 20, NumWeapons: 6, Seed: 11})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadThreatScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(sc *threat.Scenario) []threat.Interval {
		var out *threat.Output
		e := smp.New(smp.AlphaStation())
		if _, err := e.Run("solve", func(th *machine.Thread) {
			out = threat.Sequential(th, sc)
		}); err != nil {
			t.Fatal(err)
		}
		return out.Intervals
	}
	if IntervalsChecksum(solve(s)) != IntervalsChecksum(solve(loaded)) {
		t.Error("loaded scenario solves to a different checksum")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.c3i")
	s := threat.GenScenario("k", threat.GenParams{NumThreats: 5, NumWeapons: 2, Seed: 1})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTerrainScenario(path); err == nil {
		t.Error("loading a threat file as terrain did not fail")
	}
}

func TestGarbageRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a scenario"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadThreatScenario(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := LoadThreatScenario(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestIntervalsChecksumOrderInsensitive(t *testing.T) {
	a := []threat.Interval{{Threat: 0, Weapon: 1, T1: 5, T2: 9}, {Threat: 2, Weapon: 0, T1: 1, T2: 2}}
	b := []threat.Interval{a[1], a[0]}
	if IntervalsChecksum(a) != IntervalsChecksum(b) {
		t.Error("checksum depends on order")
	}
	c := append([]threat.Interval{}, a...)
	c[0].T2 = 10
	if IntervalsChecksum(a) == IntervalsChecksum(c) {
		t.Error("checksum missed a changed interval")
	}
	if IntervalsChecksum(a) == IntervalsChecksum(a[:1]) {
		t.Error("checksum missed a dropped interval")
	}
}

func TestMaskingChecksumSensitive(t *testing.T) {
	g := &terrain.Grid{W: 10, H: 10, Elev: make([]float32, 100)}
	a := terrain.NewMasking(g)
	b := terrain.NewMasking(g)
	if MaskingChecksum(a) != MaskingChecksum(b) {
		t.Error("identical maskings differ")
	}
	b.Vals[55] = 123
	if MaskingChecksum(a) == MaskingChecksum(b) {
		t.Error("changed cell not detected")
	}
	// +Inf vs 0 must differ (coverage matters).
	c := terrain.NewMasking(g)
	c.Vals[0] = 0
	if MaskingChecksum(a) == MaskingChecksum(c) {
		t.Error("Inf→0 not detected")
	}
	if math.IsInf(float64(a.Vals[0]), 1) != true {
		t.Error("fresh masking not +Inf")
	}
}

func TestGoldenRoundTripAndCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.c3i")
	gs := []Golden{
		{Scenario: "scenario-1", Kind: "threat-analysis", Checksum: 0xdeadbeef},
		{Scenario: "scenario-1", Kind: "terrain-masking", Checksum: 0x1234},
	}
	if err := SaveGolden(path, gs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d records", len(loaded))
	}
	if err := CheckGolden(loaded, "scenario-1", "threat-analysis", 0xdeadbeef); err != nil {
		t.Errorf("valid checksum rejected: %v", err)
	}
	if err := CheckGolden(loaded, "scenario-1", "threat-analysis", 0xbad); err == nil {
		t.Error("wrong checksum accepted")
	}
	if err := CheckGolden(loaded, "scenario-9", "threat-analysis", 1); err == nil {
		t.Error("missing record accepted")
	}
}
