package data

import (
	"bufio"
	"encoding/gob"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/c3i/plottrack"
	"repro/internal/c3i/route"
	"repro/internal/c3i/terrain"
	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func TestThreatScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.c3i")
	s := threat.GenScenario("rt", threat.GenParams{NumThreats: 25, NumWeapons: 8, Seed: 5})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadThreatScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.DT != s.DT {
		t.Errorf("metadata mismatch: %q %v", got.Name, got.DT)
	}
	if len(got.Threats) != len(s.Threats) || len(got.Weapons) != len(s.Weapons) {
		t.Fatalf("count mismatch")
	}
	for i := range s.Threats {
		if got.Threats[i] != s.Threats[i] {
			t.Fatalf("threat %d differs after round trip", i)
		}
	}
	for i := range s.Weapons {
		if got.Weapons[i] != s.Weapons[i] {
			t.Fatalf("weapon %d differs after round trip", i)
		}
	}
}

func TestTerrainScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t1.c3i")
	s := terrain.GenScenario("rt", terrain.GenParams{Side: 200, NumThreats: 4, Radius: 30, Seed: 9})
	if err := SaveTerrainScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTerrainScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid.W != s.Grid.W || got.Grid.H != s.Grid.H {
		t.Fatalf("grid dims differ")
	}
	for i := range s.Grid.Elev {
		if got.Grid.Elev[i] != s.Grid.Elev[i] {
			t.Fatalf("elevation %d differs", i)
		}
	}
	for i := range s.Threats {
		if got.Threats[i] != s.Threats[i] {
			t.Fatalf("site %d differs", i)
		}
	}
}

func TestLoadedScenarioSolvesIdentically(t *testing.T) {
	// The serialized scenario must produce exactly the same benchmark output.
	dir := t.TempDir()
	path := filepath.Join(dir, "s.c3i")
	s := threat.GenScenario("eq", threat.GenParams{NumThreats: 20, NumWeapons: 6, Seed: 11})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadThreatScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(sc *threat.Scenario) []threat.Interval {
		var out *threat.Output
		e := smp.New(smp.AlphaStation())
		if _, err := e.Run("solve", func(th *machine.Thread) {
			out = threat.Sequential(th, sc)
		}); err != nil {
			t.Fatal(err)
		}
		return out.Intervals
	}
	if IntervalsChecksum(solve(s)) != IntervalsChecksum(solve(loaded)) {
		t.Error("loaded scenario solves to a different checksum")
	}
}

func TestRouteScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r1.c3i")
	s := route.GenScenario("rt", route.GenParams{Side: 48, NumThreats: 4, Radius: 8, NumQueries: 3, Seed: 3})
	if err := SaveRouteScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRouteScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.W != s.W || got.H != s.H {
		t.Fatalf("metadata mismatch: %q %dx%d", got.Name, got.W, got.H)
	}
	for i := range s.Risk {
		if got.Risk[i] != s.Risk[i] {
			t.Fatalf("risk %d differs after round trip", i)
		}
	}
	for i := range s.Queries {
		if got.Queries[i] != s.Queries[i] {
			t.Fatalf("query %d differs after round trip", i)
		}
	}
}

// TestRouteVariantsMatchGoldenChecksum is the suite's correctness test for
// the Route Optimization problem: all three solver variants must reproduce
// the golden path-cost checksum recorded from the sequential reference.
func TestRouteVariantsMatchGoldenChecksum(t *testing.T) {
	s := route.GenScenario("golden", route.GenParams{Side: 48, NumThreats: 4, Radius: 8, NumQueries: 3, Seed: 3})
	solve := func(e *machine.Engine, f func(*machine.Thread) *route.Output) *route.Output {
		var out *route.Output
		if _, err := e.Run("solve", func(th *machine.Thread) { out = f(th) }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := solve(smp.New(smp.AlphaStation()), func(th *machine.Thread) *route.Output {
		return route.Sequential(th, s)
	})
	goldens := []Golden{{Scenario: s.Name, Kind: "route-optimization", Checksum: PathCostChecksum(ref.PathCost)}}

	coarse := solve(smp.New(smp.PentiumProSMP(4)), func(th *machine.Thread) *route.Output {
		return route.Coarse(th, s, 4, 4)
	})
	fine := solve(mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *route.Output {
		return route.Fine(th, s, 32)
	})
	for name, out := range map[string]*route.Output{"coarse": coarse, "fine": fine} {
		if err := CheckGolden(goldens, s.Name, "route-optimization", PathCostChecksum(out.PathCost)); err != nil {
			t.Errorf("%s variant does not match golden: %v", name, err)
		}
	}
	if err := CheckGolden(goldens, s.Name, "route-optimization", PathCostChecksum(ref.PathCost[:1])); err == nil {
		t.Error("truncated path costs matched the golden checksum")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.c3i")
	s := threat.GenScenario("k", threat.GenParams{NumThreats: 5, NumWeapons: 2, Seed: 1})
	if err := SaveThreatScenario(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTerrainScenario(path); err == nil {
		t.Error("loading a threat file as terrain did not fail")
	}
}

func TestGarbageRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a scenario"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadThreatScenario(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := LoadThreatScenario(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "badmagic")
	// Right length, wrong bytes — and long enough to hold a plausible body.
	if err := os.WriteFile(path, []byte("C3IPBX\x00 followed by junk payload bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadThreatScenario(path); err == nil {
		t.Error("bad magic accepted")
	} else if !strings.Contains(err.Error(), "not a C3IPBS scenario file") {
		t.Errorf("bad magic error %q does not name the format", err)
	}
	if _, err := LoadGolden(path); err == nil {
		t.Error("bad magic accepted for golden file")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mystery.c3i")
	if err := writeFile(path, "hypothesis-testing", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for name, load := range map[string]func(string) error{
		"threat":  func(p string) error { _, err := LoadThreatScenario(p); return err },
		"terrain": func(p string) error { _, err := LoadTerrainScenario(p); return err },
		"route":   func(p string) error { _, err := LoadRouteScenario(p); return err },
		"plot":    func(p string) error { _, err := LoadPlotScenario(p); return err },
	} {
		if err := load(path); err == nil {
			t.Errorf("%s loader accepted a hypothesis-testing file", name)
		} else if !strings.Contains(err.Error(), "hypothesis-testing") {
			t.Errorf("%s loader error %q does not name the found kind", name, err)
		}
	}
}

func TestPlotScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p1.c3i")
	s := plottrack.GenScenario("rt", plottrack.GenParams{Field: 256, NumTracks: 12, NumPlots: 14, Frames: 3, Seed: 3})
	if err := SavePlotScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlotScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Field != s.Field {
		t.Fatalf("metadata mismatch: %q field %d", got.Name, got.Field)
	}
	for i := range s.Tracks {
		if got.Tracks[i] != s.Tracks[i] {
			t.Fatalf("track %d differs after round trip", i)
		}
	}
	if len(got.Frames) != len(s.Frames) {
		t.Fatalf("%d frames after round trip, want %d", len(got.Frames), len(s.Frames))
	}
	for f := range s.Frames {
		for i := range s.Frames[f] {
			if got.Frames[f][i] != s.Frames[f][i] {
				t.Fatalf("frame %d plot %d differs after round trip", f, i)
			}
		}
	}
}

func TestPlotScenarioValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		label string
		file  plotFile
		want  string
	}{
		{"zero field", plotFile{Name: "x", Field: 0}, "field size"},
		{"track outside", plotFile{Name: "x", Field: 8,
			Tracks: []plottrack.Track{{ID: 0, X: 9, Y: 0}}}, "outside"},
		{"bad quality", plotFile{Name: "x", Field: 8,
			Tracks: []plottrack.Track{{ID: 0, X: 1, Y: 1, Quality: 99}}}, "quality"},
		{"plot outside", plotFile{Name: "x", Field: 8,
			Frames: [][]plottrack.Plot{{{ID: 0, X: -1, Y: 0}}}}, "outside"},
		{"ragged frames", plotFile{Name: "x", Field: 8,
			Frames: [][]plottrack.Plot{{{ID: 0, X: 1, Y: 1}}, {}}}, "one size"},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.label+".c3i")
		if err := writeFile(path, "plot-track-assignment", tc.file); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPlotScenario(path); err == nil {
			t.Errorf("%s: accepted", tc.label)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
	}
}

// TestPlotVariantsMatchGoldenChecksum is the suite's correctness test for
// the Plot-Track Assignment problem: all three solver variants must
// reproduce the golden assignment-cost checksum recorded from the
// sequential reference.
func TestPlotVariantsMatchGoldenChecksum(t *testing.T) {
	s := plottrack.GenScenario("golden", plottrack.GenParams{Field: 256, NumTracks: 18, NumPlots: 20, Frames: 2, Seed: 5})
	solve := func(e *machine.Engine, f func(*machine.Thread) *plottrack.Output) *plottrack.Output {
		var out *plottrack.Output
		if _, err := e.Run("solve", func(th *machine.Thread) { out = f(th) }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	sum := func(out *plottrack.Output) uint64 {
		return AssignmentChecksum(out.FrameCost, len(s.Frames[0]), len(s.Tracks))
	}
	ref := solve(smp.New(smp.AlphaStation()), func(th *machine.Thread) *plottrack.Output {
		return plottrack.Sequential(th, s)
	})
	goldens := []Golden{{Scenario: s.Name, Kind: "plot-track-assignment", Checksum: sum(ref)}}

	coarse := solve(smp.New(smp.PentiumProSMP(4)), func(th *machine.Thread) *plottrack.Output {
		return plottrack.Coarse(th, s, 4)
	})
	fine := solve(mta.New(mta.Params{Procs: 1}), func(th *machine.Thread) *plottrack.Output {
		return plottrack.Fine(th, s, 32)
	})
	for name, out := range map[string]*plottrack.Output{"coarse": coarse, "fine": fine} {
		if err := CheckGolden(goldens, s.Name, "plot-track-assignment", sum(out)); err != nil {
			t.Errorf("%s variant does not match golden: %v", name, err)
		}
	}
	if err := CheckGolden(goldens, s.Name, "plot-track-assignment",
		AssignmentChecksum(ref.FrameCost[:1], len(s.Frames[0]), len(s.Tracks))); err == nil {
		t.Error("truncated frame costs matched the golden checksum")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.c3i")
	// Hand-assemble a file with a future format version but valid payload.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(magic); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Kind: kindThreat, Version: version + 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(threatFile{Name: "v", DT: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadThreatScenario(path); err == nil {
		t.Error("future format version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch error %q does not mention the version", err)
	}
}

func TestPathCostChecksum(t *testing.T) {
	a := []int64{10, 20, 30}
	b := []int64{10, 20, 30}
	if PathCostChecksum(a) != PathCostChecksum(b) {
		t.Error("identical cost lists differ")
	}
	if PathCostChecksum(a) == PathCostChecksum([]int64{10, 30, 20}) {
		t.Error("checksum ignores query order (it must not: costs are per query)")
	}
	if PathCostChecksum(a) == PathCostChecksum(a[:2]) {
		t.Error("checksum missed a dropped cost")
	}
	if PathCostChecksum(nil) == PathCostChecksum([]int64{0}) {
		t.Error("empty vs single-zero collide")
	}
}

func TestIntervalsChecksumOrderInsensitive(t *testing.T) {
	a := []threat.Interval{{Threat: 0, Weapon: 1, T1: 5, T2: 9}, {Threat: 2, Weapon: 0, T1: 1, T2: 2}}
	b := []threat.Interval{a[1], a[0]}
	if IntervalsChecksum(a) != IntervalsChecksum(b) {
		t.Error("checksum depends on order")
	}
	c := append([]threat.Interval{}, a...)
	c[0].T2 = 10
	if IntervalsChecksum(a) == IntervalsChecksum(c) {
		t.Error("checksum missed a changed interval")
	}
	if IntervalsChecksum(a) == IntervalsChecksum(a[:1]) {
		t.Error("checksum missed a dropped interval")
	}
}

func TestMaskingChecksumSensitive(t *testing.T) {
	g := &terrain.Grid{W: 10, H: 10, Elev: make([]float32, 100)}
	a := terrain.NewMasking(g)
	b := terrain.NewMasking(g)
	if MaskingChecksum(a) != MaskingChecksum(b) {
		t.Error("identical maskings differ")
	}
	b.Vals[55] = 123
	if MaskingChecksum(a) == MaskingChecksum(b) {
		t.Error("changed cell not detected")
	}
	// +Inf vs 0 must differ (coverage matters).
	c := terrain.NewMasking(g)
	c.Vals[0] = 0
	if MaskingChecksum(a) == MaskingChecksum(c) {
		t.Error("Inf→0 not detected")
	}
	if math.IsInf(float64(a.Vals[0]), 1) != true {
		t.Error("fresh masking not +Inf")
	}
}

func TestGoldenRoundTripAndCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.c3i")
	gs := []Golden{
		{Scenario: "scenario-1", Kind: "threat-analysis", Checksum: 0xdeadbeef},
		{Scenario: "scenario-1", Kind: "terrain-masking", Checksum: 0x1234},
	}
	if err := SaveGolden(path, gs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d records", len(loaded))
	}
	if err := CheckGolden(loaded, "scenario-1", "threat-analysis", 0xdeadbeef); err != nil {
		t.Errorf("valid checksum rejected: %v", err)
	}
	if err := CheckGolden(loaded, "scenario-1", "threat-analysis", 0xbad); err == nil {
		t.Error("wrong checksum accepted")
	}
	if err := CheckGolden(loaded, "scenario-9", "threat-analysis", 1); err == nil {
		t.Error("missing record accepted")
	}
}
