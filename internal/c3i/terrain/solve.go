package terrain

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/threads"
)

// Costs is the charging calibration for the Terrain Masking kernel,
// calibrated so the five-scenario suite at scale 1 lands on the paper's
// sequential times (Table 8); see EXPERIMENTS.md. The benchmark is
// memory-bound: most of its time is cache misses on the conventional
// machines and exposed memory latency on the MTA.
type Costs struct {
	OpsPerVisit        int64 // instructions per ray-visited cell
	StreamRefsPerVisit int   // streamed references (elevation, temp, altitude layers)
	DepRefsPerVisit    int   // dependent loads through the call chain and pointer indexing
	OpsPerMergeCell    int64 // instructions per cell in save/reset/minimize passes
	SerialOpsPerCell   int64 // per-threat serial driver work (setup, reduction) that no variant parallelizes
	RayBatch           int   // rays per charging batch (event-count control)
}

// DefaultCosts is the calibrated cost set (see Costs).
var DefaultCosts = Costs{
	OpsPerVisit:        95,
	StreamRefsPerVisit: 7,
	DepRefsPerVisit:    6,
	OpsPerMergeCell:    6,
	SerialOpsPerCell:   8,
	RayBatch:           64,
}

// FineDefaultCosts is the calibration for the restructured fine-grained
// kernel (the John Feo version): walking whole rays inside one thread keeps
// the wavefront state in registers, converting most of the sequential
// program's dependent pointer loads into pipelined traffic. Total references
// per visit are unchanged; only the dependent share drops.
var FineDefaultCosts = Costs{
	OpsPerVisit:        DefaultCosts.OpsPerVisit,
	StreamRefsPerVisit: DefaultCosts.StreamRefsPerVisit + DefaultCosts.DepRefsPerVisit - 2,
	DepRefsPerVisit:    2,
	OpsPerMergeCell:    DefaultCosts.OpsPerMergeCell,
	SerialOpsPerCell:   DefaultCosts.SerialOpsPerCell,
	RayBatch:           DefaultCosts.RayBatch,
}

// Opt bundles solver options.
type Opt struct {
	// Costs overrides the charging calibration (zero value → DefaultCosts).
	Costs Costs
	// ChargeOnly skips the Go-side computation and replays memoized visit
	// counts, charging the machine identically but producing no Masking
	// output. Used by timing sweeps after one full (verifying) run has
	// populated the scenario's caches.
	ChargeOnly bool
}

func (o Opt) costs() Costs {
	if o.Costs == (Costs{}) {
		return DefaultCosts
	}
	return o.Costs
}

// Layout holds the simulated-memory placement of a scenario's arrays.
type Layout struct {
	Scenario   *Scenario
	Costs      Costs
	ChargeOnly bool
	Elev       *mem.Region // terrain elevations (input)
	Mask       *mem.Region // overall masking array (output)
}

// NewLayout allocates the scenario's shared arrays.
func NewLayout(t *machine.Thread, s *Scenario, o Opt) *Layout {
	cells := uint64(s.Grid.W) * uint64(s.Grid.H)
	return &Layout{
		Scenario:   s,
		Costs:      o.costs(),
		ChargeOnly: o.ChargeOnly,
		Elev:       t.Alloc(s.Name+" elevation", cells*4),
		Mask:       t.Alloc(s.Name+" masking", cells*4),
	}
}

// AllocField allocates the simulated region for one private temp field.
func (lay *Layout) AllocField(t *machine.Thread, owner string) *mem.Region {
	side := uint64(2*DefaultRadiusOf(lay.Scenario) + 1)
	return t.Alloc(fmt.Sprintf("%s temp[%s]", lay.Scenario.Name, owner), side*side*4)
}

// DefaultRadiusOf returns the scenario's (uniform) threat radius.
func DefaultRadiusOf(s *Scenario) int {
	if len(s.Threats) == 0 {
		return DefaultRadius
	}
	return s.Threats[0].R
}

// bboxBytes returns the byte offset of a threat's box origin in a
// full-terrain array and the box size in cells.
func (lay *Layout) bboxBytes(site *ThreatSite) (off uint64, cells int) {
	f0 := (site.Y-site.R)*lay.Scenario.Grid.W + (site.X - site.R)
	side := 2*site.R + 1
	return uint64(f0) * 4, side * side
}

// clampedBurst builds a burst that stays inside its region even for the
// approximated stride patterns.
func clampedBurst(r *mem.Region, off uint64, stride uint64, n int, write, dep bool) mem.Burst {
	b := mem.Burst{Region: r, Offset: off, Stride: stride, Elem: 4, N: n, Write: write, Dep: dep}
	if n > 0 {
		if span := b.Span(); off+span > r.Size {
			if span >= r.Size {
				b.Offset = 0
				b.N = int((r.Size - b.ElemSize()) / maxU(stride, 1))
				if b.N < 1 {
					b.N = 1
				}
			} else {
				b.Offset = r.Size - span
			}
		}
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// rayStride approximates the memory stride of ray walks: most rays advance
// by about one grid row or a few cells per step; a 64-byte average makes
// every cold reference a distinct cache line, matching the scattered access
// of the real code.
const rayStride = 64

// TraceSectorCharged traces rays [lo, hi) of site's fan into f, charging the
// machine for the work: OpsPerVisit instructions, streamed references split
// between the elevation input and the target array, and DepRefsPerVisit
// dependent loads per visited cell.
func (lay *Layout) TraceSectorCharged(t *machine.Thread, site *ThreatSite, f *Field,
	target *mem.Region, targetOff uint64, lo, hi int) int {

	c := lay.Costs
	elevOff, _ := lay.bboxBytes(site)
	rv := lay.Scenario.rayCache(site)
	total := 0
	for batchLo := lo; batchLo < hi; batchLo += c.RayBatch {
		batchHi := batchLo + c.RayBatch
		if batchHi > hi {
			batchHi = hi
		}
		visits := 0
		if lay.ChargeOnly {
			replay := true
			for r := batchLo; r < batchHi; r++ {
				if rv[r] < 0 {
					replay = false
					break
				}
			}
			if replay {
				for r := batchLo; r < batchHi; r++ {
					visits += rv[r]
				}
			} else {
				if f == nil { // cold cache: trace into a scratch field
					f = NewField(site)
				}
				for r := batchLo; r < batchHi; r++ {
					rv[r] = TraceRay(lay.Scenario.Grid, site, f, r)
					visits += rv[r]
				}
			}
		} else {
			for r := batchLo; r < batchHi; r++ {
				rv[r] = TraceRay(lay.Scenario.Grid, site, f, r)
				visits += rv[r]
			}
		}
		total += visits
		if visits == 0 {
			continue
		}
		t.Compute(int64(visits) * c.OpsPerVisit)
		reads := visits * c.StreamRefsPerVisit / 2
		writes := visits*c.StreamRefsPerVisit - reads
		t.Burst(clampedBurst(lay.Elev, elevOff, rayStride, reads, false, false))
		t.Burst(clampedBurst(target, targetOff, rayStride, writes, true, false))
		t.Burst(mem.Burst{Region: target, Offset: targetOff, Stride: 0, Elem: 4,
			N: visits * c.DepRefsPerVisit, Dep: true})
	}
	return total
}

// chargePass charges one full pass over a threat's box in a full-terrain or
// temp array: n sequential references per cell split into reads and writes.
func (lay *Layout) chargePass(t *machine.Thread, r *mem.Region, off uint64, cells, reads, writes int, ops int64) {
	t.Compute(int64(cells) * ops)
	for i := 0; i < reads; i++ {
		t.Burst(clampedBurst(r, off, 4, cells, false, false))
	}
	for i := 0; i < writes; i++ {
		t.Burst(clampedBurst(r, off, 4, cells, true, false))
	}
}

// Output is a solver's result.
type Output struct {
	Masking   *Masking
	TempBytes uint64 // private temp-array storage allocated (paper's drawback)
	Blocks    int    // lock blocks touched (coarse variant)
}

// Sequential is Program 3: for each threat in turn, save the masking region
// to temp, reset it, compute the threat's masking, and minimize the saved
// values back in — four passes over the region of influence plus the ray
// computation.
func Sequential(t *machine.Thread, s *Scenario) *Output {
	return SequentialOpt(t, s, Opt{})
}

// SequentialOpt is Sequential with explicit options.
func SequentialOpt(t *machine.Thread, s *Scenario, o Opt) *Output {
	lay := NewLayout(t, s, o)
	c := lay.Costs
	temp := lay.AllocField(t, "seq")
	out := &Output{TempBytes: temp.Size}
	if !lay.ChargeOnly {
		out.Masking = NewMasking(s.Grid)
	}

	var f *Field
	for i := range s.Threats {
		site := &s.Threats[i]
		if lay.ChargeOnly {
			f = nil
		} else if f == nil {
			f = NewField(site)
		} else {
			f.X0, f.Y0 = site.X-site.R, site.Y-site.R
			f.Reset()
		}
		off, cells := lay.bboxBytes(site)
		// Serial per-threat driver work (the paper: "sequences of execution
		// that do not parallelize well").
		t.Compute(int64(cells) * c.SerialOpsPerCell)
		// temp[x][y] = masking[x][y] (save)
		lay.chargePass(t, lay.Mask, off, cells, 1, 0, 0)
		lay.chargePass(t, temp, 0, cells, 0, 1, c.OpsPerMergeCell)
		// masking[x][y] = INFINITY
		lay.chargePass(t, lay.Mask, off, cells, 0, 1, 0)
		// masking[x][y] = max safe altitude due to threat (ray fan)
		lay.TraceSectorCharged(t, site, f, lay.Mask, off, 0, NumRays(site.R))
		// masking[x][y] = Min(masking[x][y], temp[x][y])
		lay.chargePass(t, lay.Mask, off, cells, 1, 1, c.OpsPerMergeCell)
		lay.chargePass(t, temp, 0, cells, 1, 0, 0)
		if !lay.ChargeOnly {
			for row := 0; row < f.H; row++ {
				out.Masking.MergeRow(f, row)
			}
		}
	}
	return out
}

// Coarse is Program 4: a dynamic multithreaded loop over threats. Each
// worker owns a private temp array; the shared masking array is updated
// block-by-block under a lock per block (blocks×blocks over the terrain —
// the paper ran ten-by-ten).
func Coarse(t *machine.Thread, s *Scenario, workers, blocks int) *Output {
	return CoarseOpt(t, s, workers, blocks, Opt{})
}

// CoarseOpt is Coarse with explicit options.
func CoarseOpt(t *machine.Thread, s *Scenario, workers, blocks int, o Opt) *Output {
	if workers < 1 || blocks < 1 {
		panic("terrain: Coarse needs ≥1 worker and ≥1 block")
	}
	lay := NewLayout(t, s, o)
	c := lay.Costs
	out := &Output{}
	if !lay.ChargeOnly {
		out.Masking = NewMasking(s.Grid)
	}

	locks := make([]*machine.Lock, blocks*blocks)
	for i := range locks {
		locks[i] = t.NewLock(fmt.Sprintf("%s block[%d]", s.Name, i))
	}
	blockSize := (s.Grid.W + blocks - 1) / blocks

	next := t.NewCounter(s.Name+" next threat", 0)
	ts := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		ts[w] = t.Go(fmt.Sprintf("%s worker[%d]", s.Name, w), func(wt *machine.Thread) {
			temp := lay.AllocField(wt, fmt.Sprintf("w%d", w))
			out.TempBytes += temp.Size
			var f *Field
			for {
				item := next.Next(wt)
				if item >= int64(len(s.Threats)) {
					return
				}
				site := &s.Threats[item]
				if lay.ChargeOnly {
					f = nil
				} else if f == nil {
					f = NewField(site)
				} else {
					f.X0, f.Y0 = site.X-site.R, site.Y-site.R
					f.Reset()
				}
				_, cells := lay.bboxBytes(site)
				wt.Compute(int64(cells) * c.SerialOpsPerCell)
				// temp[x][y] = INFINITY
				lay.chargePass(wt, temp, 0, cells, 0, 1, 0)
				// temp[x][y] = max safe altitude due to threat
				lay.TraceSectorCharged(wt, site, f, temp, 0, 0, NumRays(site.R))
				// Per overlapping block: lock; minimize; unlock. Geometry
				// comes from the site (f is nil in ChargeOnly replays).
				fx0, fy0 := site.X-site.R, site.Y-site.R
				fside := 2*site.R + 1
				bx0, bx1 := fx0/blockSize, (site.X+site.R)/blockSize
				by0, by1 := fy0/blockSize, (site.Y+site.R)/blockSize
				for by := by0; by <= by1; by++ {
					for bx := bx0; bx <= bx1; bx++ {
						l := locks[by*blocks+bx]
						l.Lock(wt)
						out.Blocks++
						x0, x1 := maxI(bx*blockSize, fx0), minI((bx+1)*blockSize, fx0+fside)
						y0, y1 := maxI(by*blockSize, fy0), minI((by+1)*blockSize, fy0+fside)
						overlap := (x1 - x0) * (y1 - y0)
						if overlap > 0 {
							boff := uint64(y0*s.Grid.W+x0) * 4
							lay.chargePass(wt, lay.Mask, boff, overlap, 1, 1, c.OpsPerMergeCell)
							lay.chargePass(wt, temp, 0, overlap, 1, 0, 0)
							if !lay.ChargeOnly {
								for y := y0; y < y1; y++ {
									out.Masking.MergeRowRange(f, y-f.Y0, x0, x1)
								}
							}
						}
						l.Unlock(wt)
					}
				}
			}
		})
	}
	t.JoinAll(ts)
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fine is the Tera version: the outer loop over threats stays sequential,
// while the inner loops are parallelized — the reset pass and minimize pass
// as multithreaded row loops, the ray fan as parallel sectors. No locking is
// needed because threats are processed one at a time; the parallelism is in
// exactly the loops that are sequential in Program 3.
func Fine(t *machine.Thread, s *Scenario, sectors, mergeChunks int) *Output {
	return FineOpt(t, s, sectors, mergeChunks, Opt{})
}

// FineOpt is Fine with explicit options.
func FineOpt(t *machine.Thread, s *Scenario, sectors, mergeChunks int, o Opt) *Output {
	if sectors < 1 || mergeChunks < 1 {
		panic("terrain: Fine needs ≥1 sector and ≥1 merge chunk")
	}
	if o.Costs == (Costs{}) {
		o.Costs = FineDefaultCosts
	}
	lay := NewLayout(t, s, o)
	c := lay.Costs
	temp := lay.AllocField(t, "shared")
	out := &Output{TempBytes: temp.Size}
	if !lay.ChargeOnly {
		out.Masking = NewMasking(s.Grid)
	}

	var f *Field
	for i := range s.Threats {
		site := &s.Threats[i]
		if lay.ChargeOnly {
			f = nil
		} else if f == nil {
			f = NewField(site)
		} else {
			f.X0, f.Y0 = site.X-site.R, site.Y-site.R
			f.Reset()
		}
		off, cells := lay.bboxBytes(site)
		// The per-threat driver stays serial even in the fine-grained
		// version — the execution bottleneck the paper predicts for the MTA.
		t.Compute(int64(cells) * c.SerialOpsPerCell)
		side := 2*site.R + 1
		rows := side

		// Parallel reset of temp.
		threads.ParChunks(t, s.Name+" reset", rows, mergeChunks, func(ct *machine.Thread, ch, lo, hi int) {
			if hi > lo {
				lay.chargePass(ct, temp, uint64(lo*side)*4, (hi-lo)*side, 0, 1, 0)
			}
		})

		// Parallel ray sectors.
		fan := NumRays(site.R)
		threads.ParChunks(t, s.Name+" sectors", fan, sectors, func(ct *machine.Thread, ch, lo, hi int) {
			lay.TraceSectorCharged(ct, site, f, temp, 0, lo, hi)
		})

		// Parallel minimize into the shared masking array.
		threads.ParChunks(t, s.Name+" merge", rows, mergeChunks, func(ct *machine.Thread, ch, lo, hi int) {
			if hi > lo {
				w := 2*site.R + 1
				rowOff := off + uint64(lo*s.Grid.W)*4
				lay.chargePass(ct, lay.Mask, rowOff, (hi-lo)*w, 1, 1, c.OpsPerMergeCell)
				lay.chargePass(ct, temp, uint64(lo*w)*4, (hi-lo)*w, 1, 0, 0)
				if !lay.ChargeOnly {
					for row := lo; row < hi; row++ {
						out.Masking.MergeRow(f, row)
					}
				}
			}
		})
		_ = cells
	}
	return out
}

// CoarseTempBytesFullScale returns the private temp storage the coarse
// variant needs for the given worker count at the paper's full problem size
// (double-precision temp arrays over the full ROI). The paper's observation
// that the Tera needs hundreds of threads, each with its own temp array,
// makes this "impractical for large numbers of threads": at 256 workers it
// exceeds the paper machine's 2 GB.
func CoarseTempBytesFullScale(workers int) uint64 {
	const fullROISide = 2*1034 + 1 // 5% ROI of the full-size benchmark terrain
	return uint64(workers) * fullROISide * fullROISide * 8
}

// Hybrid combines both parallel dimensions for larger machines: a dynamic
// multithreaded loop over threats (Program 4's structure, with per-worker
// temp arrays and block locks) whose per-threat inner loops are themselves
// parallelized into ray sectors and merge chunks (the fine-grained
// structure). The paper could not evaluate configurations beyond two
// processors; this is the natural program for the larger machines its §8
// looks forward to — it overlaps the per-threat serial driver sections that
// otherwise bound fine-grained scaling (Amdahl), at a memory cost of only
// `workers` temp arrays rather than hundreds.
func Hybrid(t *machine.Thread, s *Scenario, workers, sectors, mergeChunks, blocks int) *Output {
	return HybridOpt(t, s, workers, sectors, mergeChunks, blocks, Opt{})
}

// HybridOpt is Hybrid with explicit options.
func HybridOpt(t *machine.Thread, s *Scenario, workers, sectors, mergeChunks, blocks int, o Opt) *Output {
	if workers < 1 || sectors < 1 || mergeChunks < 1 || blocks < 1 {
		panic("terrain: Hybrid needs ≥1 worker, sector, merge chunk and block")
	}
	if o.Costs == (Costs{}) {
		o.Costs = FineDefaultCosts
	}
	lay := NewLayout(t, s, o)
	c := lay.Costs
	out := &Output{}
	if !lay.ChargeOnly {
		out.Masking = NewMasking(s.Grid)
	}

	locks := make([]*machine.Lock, blocks*blocks)
	for i := range locks {
		locks[i] = t.NewLock(fmt.Sprintf("%s hblock[%d]", s.Name, i))
	}
	blockSize := (s.Grid.W + blocks - 1) / blocks

	next := t.NewCounter(s.Name+" hybrid next", 0)
	ts := make([]*machine.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		ts[w] = t.Go(fmt.Sprintf("%s hworker[%d]", s.Name, w), func(wt *machine.Thread) {
			temp := lay.AllocField(wt, fmt.Sprintf("h%d", w))
			out.TempBytes += temp.Size
			var f *Field
			for {
				item := next.Next(wt)
				if item >= int64(len(s.Threats)) {
					return
				}
				site := &s.Threats[item]
				if lay.ChargeOnly {
					f = nil
				} else if f == nil {
					f = NewField(site)
				} else {
					f.X0, f.Y0 = site.X-site.R, site.Y-site.R
					f.Reset()
				}
				_, cells := lay.bboxBytes(site)
				// The per-threat driver still runs serially on this worker,
				// but different threats' drivers now overlap across workers.
				wt.Compute(int64(cells) * c.SerialOpsPerCell)

				side := 2*site.R + 1
				// Parallel reset of this worker's temp.
				threads.ParChunks(wt, s.Name+" hreset", side, mergeChunks, func(ct *machine.Thread, ch, lo, hi int) {
					if hi > lo {
						lay.chargePass(ct, temp, uint64(lo*side)*4, (hi-lo)*side, 0, 1, 0)
					}
				})
				// Parallel ray sectors into temp.
				fan := NumRays(site.R)
				threads.ParChunks(wt, s.Name+" hsectors", fan, sectors, func(ct *machine.Thread, ch, lo, hi int) {
					lay.TraceSectorCharged(ct, site, f, temp, 0, lo, hi)
				})
				// Block-locked minimize (threats overlap across workers).
				fx0, fy0 := site.X-site.R, site.Y-site.R
				bx0, bx1 := fx0/blockSize, (site.X+site.R)/blockSize
				by0, by1 := fy0/blockSize, (site.Y+site.R)/blockSize
				for by := by0; by <= by1; by++ {
					for bx := bx0; bx <= bx1; bx++ {
						l := locks[by*blocks+bx]
						l.Lock(wt)
						out.Blocks++
						x0, x1 := maxI(bx*blockSize, fx0), minI((bx+1)*blockSize, fx0+side)
						y0, y1 := maxI(by*blockSize, fy0), minI((by+1)*blockSize, fy0+side)
						overlap := (x1 - x0) * (y1 - y0)
						if overlap > 0 {
							boff := uint64(y0*s.Grid.W+x0) * 4
							lay.chargePass(wt, lay.Mask, boff, overlap, 1, 1, c.OpsPerMergeCell)
							lay.chargePass(wt, temp, 0, overlap, 1, 0, 0)
							if !lay.ChargeOnly {
								for y := y0; y < y1; y++ {
									out.Masking.MergeRowRange(f, y-f.Y0, x0, x1)
								}
							}
						}
						l.Unlock(wt)
					}
				}
			}
		})
	}
	t.JoinAll(ts)
	return out
}
