package terrain

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// ScenarioName implements suite.Scenario.
func (s *Scenario) ScenarioName() string { return s.Name }

// Units implements suite.Scenario: the scaled unit is the threat-site count
// (the terrain itself stays at full size at any scale).
func (s *Scenario) Units() int { return len(s.Threats) }

// Checksum reduces a Masking result to a stable FNV-1a checksum over the
// float32 bit patterns (+Inf cells included, so coverage changes are
// detected).
func (m *Masking) Checksum() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(m.W))
	h.Write(buf[:])
	binary.LittleEndian.PutUint32(buf[:], uint32(m.H))
	h.Write(buf[:])
	for _, v := range m.Vals {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// PipelinedCosts is the perfect-lookahead ablation calibration: every
// dependent load re-priced as pipelined streaming traffic.
func PipelinedCosts() Costs {
	c := DefaultCosts
	c.StreamRefsPerVisit += c.DepRefsPerVisit
	c.DepRefsPerVisit = 0
	return c
}

// optFrom maps registry params onto solver options: validate=1 requests the
// full (checksummable) computation, otherwise runs replay memoized charges.
// The "pipelined" ablation is applied only by the sequential variant — its
// cost base is the sequential calibration, which would silently displace
// FineDefaultCosts in the fine/hybrid solvers.
func optFrom(p suite.Params) Opt {
	return Opt{ChargeOnly: p[suite.ValidateParam] == 0}
}

func output(out *Output) suite.Output {
	so := suite.Output{OverheadBytes: out.TempBytes}
	if out.Masking != nil {
		so.Checksum = out.Masking.Checksum()
	}
	return so
}

func init() {
	suite.MustRegister(&suite.Workload{
		Name:             "terrain-masking",
		Key:              "tm",
		FileTag:          "terrain",
		Title:            "Terrain Masking",
		Order:            2,
		PaperUnits:       60,
		UnitName:         "threat sites/scenario",
		DefaultScale:     0.5,
		DataScale:        0.1,
		SmallScale:       0.05,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential"},
		Generate: func(scale float64) []suite.Scenario {
			return suite.Scenarios(Suite(scale))
		},
		Variants: []*suite.Variant{
			{
				// Program 3: save / reset / trace / minimize, one threat at
				// a time — four passes over the region of influence.
				Name: "sequential", Style: suite.Sequential,
				Defaults: suite.Params{suite.ValidateParam: 0, "pipelined": 0},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					o := optFrom(p)
					if p["pipelined"] != 0 {
						o.Costs = PipelinedCosts()
					}
					return output(SequentialOpt(t, sc.(*Scenario), o))
				},
			},
			{
				// Program 4: a dynamic multithreaded loop over threats,
				// private temp arrays, block-locked minimize.
				Name: "coarse", Style: suite.Coarse,
				Defaults: suite.Params{suite.ValidateParam: 0, "workers": 4, "blocks": 10},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(CoarseOpt(t, sc.(*Scenario), p["workers"], p["blocks"], optFrom(p)))
				},
				OverheadFullScale: CoarseTempBytesFullScale,
			},
			{
				// The Feo restructuring: threats in order, the inner loops
				// (ray sectors, merge rows) parallelized, no locks.
				Name: "fine", Style: suite.Fine,
				Defaults: suite.Params{suite.ValidateParam: 0, "sectors": 96, "merge": 64},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(FineOpt(t, sc.(*Scenario), p["sectors"], p["merge"], optFrom(p)))
				},
			},
			{
				// Both parallel dimensions at once, for the larger machines
				// the paper's §8 looks forward to: a worker crew over
				// threats whose inner loops are themselves parallelized.
				Name: "hybrid", Style: suite.Fine,
				Defaults: suite.Params{suite.ValidateParam: 0, "workers": 2, "sectors": 96, "merge": 64, "blocks": 10},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(HybridOpt(t, sc.(*Scenario),
						p["workers"], p["sectors"], p["merge"], p["blocks"], optFrom(p)))
				},
				OverheadFullScale: CoarseTempBytesFullScale,
			},
		},
	})
}
