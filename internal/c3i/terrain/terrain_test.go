package terrain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

// tiny returns a small scenario for fast correctness tests.
func tiny(seed int64, threats int) *Scenario {
	return GenScenario("tiny", GenParams{Side: 300, NumThreats: threats, Radius: 40, Seed: seed})
}

func TestGenGridDeterministicAndBounded(t *testing.T) {
	a := GenGrid(128, 128, 9)
	b := GenGrid(128, 128, 9)
	for i := range a.Elev {
		if a.Elev[i] != b.Elev[i] {
			t.Fatal("grid generation not deterministic")
		}
	}
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range a.Elev {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 0 || hi > 1500.01 {
		t.Errorf("elevations [%v, %v] outside [0, 1500]", lo, hi)
	}
	if hi-lo < 500 {
		t.Errorf("terrain too flat: range %v", hi-lo)
	}
	c := GenGrid(128, 128, 10)
	same := true
	for i := range a.Elev {
		if a.Elev[i] != c.Elev[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical terrain")
	}
}

func TestROICellsApproxDisk(t *testing.T) {
	r := 50
	got := float64(ROICells(r))
	want := math.Pi * float64(r) * float64(r)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("ROICells(%d) = %v, want ≈ %v", r, got, want)
	}
}

func TestScenarioROIFraction(t *testing.T) {
	// Default geometry: each threat influences ≈5% of the terrain (paper).
	frac := float64(ROICells(DefaultRadius)) / float64(DefaultSide*DefaultSide)
	if frac < 0.045 || frac > 0.055 {
		t.Errorf("ROI fraction = %v, want ≈ 0.05", frac)
	}
}

func TestThreatSitesKeepMargin(t *testing.T) {
	s := tiny(3, 20)
	for _, th := range s.Threats {
		if th.X < th.R || th.X >= s.Grid.W-th.R || th.Y < th.R || th.Y >= s.Grid.H-th.R {
			t.Errorf("threat at (%d,%d) radius %d clips the %d×%d grid",
				th.X, th.Y, th.R, s.Grid.W, s.Grid.H)
		}
	}
}

func TestRayTargetCoversPerimeter(t *testing.T) {
	r := 5
	seen := map[[2]int]bool{}
	for i := 0; i < NumRays(r); i++ {
		dx, dy := rayTarget(r, i)
		if dx < -r || dx > r || dy < -r || dy > r {
			t.Fatalf("ray %d target (%d,%d) outside box", i, dx, dy)
		}
		if dx != -r && dx != r && dy != -r && dy != r {
			t.Fatalf("ray %d target (%d,%d) not on perimeter", i, dx, dy)
		}
		seen[[2]int{dx, dy}] = true
	}
	// All 8r perimeter cells except the four corners counted once = 8r
	// distinct targets.
	if len(seen) != NumRays(r) {
		t.Errorf("distinct targets = %d, want %d", len(seen), NumRays(r))
	}
}

func TestTraceRayFlatTerrainFullyExposed(t *testing.T) {
	// On perfectly flat terrain nothing blocks: masking altitude is 0
	// everywhere in range (clear line of sight to the ground).
	g := &Grid{W: 101, H: 101, Elev: make([]float32, 101*101)}
	site := &ThreatSite{X: 50, Y: 50, R: 30, SensorZ: 15}
	f := NewField(site)
	for ray := 0; ray < NumRays(site.R); ray++ {
		TraceRay(g, site, f, ray)
	}
	for dy := -30; dy <= 30; dy++ {
		for dx := -30; dx <= 30; dx++ {
			if dx == 0 && dy == 0 || dx*dx+dy*dy > 30*30 {
				continue
			}
			v := f.At(50+dx, 50+dy)
			if math.IsInf(float64(v), 1) {
				continue // a few cells can be missed by the discrete fan
			}
			if v != 0 {
				t.Fatalf("flat terrain masking at (%d,%d) = %v, want 0", dx, dy, v)
			}
		}
	}
}

func TestTraceRayRidgeShadowsBehind(t *testing.T) {
	// A tall ridge at x=60 must give cells behind it (x>60) a positive
	// masking altitude that grows with distance.
	g := &Grid{W: 101, H: 101, Elev: make([]float32, 101*101)}
	for y := 0; y < 101; y++ {
		g.Elev[y*101+60] = 500
	}
	site := &ThreatSite{X: 50, Y: 50, R: 40, SensorZ: 15}
	f := NewField(site)
	for ray := 0; ray < NumRays(site.R); ray++ {
		TraceRay(g, site, f, ray)
	}
	v1 := f.At(65, 50)
	v2 := f.At(80, 50)
	if !(v1 > 0 && v2 > v1) {
		t.Errorf("shadow not growing behind ridge: at 65 = %v, at 80 = %v", v1, v2)
	}
	// In front of the ridge: fully exposed (flat).
	if v := f.At(55, 50); v != 0 {
		t.Errorf("in front of ridge = %v, want 0", v)
	}
}

func TestFieldCoverage(t *testing.T) {
	// The discrete ray fan must reach nearly every cell of the ROI disk.
	s := tiny(4, 1)
	site := &s.Threats[0]
	f := NewField(site)
	for ray := 0; ray < NumRays(site.R); ray++ {
		TraceRay(s.Grid, site, f, ray)
	}
	covered, total := 0, 0
	for dy := -site.R; dy <= site.R; dy++ {
		for dx := -site.R; dx <= site.R; dx++ {
			if dx == 0 && dy == 0 || dx*dx+dy*dy > site.R*site.R {
				continue
			}
			total++
			if !math.IsInf(float64(f.At(site.X+dx, site.Y+dy)), 1) {
				covered++
			}
		}
	}
	if frac := float64(covered) / float64(total); frac < 0.99 {
		t.Errorf("ray fan covered %.3f of ROI, want ≥ 0.99", frac)
	}
}

// runSolver executes a solver on the Alpha model.
func runSolver(t *testing.T, s *Scenario, solve func(*machine.Thread, *Scenario) *Output) *Output {
	t.Helper()
	var out *Output
	e := smp.New(smp.AlphaStation())
	_, err := e.Run("main", func(th *machine.Thread) { out = solve(th, s) })
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSequentialMaskingSane(t *testing.T) {
	s := tiny(5, 6)
	out := runSolver(t, s, Sequential)
	if out.Masking.FiniteCells() == 0 {
		t.Fatal("no cells masked")
	}
	for _, v := range out.Masking.Vals {
		if v < 0 {
			t.Fatal("negative masking altitude")
		}
	}
}

func TestCoarseMatchesSequential(t *testing.T) {
	s := tiny(6, 8)
	want := runSolver(t, s, Sequential)
	for _, workers := range []int{1, 3, 8} {
		workers := workers
		got := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
			return Coarse(th, sc, workers, 10)
		})
		if !got.Masking.Equal(want.Masking) {
			t.Errorf("workers=%d: coarse masking differs from sequential", workers)
		}
	}
}

func TestCoarseBlockCountsVary(t *testing.T) {
	s := tiny(7, 5)
	a := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Coarse(th, sc, 2, 4)
	})
	b := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Coarse(th, sc, 2, 10)
	})
	if !a.Masking.Equal(b.Masking) {
		t.Error("blocking factor changed the result")
	}
	if a.Blocks >= b.Blocks {
		t.Errorf("finer blocking should touch more blocks: %d vs %d", a.Blocks, b.Blocks)
	}
}

func TestFineMatchesSequential(t *testing.T) {
	s := tiny(8, 6)
	want := runSolver(t, s, Sequential)
	for _, cfg := range [][2]int{{1, 1}, {8, 4}, {48, 16}} {
		cfg := cfg
		got := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
			return Fine(th, sc, cfg[0], cfg[1])
		})
		if !got.Masking.Equal(want.Masking) {
			t.Errorf("sectors=%d chunks=%d: fine masking differs", cfg[0], cfg[1])
		}
	}
}

func TestFineMatchesOnMTA(t *testing.T) {
	// Cross-machine determinism: the computation is machine-independent.
	s := tiny(9, 4)
	want := runSolver(t, s, Sequential)
	var got *Output
	e := mta.New(mta.Params{Procs: 2})
	if _, err := e.Run("main", func(th *machine.Thread) {
		got = Fine(th, s, 48, 16)
	}); err != nil {
		t.Fatal(err)
	}
	if !got.Masking.Equal(want.Masking) {
		t.Error("MTA fine-grained masking differs from Alpha sequential")
	}
}

func TestCoarseTempBytesGrowWithWorkers(t *testing.T) {
	s := tiny(10, 4)
	a := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Coarse(th, sc, 2, 10)
	})
	b := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Coarse(th, sc, 4, 10)
	})
	if b.TempBytes != 2*a.TempBytes {
		t.Errorf("TempBytes: 4 workers %d, 2 workers %d (want 2x)", b.TempBytes, a.TempBytes)
	}
}

func TestCoarseTempBytesFullScaleExceeds2GB(t *testing.T) {
	// The paper: hundreds of threads each needing a private temp array is
	// impractical on the 2 GB Tera MTA.
	if got := CoarseTempBytesFullScale(256); got <= 2<<30 {
		t.Errorf("256 workers need %d bytes, expected > 2 GiB", got)
	}
	if got := CoarseTempBytesFullScale(16); got >= 2<<30 {
		t.Errorf("16 workers need %d bytes, expected well under 2 GiB", got)
	}
}

func TestMergeRowRange(t *testing.T) {
	g := &Grid{W: 20, H: 20, Elev: make([]float32, 400)}
	m := NewMasking(g)
	site := &ThreatSite{X: 10, Y: 10, R: 3, SensorZ: 10}
	f := NewField(site)
	f.set(9, 10, 5)
	f.set(10, 10, 7)
	f.set(11, 10, 9)
	// Merge only x ∈ [10, 11).
	if n := m.MergeRowRange(f, 10-f.Y0, 10, 11); n != 1 {
		t.Errorf("merged %d cells, want 1", n)
	}
	if m.At(10, 10) != 7 {
		t.Errorf("masking(10,10) = %v, want 7", m.At(10, 10))
	}
	if !math.IsInf(float64(m.At(9, 10)), 1) {
		t.Error("cell outside range was merged")
	}
}

func TestMinCombineAcrossThreats(t *testing.T) {
	// Adding a threat can only lower (or keep) masking values.
	s1 := tiny(11, 2)
	s2 := &Scenario{Name: "plus", Grid: s1.Grid, Threats: append([]ThreatSite{}, s1.Threats...)}
	extra := s1.Threats[0]
	extra.X += 15
	extra.ID = len(s2.Threats)
	s2.Threats = append(s2.Threats, extra)

	a := runSolver(t, s1, Sequential)
	b := runSolver(t, s2, Sequential)
	for i := range a.Masking.Vals {
		if b.Masking.Vals[i] > a.Masking.Vals[i] {
			t.Fatal("adding a threat increased a masking altitude")
		}
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(0.05)
	if len(suite) != 5 {
		t.Fatalf("suite has %d scenarios, want 5", len(suite))
	}
	for _, s := range suite {
		if len(s.Threats) != 3 {
			t.Errorf("%s: %d threats, want 3 at scale 0.05", s.Name, len(s.Threats))
		}
		if s.Grid.W != DefaultSide {
			t.Errorf("%s: grid side %d, want %d (full size at every scale)", s.Name, s.Grid.W, DefaultSide)
		}
	}
}

// Property: masking is deterministic and order-independent — shuffling the
// threat list gives an identical result.
func TestPropertyThreatOrderIrrelevant(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := tiny(seed, 4)
		shuffled := &Scenario{Name: "shuf", Grid: s.Grid, Threats: append([]ThreatSite{}, s.Threats...)}
		rng.Shuffle(len(shuffled.Threats), func(i, j int) {
			shuffled.Threats[i], shuffled.Threats[j] = shuffled.Threats[j], shuffled.Threats[i]
		})
		a := runSolver(t, s, Sequential)
		b := runSolver(t, shuffled, Sequential)
		return a.Masking.Equal(b.Masking)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: all variants agree for random small scenarios and parameters.
func TestPropertyVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := tiny(seed, 2+rng.Intn(4))
		workers := 1 + rng.Intn(6)
		blocks := 1 + rng.Intn(12)
		sectors := 1 + rng.Intn(30)
		chunks := 1 + rng.Intn(10)
		var seq, coarse, fine *Output
		e := smp.New(smp.Exemplar(4))
		if _, err := e.Run("main", func(th *machine.Thread) {
			seq = Sequential(th, s)
			coarse = Coarse(th, s, workers, blocks)
			fine = Fine(th, s, sectors, chunks)
		}); err != nil {
			return false
		}
		return seq.Masking.Equal(coarse.Masking) && seq.Masking.Equal(fine.Masking)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestHybridMatchesSequential(t *testing.T) {
	s := tiny(12, 8)
	want := runSolver(t, s, Sequential)
	for _, cfg := range [][4]int{{1, 8, 4, 10}, {3, 16, 8, 4}, {4, 48, 16, 10}} {
		cfg := cfg
		got := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
			return Hybrid(th, sc, cfg[0], cfg[1], cfg[2], cfg[3])
		})
		if !got.Masking.Equal(want.Masking) {
			t.Errorf("hybrid %v: masking differs from sequential", cfg)
		}
	}
}

func TestHybridTempBytesScaleWithWorkers(t *testing.T) {
	s := tiny(13, 6)
	a := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Hybrid(th, sc, 2, 8, 4, 10)
	})
	b := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Hybrid(th, sc, 4, 8, 4, 10)
	})
	if b.TempBytes != 2*a.TempBytes {
		t.Errorf("TempBytes: 4 workers %d, 2 workers %d (want 2x)", b.TempBytes, a.TempBytes)
	}
}

func TestHybridOverlapsSerialDrivers(t *testing.T) {
	// On a many-processor MTA, the hybrid overlaps per-threat serial driver
	// sections that bound the pure fine-grained variant (Amdahl).
	s := tiny(14, 8)
	elapsed := func(solve func(th *machine.Thread, sc *Scenario) *Output) float64 {
		e := mta.New(mta.Params{Procs: 8, NetLatencyMult: 1.0, NetBandwidthEff: 1.0})
		var out *Output
		res, err := e.Run("tm", func(th *machine.Thread) { out = solve(th, s) })
		if err != nil {
			t.Fatal(err)
		}
		_ = out
		return res.Stats.Cycles
	}
	fine := elapsed(func(th *machine.Thread, sc *Scenario) *Output {
		return Fine(th, sc, 96, 64)
	})
	hybrid := elapsed(func(th *machine.Thread, sc *Scenario) *Output {
		return Hybrid(th, sc, 4, 48, 32, 10)
	})
	if hybrid >= fine {
		t.Errorf("hybrid (%.0f cycles) not faster than fine (%.0f) on 8 procs", hybrid, fine)
	}
}
