// Package terrain implements the C3I Parallel Benchmark Suite Terrain
// Masking problem: "computation of the maximum safe flight altitude over all
// points in an uneven terrain containing ground-based threats."
//
// Inputs are (i) the ground elevation for all points in the terrain and
// (ii) the position and range of a set of ground-based threats. The output
// is, for every point, the maximum altitude at which an aircraft is
// invisible to all threats. For a single threat, the masking altitude at a
// point is the height of the sightline from the threat's sensor over the
// highest interposing ridge — computed by propagating the maximum blocking
// angle outward along rays from the threat (the paper: "the value at one
// point is computed from the values at neighboring points"). The overall
// result is the pointwise minimum over all threats, each of which influences
// a region of roughly 5% of the terrain (the paper's figure).
//
// The package provides the paper's three program variants:
//
//   - Sequential: Program 3 — for each threat, save the masking region to a
//     temp array, reset it, compute the threat's masking into it, and
//     minimize the saved values back in (four passes over the region).
//   - Coarse: Program 4 — a dynamic multithreaded loop over threats; each
//     worker owns a private temp array (the memory-overhead drawback) and
//     minimizes into the shared masking array under per-block locks
//     (ten-by-ten blocking in the paper's runs).
//   - Fine: the Tera version (developed by John Feo in the paper's
//     acknowledgments) — threats processed in order, but the inner loops
//     parallelized: the ray fan is split into sectors computed by parallel
//     threads and the minimize pass is a parallel loop over rows. No locks
//     are needed because the outer loop is sequential. Practical only where
//     threads are nearly free.
//
// The original benchmark terrain is not redistributable; GenScenario builds
// deterministic fractal terrain with the documented structure.
package terrain

import (
	"fmt"
	"math"
	"math/rand"
)

// CellMeters is the ground distance represented by one grid cell.
const CellMeters = 100.0

// Grid is a row-major heightfield in meters.
type Grid struct {
	W, H int
	Elev []float32
}

// At returns the elevation at (x, y). Callers must stay in bounds.
func (g *Grid) At(x, y int) float32 { return g.Elev[y*g.W+x] }

// Index returns the row-major index of (x, y).
func (g *Grid) Index(x, y int) int { return y*g.W + x }

// GenGrid builds fractal terrain by midpoint displacement on a 2^n+1 lattice
// cropped to W×H, deterministic in seed. Elevations span roughly 0–1500 m.
func GenGrid(w, h int, seed int64) *Grid {
	n := 1
	for n+1 < w || n+1 < h {
		n *= 2
	}
	side := n + 1
	f := make([]float64, side*side)
	rng := rand.New(rand.NewSource(seed))

	f[0] = rng.Float64() * 800
	f[n] = rng.Float64() * 800
	f[n*side] = rng.Float64() * 800
	f[n*side+n] = rng.Float64() * 800
	amp := 700.0
	for step := n; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < side; y += step {
			for x := half; x < side; x += step {
				avg := (f[(y-half)*side+x-half] + f[(y-half)*side+x+half] +
					f[(y+half)*side+x-half] + f[(y+half)*side+x+half]) / 4
				f[y*side+x] = avg + (rng.Float64()*2-1)*amp
			}
		}
		// Square step.
		for y := 0; y < side; y += half {
			x0 := half
			if (y/half)%2 == 1 {
				x0 = 0
			}
			for x := x0; x < side; x += step {
				var sum, cnt float64
				if y-half >= 0 {
					sum += f[(y-half)*side+x]
					cnt++
				}
				if y+half < side {
					sum += f[(y+half)*side+x]
					cnt++
				}
				if x-half >= 0 {
					sum += f[y*side+x-half]
					cnt++
				}
				if x+half < side {
					sum += f[y*side+x+half]
					cnt++
				}
				f[y*side+x] = sum/cnt + (rng.Float64()*2-1)*amp
			}
		}
		amp *= 0.55
	}

	g := &Grid{W: w, H: h, Elev: make([]float32, w*h)}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := 1500 / (hi - lo)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Elev[y*w+x] = float32((f[y*side+x] - lo) * scale)
		}
	}
	return g
}

// ThreatSite is a ground-based threat: a sensor at (X, Y) with detection
// radius R (in cells) and sensor height SensorZ (absolute meters).
type ThreatSite struct {
	ID      int
	X, Y    int
	R       int
	SensorZ float64
}

// Scenario is one benchmark input: a terrain grid plus threat sites.
type Scenario struct {
	Name    string
	Grid    *Grid
	Threats []ThreatSite

	// rayVisits memoizes per-threat, per-ray visit counts so that
	// timing-only solver runs (Opt.ChargeOnly) can replay the machine
	// charges without re-tracing rays. Populated by any full run or by Warm.
	rayVisits map[int][]int
}

// rayCache returns the threat's per-ray visit cache, creating it (-1 =
// unknown) on first use.
func (s *Scenario) rayCache(site *ThreatSite) []int {
	if s.rayVisits == nil {
		s.rayVisits = make(map[int][]int)
	}
	rv, ok := s.rayVisits[site.ID]
	if !ok {
		rv = make([]int, NumRays(site.R))
		for i := range rv {
			rv[i] = -1
		}
		s.rayVisits[site.ID] = rv
	}
	return rv
}

// Warm populates every threat's ray-visit cache (tracing into a scratch
// field), so subsequent ChargeOnly solver runs replay instantly.
func (s *Scenario) Warm() {
	var f *Field
	for i := range s.Threats {
		site := &s.Threats[i]
		rv := s.rayCache(site)
		if f == nil {
			f = NewField(site)
		} else {
			f.X0, f.Y0 = site.X-site.R, site.Y-site.R
			f.Reset()
		}
		for ray := range rv {
			if rv[ray] < 0 {
				rv[ray] = TraceRay(s.Grid, site, f, ray)
			}
		}
	}
}

// ROICells returns the number of cells in one threat's region of influence.
func ROICells(r int) int {
	n := 0
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				n++
			}
		}
	}
	return n
}

// GenParams controls scenario generation.
type GenParams struct {
	Side       int // terrain is Side×Side cells
	NumThreats int
	Radius     int // ROI radius in cells
	Seed       int64
}

// Default scenario geometry: a 2380² grid with ROI radius 300 makes each
// threat's region of influence ≈ π·300²/2380² ≈ 5.0% of the terrain — the
// paper's figure — and a 30 km sensor radius at 100 m cells.
const (
	DefaultSide   = 2380
	DefaultRadius = 300
)

// GenScenario builds a deterministic scenario. Threat sites keep a full ROI
// margin from the terrain edge, as the benchmark terrain does.
func GenScenario(name string, p GenParams) *Scenario {
	if p.Side == 0 {
		p.Side = DefaultSide
	}
	if p.Radius == 0 {
		p.Radius = DefaultRadius
	}
	if p.Side <= 2*p.Radius+2 {
		panic(fmt.Sprintf("terrain: side %d too small for radius %d", p.Side, p.Radius))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := GenGrid(p.Side, p.Side, p.Seed^0x5eed)
	s := &Scenario{Name: name, Grid: g}
	for i := 0; i < p.NumThreats; i++ {
		x := p.Radius + rng.Intn(p.Side-2*p.Radius)
		y := p.Radius + rng.Intn(p.Side-2*p.Radius)
		s.Threats = append(s.Threats, ThreatSite{
			ID: i, X: x, Y: y, R: p.Radius,
			SensorZ: float64(g.At(x, y)) + 15,
		})
	}
	return s
}

// SuiteScale maps a scale factor onto generation parameters: the paper's
// scenarios have 60 threats each; scale shrinks the threat count while the
// terrain and ROI stay at full size so the memory-bound character (working
// sets larger than every cache) is preserved at any scale.
func SuiteScale(scale float64) GenParams {
	n := int(math.Round(60 * scale))
	if n < 3 {
		n = 3
	}
	return GenParams{Side: DefaultSide, NumThreats: n, Radius: DefaultRadius}
}

// Suite returns the benchmark's five input scenarios at the given scale; the
// benchmark time is the total over all five, as in the paper's tables.
func Suite(scale float64) []*Scenario {
	out := make([]*Scenario, 5)
	for i := range out {
		p := SuiteScale(scale)
		p.Seed = int64(201 + i)
		out[i] = GenScenario(fmt.Sprintf("scenario-%d", i+1), p)
	}
	return out
}
