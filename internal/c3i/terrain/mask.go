package terrain

import (
	"math"
)

// Field is one threat's masking field over its ROI bounding box. Vals is
// row-major over the box; cells the ray fan never reaches stay +Inf (they
// are outside the region of influence).
type Field struct {
	X0, Y0 int // grid coordinates of the box origin
	W, H   int
	Vals   []float32
}

// NewField returns the +Inf-initialized field for a threat.
func NewField(t *ThreatSite) *Field {
	f := &Field{X0: t.X - t.R, Y0: t.Y - t.R, W: 2*t.R + 1, H: 2*t.R + 1}
	f.Vals = make([]float32, f.W*f.H)
	f.Reset()
	return f
}

// Reset restores every cell to +Inf.
func (f *Field) Reset() {
	inf := float32(math.Inf(1))
	for i := range f.Vals {
		f.Vals[i] = inf
	}
}

// At returns the field value at grid coordinates (x, y).
func (f *Field) At(x, y int) float32 {
	return f.Vals[(y-f.Y0)*f.W+(x-f.X0)]
}

// set lowers the field value at grid coordinates (min-combine).
func (f *Field) set(x, y int, v float32) {
	i := (y-f.Y0)*f.W + (x - f.X0)
	if v < f.Vals[i] {
		f.Vals[i] = v
	}
}

// Bytes returns the field's storage size — the per-thread temp-array memory
// the paper identifies as the coarse-grained approach's drawback.
func (f *Field) Bytes() uint64 { return uint64(len(f.Vals)) * 4 }

// NumRays returns the size of a threat's ray fan: one ray per perimeter cell
// of the ROI bounding box.
func NumRays(r int) int { return 8 * r }

// rayTarget returns the i-th perimeter cell of the box of radius r around
// (0,0), walking the perimeter clockwise from the top-left corner.
func rayTarget(r, i int) (dx, dy int) {
	side := 2 * r
	switch e := i / side; e {
	case 0: // top edge, left→right
		return -r + i%side, -r
	case 1: // right edge, top→bottom
		return r, -r + i%side
	case 2: // bottom edge, right→left
		return r - i%side, r
	default: // left edge, bottom→top
		return -r, r - i%side
	}
}

// TraceRay walks one ray of threat t outward by DDA, min-combining the
// masking altitude into the field, and returns the number of cells visited.
// The masking altitude at distance d is the sightline height over the
// highest interposing ridge: sensorZ + maxSlope·d, clamped at 0 (a cell with
// clear line of sight to the sensor offers no safe altitude). The slope of
// the current cell's own terrain joins the propagated maximum afterwards,
// so ridge cells themselves can still be masked by nearer ridges.
func TraceRay(g *Grid, t *ThreatSite, f *Field, ray int) int {
	dx, dy := rayTarget(t.R, ray)
	steps := dx
	if steps < 0 {
		steps = -steps
	}
	if dy > steps {
		steps = dy
	}
	if -dy > steps {
		steps = -dy
	}
	if steps == 0 {
		return 0
	}
	maxSlope := math.Inf(-1)
	visits := 0
	rr := float64(t.R) * float64(t.R)
	for i := 1; i <= steps; i++ {
		x := t.X + int(math.Round(float64(dx)*float64(i)/float64(steps)))
		y := t.Y + int(math.Round(float64(dy)*float64(i)/float64(steps)))
		cdx, cdy := float64(x-t.X), float64(y-t.Y)
		d2 := cdx*cdx + cdy*cdy
		if d2 > rr {
			break
		}
		d := math.Sqrt(d2) * CellMeters
		visits++
		alt := t.SensorZ + maxSlope*d
		if alt < 0 {
			alt = 0
		}
		f.set(x, y, float32(alt))
		slope := (float64(g.At(x, y)) - t.SensorZ) / d
		if slope > maxSlope {
			maxSlope = slope
		}
	}
	return visits
}

// TraceSector traces rays [lo, hi) of the fan and returns total visits.
func TraceSector(g *Grid, t *ThreatSite, f *Field, lo, hi int) int {
	visits := 0
	for r := lo; r < hi; r++ {
		visits += TraceRay(g, t, f, r)
	}
	return visits
}

// Masking is a full-terrain masking result: the minimum over all processed
// threats, +Inf where no threat reaches.
type Masking struct {
	W, H int
	Vals []float32
}

// NewMasking returns the all-+Inf masking for a grid.
func NewMasking(g *Grid) *Masking {
	m := &Masking{W: g.W, H: g.H, Vals: make([]float32, g.W*g.H)}
	inf := float32(math.Inf(1))
	for i := range m.Vals {
		m.Vals[i] = inf
	}
	return m
}

// At returns the masking value at (x, y).
func (m *Masking) At(x, y int) float32 { return m.Vals[y*m.W+x] }

// MergeRow min-combines one row of a field into the masking and returns the
// number of finite cells merged.
func (m *Masking) MergeRow(f *Field, row int) int {
	y := f.Y0 + row
	merged := 0
	base := y * m.W
	fbase := row * f.W
	for i := 0; i < f.W; i++ {
		v := f.Vals[fbase+i]
		if math.IsInf(float64(v), 1) {
			continue
		}
		x := f.X0 + i
		if v < m.Vals[base+x] {
			m.Vals[base+x] = v
		}
		merged++
	}
	return merged
}

// MergeRowRange min-combines field row cells whose grid x lies in [x0, x1)
// into the masking — the block-wise merge used by the coarse variant.
func (m *Masking) MergeRowRange(f *Field, row, x0, x1 int) int {
	y := f.Y0 + row
	merged := 0
	base := y * m.W
	for x := x0; x < x1; x++ {
		v := f.Vals[row*f.W+(x-f.X0)]
		if math.IsInf(float64(v), 1) {
			continue
		}
		if v < m.Vals[base+x] {
			m.Vals[base+x] = v
		}
		merged++
	}
	return merged
}

// Equal reports whether two maskings are bitwise identical.
func (m *Masking) Equal(o *Masking) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i, v := range m.Vals {
		ov := o.Vals[i]
		if v != ov && !(math.IsInf(float64(v), 1) && math.IsInf(float64(ov), 1)) {
			return false
		}
	}
	return true
}

// FiniteCells returns how many cells have a finite masking altitude — the
// union of the regions of influence.
func (m *Masking) FiniteCells() int {
	n := 0
	for _, v := range m.Vals {
		if !math.IsInf(float64(v), 1) {
			n++
		}
	}
	return n
}
