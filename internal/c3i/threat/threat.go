// Package threat implements the C3I Parallel Benchmark Suite Threat
// Analysis problem: "a time-stepped simulation of the trajectories of
// incoming ballistic threats, with computation of options for intercepting
// the threats."
//
// Inputs are (i) the trajectories of a set of incoming threats and (ii) the
// locations and capabilities of a set of weapons. For each (threat, weapon)
// pair the program computes the time intervals over which the threat can be
// intercepted by the weapon, exactly as in the paper's Program 1: scanning
// time steps from the threat's detection time to its impact time and
// emitting (threat, weapon, [t1..t2]) tuples for each maximal feasible run.
// A pair can contribute zero, one, or several intervals (the threat crosses
// the weapon's altitude band and range ring more than once).
//
// The package provides the three program variants studied in the paper:
//
//   - Sequential: Program 1, the original single-threaded structure with
//     one shared num_intervals counter and intervals array.
//   - Chunked: Program 2, the manual parallelization — a multithreaded loop
//     over chunks of threats, each chunk with its own oversized intervals
//     array (deterministic; the memory-overhead drawback is reported).
//   - FineGrained: the paper's "alternative approach" — parallel over all
//     threats with a single shared array guarded by an atomic fetch-and-add
//     on a synchronization variable, giving nondeterministic result order.
//     Viable on the Tera MTA, not on the conventional platforms.
//
// The original benchmark inputs are not redistributable; GenScenario builds
// deterministic synthetic scenarios with the same counts (1000 threats, 25
// weapons per scenario at scale 1) and the same statistical structure.
package threat

import (
	"fmt"
	"math"
	"math/rand"
)

// Gravity is the constant downward acceleration applied to threats, m/s².
const Gravity = 9.8

// Vec3 is a position or velocity in meters / meters per second.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Threat is one incoming ballistic object. Trajectories are purely
// ballistic: position(t) = Launch + Vel·t + ½·g·t² (g downward), from launch
// (t=0) until impact (z returns to 0).
type Threat struct {
	ID     int
	Launch Vec3    // launch position, Z = 0
	Vel    Vec3    // launch velocity; Vel.Z > 0
	Detect float64 // seconds after launch at which the threat is detected
}

// Position returns the threat position t seconds after launch.
func (th *Threat) Position(t float64) Vec3 {
	return Vec3{
		X: th.Launch.X + th.Vel.X*t,
		Y: th.Launch.Y + th.Vel.Y*t,
		Z: th.Launch.Z + th.Vel.Z*t - 0.5*Gravity*t*t,
	}
}

// ImpactTime returns the time at which the threat returns to z = 0.
func (th *Threat) ImpactTime() float64 {
	return 2 * th.Vel.Z / Gravity
}

// Weapon is a ground-based interceptor site.
type Weapon struct {
	ID       int
	Pos      Vec3    // site position, Z = 0
	MinRange float64 // slant range envelope, meters
	MaxRange float64
	MinAlt   float64 // engageable threat altitude window, meters
	MaxAlt   float64
	Speed    float64 // interceptor fly-out speed, m/s
	Ready    float64 // earliest launch time, seconds
}

// CanIntercept reports whether the weapon can intercept the threat at
// absolute time t (seconds after threat launch): the threat must be within
// the weapon's altitude window and range envelope, the weapon must be ready,
// and an interceptor launched after detection must be able to fly out to the
// threat's position by t.
func (w *Weapon) CanIntercept(th *Threat, t float64) bool {
	if t < th.Detect || t < w.Ready {
		return false
	}
	p := th.Position(t)
	if p.Z < w.MinAlt || p.Z > w.MaxAlt {
		return false
	}
	d := p.Sub(w.Pos)
	d2 := d.Dot(d)
	if d2 < w.MinRange*w.MinRange || d2 > w.MaxRange*w.MaxRange {
		return false
	}
	reach := w.Speed * (t - th.Detect)
	return d2 <= reach*reach
}

// Interval records that threat Threat can be intercepted by weapon Weapon
// over time steps [T1, T2] (inclusive, in scenario step units).
type Interval struct {
	Threat, Weapon int
	T1, T2         int
}

// Scenario is one benchmark input: a set of threats and weapons plus the
// simulation time step.
type Scenario struct {
	Name    string
	DT      float64 // seconds per simulation step
	Threats []Threat
	Weapons []Weapon

	// winCache memoizes each pair's interception windows so repeated solver
	// runs over the same scenario (different machines, chunk counts, …)
	// do not redo the time-stepped scan. Keyed by ti*len(Weapons)+wi.
	winCache map[int][][2]int
}

// StepTime converts a step index to seconds.
func (s *Scenario) StepTime(k int) float64 { return float64(k) * s.DT }

// DetectStep returns the first step at or after the threat's detection time.
func (s *Scenario) DetectStep(th *Threat) int {
	return int(math.Ceil(th.Detect / s.DT))
}

// ImpactStep returns the last step at or before the threat's impact time.
func (s *Scenario) ImpactStep(th *Threat) int {
	return int(math.Floor(th.ImpactTime() / s.DT))
}

// PairSteps returns the number of simulation steps scanned for one
// (threat, weapon) pair: detection through impact.
func (s *Scenario) PairSteps(th *Threat) int {
	n := s.ImpactStep(th) - s.DetectStep(th) + 1
	if n < 0 {
		return 0
	}
	return n
}

// TotalSteps returns the total steps scanned over all pairs — the benchmark
// work metric.
func (s *Scenario) TotalSteps() int64 {
	var total int64
	for i := range s.Threats {
		total += int64(s.PairSteps(&s.Threats[i])) * int64(len(s.Weapons))
	}
	return total
}

// CachedPairIntervals is PairIntervals memoized per scenario: the first call
// for a pair performs the scan, later calls replay the windows. The solver
// variants all charge the scan's full cost to their machine regardless; the
// cache only avoids repeating identical Go-side computation across runs.
func (s *Scenario) CachedPairIntervals(ti, wi int, emit func(t1, t2 int)) {
	key := ti*len(s.Weapons) + wi
	if s.winCache == nil {
		s.winCache = make(map[int][][2]int)
	}
	wins, ok := s.winCache[key]
	if !ok {
		s.PairIntervals(&s.Threats[ti], &s.Weapons[wi], func(t1, t2 int) {
			wins = append(wins, [2]int{t1, t2})
		})
		s.winCache[key] = wins
	}
	for _, w := range wins {
		emit(w[0], w[1])
	}
}

// PairIntervals scans the pair's feasible time steps and calls emit for each
// maximal feasible run [t1, t2] — the uncharged computational core shared by
// every solver variant. The scan is exactly Program 1's structure: t0 starts
// at detection; each found window advances t0 past its end.
func (s *Scenario) PairIntervals(th *Threat, w *Weapon, emit func(t1, t2 int)) {
	lo, hi := s.DetectStep(th), s.ImpactStep(th)
	runStart := -1
	for k := lo; k <= hi; k++ {
		if w.CanIntercept(th, s.StepTime(k)) {
			if runStart < 0 {
				runStart = k
			}
		} else if runStart >= 0 {
			emit(runStart, k-1)
			runStart = -1
		}
	}
	if runStart >= 0 {
		emit(runStart, hi)
	}
}

// GenParams controls synthetic scenario generation.
type GenParams struct {
	NumThreats int
	NumWeapons int
	DT         float64 // simulation step, seconds
	Seed       int64
}

// DefaultDT is the simulation time step in seconds. With launch velocities
// of 1.1–2.4 km/s the typical flight is 220–490 s, giving the ~1500 steps
// per (threat, weapon) pair assumed by the cost calibration in costs.go.
const DefaultDT = 0.25

// GenScenario builds a deterministic synthetic scenario: threats are
// ballistic arcs aimed into a 200×200 km defended area ringed by the weapon
// sites they must overfly.
func GenScenario(name string, p GenParams) *Scenario {
	if p.DT == 0 {
		p.DT = DefaultDT
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Scenario{Name: name, DT: p.DT}

	const areaKM = 200e3 // defended area side, meters

	for i := 0; i < p.NumWeapons; i++ {
		s.Weapons = append(s.Weapons, Weapon{
			ID:       i,
			Pos:      Vec3{rng.Float64() * areaKM, rng.Float64() * areaKM, 0},
			MinRange: 5e3 + rng.Float64()*15e3,
			MaxRange: 40e3 + rng.Float64()*50e3,
			MinAlt:   1e3 + rng.Float64()*2e3,
			MaxAlt:   25e3 + rng.Float64()*35e3,
			Speed:    800 + rng.Float64()*1200,
			Ready:    rng.Float64() * 60,
		})
	}

	for i := 0; i < p.NumThreats; i++ {
		// Aim point inside the defended area; launch from 300–600 km out.
		target := Vec3{rng.Float64() * areaKM, rng.Float64() * areaKM, 0}
		bearing := rng.Float64() * 2 * math.Pi
		dist := 300e3 + rng.Float64()*300e3
		launch := Vec3{
			X: target.X + dist*math.Cos(bearing),
			Y: target.Y + dist*math.Sin(bearing),
			Z: 0,
		}
		vz := 1100 + rng.Float64()*1300
		flight := 2 * vz / Gravity
		vel := Vec3{
			X: (target.X - launch.X) / flight,
			Y: (target.Y - launch.Y) / flight,
			Z: vz,
		}
		s.Threats = append(s.Threats, Threat{
			ID:     i,
			Launch: launch,
			Vel:    vel,
			Detect: 5 + rng.Float64()*35,
		})
	}
	return s
}

// SuiteScale describes how a scale factor maps onto scenario sizes: the
// paper's benchmark has 1000 threats and (per the C3IPBS definition) a small
// fixed battery of weapons per scenario; scale shrinks the threat count.
func SuiteScale(scale float64) GenParams {
	n := int(math.Round(1000 * scale))
	if n < 4 {
		n = 4
	}
	return GenParams{NumThreats: n, NumWeapons: 25, DT: DefaultDT}
}

// Suite returns the benchmark's five input scenarios at the given scale
// (scale 1 ≈ the paper's workload; the benchmark time is the total over all
// five, as in every table of the paper).
func Suite(scale float64) []*Scenario {
	out := make([]*Scenario, 5)
	for i := range out {
		p := SuiteScale(scale)
		p.Seed = int64(101 + i)
		out[i] = GenScenario(fmt.Sprintf("scenario-%d", i+1), p)
	}
	return out
}
