package threat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func smallScenario(seed int64) *Scenario {
	return GenScenario("test", GenParams{NumThreats: 30, NumWeapons: 10, Seed: seed})
}

func TestBallisticsImpact(t *testing.T) {
	th := Threat{Vel: Vec3{100, 0, 980}}
	// Impact when z returns to zero: t = 2·980/9.8 = 200 s.
	if got := th.ImpactTime(); math.Abs(got-200) > 1e-9 {
		t.Errorf("ImpactTime = %v, want 200", got)
	}
	p := th.Position(th.ImpactTime())
	if math.Abs(p.Z) > 1e-6 {
		t.Errorf("z at impact = %v, want 0", p.Z)
	}
	// Apex at t=100: z = 980·100 − 4.9·10⁴ = 49000.
	if z := th.Position(100).Z; math.Abs(z-49000) > 1e-6 {
		t.Errorf("apex z = %v, want 49000", z)
	}
}

func TestCanInterceptEnvelope(t *testing.T) {
	th := Threat{Launch: Vec3{0, 0, 0}, Vel: Vec3{100, 0, 1470}, Detect: 10}
	w := Weapon{
		Pos:      Vec3{15000, 0, 0},
		MinRange: 1000, MaxRange: 60000,
		MinAlt: 2000, MaxAlt: 80000,
		Speed: 2000, Ready: 0,
	}
	// Before detection: never.
	if w.CanIntercept(&th, 5) {
		t.Error("intercept before detection")
	}
	// Right at detection the interceptor has had no fly-out time.
	if w.CanIntercept(&th, 10.0) {
		t.Error("intercept with zero fly-out time at nonzero range")
	}
	// Ascending through the altitude window with fly-out time: feasible.
	if !w.CanIntercept(&th, 35) {
		t.Error("no intercept during ascent inside the envelope")
	}
	// Mid-flight the threat is above MaxAlt (apex ≈ 110 km): infeasible —
	// this is what produces two interception windows for one pair.
	if w.CanIntercept(&th, 150) {
		t.Error("intercept above MaxAlt at apex")
	}
	// Descending back through the window: feasible again.
	if !w.CanIntercept(&th, 270) {
		t.Error("no intercept during descent inside the envelope")
	}
	// Below minimum altitude near impact.
	impact := th.ImpactTime()
	if w.CanIntercept(&th, impact-0.1) {
		t.Error("intercept below MinAlt just before impact")
	}
}

func TestReadyTimeBlocksEarlyIntercept(t *testing.T) {
	th := Threat{Vel: Vec3{50, 0, 1470}, Detect: 5}
	w := Weapon{Pos: Vec3{5000, 0, 0}, MinRange: 0, MaxRange: 1e6,
		MinAlt: 0, MaxAlt: 1e6, Speed: 5000, Ready: 100}
	if w.CanIntercept(&th, 99) {
		t.Error("intercept before weapon ready")
	}
	if !w.CanIntercept(&th, 101) {
		t.Error("no intercept after ready despite permissive envelope")
	}
}

func TestPairIntervalsMaximalRuns(t *testing.T) {
	s := smallScenario(7)
	for ti := range s.Threats {
		for wi := range s.Weapons {
			th, w := &s.Threats[ti], &s.Weapons[wi]
			var ivs []Interval
			s.PairIntervals(th, w, func(t1, t2 int) {
				ivs = append(ivs, Interval{Threat: ti, Weapon: wi, T1: t1, T2: t2})
			})
			if err := Validate(s, ivs); err != nil {
				t.Fatalf("pair (%d,%d): %v", ti, wi, err)
			}
		}
	}
}

func TestScenarioGenerationDeterministic(t *testing.T) {
	a := GenScenario("a", GenParams{NumThreats: 50, NumWeapons: 5, Seed: 3})
	b := GenScenario("b", GenParams{NumThreats: 50, NumWeapons: 5, Seed: 3})
	for i := range a.Threats {
		if a.Threats[i].Launch != b.Threats[i].Launch || a.Threats[i].Vel != b.Threats[i].Vel {
			t.Fatalf("threat %d differs between identical seeds", i)
		}
	}
	c := GenScenario("c", GenParams{NumThreats: 50, NumWeapons: 5, Seed: 4})
	same := true
	for i := range a.Threats {
		if a.Threats[i].Launch != c.Threats[i].Launch {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical threats")
	}
}

func TestScenarioHasInterceptionWork(t *testing.T) {
	// The synthetic geometry must actually produce intervals (threats
	// overfly weapons) and multiple windows for some pairs. Multi-window
	// pairs are rare (~0.1% of pairs), so use a larger sample.
	s := GenScenario("stats", GenParams{NumThreats: 200, NumWeapons: 25, Seed: 11})
	total := 0
	multi := 0
	for ti := range s.Threats {
		for wi := range s.Weapons {
			n := 0
			s.PairIntervals(&s.Threats[ti], &s.Weapons[wi], func(_, _ int) { n++ })
			total += n
			if n > 1 {
				multi++
			}
		}
	}
	if total == 0 {
		t.Fatal("scenario produced no interception intervals")
	}
	if multi == 0 {
		t.Error("no pair produced multiple windows; generator statistics off")
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(0.05)
	if len(suite) != 5 {
		t.Fatalf("suite has %d scenarios, want 5", len(suite))
	}
	for _, s := range suite {
		if len(s.Threats) != 50 {
			t.Errorf("%s: %d threats, want 50 at scale 0.05", s.Name, len(s.Threats))
		}
		if len(s.Weapons) != 25 {
			t.Errorf("%s: %d weapons, want 25", s.Name, len(s.Weapons))
		}
	}
	if Suite(0.0001)[0] == nil || len(Suite(0.0001)[0].Threats) < 4 {
		t.Error("tiny scale must clamp to a usable threat count")
	}
}

func TestTotalStepsPositive(t *testing.T) {
	s := smallScenario(1)
	if s.TotalSteps() <= 0 {
		t.Error("TotalSteps = 0")
	}
	// Roughly: pairs × ~1300 steps.
	pairs := int64(len(s.Threats) * len(s.Weapons))
	if s.TotalSteps() < pairs*500 || s.TotalSteps() > pairs*2500 {
		t.Errorf("TotalSteps = %d, outside plausible range for %d pairs", s.TotalSteps(), pairs)
	}
}

// runSolver executes a solver on the Alpha model (fast, single-threaded
// semantics are irrelevant to output correctness).
func runSolver(t *testing.T, s *Scenario, solve func(*machine.Thread, *Scenario) *Output) *Output {
	t.Helper()
	var out *Output
	e := smp.New(smp.AlphaStation())
	_, err := e.Run("main", func(th *machine.Thread) { out = solve(th, s) })
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSequentialOutputValid(t *testing.T) {
	s := smallScenario(2)
	out := runSolver(t, s, Sequential)
	if len(out.Intervals) == 0 {
		t.Fatal("no intervals")
	}
	if err := Validate(s, out.Intervals); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedMatchesSequential(t *testing.T) {
	s := smallScenario(3)
	want := runSolver(t, s, Sequential)
	for _, chunks := range []int{1, 2, 7, 30, 64} {
		chunks := chunks
		got := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
			return Chunked(th, sc, chunks)
		})
		if err := Verify(got.Intervals, want.Intervals); err != nil {
			t.Errorf("chunks=%d: %v", chunks, err)
		}
	}
}

func TestChunkedDeterministicOrder(t *testing.T) {
	// Chunked output must be in threat-major order (chunks concatenated in
	// order), exactly like the sequential program.
	s := smallScenario(4)
	seqOut := runSolver(t, s, Sequential)
	chunkOut := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Chunked(th, sc, 8)
	})
	for i := range seqOut.Intervals {
		if seqOut.Intervals[i] != chunkOut.Intervals[i] {
			t.Fatalf("order differs at %d: %+v vs %+v", i, seqOut.Intervals[i], chunkOut.Intervals[i])
		}
	}
}

func TestFineGrainedMatchesSequentialAsSet(t *testing.T) {
	s := smallScenario(5)
	want := runSolver(t, s, Sequential)
	got := runSolver(t, s, FineGrained)
	if err := Verify(got.Intervals, want.Intervals); err != nil {
		t.Fatal(err)
	}
}

func TestFineGrainedOrderDiffersOnMTA(t *testing.T) {
	// The paper: "An unwelcome consequence of this approach is
	// nondeterministic ordering of the elements of the intervals array".
	// Under many concurrent streams the emission order differs from the
	// sequential order even though the set matches.
	s := smallScenario(6)
	var seqOut, fgOut *Output
	e := mta.New(mta.Params{Procs: 1})
	if _, err := e.Run("main", func(th *machine.Thread) {
		seqOut = Sequential(th, s)
	}); err != nil {
		t.Fatal(err)
	}
	e2 := mta.New(mta.Params{Procs: 1})
	if _, err := e2.Run("main", func(th *machine.Thread) {
		fgOut = FineGrained(th, s)
	}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(fgOut.Intervals, seqOut.Intervals); err != nil {
		t.Fatal(err)
	}
	sameOrder := true
	for i := range seqOut.Intervals {
		if seqOut.Intervals[i] != fgOut.Intervals[i] {
			sameOrder = false
			break
		}
	}
	if sameOrder {
		t.Error("fine-grained emission order identical to sequential; expected interleaving")
	}
}

func TestChunkedArrayBytesGrowWithChunks(t *testing.T) {
	// The paper's drawback: "the larger the number of chunks, the larger the
	// intervals array."
	s := smallScenario(8)
	small := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Chunked(th, sc, 2)
	})
	big := runSolver(t, s, func(th *machine.Thread, sc *Scenario) *Output {
		return Chunked(th, sc, 30)
	})
	if big.ArrayBytes < small.ArrayBytes {
		t.Errorf("ArrayBytes: 30 chunks %d < 2 chunks %d", big.ArrayBytes, small.ArrayBytes)
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	a := []Interval{{0, 0, 1, 2}}
	b := []Interval{{0, 0, 1, 3}}
	if err := Verify(a, b); err == nil {
		t.Error("Verify accepted mismatched intervals")
	}
	if err := Verify(a, a[:0]); err == nil {
		t.Error("Verify accepted length mismatch")
	}
	if err := Verify(a, a); err != nil {
		t.Errorf("Verify rejected identical sets: %v", err)
	}
}

func TestVerifyOrderInsensitive(t *testing.T) {
	a := []Interval{{0, 0, 1, 2}, {1, 0, 3, 4}}
	b := []Interval{{1, 0, 3, 4}, {0, 0, 1, 2}}
	if err := Verify(a, b); err != nil {
		t.Errorf("Verify is order-sensitive: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := smallScenario(9)
	out := runSolver(t, s, Sequential)
	if len(out.Intervals) == 0 {
		t.Skip("no intervals")
	}
	bad := make([]Interval, len(out.Intervals))
	copy(bad, out.Intervals)
	bad[0].T2 = bad[0].T1 - 1 // empty window
	if err := Validate(s, bad); err == nil {
		t.Error("Validate accepted an empty window")
	}
	copy(bad, out.Intervals)
	bad[0].Weapon = len(s.Weapons) + 5
	if err := Validate(s, bad); err == nil {
		t.Error("Validate accepted an out-of-range weapon")
	}
}

// Property: for random small scenarios, chunked output equals sequential
// output for a random chunk count.
func TestPropertyChunkingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := GenScenario("prop", GenParams{
			NumThreats: 5 + rng.Intn(12),
			NumWeapons: 2 + rng.Intn(5),
			Seed:       rng.Int63(),
		})
		chunks := 1 + rng.Intn(20)
		var want, got *Output
		e := smp.New(smp.AlphaStation())
		if _, err := e.Run("main", func(th *machine.Thread) {
			want = Sequential(th, s)
			got = Chunked(th, s, chunks)
		}); err != nil {
			return false
		}
		return Verify(got.Intervals, want.Intervals) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: intervals always satisfy the structural invariants.
func TestPropertyIntervalInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := GenScenario("prop", GenParams{
			NumThreats: 5 + rng.Intn(15),
			NumWeapons: 2 + rng.Intn(6),
			Seed:       rng.Int63(),
		})
		var out *Output
		e := smp.New(smp.AlphaStation())
		if _, err := e.Run("main", func(th *machine.Thread) {
			out = Sequential(th, s)
		}); err != nil {
			return false
		}
		return Validate(s, out.Intervals) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
