package threat

import (
	"fmt"
	"sort"
)

// sortIntervals orders intervals by (threat, weapon, t1, t2) — the canonical
// order for comparing variant outputs whose emission order differs.
func sortIntervals(ivs []Interval) []Interval {
	out := make([]Interval, len(ivs))
	copy(out, ivs)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Threat != b.Threat {
			return a.Threat < b.Threat
		}
		if a.Weapon != b.Weapon {
			return a.Weapon < b.Weapon
		}
		if a.T1 != b.T1 {
			return a.T1 < b.T1
		}
		return a.T2 < b.T2
	})
	return out
}

// Verify checks that got and want contain exactly the same interval set,
// irrespective of order (the fine-grained variant's order is
// nondeterministic). It is the benchmark's correctness test.
func Verify(got, want []Interval) error {
	if len(got) != len(want) {
		return fmt.Errorf("threat: interval count mismatch: got %d, want %d", len(got), len(want))
	}
	g, w := sortIntervals(got), sortIntervals(want)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("threat: interval %d mismatch: got %+v, want %+v", i, g[i], w[i])
		}
	}
	return nil
}

// Validate checks the structural invariants every correct solver output must
// satisfy against its scenario: indices in range, windows inside the
// detection-to-impact span, feasibility exactly at the window boundaries and
// infeasibility just outside them, and per-pair windows disjoint and sorted.
func Validate(s *Scenario, ivs []Interval) error {
	byPair := map[[2]int][]Interval{}
	for _, iv := range ivs {
		if iv.Threat < 0 || iv.Threat >= len(s.Threats) {
			return fmt.Errorf("threat: interval references threat %d of %d", iv.Threat, len(s.Threats))
		}
		if iv.Weapon < 0 || iv.Weapon >= len(s.Weapons) {
			return fmt.Errorf("threat: interval references weapon %d of %d", iv.Weapon, len(s.Weapons))
		}
		if iv.T1 > iv.T2 {
			return fmt.Errorf("threat: empty interval %+v", iv)
		}
		th, w := &s.Threats[iv.Threat], &s.Weapons[iv.Weapon]
		if iv.T1 < s.DetectStep(th) || iv.T2 > s.ImpactStep(th) {
			return fmt.Errorf("threat: interval %+v outside detect..impact [%d, %d]",
				iv, s.DetectStep(th), s.ImpactStep(th))
		}
		// Boundary exactness.
		if !w.CanIntercept(th, s.StepTime(iv.T1)) || !w.CanIntercept(th, s.StepTime(iv.T2)) {
			return fmt.Errorf("threat: interval %+v endpoints not feasible", iv)
		}
		if w.CanIntercept(th, s.StepTime(iv.T1-1)) {
			return fmt.Errorf("threat: interval %+v not maximal at start", iv)
		}
		if iv.T2+1 <= s.ImpactStep(th) && w.CanIntercept(th, s.StepTime(iv.T2+1)) {
			return fmt.Errorf("threat: interval %+v not maximal at end", iv)
		}
		byPair[[2]int{iv.Threat, iv.Weapon}] = append(byPair[[2]int{iv.Threat, iv.Weapon}], iv)
	}
	for pair, list := range byPair {
		sort.Slice(list, func(i, j int) bool { return list[i].T1 < list[j].T1 })
		if len(list) > maxWindowsPerPair {
			return fmt.Errorf("threat: pair %v has %d windows, max %d", pair, len(list), maxWindowsPerPair)
		}
		for i := 1; i < len(list); i++ {
			if list[i].T1 <= list[i-1].T2+1 {
				return fmt.Errorf("threat: pair %v windows overlap or touch: %+v then %+v",
					pair, list[i-1], list[i])
			}
		}
	}
	return nil
}
