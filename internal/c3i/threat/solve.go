package threat

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/threads"
)

// Costs is the charging calibration for the Threat Analysis kernel: how many
// abstract operations and memory references the original C program performs
// per simulation step. OpsPerStep is calibrated so the five-scenario suite
// at scale 1 takes ≈187 simulated seconds on the AlphaStation model (the
// paper's Table 2); see EXPERIMENTS.md.
type Costs struct {
	OpsPerStep      int64 // instructions per time step (geometry, envelope tests)
	TrajRefsPerStep int   // streaming reads of the input trajectory samples
	DepRefsPerStep  int   // dependent loads: state reloads across the call chain
	OpsPerInterval  int64 // bookkeeping per emitted interval
}

// DefaultCosts is the calibrated cost set (see Costs).
var DefaultCosts = Costs{
	OpsPerStep:      560,
	TrajRefsPerStep: 3,
	DepRefsPerStep:  8,
	OpsPerInterval:  16,
}

// maxWindowsPerPair bounds how many interception windows one (threat,
// weapon) pair may contribute; interval arrays are sized with it. The
// generator's geometry yields at most three.
const maxWindowsPerPair = 8

// intervalBytes is the stored size of one interval tuple.
const intervalBytes = 32

// Layout holds the simulated-memory placement of a scenario's input data.
type Layout struct {
	Scenario *Scenario
	Costs    Costs
	Traj     *mem.Region // per-threat trajectory samples (x,y,z per step)
	State    *mem.Region // threat and weapon state structures
	trajOff  []uint64    // byte offset of each threat's samples in Traj
}

// NewLayout allocates the scenario's input arrays in the machine's address
// space: the trajectory samples the time-stepped scan reads, and the
// threat/weapon state structures it consults through its call chain.
func NewLayout(t *machine.Thread, s *Scenario, c Costs) *Layout {
	lay := &Layout{Scenario: s, Costs: c, trajOff: make([]uint64, len(s.Threats))}
	// 3 float64 samples per step; at least wide enough for the configured
	// streaming-read pattern (cost ablations may redirect dependent refs
	// through this region).
	perStep := uint64(24)
	if w := uint64(c.TrajRefsPerStep) * 8; w > perStep {
		perStep = w
	}
	var total uint64
	for i := range s.Threats {
		lay.trajOff[i] = total
		total += uint64(s.PairSteps(&s.Threats[i])) * perStep
	}
	if total == 0 {
		total = 24
	}
	lay.Traj = t.Alloc(s.Name+" trajectories", total)
	lay.State = t.Alloc(s.Name+" state", uint64(len(s.Threats)+len(s.Weapons))*64)
	return lay
}

// ScanPair runs the charged time-stepped scan for one (threat, weapon) pair,
// invoking emit for each interception window. The charges model Program 1's
// inner loop: OpsPerStep instructions per step, streaming reads of the
// trajectory input, and DepRefsPerStep dependent loads per step (state
// reloaded across function-call boundaries — cheap under a cache, exposed
// memory latency on the cache-less MTA).
func (lay *Layout) ScanPair(t *machine.Thread, ti, wi int, emit func(t1, t2 int)) {
	s := lay.Scenario
	th := &s.Threats[ti]
	steps := s.PairSteps(th)
	if steps <= 0 {
		return
	}
	t.Compute(int64(steps) * lay.Costs.OpsPerStep)
	t.Burst(mem.Burst{
		Region: lay.Traj, Offset: lay.trajOff[ti],
		Stride: 8, Elem: 8, N: lay.Costs.TrajRefsPerStep * steps,
	})
	t.Burst(mem.Burst{
		Region: lay.State, Offset: uint64(len(s.Threats)+wi) * 64,
		Stride: 0, Elem: 8, N: lay.Costs.DepRefsPerStep * steps, Dep: true,
	})
	s.CachedPairIntervals(ti, wi, emit)
}

// Output is a solver's result: the interception intervals plus the total
// bytes of interval-array storage the variant had to allocate — the memory
// overhead the paper discusses for chunked parallelization.
type Output struct {
	Intervals  []Interval
	ArrayBytes uint64
}

// Sequential is Program 1: triple-nested scan with one shared interval count
// and array. It runs entirely on the calling thread.
func Sequential(t *machine.Thread, s *Scenario) *Output {
	return SequentialWithCosts(t, s, DefaultCosts)
}

// SequentialWithCosts is Sequential with an explicit cost calibration.
func SequentialWithCosts(t *machine.Thread, s *Scenario, c Costs) *Output {
	lay := NewLayout(t, s, c)
	capInts := len(s.Threats) * len(s.Weapons) * maxWindowsPerPair
	region := t.Alloc(s.Name+" intervals", uint64(capInts)*intervalBytes)
	out := &Output{ArrayBytes: region.Size}
	for ti := range s.Threats {
		for wi := range s.Weapons {
			lay.ScanPair(t, ti, wi, func(t1, t2 int) {
				n := len(out.Intervals)
				if n >= capInts {
					panic("threat: interval array overflow in Sequential")
				}
				out.Intervals = append(out.Intervals, Interval{Threat: ti, Weapon: wi, T1: t1, T2: t2})
				t.Compute(c.OpsPerInterval)
				t.Burst(mem.WriteBurst(region, uint64(n)*intervalBytes, 8, 4))
			})
		}
	}
	return out
}

// Chunked is Program 2: the outer loop over threats becomes a multithreaded
// loop over chunks, each chunk appending to its own generously-oversized
// interval array and its own count. Results are deterministic: chunks are
// concatenated in chunk order.
func Chunked(t *machine.Thread, s *Scenario, chunks int) *Output {
	return ChunkedWithCosts(t, s, chunks, DefaultCosts)
}

// ChunkedWithCosts is Chunked with an explicit cost calibration.
func ChunkedWithCosts(t *machine.Thread, s *Scenario, chunks int, c Costs) *Output {
	lay := NewLayout(t, s, c)
	nt := len(s.Threats)
	perChunk := make([][]Interval, chunks)
	out := &Output{}

	// Each chunk's array must be sized for the worst case since the count
	// cannot be known in advance — the paper's storage drawback: total
	// allocation grows with the chunk count.
	regions := make([]*mem.Region, chunks)
	caps := make([]int, chunks)
	for ch := 0; ch < chunks; ch++ {
		lo, hi := threads.ChunkBounds(nt, chunks, ch)
		capInts := (hi - lo) * len(s.Weapons) * maxWindowsPerPair
		if capInts == 0 {
			capInts = 1
		}
		caps[ch] = capInts
		regions[ch] = t.Alloc(fmt.Sprintf("%s intervals[%d]", s.Name, ch), uint64(capInts)*intervalBytes)
		out.ArrayBytes += regions[ch].Size
	}

	threads.ParChunks(t, s.Name+" chunks", nt, chunks, func(ct *machine.Thread, ch, lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			for wi := range s.Weapons {
				lay.ScanPair(ct, ti, wi, func(t1, t2 int) {
					n := len(perChunk[ch])
					if n >= caps[ch] {
						panic("threat: interval array overflow in Chunked")
					}
					perChunk[ch] = append(perChunk[ch], Interval{Threat: ti, Weapon: wi, T1: t1, T2: t2})
					ct.Compute(c.OpsPerInterval)
					ct.Burst(mem.WriteBurst(regions[ch], uint64(n)*intervalBytes, 8, 4))
				})
			}
		}
	})

	for _, chunk := range perChunk {
		out.Intervals = append(out.Intervals, chunk...)
	}
	return out
}

// FineGrained is the paper's alternative Tera approach: the outer loop over
// threats is parallelized with no chunking (one thread per threat); the
// shared interval count is an atomic fetch-and-add on a synchronization
// variable and all threads append into one shared array. The result order is
// nondeterministic (it depends on thread interleaving), which is exactly the
// testing/debugging complication the paper notes; the interval *set* equals
// the sequential result.
func FineGrained(t *machine.Thread, s *Scenario) *Output {
	return FineGrainedWithCosts(t, s, DefaultCosts)
}

// FineGrainedWithCosts is FineGrained with an explicit cost calibration.
func FineGrainedWithCosts(t *machine.Thread, s *Scenario, c Costs) *Output {
	lay := NewLayout(t, s, c)
	nt := len(s.Threats)
	capInts := nt * len(s.Weapons) * maxWindowsPerPair
	region := t.Alloc(s.Name+" intervals (shared)", uint64(capInts)*intervalBytes)
	out := &Output{ArrayBytes: region.Size}
	next := t.NewCounter(s.Name+" num_intervals", 0)

	slots := make([]Interval, capInts)
	ts := make([]*machine.Thread, nt)
	for ti := 0; ti < nt; ti++ {
		ti := ti
		ts[ti] = t.Go(fmt.Sprintf("%s threat[%d]", s.Name, ti), func(ct *machine.Thread) {
			for wi := range s.Weapons {
				lay.ScanPair(ct, ti, wi, func(t1, t2 int) {
					n := next.Next(ct) // atomic fetch-and-add on a sync variable
					if int(n) >= capInts {
						panic("threat: interval array overflow in FineGrained")
					}
					slots[n] = Interval{Threat: ti, Weapon: wi, T1: t1, T2: t2}
					ct.Compute(c.OpsPerInterval)
					ct.Burst(mem.WriteBurst(region, uint64(n)*intervalBytes, 8, 4))
				})
			}
		})
	}
	t.JoinAll(ts)
	out.Intervals = append(out.Intervals, slots[:next.Value()]...)
	return out
}
