package threat

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// ScenarioName implements suite.Scenario.
func (s *Scenario) ScenarioName() string { return s.Name }

// Units implements suite.Scenario: the scaled unit is the threat count.
func (s *Scenario) Units() int { return len(s.Threats) }

// Warm precomputes every (threat, weapon) pair's interception windows so
// subsequent solver runs only read the scenario's window cache — the first
// solver run would populate it lazily otherwise, which is unsafe when
// concurrent experiment runs share one memoized scenario.
func (s *Scenario) Warm() {
	for ti := range s.Threats {
		for wi := range s.Weapons {
			s.CachedPairIntervals(ti, wi, func(int, int) {})
		}
	}
}

// Checksum reduces a solver's interval set to a stable FNV-1a checksum: the
// intervals are canonically sorted first, so all variants (including the
// nondeterministically-ordered fine-grained one) produce the same value.
func Checksum(ivs []Interval) uint64 {
	sorted := sortIntervals(ivs)
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	put(len(sorted))
	for _, iv := range sorted {
		put(iv.Threat)
		put(iv.Weapon)
		put(iv.T1)
		put(iv.T2)
	}
	return h.Sum64()
}

// PipelinedCosts is the perfect-lookahead ablation calibration: every
// dependent load re-priced as pipelined streaming traffic (same total
// references, no exposed-latency chains).
func PipelinedCosts() Costs {
	c := DefaultCosts
	c.TrajRefsPerStep += c.DepRefsPerStep
	c.DepRefsPerStep = 0
	return c
}

// costsFrom maps registry params onto a cost calibration.
func costsFrom(p suite.Params) Costs {
	if p["pipelined"] != 0 {
		return PipelinedCosts()
	}
	return DefaultCosts
}

func output(out *Output) suite.Output {
	return suite.Output{Checksum: Checksum(out.Intervals), OverheadBytes: out.ArrayBytes}
}

func init() {
	suite.MustRegister(&suite.Workload{
		Name:             "threat-analysis",
		Key:              "ta",
		FileTag:          "threat",
		Title:            "Threat Analysis",
		Order:            1,
		PaperUnits:       1000,
		UnitName:         "threats/scenario",
		DefaultScale:     0.25,
		DataScale:        0.1,
		SmallScale:       0.02,
		Reference:        "sequential",
		ValidateVariants: []string{"sequential"},
		Generate: func(scale float64) []suite.Scenario {
			return suite.Scenarios(Suite(scale))
		},
		Variants: []*suite.Variant{
			{
				// Program 1: one shared num_intervals counter and array.
				Name: "sequential", Style: suite.Sequential,
				Defaults: suite.Params{"pipelined": 0},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(SequentialWithCosts(t, sc.(*Scenario), costsFrom(p)))
				},
			},
			{
				// Program 2: a multithreaded loop over chunks of threats,
				// each with its own oversized interval array.
				Name: "coarse", Style: suite.Coarse,
				Defaults: suite.Params{"chunks": 16, "pipelined": 0},
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(ChunkedWithCosts(t, sc.(*Scenario), p["chunks"], costsFrom(p)))
				},
			},
			{
				// The paper's alternative Tera approach: one thread per
				// threat, shared array, atomic fetch-and-add append.
				Name: "fine", Style: suite.Fine,
				Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
					return output(FineGrained(t, sc.(*Scenario)))
				},
			},
		},
	})
}
