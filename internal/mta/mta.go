// Package mta models the Tera Multithreaded Architecture (MTA-1) as
// evaluated in the paper: up to 256 processors at 255 MHz, 128 hardware
// streams per processor, a 21-stage pipeline that lets each stream issue at
// most one instruction every 21 cycles, a uniform-access shared memory with
// no caches and a full/empty bit on every word, near-free hardware thread
// create (2 cycles) and 1-cycle synchronization operations.
//
// The model reproduces the mechanisms behind every MTA result in the paper:
//
//   - Instruction issue per processor is a processor-sharing resource of
//     1 instruction/cycle with a per-stream cap of 1/21 — a single-threaded
//     program achieves ~5% utilization ("a single thread … can issue only
//     one instruction every 21 cycles"), while dozens of streams saturate.
//   - Memory has no cache: serially-dependent loads expose the full memory
//     latency to their stream (minus what the issue gap already hides);
//     pipelined (lookahead) bursts expose it only once per burst. With many
//     streams these stalls overlap and the machine stays issue-bound —
//     latency masking by multithreading.
//   - The two-processor configuration's interconnection network was still
//     "under development": remote latency is multiplied and aggregate
//     memory bandwidth discounted by configurable factors, which is what
//     limits two-processor speedup to the paper's 1.4–1.8.
//   - Threads beyond 128 per processor are queued and admitted as streams
//     retire, as the MTA runtime multiplexed software threads onto streams.
package mta

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psq"
	"repro/internal/sim"
)

// Params configures the MTA model. Zero fields are filled from DefaultParams.
type Params struct {
	Procs           int     // processors (paper machine: 2)
	ClockHz         float64 // 255 MHz
	StreamsPerProc  int     // hardware streams per processor: 128
	IssueGap        float64 // min cycles between instructions of one stream: 21
	OpsPerInstr     float64 // abstract ops packed per LIW instruction
	MemLatency      float64 // local memory latency, cycles
	MemBandwidth    float64 // memory refs per cycle per processor
	NetLatencyMult  float64 // memory latency multiplier when Procs > 1
	NetBandwidthEff float64 // aggregate bandwidth efficiency when Procs > 1
	HWThreadCreate  float64 // cycles to create a stream
	SWThreadCreate  float64 // cycles for the runtime's software-thread path
}

// DefaultParams returns the calibrated MTA-1 parameters used throughout the
// reproduction. OpsPerInstr reflects the 3-wide LIW instruction word with
// imperfect packing; MemLatency and the network factors are tuned so the
// model lands on the paper's sequential/parallel ratios (see EXPERIMENTS.md).
func DefaultParams(procs int) Params {
	return Params{
		Procs:           procs,
		ClockHz:         255e6,
		StreamsPerProc:  128,
		IssueGap:        21,
		OpsPerInstr:     4.47,
		MemLatency:      140,
		MemBandwidth:    0.9,
		NetLatencyMult:  1.7,
		NetBandwidthEff: 0.75,
		HWThreadCreate:  2,
		SWThreadCreate:  75,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams(p.Procs)
	if p.ClockHz == 0 {
		p.ClockHz = d.ClockHz
	}
	if p.StreamsPerProc == 0 {
		p.StreamsPerProc = d.StreamsPerProc
	}
	if p.IssueGap == 0 {
		p.IssueGap = d.IssueGap
	}
	if p.OpsPerInstr == 0 {
		p.OpsPerInstr = d.OpsPerInstr
	}
	if p.MemLatency == 0 {
		p.MemLatency = d.MemLatency
	}
	if p.MemBandwidth == 0 {
		p.MemBandwidth = d.MemBandwidth
	}
	if p.NetLatencyMult == 0 {
		p.NetLatencyMult = d.NetLatencyMult
	}
	if p.NetBandwidthEff == 0 {
		p.NetBandwidthEff = d.NetBandwidthEff
	}
	if p.HWThreadCreate == 0 {
		p.HWThreadCreate = d.HWThreadCreate
	}
	if p.SWThreadCreate == 0 {
		p.SWThreadCreate = d.SWThreadCreate
	}
	return p
}

// Model implements machine.Model for the Tera MTA.
type Model struct {
	p Params

	e      *machine.Engine
	issue  []*psq.Queue // per-processor instruction issue
	memory *psq.Queue   // aggregate memory pipeline

	free     []int      // free stream slots per processor
	admitQ   *sim.WaitQ // threads waiting for any stream slot
	nextProc int        // round-robin start for slot search

	effLatency float64
	instrs     float64 // issued instructions (all procs)
}

var _ machine.Model = (*Model)(nil)

// New creates an MTA machine with the given parameters (zero fields take
// defaults) and returns the engine ready to Run.
func New(p Params) *machine.Engine {
	if p.Procs < 1 {
		p.Procs = 1
	}
	p = p.withDefaults()
	m := &Model{p: p}
	cfg := machine.Config{
		Name:    fmt.Sprintf("Tera MTA (%d proc)", p.Procs),
		ClockHz: p.ClockHz,
		Procs:   p.Procs,
	}
	return machine.New(cfg, m)
}

// Params returns the model's effective parameters.
func (m *Model) Params() Params { return m.p }

// Init implements machine.Model.
func (m *Model) Init(e *machine.Engine) {
	m.e = e
	m.issue = make([]*psq.Queue, m.p.Procs)
	m.free = make([]int, m.p.Procs)
	for i := range m.issue {
		m.issue[i] = psq.New(e.Kern, fmt.Sprintf("mta issue p%d", i), 1.0, 1.0/m.p.IssueGap)
		m.free[i] = m.p.StreamsPerProc
	}
	bw := float64(m.p.Procs) * m.p.MemBandwidth
	m.effLatency = m.p.MemLatency
	if m.p.Procs > 1 {
		bw *= m.p.NetBandwidthEff
		m.effLatency *= m.p.NetLatencyMult
	}
	m.memory = psq.New(e.Kern, "mta memory", bw, 0)
	m.admitQ = sim.NewWaitQ("mta stream slots")
}

// EffectiveLatency returns the memory latency including any network factor.
func (m *Model) EffectiveLatency() float64 { return m.effLatency }

// Compute implements machine.Model: ops are packed into LIW instructions and
// issued through the processor's shared issue logic.
func (m *Model) Compute(t *machine.Thread, ops int64) {
	instrs := float64(ops) / m.p.OpsPerInstr
	m.instrs += instrs
	m.issue[t.Proc].Serve(t.P, instrs)
}

// Memory implements machine.Model. The instruction cost of references is
// included in Compute (the charging convention); Memory charges bandwidth
// through the shared memory pipeline plus exposed latency: dependent
// references expose the memory latency per reference, pipelined (lookahead)
// bursts expose it once.
func (m *Model) Memory(t *machine.Thread, b mem.Burst) {
	n := float64(b.N)
	start := t.P.Now()
	m.memory.Serve(t.P, n)
	if b.Write {
		return // stores retire without stalling the stream
	}
	if b.Dep {
		// A serially-dependent chain of n loads takes at least n×latency;
		// issue and bandwidth time already spent counts toward that.
		elapsed := t.P.Now() - start
		if want := n * m.effLatency; want > elapsed {
			t.P.Sleep(want - elapsed)
		}
	} else {
		// Lookahead pipelines the burst; only the final load's latency is
		// exposed to the stream.
		t.P.Sleep(m.effLatency)
	}
}

// syncOpCost charges one instruction plus a round-trip to memory — the cost
// shape of the MTA's 1-cycle synchronization instructions, whose result
// (like any memory operation) returns after the memory latency.
func (m *Model) syncOpCost(t *machine.Thread) {
	m.instrs++
	m.issue[t.Proc].Serve(t.P, 1)
	m.memory.Serve(t.P, 1)
	t.P.Sleep(m.effLatency)
}

// SyncTouch implements machine.Model.
func (m *Model) SyncTouch(t *machine.Thread) { m.syncOpCost(t) }

// AtomicTouch implements machine.Model: int_fetch_add executes at the
// memory — same cost shape as a sync operation.
func (m *Model) AtomicTouch(t *machine.Thread) { m.syncOpCost(t) }

// LockTouch implements machine.Model: MTA locks are built from full/empty
// bits, so a lock operation costs the same as a sync operation.
func (m *Model) LockTouch(t *machine.Thread) { m.syncOpCost(t) }

// BarrierTouch implements machine.Model.
func (m *Model) BarrierTouch(t *machine.Thread) { m.syncOpCost(t) }

// SpawnCost implements machine.Model: hardware stream creation when a slot
// is free, the runtime's software-thread path otherwise.
func (m *Model) SpawnCost(parent *machine.Thread) {
	cost := m.p.SWThreadCreate
	if m.anyFreeSlot() {
		cost = m.p.HWThreadCreate
	}
	m.instrs++
	m.issue[parent.Proc].Serve(parent.P, 1)
	parent.P.Sleep(cost)
}

func (m *Model) anyFreeSlot() bool {
	for _, f := range m.free {
		if f > 0 {
			return true
		}
	}
	return false
}

// Admit implements machine.Model: acquire a stream slot, queueing FIFO when
// all 128×procs streams are busy (the runtime multiplexes excess threads).
func (m *Model) Admit(t *machine.Thread) {
	for {
		// Prefer the least-loaded processor, breaking ties round-robin.
		best, bestFree := -1, 0
		for i := 0; i < m.p.Procs; i++ {
			pi := (m.nextProc + i) % m.p.Procs
			if m.free[pi] > bestFree {
				best, bestFree = pi, m.free[pi]
			}
		}
		if best >= 0 {
			m.free[best]--
			m.nextProc = (best + 1) % m.p.Procs
			t.Proc = best
			return
		}
		m.admitQ.Wait(t.P, "stream slot")
	}
}

// Release implements machine.Model: return the stream slot and admit the
// next queued thread, if any.
func (m *Model) Release(t *machine.Thread) {
	m.free[t.Proc]++
	m.admitQ.WakeOne(m.e.Kern)
}

// Finish implements machine.Model.
func (m *Model) Finish(st *machine.Stats) {
	st.ProcUtil = make([]float64, len(m.issue))
	for i, q := range m.issue {
		st.ProcUtil[i] = q.Utilization()
	}
	st.MemUtil = m.memory.Utilization()
}

// Instructions returns the total instructions issued so far (diagnostics).
func (m *Model) Instructions() float64 { return m.instrs }
