package mta

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

// run executes fn on a fresh MTA with the given params and returns result.
func run(t *testing.T, p Params, fn func(*machine.Thread)) machine.Result {
	t.Helper()
	e := New(p)
	res, err := e.Run("main", fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleStreamIssuesEvery21Cycles(t *testing.T) {
	// The paper: "a single thread on the Tera MTA can issue only one
	// instruction every 21 cycles, giving roughly 5% processor utilization."
	p := DefaultParams(1)
	res := run(t, p, func(th *machine.Thread) {
		th.Compute(int64(1000 * p.OpsPerInstr)) // exactly 1000 instructions
	})
	want := 1000 * p.IssueGap
	if math.Abs(res.Stats.Cycles-want)/want > 1e-9 {
		t.Errorf("cycles = %v, want %v", res.Stats.Cycles, want)
	}
	if u := res.Stats.ProcUtil[0]; math.Abs(u-1/p.IssueGap) > 1e-6 {
		t.Errorf("utilization = %v, want %v (~5%%)", u, 1/p.IssueGap)
	}
}

func TestManyStreamsSaturateIssue(t *testing.T) {
	// 42 compute-bound streams on one processor: aggregate issue rate is 1
	// instruction/cycle, so total time ≈ total instructions.
	p := DefaultParams(1)
	const streams = 42
	instrsEach := 1000.0
	res := run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < streams; i++ {
			ts = append(ts, th.Go(fmt.Sprintf("s%d", i), func(c *machine.Thread) {
				c.Compute(int64(instrsEach * p.OpsPerInstr))
			}))
		}
		th.JoinAll(ts)
	})
	total := instrsEach * streams
	if res.Stats.Cycles > total*1.05 || res.Stats.Cycles < total {
		t.Errorf("cycles = %v, want ≈ %v (saturated issue)", res.Stats.Cycles, total)
	}
	if u := res.Stats.ProcUtil[0]; u < 0.9 {
		t.Errorf("utilization = %v, want ≥ 0.9", u)
	}
}

func TestMultithreadedSpeedupOverSequential(t *testing.T) {
	// The headline MTA behaviour: the same work split over many streams runs
	// ~21x faster than single-threaded (issue-gap bound).
	p := DefaultParams(1)
	work := int64(100_000)
	seq := run(t, p, func(th *machine.Thread) { th.Compute(work) })
	par := run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < 64; i++ {
			ts = append(ts, th.Go("s", func(c *machine.Thread) { c.Compute(work / 64) }))
		}
		th.JoinAll(ts)
	})
	speedup := seq.Stats.Cycles / par.Stats.Cycles
	if speedup < 15 || speedup > 22 {
		t.Errorf("speedup = %v, want ≈ 21 (issue-gap bound)", speedup)
	}
}

func TestDependentLoadsExposeLatency(t *testing.T) {
	// A lone stream doing serially-dependent loads pays ≈ memory latency per
	// reference (no cache to hide it) — the other reason sequential code is
	// slow on the MTA.
	p := DefaultParams(1)
	const n = 1000
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("data", 8*n)
		th.Burst(mem.Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: n, Dep: true})
	})
	// n instructions at the 21-cycle gap + n×(latency-gap) exposed = n×latency.
	want := n * p.MemLatency
	if math.Abs(res.Stats.Cycles-want)/want > 0.01 {
		t.Errorf("cycles = %v, want ≈ %v", res.Stats.Cycles, want)
	}
}

func TestPipelinedBurstHidesLatency(t *testing.T) {
	// A streaming (lookahead) burst pays the latency once, not per-ref.
	p := DefaultParams(1)
	const n = 1000
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("data", 8*n)
		th.Burst(mem.ReadBurst(r, 0, 8, n))
	})
	// Bandwidth service + one exposed latency (issue is charged via Compute).
	want := n/p.MemBandwidth + p.MemLatency
	if math.Abs(res.Stats.Cycles-want)/want > 0.01 {
		t.Errorf("cycles = %v, want ≈ %v", res.Stats.Cycles, want)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	p := DefaultParams(1)
	const n = 1000
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("data", 8*n)
		th.Burst(mem.WriteBurst(r, 0, 8, n))
	})
	want := n / p.MemBandwidth // bandwidth only: no stall, no issue charge
	if math.Abs(res.Stats.Cycles-want)/want > 0.01 {
		t.Errorf("cycles = %v, want ≈ %v", res.Stats.Cycles, want)
	}
}

func TestTwoProcessorScaling(t *testing.T) {
	// Compute-bound work across many streams should scale close to 2x on two
	// processors (issue capacity doubles; network factors hit memory only).
	// 126 worker streams fit within one processor's 128 slots alongside the
	// main thread, so no queueing tail distorts the single-processor time.
	work := int64(201_600)
	runP := func(procs int) float64 {
		res := run(t, DefaultParams(procs), func(th *machine.Thread) {
			var ts []*machine.Thread
			for i := 0; i < 126; i++ {
				ts = append(ts, th.Go("s", func(c *machine.Thread) { c.Compute(work / 126) }))
			}
			th.JoinAll(ts)
		})
		return res.Stats.Cycles
	}
	speedup := runP(1) / runP(2)
	if speedup < 1.8 || speedup > 2.1 {
		t.Errorf("2-proc compute speedup = %v, want ≈ 2", speedup)
	}
}

func TestNetworkFactorsSlowMultiprocessorMemory(t *testing.T) {
	// Memory-bound work sees less than 2x from two processors because the
	// development-status network raises latency and cuts bandwidth.
	memKernel := func(procs int) float64 {
		res := run(t, DefaultParams(procs), func(th *machine.Thread) {
			r := th.Alloc("data", 1<<20)
			var ts []*machine.Thread
			for i := 0; i < 96; i++ {
				off := uint64(i) * 8192
				ts = append(ts, th.Go("s", func(c *machine.Thread) {
					for j := 0; j < 20; j++ {
						c.Burst(mem.ReadBurst(r, off, 8, 1000))
					}
				}))
			}
			th.JoinAll(ts)
		})
		return res.Stats.Cycles
	}
	speedup := memKernel(1) / memKernel(2)
	if speedup >= 1.9 {
		t.Errorf("memory-bound 2-proc speedup = %v, want < 1.9 (network penalty)", speedup)
	}
	if speedup < 1.0 {
		t.Errorf("memory-bound 2-proc speedup = %v, want ≥ 1 ", speedup)
	}
}

func TestStreamSlotCapAndQueueing(t *testing.T) {
	// 300 threads on one processor: at most 128 run as streams concurrently;
	// the rest queue and all eventually complete.
	p := DefaultParams(1)
	done := 0
	res := run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < 300; i++ {
			ts = append(ts, th.Go("s", func(c *machine.Thread) {
				c.Compute(100)
				done++
			}))
		}
		th.JoinAll(ts)
	})
	if done != 300 {
		t.Errorf("done = %d, want 300", done)
	}
	_ = res
}

func TestAdmissionPrefersLeastLoadedProc(t *testing.T) {
	p := DefaultParams(2)
	counts := map[int]int{}
	run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < 40; i++ {
			ts = append(ts, th.Go("s", func(c *machine.Thread) {
				counts[c.Proc]++
				c.Compute(1000)
			}))
		}
		th.JoinAll(ts)
	})
	if counts[0]+counts[1] != 40 {
		t.Fatalf("counts = %v", counts)
	}
	if d := counts[0] - counts[1]; d < -2 || d > 2 {
		t.Errorf("imbalanced stream placement: %v", counts)
	}
}

func TestSyncOpCost(t *testing.T) {
	// One sync op: 1 instruction (gap) + memory round trip.
	p := DefaultParams(1)
	res := run(t, p, func(th *machine.Thread) {
		v := th.NewSyncVar("v")
		v.Write(th, 1)
	})
	want := p.IssueGap + 1/p.MemBandwidth + p.MemLatency
	if math.Abs(res.Stats.Cycles-want) > 1 {
		t.Errorf("sync op cycles = %v, want ≈ %v", res.Stats.Cycles, want)
	}
}

func TestHardwareVsSoftwareThreadCreate(t *testing.T) {
	// With free slots, spawn costs ~2 cycles; once slots are exhausted the
	// software path (~75 cycles) is charged.
	p := DefaultParams(1)
	p.StreamsPerProc = 4
	var spawnCosts []float64
	run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < 6; i++ {
			before := th.NowCycles()
			ts = append(ts, th.Go("s", func(c *machine.Thread) { c.Compute(10000) }))
			spawnCosts = append(spawnCosts, th.NowCycles()-before)
		}
		th.JoinAll(ts)
	})
	// Spawns 1..3 find free slots (main holds one of 4); later ones don't.
	if spawnCosts[0] > 30 {
		t.Errorf("first spawn cost = %v, want ≈ hardware create (~2 + issue)", spawnCosts[0])
	}
	last := spawnCosts[len(spawnCosts)-1]
	if last < 75 {
		t.Errorf("saturated spawn cost = %v, want ≥ software create 75", last)
	}
}

func TestDefaultsFilled(t *testing.T) {
	e := New(Params{Procs: 1})
	m := e.Model().(*Model)
	if m.Params().IssueGap != 21 || m.Params().StreamsPerProc != 128 {
		t.Errorf("defaults not applied: %+v", m.Params())
	}
	if e.Config().ClockHz != 255e6 {
		t.Errorf("clock = %v, want 255 MHz", e.Config().ClockHz)
	}
}

func TestZeroProcsClampedToOne(t *testing.T) {
	e := New(Params{})
	if e.Config().Procs != 1 {
		t.Errorf("procs = %d, want 1", e.Config().Procs)
	}
}

func TestUtilizationCurveVsStreams(t *testing.T) {
	// Utilization grows with streams and approaches 1; with a mixed
	// compute/memory kernel the knee is well past 21 streams — the paper's
	// "80 streams are typically required".
	p := DefaultParams(1)
	util := func(streams int) float64 {
		res := run(t, p, func(th *machine.Thread) {
			r := th.Alloc("data", 1<<20)
			var ts []*machine.Thread
			for i := 0; i < streams; i++ {
				off := uint64(i) * 4096
				ts = append(ts, th.Go("s", func(c *machine.Thread) {
					for j := 0; j < 30; j++ {
						c.Compute(130) // ~29 instructions
						c.Burst(mem.Burst{Region: r, Offset: off, Stride: 8, Elem: 8, N: 2, Dep: true})
					}
				}))
			}
			th.JoinAll(ts)
		})
		return res.Stats.ProcUtil[0]
	}
	u1, u20, u80 := util(1), util(20), util(80)
	if !(u1 < u20 && u20 < u80) {
		t.Errorf("utilization not increasing: %v %v %v", u1, u20, u80)
	}
	if u20 > 0.75 {
		t.Errorf("u(20) = %v: memory-heavy kernel should need well over 21 streams", u20)
	}
	if u80 < 0.80 {
		t.Errorf("u(80) = %v, want ≥ 0.8 (paper: ~80 streams saturate)", u80)
	}
}
