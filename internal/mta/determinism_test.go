package mta

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mem"
)

// TestRunsAreBitwiseDeterministic re-runs an irregular multithreaded program
// and requires exactly identical simulated cycles — the property every
// experiment in this repository depends on.
func TestRunsAreBitwiseDeterministic(t *testing.T) {
	run := func() float64 {
		e := New(Params{Procs: 2})
		res, err := e.Run("main", func(th *machine.Thread) {
			r := th.Alloc("data", 1<<20)
			var ts []*machine.Thread
			for i := 0; i < 75; i++ {
				i := i
				ts = append(ts, th.Go(fmt.Sprintf("w%d", i), func(c *machine.Thread) {
					c.Compute(int64(1000 + i*37))
					c.Burst(mem.ReadBurst(r, uint64(i)*1024, 8, 50+i))
					if i%3 == 0 {
						c.Burst(mem.Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: 5, Dep: true})
					}
				}))
			}
			th.JoinAll(ts)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	a, b, c := run(), run(), run()
	if a != b || b != c {
		t.Fatalf("nondeterministic cycles: %v %v %v", a, b, c)
	}
}

// Property: compute time is exactly linear in ops for a lone stream, and
// utilization never exceeds 1 for any mix.
func TestPropertyComputeLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int64(1 + rng.Intn(1_000_000))
		p := DefaultParams(1)
		e := New(p)
		res, err := e.Run("main", func(th *machine.Thread) { th.Compute(ops) })
		if err != nil {
			return false
		}
		want := float64(ops) / p.OpsPerInstr * p.IssueGap
		rel := (res.Stats.Cycles - want) / want
		return rel > -1e-9 && rel < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: issue utilization stays in [0, 1] for random stream mixes.
func TestPropertyUtilizationBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		streams := 1 + rng.Intn(140)
		e := New(Params{Procs: 1 + rng.Intn(2)})
		res, err := e.Run("main", func(th *machine.Thread) {
			r := th.Alloc("d", 1<<18)
			var ts []*machine.Thread
			for i := 0; i < streams; i++ {
				i := i
				ts = append(ts, th.Go("s", func(c *machine.Thread) {
					c.Compute(int64(100 + rngDraw(seed, i)*50))
					c.Burst(mem.ReadBurst(r, 0, 8, 10))
				}))
			}
			th.JoinAll(ts)
		})
		if err != nil {
			return false
		}
		for _, u := range res.Stats.ProcUtil {
			if u < 0 || u > 1+1e-9 {
				return false
			}
		}
		if res.Stats.MemUtil < 0 || res.Stats.MemUtil > 1+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// rngDraw is a tiny deterministic hash so per-stream work varies without
// sharing a rand.Rand across goroutine boundaries.
func rngDraw(seed int64, i int) int {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	return int(x % 17)
}
