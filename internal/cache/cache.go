// Package cache models a per-processor data cache at granule granularity.
//
// A full line-accurate cache simulation would require one event per memory
// reference, which is far too slow for benchmark-length runs. Instead the
// model tracks residency of fixed-size granules (a few KB) under LRU and
// prices strided bursts analytically:
//
//   - every reference that falls in a resident granule is a hit;
//   - a burst touching a non-resident granule pays one miss per cache line
//     it touches inside that granule (spatial locality within the burst),
//     and the remaining references in the granule hit;
//   - the touched granule becomes resident, evicting the LRU granule if the
//     cache is full.
//
// This captures the two behaviours the paper's results hinge on: working
// sets that fit (Threat Analysis threads run "mostly within cache" and scale
// linearly) and streaming working sets that do not (Terrain Masking is
// memory-bound and saturates the shared bus).
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/mem"
)

// Cache is a granule-granular LRU cache model. Not safe for concurrent use;
// in the simulator each cache belongs to one processor and all access is
// serialized by the simulation kernel.
type Cache struct {
	granule  uint64 // bytes per residency granule
	line     uint64 // bytes per miss-transfer line
	capacity int    // granules

	lru     *list.List               // front = most recent; values are granule ids
	entries map[uint64]*list.Element // granule id -> lru node

	hits, misses int64
}

// New creates a cache of sizeBytes with the given line and granule sizes.
// Granule must be a multiple of line; size must hold at least one granule.
func New(sizeBytes, lineBytes, granuleBytes uint64) *Cache {
	if lineBytes == 0 || granuleBytes == 0 || granuleBytes%lineBytes != 0 {
		panic(fmt.Sprintf("cache: bad geometry line=%d granule=%d", lineBytes, granuleBytes))
	}
	capGr := int(sizeBytes / granuleBytes)
	if capGr < 1 {
		panic(fmt.Sprintf("cache: size %d smaller than one granule %d", sizeBytes, granuleBytes))
	}
	return &Cache{
		granule:  granuleBytes,
		line:     lineBytes,
		capacity: capGr,
		lru:      list.New(),
		entries:  make(map[uint64]*list.Element),
	}
}

// SizeBytes returns the modeled capacity in bytes.
func (c *Cache) SizeBytes() uint64 { return uint64(c.capacity) * c.granule }

// LineBytes returns the miss-transfer unit.
func (c *Cache) LineBytes() uint64 { return c.line }

// Hits returns cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Flush empties the cache (used between benchmark scenarios).
func (c *Cache) Flush() {
	c.lru.Init()
	c.entries = make(map[uint64]*list.Element)
}

// touch marks granule g resident and most-recently-used, reporting whether
// it was already resident.
func (c *Cache) touch(g uint64) bool {
	if e, ok := c.entries[g]; ok {
		c.lru.MoveToFront(e)
		return true
	}
	if c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		delete(c.entries, back.Value.(uint64))
		c.lru.Remove(back)
	}
	c.entries[g] = c.lru.PushFront(g)
	return false
}

// Access models a single reference, returning true on hit. A miss on a
// non-resident granule counts as exactly one line miss.
func (c *Cache) Access(a mem.Addr) bool {
	if c.touch(uint64(a) / c.granule) {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// AccessBurst models a strided burst, returning the hit/miss split. The sum
// hits+misses equals b.N. Misses are in units of line transfers; a burst
// with stride smaller than the line size therefore misses on only a fraction
// of its references.
func (c *Cache) AccessBurst(b mem.Burst) (hits, misses int64) {
	b.Validate()
	if b.N == 0 {
		return 0, 0
	}
	start := uint64(b.Start())
	if b.Stride == 0 {
		// n references to one address: at most one line miss.
		if c.touch(start / c.granule) {
			hits = int64(b.N)
		} else {
			misses = 1
			hits = int64(b.N) - 1
		}
		c.hits += hits
		c.misses += misses
		return hits, misses
	}

	last := start + uint64(b.N-1)*b.Stride
	gFirst := start / c.granule
	gLast := last / c.granule
	for g := gFirst; g <= gLast; g++ {
		lo, hi := uint64(g)*c.granule, uint64(g+1)*c.granule
		// indices i with start + i*stride in [lo, hi)
		var iLo uint64
		if lo > start {
			iLo = (lo - start + b.Stride - 1) / b.Stride
		}
		iHi := (hi - 1 - start) / b.Stride // last index touching this granule
		if iHi >= uint64(b.N) {
			iHi = uint64(b.N) - 1
		}
		if iLo > iHi {
			continue
		}
		refs := int64(iHi - iLo + 1)
		if c.touch(g) {
			hits += refs
			continue
		}
		// Non-resident granule: one miss per distinct line touched.
		var lines int64
		if b.Stride >= c.line {
			lines = refs
		} else {
			spanInGranule := (iHi-iLo)*b.Stride + b.ElemSize()
			lines = int64((spanInGranule + c.line - 1) / c.line)
			if lines > refs {
				lines = refs
			}
		}
		misses += lines
		hits += refs - lines
	}
	c.hits += hits
	c.misses += misses
	return hits, misses
}
