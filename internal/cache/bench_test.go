package cache

import (
	"testing"

	"repro/internal/mem"
)

// BenchmarkAccessBurstStreaming measures the analytic burst path over a
// large region (many granules per call).
func BenchmarkAccessBurstStreaming(b *testing.B) {
	c := New(256<<10, 32, 1024)
	s := mem.NewSpace()
	r := s.Alloc("data", 8<<20)
	burst := mem.ReadBurst(r, 0, 8, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AccessBurst(burst)
	}
}

// BenchmarkAccessSingle measures the single-reference hit path.
func BenchmarkAccessSingle(b *testing.B) {
	c := New(256<<10, 32, 1024)
	s := mem.NewSpace()
	r := s.Alloc("data", 64<<10)
	c.Access(r.Addr(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(r.Addr(uint64(i) % (64 << 10)))
	}
}
