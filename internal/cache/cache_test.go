package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTestSpace(size uint64) (*mem.Space, *mem.Region) {
	s := mem.NewSpace()
	return s, s.Alloc("data", size)
}

func TestColdStreamMissesPerLine(t *testing.T) {
	// Sequential 8-byte reads over 4KB with 32-byte lines: 4096/32 = 128
	// line misses, rest hits.
	c := New(64*1024, 32, 1024)
	_, r := newTestSpace(4096)
	hits, misses := c.AccessBurst(mem.ReadBurst(r, 0, 8, 512))
	if misses != 128 {
		t.Errorf("misses = %d, want 128", misses)
	}
	if hits != 512-128 {
		t.Errorf("hits = %d, want %d", hits, 512-128)
	}
}

func TestWarmReuseHitsWhenFits(t *testing.T) {
	c := New(64*1024, 32, 1024)
	_, r := newTestSpace(16 * 1024)
	c.AccessBurst(mem.ReadBurst(r, 0, 8, 2048)) // warm
	hits, misses := c.AccessBurst(mem.ReadBurst(r, 0, 8, 2048))
	if misses != 0 {
		t.Errorf("second pass misses = %d, want 0 (fits in cache)", misses)
	}
	if hits != 2048 {
		t.Errorf("second pass hits = %d, want 2048", hits)
	}
}

func TestStreamingLargerThanCacheNeverHitsAcrossPasses(t *testing.T) {
	// Region 4x the cache: a second full pass must miss again (LRU evicted
	// everything).
	c := New(16*1024, 32, 1024)
	_, r := newTestSpace(64 * 1024)
	n := 64 * 1024 / 8
	_, m1 := c.AccessBurst(mem.ReadBurst(r, 0, 8, n))
	_, m2 := c.AccessBurst(mem.ReadBurst(r, 0, 8, n))
	if m1 != int64(64*1024/32) {
		t.Errorf("first pass misses = %d, want %d", m1, 64*1024/32)
	}
	if m2 != m1 {
		t.Errorf("second pass misses = %d, want %d (no reuse when streaming)", m2, m1)
	}
}

func TestSingleAccessHitMiss(t *testing.T) {
	c := New(8*1024, 32, 1024)
	_, r := newTestSpace(1024)
	if c.Access(r.Addr(0)) {
		t.Error("cold access hit")
	}
	if !c.Access(r.Addr(512)) {
		t.Error("same-granule access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("counters = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestZeroStrideBurst(t *testing.T) {
	c := New(8*1024, 32, 1024)
	_, r := newTestSpace(1024)
	hits, misses := c.AccessBurst(mem.Burst{Region: r, Offset: 0, Stride: 0, Elem: 8, N: 100})
	if misses != 1 || hits != 99 {
		t.Errorf("= %d hits %d misses, want 99/1", hits, misses)
	}
	hits, misses = c.AccessBurst(mem.Burst{Region: r, Offset: 0, Stride: 0, Elem: 8, N: 100})
	if misses != 0 || hits != 100 {
		t.Errorf("warm = %d hits %d misses, want 100/0", hits, misses)
	}
}

func TestWideStrideEveryRefMisses(t *testing.T) {
	// Stride 2KB > granule 1KB: every reference hits a distinct cold granule.
	c := New(256*1024, 32, 1024)
	_, r := newTestSpace(128 * 1024)
	hits, misses := c.AccessBurst(mem.Burst{Region: r, Offset: 0, Stride: 2048, Elem: 8, N: 60})
	if misses != 60 || hits != 0 {
		t.Errorf("= %d hits %d misses, want 0/60", hits, misses)
	}
}

func TestEmptyBurst(t *testing.T) {
	c := New(8*1024, 32, 1024)
	_, r := newTestSpace(64)
	hits, misses := c.AccessBurst(mem.Burst{Region: r, N: 0})
	if hits != 0 || misses != 0 {
		t.Errorf("empty burst = %d/%d", hits, misses)
	}
}

func TestFlush(t *testing.T) {
	c := New(8*1024, 32, 1024)
	_, r := newTestSpace(1024)
	c.Access(r.Addr(0))
	c.Flush()
	if c.Access(r.Addr(0)) {
		t.Error("hit after flush")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity 2 granules. Touch g0, g1, then g2 evicts g0 (LRU), so g1
	// still hits and g0 misses.
	c := New(2*1024, 32, 1024)
	_, r := newTestSpace(8 * 1024)
	c.Access(r.Addr(0))        // g0
	c.Access(r.Addr(1024))     // g1
	c.Access(r.Addr(2 * 1024)) // g2, evicts g0
	if !c.Access(r.Addr(1024)) {
		t.Error("g1 should still be resident")
	}
	if c.Access(r.Addr(0)) {
		t.Error("g0 should have been evicted")
	}
}

func TestLRUTouchRefreshes(t *testing.T) {
	c := New(2*1024, 32, 1024)
	_, r := newTestSpace(8 * 1024)
	c.Access(r.Addr(0))        // g0
	c.Access(r.Addr(1024))     // g1
	c.Access(r.Addr(0))        // refresh g0
	c.Access(r.Addr(2 * 1024)) // evicts g1 (now LRU)
	if !c.Access(r.Addr(0)) {
		t.Error("refreshed g0 was evicted")
	}
	if c.Access(r.Addr(1024)) {
		t.Error("g1 should have been evicted")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, bad := range []struct{ size, line, granule uint64 }{
		{1024, 0, 512},
		{1024, 32, 0},
		{1024, 48, 1024}, // granule not multiple of line
		{100, 32, 1024},  // smaller than one granule
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", bad.size, bad.line, bad.granule)
				}
			}()
			New(bad.size, bad.line, bad.granule)
		}()
	}
}

// Property: hits+misses always equals the burst reference count, and misses
// never exceeds references.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(uint64(1+rng.Intn(64))*1024, 32, 1024)
		_, r := newTestSpace(1 << 20)
		for iter := 0; iter < 20; iter++ {
			n := rng.Intn(500)
			stride := uint64(rng.Intn(100))
			maxOff := uint64(1<<20) - 1
			var span uint64
			if n > 0 {
				span = uint64(n-1)*stride + 8
			}
			if span >= maxOff {
				continue
			}
			off := uint64(rng.Intn(int(maxOff - span)))
			b := mem.Burst{Region: r, Offset: off, Stride: stride, Elem: 8, N: n}
			hits, misses := c.AccessBurst(b)
			if hits+misses != int64(n) || misses < 0 || hits < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: immediately repeating a burst that fits within the cache yields
// zero misses on the repeat.
func TestPropertyRepeatFittingBurstHits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(64*1024, 32, 1024)
		_, r := newTestSpace(32 * 1024) // half the cache
		n := 1 + rng.Intn(1000)
		stride := uint64(8)
		if uint64(n)*stride > 32*1024 {
			n = 32 * 1024 / 8
		}
		b := mem.ReadBurst(r, 0, stride, n)
		c.AccessBurst(b)
		_, misses := c.AccessBurst(b)
		return misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
