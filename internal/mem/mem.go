// Package mem models a simulated machine address space.
//
// Benchmarks do their real computation in ordinary Go memory; what they give
// the machine models is a description of the memory traffic that computation
// would generate: which named region, at what offset, with what stride and
// count. Machine models price that traffic (cache hits and misses on the
// conventional SMPs; bank/network bandwidth and latency on the Tera MTA).
//
// Regions are allocated from a Space with bump allocation and never freed:
// the benchmark programs in this repository allocate their arrays up front,
// exactly like the C originals.
package mem

import "fmt"

// Addr is a byte address in the simulated flat address space.
type Addr uint64

// Space is a simulated address space. The zero value is not usable; create
// one with NewSpace.
type Space struct {
	next    Addr
	regions []*Region
}

// NewSpace returns an empty address space. Allocation starts above address
// zero so that Addr(0) is never a valid data address.
func NewSpace() *Space {
	return &Space{next: 4096}
}

// Region is a contiguous named allocation, analogous to one of the C
// benchmark's arrays.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// Alloc reserves size bytes and returns the region. Allocations are aligned
// to 64 bytes so regions never share a cache line.
func (s *Space) Alloc(name string, size uint64) *Region {
	if size == 0 {
		size = 1
	}
	const align = 64
	base := (s.next + align - 1) / align * align
	r := &Region{Name: name, Base: base, Size: size}
	s.next = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// Regions returns all allocations in allocation order.
func (s *Space) Regions() []*Region { return s.regions }

// Bytes returns the total bytes allocated.
func (s *Space) Bytes() uint64 { return uint64(s.next) }

// Addr returns the address of byte offset off within the region. It panics
// if off is out of range — that is a simulation programming bug.
func (r *Region) Addr(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("mem: offset %d out of range in region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// End returns one past the last address of the region.
func (r *Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Overlaps reports whether two regions share any address.
func (r *Region) Overlaps(o *Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// Burst describes n strided accesses to a region: the access pattern of a
// loop like `for i := 0; i < n; i++ { use(a[off + i*stride]) }`. Stride and
// offset are in bytes. Write distinguishes stores from loads.
//
// Dep marks the accesses as serially dependent loads: each one must complete
// before the next useful instruction (pointer chasing, scalar loads feeding
// branches). On a cached machine dependent loads usually hit and cost
// nothing beyond their instruction; on the cache-less Tera MTA each one
// exposes the full memory latency to its stream — the architectural reason
// single-threaded code runs so slowly there.
type Burst struct {
	Region *Region
	Offset uint64 // starting byte offset within Region
	Stride uint64 // bytes between consecutive accesses (0 = same address)
	Elem   uint64 // bytes per access (defaults to 8 if zero)
	N      int    // number of accesses
	Write  bool
	Dep    bool // serially dependent (latency-exposed) accesses
}

// ElemSize returns the access width, defaulting to 8 bytes.
func (b Burst) ElemSize() uint64 {
	if b.Elem == 0 {
		return 8
	}
	return b.Elem
}

// Span returns the number of bytes between the first byte touched and one
// past the last byte touched.
func (b Burst) Span() uint64 {
	if b.N <= 0 {
		return 0
	}
	return uint64(b.N-1)*b.Stride + b.ElemSize()
}

// Validate panics if the burst runs outside its region; machine models call
// this on entry so traffic bugs surface immediately.
func (b Burst) Validate() {
	if b.N < 0 {
		panic(fmt.Sprintf("mem: burst with negative count %d on %q", b.N, b.Region.Name))
	}
	if b.N == 0 {
		return
	}
	if b.Region == nil {
		panic("mem: burst with nil region")
	}
	if b.Offset+b.Span() > b.Region.Size {
		panic(fmt.Sprintf("mem: burst [off=%d stride=%d n=%d elem=%d] overruns region %q (size %d)",
			b.Offset, b.Stride, b.N, b.ElemSize(), b.Region.Name, b.Region.Size))
	}
}

// Start returns the address of the first access.
func (b Burst) Start() Addr { return b.Region.Addr(b.Offset) }

// ReadBurst is a convenience constructor for an n-element sequential read of
// elem-byte elements starting at byte offset off.
func ReadBurst(r *Region, off uint64, elem uint64, n int) Burst {
	return Burst{Region: r, Offset: off, Stride: elem, Elem: elem, N: n}
}

// WriteBurst is the store counterpart of ReadBurst.
func WriteBurst(r *Region, off uint64, elem uint64, n int) Burst {
	return Burst{Region: r, Offset: off, Stride: elem, Elem: elem, N: n, Write: true}
}
