package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", 200)
	if a.Base == 0 {
		t.Error("region allocated at address 0")
	}
	if a.Overlaps(b) {
		t.Errorf("regions overlap: %+v %+v", a, b)
	}
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Errorf("regions not 64-byte aligned: %d %d", a.Base, b.Base)
	}
	if len(s.Regions()) != 2 {
		t.Errorf("Regions() = %d, want 2", len(s.Regions()))
	}
}

func TestAllocZeroSize(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("z", 0)
	if r.Size == 0 {
		t.Error("zero-size region should be rounded up to 1")
	}
}

func TestAddrRangeCheck(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 64)
	_ = r.Addr(63) // ok
	defer func() {
		if recover() == nil {
			t.Error("Addr out of range did not panic")
		}
	}()
	_ = r.Addr(64)
}

func TestContains(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 10)
	if !r.Contains(r.Base) || !r.Contains(r.Base+9) {
		t.Error("Contains false for in-range address")
	}
	if r.Contains(r.Base + 10) {
		t.Error("Contains true for one-past-end")
	}
}

func TestBurstSpan(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 1024)
	b := Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: 10}
	if b.Span() != 80 {
		t.Errorf("Span = %d, want 80", b.Span())
	}
	b2 := Burst{Region: r, Offset: 0, Stride: 16, Elem: 4, N: 3}
	if b2.Span() != 36 { // 2*16 + 4
		t.Errorf("Span = %d, want 36", b2.Span())
	}
	var empty Burst
	if empty.Span() != 0 {
		t.Errorf("empty burst Span = %d, want 0", empty.Span())
	}
}

func TestBurstDefaultElem(t *testing.T) {
	if (Burst{}).ElemSize() != 8 {
		t.Errorf("default elem = %d, want 8", (Burst{}).ElemSize())
	}
}

func TestBurstValidate(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 64)
	ok := Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: 8}
	ok.Validate() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("overrunning burst did not panic")
		}
	}()
	bad := Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: 9}
	bad.Validate()
}

func TestBurstValidateNegativeCount(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 64)
	defer func() {
		if recover() == nil {
			t.Error("negative-count burst did not panic")
		}
	}()
	Burst{Region: r, N: -1}.Validate()
}

func TestReadWriteBurstConstructors(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 800)
	rb := ReadBurst(r, 16, 8, 10)
	if rb.Write || rb.Offset != 16 || rb.N != 10 || rb.Stride != 8 {
		t.Errorf("ReadBurst = %+v", rb)
	}
	wb := WriteBurst(r, 0, 4, 5)
	if !wb.Write || wb.ElemSize() != 4 {
		t.Errorf("WriteBurst = %+v", wb)
	}
	rb.Validate()
	wb.Validate()
}

// Property: any sequence of allocations yields pairwise-disjoint regions and
// monotonically increasing bases.
func TestPropertyAllocDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		n := 2 + rng.Intn(20)
		regs := make([]*Region, n)
		for i := range regs {
			regs[i] = s.Alloc("r", uint64(rng.Intn(10000)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if regs[i].Overlaps(regs[j]) {
					return false
				}
			}
			if i > 0 && regs[i].Base <= regs[i-1].Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
