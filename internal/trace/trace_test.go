package trace_test

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
	. "repro/internal/trace"
)

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Record(Event{T: 1, Thread: "x", Kind: ThreadStart}) // must not panic
}

func TestSpansAndStats(t *testing.T) {
	l := New(1e6)
	l.Record(Event{T: 0, Thread: "a", Proc: 0, Kind: ThreadStart})
	l.Record(Event{T: 5, Thread: "b", Proc: 1, Kind: ThreadStart})
	l.Record(Event{T: 10, Thread: "a", Proc: 0, Kind: ThreadEnd})
	l.Record(Event{T: 20, Thread: "b", Proc: 1, Kind: ThreadEnd})
	st := l.Summarize()
	if st.Threads != 2 {
		t.Errorf("Threads = %d, want 2", st.Threads)
	}
	if st.Makespan != 20 {
		t.Errorf("Makespan = %v, want 20", st.Makespan)
	}
	if st.MeanLife != 12.5 { // (10 + 15) / 2
		t.Errorf("MeanLife = %v, want 12.5", st.MeanLife)
	}
	if st.PeakLive != 2 {
		t.Errorf("PeakLive = %d, want 2", st.PeakLive)
	}
	if st.PerProcPeak[0] != 1 || st.PerProcPeak[1] != 1 {
		t.Errorf("PerProcPeak = %v", st.PerProcPeak)
	}
}

func TestPeakLiveCountsOverlap(t *testing.T) {
	l := New(1)
	for i, se := range [][2]float64{{0, 10}, {2, 8}, {4, 6}} {
		name := string(rune('a' + i))
		l.Record(Event{T: se[0], Thread: name, Kind: ThreadStart})
		l.Record(Event{T: se[1], Thread: name, Kind: ThreadEnd})
	}
	if st := l.Summarize(); st.PeakLive != 3 {
		t.Errorf("PeakLive = %d, want 3", st.PeakLive)
	}
}

func TestGanttRendering(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 0, Thread: "main", Proc: 0, Kind: ThreadStart})
	l.Record(Event{T: 50, Thread: "main", Proc: 0, Kind: Mark, Label: "phase2"})
	l.Record(Event{T: 100, Thread: "main", Proc: 0, Kind: ThreadEnd})
	out := l.Gantt(40, 10)
	if !strings.Contains(out, "main") || !strings.Contains(out, "█") {
		t.Errorf("gantt missing elements:\n%s", out)
	}
	if !strings.Contains(out, "▸") {
		t.Errorf("gantt missing mark:\n%s", out)
	}
	if !strings.Contains(out, "cycles") {
		t.Errorf("gantt missing axis:\n%s", out)
	}
}

func TestGanttRowCap(t *testing.T) {
	l := New(1)
	for i := 0; i < 50; i++ {
		name := strings.Repeat("x", 3) + string(rune('0'+i%10)) + string(rune('a'+i%26))
		l.Record(Event{T: float64(i), Thread: name, Kind: ThreadStart})
		l.Record(Event{T: float64(i + 10), Thread: name, Kind: ThreadEnd})
	}
	out := l.Gantt(40, 5)
	if !strings.Contains(out, "more threads") {
		t.Errorf("row cap footer missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines > 10 {
		t.Errorf("too many lines (%d) for maxRows=5:\n%s", lines, out)
	}
}

func TestEmptyLog(t *testing.T) {
	l := New(1)
	if out := l.Gantt(40, 5); !strings.Contains(out, "no events") {
		t.Errorf("empty gantt = %q", out)
	}
	if st := l.Summarize(); st.Threads != 0 || st.Makespan != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestUnfinishedThreadExtendsToEnd(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 0, Thread: "runs-forever", Kind: ThreadStart})
	l.Record(Event{T: 0, Thread: "quick", Kind: ThreadStart})
	l.Record(Event{T: 100, Thread: "quick", Kind: ThreadEnd})
	st := l.Summarize()
	if st.MeanLife != 100 { // both spans treated as 100
		t.Errorf("MeanLife = %v, want 100", st.MeanLife)
	}
}

// TestMachineIntegration attaches a tracer to real machine runs and checks
// the expected shape difference: the MTA run has far higher peak thread
// concurrency than the conventional run.
func TestMachineIntegration(t *testing.T) {
	run := func(build func() *machine.Engine, threadsN int) Stats {
		e := build()
		l := New(e.Config().ClockHz)
		e.SetTracer(l)
		_, err := e.Run("main", func(th *machine.Thread) {
			th.Mark("spawn-phase")
			var ts []*machine.Thread
			for i := 0; i < threadsN; i++ {
				ts = append(ts, th.Go("w", func(c *machine.Thread) {
					c.Compute(50_000)
				}))
			}
			th.JoinAll(ts)
		})
		if err != nil {
			t.Fatal(err)
		}
		return l.Summarize()
	}
	mtaStats := run(func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) }, 64)
	smpStats := run(func() *machine.Engine { return smp.New(smp.Exemplar(4)) }, 64)
	if mtaStats.Threads != 65 || smpStats.Threads != 65 {
		t.Fatalf("threads = %d / %d, want 65", mtaStats.Threads, smpStats.Threads)
	}
	if mtaStats.PeakLive < 60 {
		t.Errorf("MTA peak live = %d, want ≈ 65 (streams all resident)", mtaStats.PeakLive)
	}
	// On the SMP the serialized 200k-cycle spawns stagger starts while early
	// threads already run; concurrency still builds up, but the first
	// threads' lifetimes dominate the makespan far more than on the MTA.
	if smpStats.Makespan <= mtaStats.MeanLife {
		t.Logf("smp makespan %v, mta meanlife %v", smpStats.Makespan, mtaStats.MeanLife)
	}
}

// A truncated timeline — a ThreadEnd with no matching ThreadStart, as when a
// log starts recording mid-run or an event stream is cut — must neither
// panic nor invent a span; it only extends the observed makespan.
func TestOrphanThreadEndIsIgnored(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 5, Thread: "ghost", Kind: ThreadEnd}) // no start
	l.Record(Event{T: 10, Thread: "real", Kind: ThreadStart})
	l.Record(Event{T: 30, Thread: "real", Kind: ThreadEnd})
	l.Record(Event{T: 50, Thread: "ghost", Kind: ThreadEnd}) // another orphan, after everything
	st := l.Summarize()
	if st.Threads != 1 {
		t.Errorf("Threads = %d, want 1 (orphan ends create no spans)", st.Threads)
	}
	if st.MeanLife != 20 {
		t.Errorf("MeanLife = %v, want 20 (the real span only)", st.MeanLife)
	}
	if st.Makespan != 50 {
		t.Errorf("Makespan = %v, want 50 (orphan events still bound the timeline)", st.Makespan)
	}
	if out := l.Gantt(40, 10); !strings.Contains(out, "real") || strings.Contains(out, "ghost") {
		t.Errorf("gantt should render only the real span:\n%s", out)
	}
}

// An end for a name with more ends than starts: the extra end must not
// touch other threads' spans or underflow the open queue.
func TestExtraEndForReusedNameIsIgnored(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 0, Thread: "w", Kind: ThreadStart})
	l.Record(Event{T: 10, Thread: "w", Kind: ThreadEnd})
	l.Record(Event{T: 20, Thread: "w", Kind: ThreadEnd}) // no open "w" span left
	st := l.Summarize()
	if st.Threads != 1 {
		t.Fatalf("Threads = %d, want 1", st.Threads)
	}
	if st.MeanLife != 10 {
		t.Errorf("MeanLife = %v, want 10 (second end must not reopen or extend the span)", st.MeanLife)
	}
}

// A Mark with no open span for its thread (same truncation scenario) is
// dropped rather than attributed to an unrelated span.
func TestOrphanMarkIsIgnored(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 1, Thread: "ghost", Kind: Mark, Label: "phase"})
	l.Record(Event{T: 2, Thread: "real", Kind: ThreadStart})
	l.Record(Event{T: 9, Thread: "real", Kind: ThreadEnd})
	if out := l.Gantt(40, 10); strings.Contains(out, "▸") {
		t.Errorf("orphan mark rendered:\n%s", out)
	}
	if st := l.Summarize(); st.Threads != 1 {
		t.Errorf("Threads = %d, want 1", st.Threads)
	}
}

// FIFO pairing under truncation: when one of several same-named threads is
// missing its start, ends still pair oldest-first and the unmatched tail
// extends to the timeline end rather than panicking.
func TestTruncatedReusedNamePairsFIFO(t *testing.T) {
	l := New(1)
	l.Record(Event{T: 0, Thread: "w", Kind: ThreadStart})
	l.Record(Event{T: 5, Thread: "w", Kind: ThreadStart})
	l.Record(Event{T: 10, Thread: "w", Kind: ThreadEnd}) // pairs with the T=0 start
	// The T=5 span's end was truncated away; a later event moves the end of
	// the timeline past it.
	l.Record(Event{T: 40, Thread: "other", Kind: ThreadStart})
	l.Record(Event{T: 60, Thread: "other", Kind: ThreadEnd})
	st := l.Summarize()
	if st.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", st.Threads)
	}
	// Spans: w[0,10], w[5,60] (unfinished → timeline end), other[40,60].
	if want := (10.0 + 55.0 + 20.0) / 3.0; st.MeanLife != want {
		t.Errorf("MeanLife = %v, want %v", st.MeanLife, want)
	}
}
