// Package trace records simulated-thread timelines from machine runs and
// renders them as ASCII Gantt charts — the fastest way to see *why* the
// same program behaves differently across machines: on the Tera MTA model,
// hundreds of short overlapping stream bars; on a conventional SMP, a few
// long bars with serialized spawn stair-steps.
//
// The package is standalone: machines call Record through the small Sink
// interface, and anything that has events can render them.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a timeline event.
type Kind int

const (
	// ThreadStart marks a thread beginning execution (after admission).
	ThreadStart Kind = iota
	// ThreadEnd marks a thread's body returning.
	ThreadEnd
	// Mark is a user-placed phase annotation.
	Mark
	// SyncAlloc records a named synchronization primitive being created
	// (counter, barrier). Gantt rendering and span pairing ignore it; it is
	// in the log so post-processors can attribute sync traffic by name.
	SyncAlloc
)

// Event is one timeline record.
type Event struct {
	T      float64 // cycles
	Thread string
	Proc   int
	Kind   Kind
	Label  string
}

// Sink receives events. *Log implements it; a nil *Log is a valid no-op
// sink, so machines can record unconditionally.
type Sink interface {
	Record(e Event)
}

// Log accumulates events from one run.
type Log struct {
	ClockHz float64
	Events  []Event
}

// New returns an empty log for a machine with the given clock.
func New(clockHz float64) *Log { return &Log{ClockHz: clockHz} }

// Record implements Sink. Recording on a nil log is a no-op.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.Events = append(l.Events, e)
}

// span is one thread's reconstructed lifetime.
type span struct {
	name       string
	proc       int
	start, end float64
	marks      []Event
}

// spans pairs start/end events per thread, in start order. Thread names may
// repeat (e.g. many workers named "w"); ends and marks attach to the oldest
// still-open span with that name (FIFO), matching sequential reuse.
func (l *Log) spans() []span {
	open := map[string][]*span{}
	var order []*span
	endT := 0.0
	for _, e := range l.Events {
		if e.T > endT {
			endT = e.T
		}
		switch e.Kind {
		case ThreadStart:
			s := &span{name: e.Thread, proc: e.Proc, start: e.T, end: -1}
			open[e.Thread] = append(open[e.Thread], s)
			order = append(order, s)
		case ThreadEnd:
			if q := open[e.Thread]; len(q) > 0 {
				q[0].end = e.T
				open[e.Thread] = q[1:]
			}
		case Mark:
			if q := open[e.Thread]; len(q) > 0 {
				q[0].marks = append(q[0].marks, e)
			}
		}
	}
	out := make([]span, 0, len(order))
	for _, s := range order {
		if s.end < 0 {
			s.end = endT // never finished (killed / still running at end)
		}
		out = append(out, *s)
	}
	return out
}

// End returns the time of the last event.
func (l *Log) End() float64 {
	end := 0.0
	for _, e := range l.Events {
		if e.T > end {
			end = e.T
		}
	}
	return end
}

// Gantt renders up to maxRows thread timelines as a width-column chart.
// Threads beyond maxRows are summarized in a footer. Each row shows the
// thread's active span as '█' with '▸' phase marks.
func (l *Log) Gantt(width, maxRows int) string {
	if width < 20 {
		width = 20
	}
	spans := l.spans()
	end := l.End()
	if end == 0 || len(spans) == 0 {
		return "(no events)\n"
	}
	col := func(t float64) int {
		c := int(t / end * float64(width-1))
		if c >= width {
			c = width - 1
		}
		return c
	}
	nameW := 0
	show := spans
	if len(show) > maxRows {
		show = show[:maxRows]
	}
	for _, s := range show {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	if nameW > 28 {
		nameW = 28
	}
	var sb strings.Builder
	for _, s := range show {
		row := []rune(strings.Repeat("·", width))
		for c := col(s.start); c <= col(s.end); c++ {
			row[c] = '█'
		}
		for _, m := range s.marks {
			row[col(m.T)] = '▸'
		}
		name := s.name
		if len(name) > nameW {
			name = name[:nameW-1] + "…"
		}
		fmt.Fprintf(&sb, "%-*s p%d │%s│\n", nameW, name, s.proc, string(row))
	}
	if hidden := len(spans) - len(show); hidden > 0 {
		fmt.Fprintf(&sb, "%-*s    │ … %d more threads …\n", nameW, "", hidden)
	}
	fmt.Fprintf(&sb, "%-*s    0%scycles%s%.3g\n", nameW, "",
		strings.Repeat(" ", (width-10)/2), strings.Repeat(" ", width-10-(width-10)/2), end)
	return sb.String()
}

// Stats summarizes the log: thread count, makespan, mean thread lifetime and
// peak concurrency.
type Stats struct {
	Threads     int
	Makespan    float64 // cycles
	MeanLife    float64 // cycles
	PeakLive    int
	PerProcPeak map[int]int
}

// Summarize computes Stats from the log.
func (l *Log) Summarize() Stats {
	spans := l.spans()
	st := Stats{Threads: len(spans), Makespan: l.End(), PerProcPeak: map[int]int{}}
	if len(spans) == 0 {
		return st
	}
	var total float64
	type edge struct {
		t    float64
		d    int
		proc int
	}
	var edges []edge
	for _, s := range spans {
		total += s.end - s.start
		edges = append(edges, edge{s.start, +1, s.proc}, edge{s.end, -1, s.proc})
	}
	st.MeanLife = total / float64(len(spans))
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d > edges[j].d // starts before ends at the same instant
	})
	live := 0
	perProc := map[int]int{}
	for _, e := range edges {
		live += e.d
		perProc[e.proc] += e.d
		if live > st.PeakLive {
			st.PeakLive = live
		}
		if perProc[e.proc] > st.PerProcPeak[e.proc] {
			st.PerProcPeak[e.proc] = perProc[e.proc]
		}
	}
	return st
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("threads=%d makespan=%.0f cycles meanLife=%.0f peakLive=%d",
		s.Threads, s.Makespan, s.MeanLife, s.PeakLive)
}
