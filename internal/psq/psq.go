// Package psq implements a capped processor-sharing (PS) resource for
// discrete-event simulation.
//
// A Queue models a server with a total service rate R (work units per cycle)
// shared equally among all currently active clients, with an optional
// per-client rate cap c. At any instant with n active clients each client
// receives service at rate min(c, R/n). This single abstraction models:
//
//   - a Tera MTA processor's instruction issue logic: R = 1 instruction per
//     cycle shared by up to 128 streams, with c = 1/21 because a stream can
//     have only one instruction in the 21-stage pipeline — one stream alone
//     achieves about 5% utilization, ≥21 compute-bound streams saturate;
//   - a shared SMP memory bus: R = bytes per cycle, no per-client cap;
//   - time-shared conventional processors: R = instructions per cycle
//     divided among the threads scheduled on the processor.
//
// The implementation is an exact event-driven fluid simulation using
// virtual-service accounting: because all active clients receive the same
// instantaneous rate, each job completes when the cumulative equal-share
// service S(t) reaches the job's admission value of S plus its work.
package psq

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/sim"
)

// completion slack: jobs within this much work of their target complete
// together, absorbing float rounding in long simulations.
const eps = 1e-7

// job is one client's outstanding service request.
type job struct {
	wq     *sim.WaitQ // parks exactly one proc
	target float64    // S value at which the job completes
	work   float64
	index  int // heap index
}

type jobHeap []*job

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].target < h[j].target }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x interface{}) { j := x.(*job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// Queue is a capped processor-sharing resource. Create with New; use Serve
// from simulated procs.
type Queue struct {
	k    *sim.Kernel
	name string
	rate float64 // total work units per cycle
	cap  float64 // per-client units per cycle; <=0 means uncapped

	jobs  jobHeap
	s     float64 // cumulative per-client (equal-share) service
	lastT sim.Time
	timer *sim.Timer

	served   float64 // total work completed
	busy     float64 // integral of actual service rate over time
	arrivals int64   // total Serve calls
	maxQ     int     // high-water mark of concurrent clients
}

// New creates a PS queue on kernel k. rate is the total service rate in work
// units per cycle and must be positive. perClientCap limits each client's
// rate; pass 0 for no cap.
func New(k *sim.Kernel, name string, rate, perClientCap float64) *Queue {
	if rate <= 0 {
		panic(fmt.Sprintf("psq %s: rate must be positive, got %g", name, rate))
	}
	return &Queue{k: k, name: name, rate: rate, cap: perClientCap}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Rate returns the total service rate.
func (q *Queue) Rate() float64 { return q.rate }

// Cap returns the per-client rate cap (0 if uncapped).
func (q *Queue) Cap() float64 {
	if q.cap <= 0 {
		return 0
	}
	return q.cap
}

// currentRate returns the instantaneous per-client service rate.
func (q *Queue) currentRate() float64 {
	n := len(q.jobs)
	if n == 0 {
		return 0
	}
	r := q.rate / float64(n)
	if q.cap > 0 && r > q.cap {
		r = q.cap
	}
	return r
}

// advance integrates service up to the present.
func (q *Queue) advance() {
	now := q.k.Now()
	if now > q.lastT {
		r := q.currentRate()
		q.s += r * (now - q.lastT)
		q.busy += r * float64(len(q.jobs)) * (now - q.lastT)
	}
	q.lastT = now
}

// resched arranges the next completion event.
func (q *Queue) resched() {
	if q.timer != nil {
		q.timer.Cancel()
		q.timer = nil
	}
	if len(q.jobs) == 0 {
		return
	}
	r := q.currentRate()
	dt := (q.jobs[0].target - q.s) / r
	if dt < 0 {
		dt = 0
	}
	q.timer = q.k.After(dt, q.complete)
}

// tol is the completion tolerance. It must scale with the magnitude of the
// virtual-service accumulator: in long simulations s reaches 1e10+, where a
// float64 ULP exceeds any fixed epsilon, and a completion event could
// otherwise fire without ever reaching its target (a zero-time livelock).
func (q *Queue) tol() float64 {
	return eps + 8e-15*math.Abs(q.s)
}

// complete finishes all jobs whose targets have been reached.
func (q *Queue) complete() {
	q.timer = nil
	q.advance()
	popped := false
	for len(q.jobs) > 0 && q.jobs[0].target <= q.s+q.tol() {
		j := heap.Pop(&q.jobs).(*job)
		q.served += j.work
		j.wq.WakeOne(q.k)
		popped = true
	}
	// Livelock guard: if the head job's remaining service is below the
	// clock's float64 resolution, the rescheduled event would fire at the
	// same instant without advancing s. Finish the job now — the residual is
	// smaller than one representable cycle.
	if !popped && len(q.jobs) > 0 {
		if r := q.currentRate(); r > 0 {
			dt := (q.jobs[0].target - q.s) / r
			if now := q.k.Now(); now+dt <= now {
				j := heap.Pop(&q.jobs).(*job)
				q.s = j.target
				q.served += j.work
				j.wq.WakeOne(q.k)
			}
		}
	}
	q.resched()
}

// Serve blocks p until the resource has delivered work units of service to
// it, sharing capacity with all concurrently served clients. Zero or
// negative work returns immediately.
func (q *Queue) Serve(p *sim.Proc, work float64) {
	if work <= 0 {
		return
	}
	q.advance()
	j := &job{wq: sim.NewWaitQ(q.name), target: q.s + work, work: work}
	heap.Push(&q.jobs, j)
	q.arrivals++
	if len(q.jobs) > q.maxQ {
		q.maxQ = len(q.jobs)
	}
	q.resched()
	j.wq.Wait(p, "awaiting service")
}

// Active reports the number of clients currently in service.
func (q *Queue) Active() int { return len(q.jobs) }

// Served returns the total work completed so far.
func (q *Queue) Served() float64 { return q.served }

// Arrivals returns the total number of Serve calls admitted.
func (q *Queue) Arrivals() int64 { return q.arrivals }

// MaxActive returns the high-water mark of concurrent clients.
func (q *Queue) MaxActive() int { return q.maxQ }

// Utilization returns the fraction of the server's capacity used over the
// interval [0, now]. It forces an advance to the present first.
func (q *Queue) Utilization() float64 {
	q.advance()
	now := q.k.Now()
	if now <= 0 {
		return 0
	}
	return q.busy / (q.rate * now)
}
