package psq

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const tol = 1e-6

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// runServe runs n clients, each requesting works[i] at start times starts[i],
// and returns each client's completion time.
func runServe(t *testing.T, rate, cap float64, starts, works []float64) []float64 {
	t.Helper()
	k := sim.NewKernel()
	q := New(k, "test", rate, cap)
	done := make([]float64, len(works))
	for i := range works {
		i := i
		k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			p.SleepUntil(starts[i])
			q.Serve(p, works[i])
			done[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return done
}

func TestSingleClientUncapped(t *testing.T) {
	done := runServe(t, 2.0, 0, []float64{0}, []float64{10})
	if !almostEqual(done[0], 5) {
		t.Errorf("completion = %v, want 5", done[0])
	}
}

func TestSingleClientCapped(t *testing.T) {
	// Cap 1/21 with rate 1: a lone client takes 21 cycles per unit —
	// the MTA single-stream issue model.
	done := runServe(t, 1.0, 1.0/21, []float64{0}, []float64{100})
	if !almostEqual(done[0], 2100) {
		t.Errorf("completion = %v, want 2100", done[0])
	}
}

func TestEqualShareTwoClients(t *testing.T) {
	done := runServe(t, 1.0, 0, []float64{0, 0}, []float64{10, 10})
	for i, d := range done {
		if !almostEqual(d, 20) {
			t.Errorf("client %d completion = %v, want 20", i, d)
		}
	}
}

func TestUnequalWorksProcessorSharing(t *testing.T) {
	// Two clients, works 10 and 30, rate 1. Both served at rate 1/2 until the
	// short one finishes at t=20; the long one then runs alone:
	// remaining 20 at rate 1 → finishes at t=40.
	done := runServe(t, 1.0, 0, []float64{0, 0}, []float64{10, 30})
	if !almostEqual(done[0], 20) {
		t.Errorf("short job completion = %v, want 20", done[0])
	}
	if !almostEqual(done[1], 40) {
		t.Errorf("long job completion = %v, want 40", done[1])
	}
}

func TestCapPreventsSpeedupWhenAlone(t *testing.T) {
	// With cap c and few clients, each runs at c regardless of spare capacity.
	// 3 clients, rate 1, cap 1/21: each gets 1/21, finishing at 21*W.
	done := runServe(t, 1.0, 1.0/21, []float64{0, 0, 0}, []float64{10, 10, 10})
	for i, d := range done {
		if !almostEqual(d, 210) {
			t.Errorf("client %d completion = %v, want 210", i, d)
		}
	}
}

func TestSaturationWithManyCappedClients(t *testing.T) {
	// 42 clients, rate 1, cap 1/21: per-client rate = 1/42 (sharing binds).
	// Each work 10 → completion 420. Total throughput = rate (saturated).
	n := 42
	starts := make([]float64, n)
	works := make([]float64, n)
	for i := range works {
		works[i] = 10
	}
	done := runServe(t, 1.0, 1.0/21, starts, works)
	for i, d := range done {
		if !almostEqual(d, 420) {
			t.Errorf("client %d completion = %v, want 420", i, d)
		}
	}
}

func TestStaggeredArrivals(t *testing.T) {
	// Client A (work 10) starts at 0 alone; client B (work 10) arrives at 4.
	// A: rate 1 for t<4 (4 units done), then 1/2. A needs 6 more → done at 16.
	// B: rate 1/2 from 4 to 16 (6 units), then alone at rate 1 → done at 20.
	done := runServe(t, 1.0, 0, []float64{0, 4}, []float64{10, 10})
	if !almostEqual(done[0], 16) {
		t.Errorf("A completion = %v, want 16", done[0])
	}
	if !almostEqual(done[1], 20) {
		t.Errorf("B completion = %v, want 20", done[1])
	}
}

func TestZeroWorkReturnsImmediately(t *testing.T) {
	done := runServe(t, 1.0, 0, []float64{5}, []float64{0})
	if done[0] != 5 {
		t.Errorf("completion = %v, want 5 (no service)", done[0])
	}
}

func TestUtilizationSingleCappedStream(t *testing.T) {
	// One capped stream: utilization should be cap/rate ≈ 4.8% — the paper's
	// "roughly 5% processor utilization" for single-threaded MTA code.
	k := sim.NewKernel()
	q := New(k, "issue", 1.0, 1.0/21)
	k.Spawn("stream", func(p *sim.Proc) {
		q.Serve(p, 100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	u := q.Utilization()
	if math.Abs(u-1.0/21) > 1e-9 {
		t.Errorf("utilization = %v, want %v", u, 1.0/21)
	}
}

func TestStatsCounters(t *testing.T) {
	k := sim.NewKernel()
	q := New(k, "s", 1.0, 0)
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			q.Serve(p, 5)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Served() != 15 {
		t.Errorf("Served = %v, want 15", q.Served())
	}
	if q.Arrivals() != 3 {
		t.Errorf("Arrivals = %v, want 3", q.Arrivals())
	}
	if q.MaxActive() != 3 {
		t.Errorf("MaxActive = %v, want 3", q.MaxActive())
	}
	if q.Active() != 0 {
		t.Errorf("Active = %v, want 0 after drain", q.Active())
	}
}

func TestNewPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with rate 0 did not panic")
		}
	}()
	New(sim.NewKernel(), "bad", 0, 0)
}

// Property: work conservation. For any batch of jobs arriving at time 0 with
// no cap, the makespan equals totalWork/rate exactly (PS is work-conserving),
// and every job's completion time is at least work_i/rate.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		works := make([]float64, n)
		starts := make([]float64, n)
		var total float64
		for i := range works {
			works[i] = 1 + rng.Float64()*100
			total += works[i]
		}
		rate := 0.5 + rng.Float64()*4
		done := runServe(t, rate, 0, starts, works)
		makespan := 0.0
		for i, d := range done {
			if d < works[i]/rate-tol {
				return false // finished faster than dedicated service
			}
			if d > makespan {
				makespan = d
			}
		}
		return almostEqual(makespan, total/rate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cap enforcement. No job may ever complete before work/cap cycles
// have elapsed since its arrival, for any arrival pattern.
func TestPropertyCapEnforcement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		works := make([]float64, n)
		starts := make([]float64, n)
		for i := range works {
			works[i] = 1 + rng.Float64()*50
			starts[i] = rng.Float64() * 20
		}
		cap := 0.05 + rng.Float64()*0.5
		done := runServe(t, 2.0, cap, starts, works)
		for i, d := range done {
			if d < starts[i]+works[i]/cap-tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — admitted later with the same work means finishing
// no earlier, when all works are equal (FIFO-like fairness of PS with equal
// demands).
func TestPropertyEqualWorkOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		works := make([]float64, n)
		starts := make([]float64, n)
		for i := range works {
			works[i] = 25
			starts[i] = float64(i) * rng.Float64() * 5
		}
		done := runServe(t, 1.0, 0, starts, works)
		for i := 1; i < n; i++ {
			if starts[i] >= starts[i-1] && done[i] < done[i-1]-tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLongRunNumericalStability(t *testing.T) {
	// Repeated service through the same queue must not accumulate drift:
	// 10k sequential serves of work 21 at cap 1/21 should take 21*21*10k.
	k := sim.NewKernel()
	q := New(k, "issue", 1.0, 1.0/21)
	var end float64
	k.Spawn("stream", func(p *sim.Proc) {
		for i := 0; i < 10000; i++ {
			q.Serve(p, 21)
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 21.0 * 21 * 10000
	if math.Abs(end-want)/want > 1e-9 {
		t.Errorf("end = %v, want %v", end, want)
	}
}
