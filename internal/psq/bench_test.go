package psq

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkServeSequential measures back-to-back service requests from one
// client (timer scheduling + completion per request).
func BenchmarkServeSequential(b *testing.B) {
	k := sim.NewKernel()
	q := New(k, "bench", 1.0, 0)
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Serve(p, 5)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeContended measures service with many concurrent clients
// (rate recomputation on every arrival/departure).
func BenchmarkServeContended(b *testing.B) {
	k := sim.NewKernel()
	q := New(k, "bench", 1.0, 1.0/21)
	const clients = 64
	per := b.N/clients + 1
	for i := 0; i < clients; i++ {
		k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				q.Serve(p, 3)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
