package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/c3i/suite"
	"repro/internal/run"
)

// StreamEvent is one line of a /v1/run/stream response: NDJSON, one JSON
// object per line, emitted as each Spec's Record completes rather than at
// batch end. Index addresses the submitted batch positionally, and exactly
// one of Record and Error is set — the same per-spec contract as
// BatchResponse, delivered incrementally. Every submitted Spec produces
// exactly one event; arrival order is completion order, not batch order.
// The type lives in run (it is the streaming execution API's event, not a
// serving invention); the alias keeps the serving tier's wire vocabulary.
type StreamEvent = run.StreamEvent

// streamEvent renders a task result as its event.
func streamEvent(index int, res taskResult) StreamEvent {
	return run.Event(index, res.rec, res.err)
}

// handleStream answers POST /v1/run/stream: the same Spec batch as /v1/run,
// but the response is NDJSON StreamEvents written (and flushed) as Records
// complete, so a long sweep yields results incrementally. Admission control
// is decided before the first byte is written — a full workload queue still
// answers a clean 429 — after which the response is committed and per-spec
// problems travel as error events.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	specs, ok := DecodeBatch(w, r)
	if !ok {
		return
	}
	// Dispatch everything first. Immediate failures (unknown workload, shut
	// down) become events up front; dispatched Specs get a collector that
	// forwards their result to the shared events channel. The channel holds
	// the whole batch, so collectors never block and cannot leak even if the
	// client disconnects mid-stream.
	events := make(chan StreamEvent, len(specs))
	pre := make([]StreamEvent, 0, len(specs))
	pending := 0
	for i, spec := range specs {
		if _, err := suite.Lookup(spec.Workload); err != nil {
			pre = append(pre, StreamEvent{Index: i, Error: err.Error()})
			continue
		}
		done := make(chan taskResult, 1)
		switch err := s.dispatch(r.Context(), spec, done); {
		case err == nil:
			pending++
			go func(i int, done chan taskResult) {
				if res, ok := s.collect(done); ok {
					events <- streamEvent(i, res)
				} else {
					events <- StreamEvent{Index: i, Error: "serve: server is shut down"}
				}
			}(i, done)
		case errors.Is(err, errQueueFull):
			rejectOverload(w, spec, i)
			return
		default:
			pre = append(pre, StreamEvent{Index: i, Error: err.Error()})
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one event per line
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false // client gone; collectors drain into the buffer
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range pre {
		if !emit(ev) {
			return
		}
	}
	for n := 0; n < pending; n++ {
		select {
		case ev := <-events:
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
