package serve_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/run"
)

// TestGridSweepRemoteMatchesLocalBytes pins the acceptance contract for the
// scenario-grid subsystem: a -grid sweep executed through a serve fleet emits
// the same records, byte for byte, as the same sweep in-process. Everything
// in a Record is engine-deterministic except the host wall clock, which the
// grid envelope zeroes — so after that normalization the two serializations
// must be identical.
func TestGridSweepRemoteMatchesLocalBytes(t *testing.T) {
	restrict := map[string][]float64{
		"scale": {0.05}, "gate": {24, 48}, "prune": {0}, "net": {0, 1},
	}
	pts, err := run.GridSpecs("hypothesis-testing", "", "tera", 2, restrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("restricted sub-grid has %d points, want 4", len(pts))
	}
	specs := make([]run.Spec, len(pts))
	for i, gp := range pts {
		specs[i] = gp.Spec
	}

	ctx := context.Background()
	local, err := run.NewRunner(0).RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newServer(t, "")
	remote, err := client.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	marshal := func(recs []run.Record) string {
		for i := range recs {
			recs[i].HostElapsed = 0
		}
		b, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	lb, rb := marshal(local), marshal(remote)
	if lb != rb {
		t.Errorf("grid records differ between local and remote execution:\nlocal:\n%s\nremote:\n%s", lb, rb)
	}
	for i, rec := range local {
		if rec.Checksum == 0 {
			t.Errorf("point %s: zero checksum — grid points must validate", pts[i].Label)
		}
	}
}
