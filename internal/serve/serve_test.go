package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/run"
	"repro/internal/serve"
)

// A cheap deterministic workload so the serving tests do not pay for real
// benchmark suites. Registered once for this test process.
func init() {
	suite.MustRegister(&suite.Workload{
		Name: "serve-hook", Key: "sh", FileTag: "sh", Title: "Serve Test Hook",
		Order: 98, PaperUnits: 1, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Generate: func(scale float64) []suite.Scenario {
			return []suite.Scenario{hookScenario{}}
		},
		Variants: []*suite.Variant{{
			Name: "sequential", Style: suite.Sequential,
			Defaults: suite.Params{"work": 100},
			Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
				t.Compute(int64(p["work"]))
				return suite.Output{Checksum: uint64(p["work"]) * 3}
			},
		}},
	})
}

type hookScenario struct{}

func (hookScenario) ScenarioName() string { return "sh-1" }
func (hookScenario) Units() int           { return 1 }
func (hookScenario) Warm()                {}

func hookSpec(work int) run.Spec {
	return run.Spec{Workload: "serve-hook", Variant: "sequential", Platform: "alpha", Procs: 1,
		Params: suite.Params{"work": work}, Validate: true}
}

// newServer builds a ready server over a fresh runner, optionally
// store-backed, and tears everything down with the test.
func newServer(t *testing.T, storeDir string) (*httptest.Server, *run.Runner, *serve.Client) {
	t.Helper()
	runner := run.NewRunner(0)
	var ds *run.DiskStore
	if storeDir != "" {
		var err error
		ds, err = run.NewDiskStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		runner.SetStore(ds)
	}
	srv := serve.New(runner, serve.Options{WorkersPerWorkload: 4, Store: ds})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, runner, &serve.Client{Addr: ts.URL, HTTP: ts.Client()}
}

// postRaw POSTs a raw body to /v1/run and returns status + decoded body.
func postRaw(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+serve.RunPath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp.StatusCode, out
}

func TestServeBatchPositional(t *testing.T) {
	_, runner, client := newServer(t, "")
	ctx := context.Background()
	specs := []run.Spec{hookSpec(100), hookSpec(200), hookSpec(100)}
	recs, err := client.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Key != recs[2].Key || recs[0].ModelSeconds != recs[2].ModelSeconds {
		t.Error("identical specs diverged")
	}
	if recs[1].Key == recs[0].Key {
		t.Error("distinct specs collapsed")
	}
	if recs[0].Checksum != 300 || recs[1].Checksum != 600 {
		t.Errorf("checksums %x/%x, want 12c/258", uint64(recs[0].Checksum), uint64(recs[1].Checksum))
	}
	if got := runner.Executions(); got != 2 {
		t.Errorf("3 specs (2 distinct) executed %d times", got)
	}

	// The served record is byte-identical to a local execution of the same
	// Spec (HostElapsed aside — that is the cost of computing, not the
	// result).
	local, err := run.NewRunner(0).Run(ctx, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	remote := recs[0]
	local.HostElapsed, remote.HostElapsed = 0, 0
	lb, _ := json.Marshal(local)
	rb, _ := json.Marshal(remote)
	if !bytes.Equal(lb, rb) {
		t.Errorf("remote record differs from local:\n  local  %s\n  remote %s", lb, rb)
	}
}

func TestServeRepeatBatchIsCached(t *testing.T) {
	_, runner, client := newServer(t, "")
	ctx := context.Background()
	specs := []run.Spec{hookSpec(300), hookSpec(400)}
	first, err := client.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	execs := runner.Executions()
	second, err := client.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.Executions(); got != execs {
		t.Errorf("repeated batch re-executed: %d → %d engine runs", execs, got)
	}
	for i := range first {
		if first[i].HostElapsed != second[i].HostElapsed || first[i].ModelSeconds != second[i].ModelSeconds {
			t.Errorf("cached record %d diverged", i)
		}
	}
}

func TestServeDiskStoreAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	specs := []run.Spec{hookSpec(500), hookSpec(600)}

	_, runner1, client1 := newServer(t, dir)
	first, err := client1.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if runner1.Executions() != 2 {
		t.Fatalf("first server executed %d, want 2", runner1.Executions())
	}

	// A second server on the same store (a "restarted process") answers the
	// batch without a single engine execution.
	_, runner2, client2 := newServer(t, dir)
	second, err := client2.RunAll(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := runner2.Executions(); got != 0 {
		t.Errorf("restarted server executed %d times, want 0 (disk store)", got)
	}
	for i := range first {
		if first[i].Key != second[i].Key || first[i].ModelSeconds != second[i].ModelSeconds ||
			first[i].Checksum != second[i].Checksum || first[i].HostElapsed != second[i].HostElapsed {
			t.Errorf("store-served record %d diverged:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}

	h, err := client2.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Executions != 0 || h.StoreRecords != 2 {
		t.Errorf("health = %+v, want ok/0 executions/2 records", h)
	}
}

func TestServeCorruptedStoreRecomputes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, _, client1 := newServer(t, dir)
	first, err := client1.RunAll(ctx, []run.Spec{hookSpec(700)})
	if err != nil {
		t.Fatal(err)
	}
	// Garble every record file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	garbled := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("{half a rec"), 0o644); err != nil {
				t.Fatal(err)
			}
			garbled++
		}
	}
	if garbled == 0 {
		t.Fatal("no record files to garble")
	}
	_, runner2, client2 := newServer(t, dir)
	recs, err := client2.RunAll(ctx, []run.Spec{hookSpec(700)})
	if err != nil {
		t.Fatalf("corrupted store crashed the request: %v", err)
	}
	if runner2.Executions() != 1 {
		t.Errorf("corrupted entry served without recompute: %d executions", runner2.Executions())
	}
	if recs[0].ModelSeconds != first[0].ModelSeconds || recs[0].Checksum != first[0].Checksum {
		t.Errorf("recomputed record diverged: %+v vs %+v", recs[0], first[0])
	}
}

func TestServeUnknownWorkloadIsPerSpecError(t *testing.T) {
	ts, runner, _ := newServer(t, "")
	batch := `[
		{"workload":"serve-hook","variant":"sequential","platform":"alpha","procs":1},
		{"workload":"no-such-workload","variant":"sequential","platform":"alpha","procs":1},
		{"workload":"serve-hook","variant":"turbo","platform":"alpha","procs":1}
	]`
	status, out := postRaw(t, ts, batch)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (the batch still returns)", status)
	}
	records := out["records"].([]any)
	errs := out["errors"].([]any)
	if len(records) != 3 || len(errs) != 3 {
		t.Fatalf("response not positional: %d records, %d errors", len(records), len(errs))
	}
	if records[0] == nil || errs[0].(string) != "" {
		t.Errorf("good spec failed: %v / %v", records[0], errs[0])
	}
	if records[1] != nil || !strings.Contains(errs[1].(string), "no-such-workload") {
		t.Errorf("unknown workload: record %v, error %q", records[1], errs[1])
	}
	if records[2] != nil || !strings.Contains(errs[2].(string), "turbo") {
		t.Errorf("unknown variant: record %v, error %q", records[2], errs[2])
	}
	if runner.Executions() != 1 {
		t.Errorf("executions = %d, want 1 (only the good spec)", runner.Executions())
	}
}

func TestServeMalformedBatch(t *testing.T) {
	ts, _, _ := newServer(t, "")
	// Not JSON at all.
	status, out := postRaw(t, ts, "{half a batch")
	if status != http.StatusBadRequest || out["error"] == "" {
		t.Errorf("malformed body: status %d, body %v", status, out)
	}
	// Not an array.
	status, _ = postRaw(t, ts, `{"workload":"serve-hook"}`)
	if status != http.StatusBadRequest {
		t.Errorf("non-array body: status %d, want 400", status)
	}
	// Empty batch.
	status, _ = postRaw(t, ts, `[]`)
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	// One malformed element: 400 with a positional error naming index 1.
	status, out = postRaw(t, ts, `[
		{"workload":"serve-hook","variant":"sequential","platform":"alpha","procs":1},
		{"workload":"serve-hook","procs":"one"},
		{"workload":"serve-hook","variant":"sequential","platform":"alpha","procs":2}
	]`)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed element: status %d, want 400", status)
	}
	perIndex, ok := out["errors"].([]any)
	if !ok || len(perIndex) != 3 {
		t.Fatalf("expected 3 positional errors, got %v", out["errors"])
	}
	if perIndex[0].(string) != "" || perIndex[2].(string) != "" {
		t.Errorf("well-formed elements blamed: %v", perIndex)
	}
	if !strings.Contains(perIndex[1].(string), "spec 1") {
		t.Errorf("malformed element error %q does not name its index", perIndex[1])
	}
	// GET is not allowed on the run endpoint.
	resp, err := ts.Client().Get(ts.URL + serve.RunPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET %s: status %d, want 405", serve.RunPath, resp.StatusCode)
	}
}

func TestServeAfterCloseAnswersWithErrors(t *testing.T) {
	// A request arriving after (or surviving past) Close must get per-spec
	// errors, never a send on a closed pool channel: Close signals quit, it
	// does not close the task channels.
	runner := run.NewRunner(0)
	srv := serve.New(runner, serve.Options{WorkersPerWorkload: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Warm a pool so Close has live workers to stop.
	client := &serve.Client{Addr: ts.URL, HTTP: ts.Client()}
	if _, err := client.RunAll(context.Background(), []run.Spec{hookSpec(800)}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent

	status, out := postRaw(t, ts, `[{"workload":"serve-hook","variant":"sequential","platform":"alpha","procs":1}]`)
	if status != http.StatusOK {
		t.Fatalf("post-Close batch: status %d, want 200 with per-spec errors", status)
	}
	errs := out["errors"].([]any)
	if len(errs) != 1 || !strings.Contains(errs[0].(string), "shut down") {
		t.Errorf("post-Close errors = %v, want a shut-down error", errs)
	}
}

func TestClientRunBatchKeepsFailedSpecsNull(t *testing.T) {
	_, _, client := newServer(t, "")
	br, err := client.RunBatch(context.Background(), []run.Spec{
		hookSpec(900),
		{Workload: "no-such-workload", Variant: "x", Platform: "alpha", Procs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Records[0] == nil || br.Errors[0] != "" {
		t.Errorf("good spec: %+v / %q", br.Records[0], br.Errors[0])
	}
	if br.Records[1] != nil || !strings.Contains(br.Errors[1], "no-such-workload") {
		t.Errorf("failed spec must stay a null record: %+v / %q", br.Records[1], br.Errors[1])
	}
}

func TestExperimentRemoteMatchesLocal(t *testing.T) {
	// The acceptance check: a c3ibench-driven experiment executed through
	// the remote client produces records identical (Key, ModelSeconds,
	// Checksum — the full JSON minus host cost) to local execution.
	if testing.Short() {
		t.Skip("runs a real experiment twice")
	}
	_, runner, client := newServer(t, "")
	scales := map[string]float64{experiments.TA: 0.02}

	exp, err := experiments.Get("table5")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := exp.Run(experiments.Config{Scales: scales, Executor: client})
	if err != nil {
		t.Fatal(err)
	}
	local, err := exp.Run(experiments.Config{Scales: scales})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Records) == 0 || len(remote.Records) != len(local.Records) {
		t.Fatalf("record counts differ: remote %d, local %d", len(remote.Records), len(local.Records))
	}
	for i := range local.Records {
		l, r := local.Records[i], remote.Records[i]
		l.HostElapsed, r.HostElapsed = 0, 0
		lb, _ := json.Marshal(l)
		rb, _ := json.Marshal(r)
		if !bytes.Equal(lb, rb) {
			t.Errorf("record %d differs:\n  local  %s\n  remote %s", i, lb, rb)
		}
	}
	if runner.Executions() == 0 {
		t.Error("remote run did not execute on the server")
	}

	// Rendered output is identical too: the tables cannot tell where their
	// numbers were computed.
	var lt, rt []string
	for _, tb := range local.Tables {
		lt = append(lt, tb.Render())
	}
	for _, tb := range remote.Tables {
		rt = append(rt, tb.Render())
	}
	if fmt.Sprint(lt) != fmt.Sprint(rt) {
		t.Error("rendered tables differ between local and remote execution")
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	ts, _, client := newServer(t, "")
	ctx := context.Background()
	specs := []run.Spec{hookSpec(1000), hookSpec(1100)}
	if _, err := client.RunAll(ctx, specs); err != nil {
		t.Fatal(err)
	}

	fetch := func() string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + serve.MetricsPath)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", serve.MetricsPath, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("metrics Content-Type = %q, want text/plain", ct)
		}
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}

	body := fetch()
	for _, want := range []string{
		"# TYPE run_executions_total counter",
		`run_executions_total{workload="serve-hook"} 2`,
		`run_exec_seconds_count{workload="serve-hook"} 2`,
		"# TYPE serve_requests_total counter",
		`serve_requests_total{code="2xx",path="/v1/run"} 1`,
		`serve_pool_workers{workload="serve-hook"} 4`,
		"# TYPE serve_request_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	// A repeated batch increments request and cache-hit counters but not
	// executions — the invariant the CI smoke job gates on.
	if _, err := client.RunAll(ctx, specs); err != nil {
		t.Fatal(err)
	}
	body = fetch()
	for _, want := range []string{
		`run_executions_total{workload="serve-hook"} 2`,
		`run_cache_hits_total{workload="serve-hook"} 2`,
		`serve_requests_total{code="2xx",path="/v1/run"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-repeat metrics missing %q:\n%s", want, body)
		}
	}

	// POST is not allowed.
	resp, err := ts.Client().Post(ts.URL+serve.MetricsPath, "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST %s: status %d, want 405", serve.MetricsPath, resp.StatusCode)
	}
}

func TestServeStatusClassCounters(t *testing.T) {
	ts, _, _ := newServer(t, "")
	// A malformed batch is a 400; it must land in the 4xx class, and an
	// unknown path in the bounded "other" label.
	if status, _ := postRaw(t, ts, "{nope"); status != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mresp, err := ts.Client().Get(ts.URL + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`serve_requests_total{code="4xx",path="/v1/run"} 1`,
		`serve_requests_total{code="4xx",path="other"} 1`,
	} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf)
		}
	}
}

func TestHealthzPoolsAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, _, client := newServer(t, dir)
	ctx := context.Background()
	if _, err := client.RunAll(ctx, []run.Spec{hookSpec(1200)}); err != nil {
		t.Fatal(err)
	}
	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Executions != 1 || h.StoreRecords != 1 {
		t.Errorf("health = %+v", h)
	}
	// Pool shape: the one workload that ran has a pool of the configured
	// width; never-used workloads have none.
	if got := h.Pools["serve-hook"]; got != 4 {
		t.Errorf("pools[serve-hook] = %d, want 4 (WorkersPerWorkload)", got)
	}
	if len(h.Pools) != 1 {
		t.Errorf("pools = %v, want only the started pool", h.Pools)
	}
	// The embedded snapshot carries the runner's series.
	found := false
	for _, c := range h.Metrics.Counters {
		if c.Name == run.MetricExecutions && c.Labels["workload"] == "serve-hook" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("healthz snapshot missing %s: %+v", run.MetricExecutions, h.Metrics.Counters)
	}
	if len(h.Metrics.Histograms) == 0 {
		t.Error("healthz snapshot has no histograms")
	}
}

func TestPprofGatedByOption(t *testing.T) {
	for _, on := range []bool{false, true} {
		srv := serve.New(run.NewRunner(0), serve.Options{WorkersPerWorkload: 1, Pprof: on})
		ts := httptest.NewServer(srv)
		resp, err := ts.Client().Get(ts.URL + serve.PprofPrefix)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusNotFound
		if on {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Errorf("pprof=%v: GET %s status %d, want %d", on, serve.PprofPrefix, resp.StatusCode, want)
		}
		ts.Close()
		srv.Close()
	}
}

func TestClientSetsContentTypeAndTimeout(t *testing.T) {
	// A stub server that records the batch POST's Content-Type and can stall
	// longer than the client's timeout. The header crosses goroutines on a
	// channel: the client times out while the handler is still running.
	contentType := make(chan string, 1)
	stall := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		contentType <- r.Header.Get("Content-Type")
		select {
		case <-stall:
		case <-r.Context().Done():
			return
		}
		_, _ = w.Write([]byte(`{"records":[null],"errors":["boom"]}`))
	}))
	defer stub.Close()
	defer close(stall)

	// Regression: batch POSTs must declare application/json (a proxy or a
	// stricter future server may reject untyped bodies). Retries are off:
	// the stub records each attempt's header on an unbuffered-ish channel,
	// so a retrying client would park extra handlers on it.
	c := &serve.Client{Addr: stub.URL, Timeout: 50 * time.Millisecond, Retries: -1}
	_, err := c.RunBatch(context.Background(), []run.Spec{hookSpec(1300)})
	if err == nil {
		t.Fatal("stalled server did not time the request out")
	}
	if got := <-contentType; got != "application/json" {
		t.Errorf("batch POST Content-Type = %q, want application/json", got)
	}

	// An explicit HTTP client wins over Timeout; the default (no timeout)
	// client is shared.
	if hc := (&serve.Client{}).HTTPClientForTest(); hc != http.DefaultClient {
		t.Error("zero-value client should use http.DefaultClient")
	}
	if hc := (&serve.Client{Timeout: time.Second}).HTTPClientForTest(); hc.Timeout != time.Second {
		t.Errorf("timeout client = %+v, want 1s timeout", hc.Timeout)
	}
	override := &http.Client{}
	if hc := (&serve.Client{HTTP: override, Timeout: time.Second}).HTTPClientForTest(); hc != override {
		t.Error("explicit HTTP override lost to Timeout")
	}
}
