// Package serve exposes the run API over HTTP/JSON — the serving layer the
// Spec→Record separation was built for. A POST to /v1/run carries a batch of
// run.Spec values and returns positional run.Records with per-spec errors,
// executed through one shared run.Runner; /healthz reports liveness plus the
// runner's execution and store-failure counters, which is how a caller (or
// the CI smoke job) asserts that a repeated batch was served from cache
// rather than recomputed.
//
// Specs are dispatched with per-workload shard affinity: each workload gets
// its own bounded worker pool, so the goroutines executing, say, Terrain
// Masking Specs are the ones whose runner already holds that workload's
// memoized scenario suites warm, and a batch mixing workloads fans out
// across pools instead of serializing behind one queue. The Runner's caches
// are process-wide either way — affinity is a throughput and warmth
// property, not a correctness one.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/obs"
	"repro/internal/run"
)

// The server's endpoints. PprofPrefix is only mounted with Options.Pprof.
const (
	RunPath     = "/v1/run"
	StreamPath  = "/v1/run/stream"
	HealthPath  = "/healthz"
	MetricsPath = "/metrics"
	PprofPrefix = "/debug/pprof/"
)

// Metric names the serving tier publishes (alongside the Runner's run_*
// family) in the registry GET /metrics renders. The CI smoke job greps
// MetricRequests, so these are part of the observable API.
const (
	// MetricRequests counts finished HTTP requests, labeled
	// {path=..., code=...} with code a status class ("2xx", "4xx", "5xx").
	MetricRequests = "serve_requests_total"
	// MetricRequestSeconds is the per-endpoint request latency histogram.
	MetricRequestSeconds = "serve_request_seconds"
	// MetricInflight gauges requests currently being served, per endpoint.
	MetricInflight = "serve_inflight"
	// MetricPoolWorkers gauges each started workload pool's worker count.
	MetricPoolWorkers = "serve_pool_workers"
	// MetricPoolQueueDepth gauges Specs handed to a workload pool but not
	// yet picked up by a worker — sustained nonzero depth means the pool is
	// saturated.
	MetricPoolQueueDepth = "serve_pool_queue_depth"
	// MetricRejected counts batches turned away with 429 because a workload
	// pool's bounded queue was full, labeled {workload=...} by the workload
	// whose queue rejected the Spec. Admission control, observable.
	MetricRejected = "serve_rejected_total"
)

// MaxBatchBytes bounds a request body; a batch of Specs is small, so
// anything bigger is a mistake or abuse, not a workload.
const MaxBatchBytes = 8 << 20

// BatchResponse answers one Spec batch positionally: Records[i] and
// Errors[i] describe the i-th submitted Spec, and exactly one of them is set
// (a failed Spec has a null record and a non-empty error; a successful one
// the reverse). One bad Spec never fails its batch.
type BatchResponse struct {
	Records []*run.Record `json:"records"`
	Errors  []string      `json:"errors"`
}

// ErrorResponse is the body of a non-200 answer. For a 400 caused by
// per-element decode failures, Errors is positional over the submitted batch
// (empty strings for the elements that were fine).
type ErrorResponse struct {
	Error  string   `json:"error"`
	Errors []string `json:"errors,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	Status string `json:"status"`
	// Executions is the runner's engine-run counter: unchanged across a
	// repeated batch means the batch was served from cache or store.
	Executions int64 `json:"executions"`
	// StoreErrors counts failed record-store writes (persistence degraded).
	StoreErrors int64 `json:"store_errors"`
	// StoreRecords is the disk store's current record count, -1 when the
	// server runs without a persistent store. Refreshed per request under
	// the server's read lock.
	StoreRecords int `json:"store_records"`
	// Pools maps each workload whose worker pool has started to its worker
	// count — the pool shape the CI smoke job asserts.
	Pools map[string]int `json:"pools"`
	// Metrics is the full metrics snapshot (the JSON twin of GET /metrics):
	// the runner's per-workload execution/cache/store series plus the
	// serving tier's request series.
	Metrics obs.Snapshot `json:"metrics"`
}

// Options configures a Server.
type Options struct {
	// WorkersPerWorkload bounds each workload's executor pool; < 1 means
	// GOMAXPROCS.
	WorkersPerWorkload int
	// QueueDepth bounds how many Specs can wait in each workload pool's
	// queue beyond the ones workers already hold; < 1 means 4× the worker
	// count. A Spec arriving at a full queue is rejected with HTTP 429 and a
	// Retry-After header (admission control) instead of blocking the handler
	// goroutine — the client's retry/backoff (or the router's failover to a
	// replica) resolves the overload, not a pile of parked handlers.
	QueueDepth int
	// Store, when non-nil, is reported in /healthz (record counts). The
	// store must already be attached to the Runner via SetStore; the server
	// never writes it directly.
	Store *run.DiskStore
	// Pprof mounts net/http/pprof under /debug/pprof/ — CPU, heap, goroutine
	// and mutex profiles of the live serving process. Off by default: the
	// profile endpoints can observably stall a loaded process, so exposing
	// them is an operator's explicit choice (`c3iserve -pprof`).
	Pprof bool
	// Slowdown injects an artificial delay into every run-API request
	// (/v1/run and /v1/run/stream; health and metrics stay fast) — fault
	// injection for validating latency SLO tooling: a `c3iserve -slowdown
	// 250ms` server must fail the serve_latency benchgate family, which is
	// how the CI load job proves the gate actually gates. Zero in production.
	Slowdown time.Duration
}

// Server is an http.Handler serving the run API. Create with New; after the
// HTTP server has been shut down (drained), call Close to stop the worker
// pools.
type Server struct {
	runner   *run.Runner
	workers  int
	queue    int
	slowdown time.Duration
	metrics  *obs.Registry
	mux      *http.ServeMux

	mu     sync.RWMutex
	store  *run.DiskStore
	pools  map[string]chan task
	closed bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

// task is one Spec handed to a workload pool.
type task struct {
	ctx  context.Context
	spec run.Spec
	done chan taskResult
}

type taskResult struct {
	rec run.Record
	err error
}

// New builds a Server executing batches through runner. The server's request
// metrics land in the runner's registry, so GET /metrics (and the /healthz
// snapshot) carries both the serving tier's serve_* series and the run API's
// run_* series from one source of truth.
func New(runner *run.Runner, opts Options) *Server {
	workers := opts.WorkersPerWorkload
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.QueueDepth
	if queue < 1 {
		queue = 4 * workers
	}
	s := &Server{
		runner:   runner,
		workers:  workers,
		queue:    queue,
		slowdown: opts.Slowdown,
		metrics:  runner.Metrics(),
		store:    opts.Store,
		pools:    map[string]chan task{},
		quit:     make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(RunPath, s.handleRun)
	s.mux.HandleFunc(StreamPath, s.handleStream)
	s.mux.HandleFunc(HealthPath, s.handleHealth)
	s.mux.HandleFunc(MetricsPath, s.handleMetrics)
	if opts.Pprof {
		s.mux.HandleFunc(PprofPrefix, pprof.Index)
		s.mux.HandleFunc(PprofPrefix+"cmdline", pprof.Cmdline)
		s.mux.HandleFunc(PprofPrefix+"profile", pprof.Profile)
		s.mux.HandleFunc(PprofPrefix+"symbol", pprof.Symbol)
		s.mux.HandleFunc(PprofPrefix+"trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler, wrapping every endpoint in the request
// middleware: per-endpoint in-flight gauge, latency histogram, and a
// request counter labeled by status class.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	labels := obs.Labels{"path": endpointLabel(r.URL.Path)}
	if s.slowdown > 0 && (labels["path"] == RunPath || labels["path"] == StreamPath) {
		time.Sleep(s.slowdown) // injected fault; see Options.Slowdown
	}
	inflight := s.metrics.Gauge(MetricInflight, labels)
	inflight.Inc()
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	inflight.Dec()
	s.metrics.Histogram(MetricRequestSeconds, labels, obs.DefLatencyBuckets).
		Observe(time.Since(start).Seconds())
	s.metrics.Counter(MetricRequests,
		obs.Labels{"path": labels["path"], "code": statusClass(sw.status)}).Inc()
}

// endpointLabel folds a request path onto a bounded label set: the known
// endpoints by name, anything else to "other", so arbitrary request paths
// cannot grow unbounded metric series.
func endpointLabel(path string) string {
	switch path {
	case RunPath, StreamPath, HealthPath, MetricsPath:
		return path
	}
	if strings.HasPrefix(path, PprofPrefix) {
		return PprofPrefix
	}
	return "other"
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass folds a status code to its class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Close stops every workload pool. Close never closes the task channels
// themselves — a handler still dispatching past a drain deadline must get a
// per-spec "shut down" error, not a send-on-closed-channel panic — it
// signals a quit channel every worker and submission selects on. Workers
// finish the task they hold (the simulation is not preemptible) and exit;
// Close returns once they have. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// pool returns the workload's task channel, starting its workers on first
// use. Callers have already validated the workload against the registry, so
// pools exist only for real workloads — garbage requests cannot grow the
// pool map.
func (s *Server) pool(workload string) (chan task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server is shut down")
	}
	ch, ok := s.pools[workload]
	if !ok {
		ch = make(chan task, s.queue)
		s.pools[workload] = ch
		s.metrics.Gauge(MetricPoolWorkers, obs.Labels{"workload": workload}).Set(int64(s.workers))
		// The queue-depth gauge spans the window a Spec sits in the bounded
		// queue before a worker picks it up: sustained nonzero depth on
		// /metrics means this pool is saturated, and depth at capacity is
		// what turns into 429 rejections.
		depth := s.metrics.Gauge(MetricPoolQueueDepth, obs.Labels{"workload": workload})
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for {
					select {
					case <-s.quit:
						return
					case t := <-ch:
						depth.Dec()
						rec, err := s.runner.Run(t.ctx, t.spec)
						t.done <- taskResult{rec, err}
					}
				}
			}()
		}
	}
	return ch, nil
}

// errQueueFull is the admission-control rejection: the workload pool's
// bounded queue had no room for the Spec.
var errQueueFull = fmt.Errorf("serve: workload queue is full")

// dispatch hands one validated Spec to its workload pool without ever
// blocking: the pool's bounded queue either has room now or the Spec is
// rejected (errQueueFull) for the caller to turn into a 429. Results arrive
// on done (buffered, so the worker's send never blocks).
func (s *Server) dispatch(ctx context.Context, spec run.Spec, done chan taskResult) error {
	ch, err := s.pool(spec.Workload)
	if err != nil {
		return err
	}
	depth := s.metrics.Gauge(MetricPoolQueueDepth, obs.Labels{"workload": spec.Workload})
	depth.Inc()
	select {
	case ch <- task{ctx: ctx, spec: spec, done: done}:
		return nil
	default:
		depth.Dec()
		s.metrics.Counter(MetricRejected, obs.Labels{"workload": spec.Workload}).Inc()
		return errQueueFull
	}
}

// rejectOverload answers a full-queue dispatch with 429 + Retry-After —
// the admission-control contract the client's backoff and the router's
// failover are written against.
func rejectOverload(w http.ResponseWriter, spec run.Spec, index int) {
	w.Header().Set("Retry-After", "1")
	WriteJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error: fmt.Sprintf("workload %q pool queue is full (spec %d); retry later", spec.Workload, index),
	})
}

// collect waits for one dispatched task's result. During a shutdown the
// bounded queue may still hold tasks no worker will ever take, so waiting
// selects the quit signal too — preferring a result that raced it — and
// reports ok=false when the task was abandoned.
func (s *Server) collect(done chan taskResult) (taskResult, bool) {
	select {
	case res := <-done:
		return res, true
	case <-s.quit:
		select {
		case res := <-done:
			return res, true
		default:
			return taskResult{}, false
		}
	}
}

// DecodeBatch reads and decodes the Spec batch POSTed to /v1/run or
// /v1/run/stream — shared by the serving tier and the router, so both speak
// exactly the same wire dialect (method check, size bound, two-stage decode
// with positional element errors). On any failure it has already written the
// error response and reports ok=false.
func DecodeBatch(w http.ResponseWriter, r *http.Request) ([]run.Spec, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		WriteJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST a JSON array of run Specs"})
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBatchBytes+1))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("reading body: %v", err)})
		return nil, false
	}
	if len(body) > MaxBatchBytes {
		WriteJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("batch exceeds %d bytes", MaxBatchBytes)})
		return nil, false
	}
	// Decode the batch in two stages so one malformed element reports its
	// index instead of poisoning the whole body with a positionless error.
	var raw []json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		WriteJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("batch must be a JSON array of run Specs: %v", err)})
		return nil, false
	}
	if len(raw) == 0 {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch"})
		return nil, false
	}
	specs := make([]run.Spec, len(raw))
	decodeErrs := make([]string, len(raw))
	bad := false
	for i, msg := range raw {
		if err := json.Unmarshal(msg, &specs[i]); err != nil {
			decodeErrs[i] = fmt.Sprintf("spec %d: %v", i, err)
			bad = true
		}
	}
	if bad {
		WriteJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "malformed specs in batch", Errors: decodeErrs})
		return nil, false
	}
	return specs, true
}

// handleRun answers POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	specs, ok := DecodeBatch(w, r)
	if !ok {
		return
	}
	resp := BatchResponse{
		Records: make([]*run.Record, len(specs)),
		Errors:  make([]string, len(specs)),
	}
	results := make([]chan taskResult, len(specs))
	for i, spec := range specs {
		// Validate the workload before pooling: unknown workloads answer as
		// structured per-spec errors (the batch still returns), and never
		// spawn a pool.
		if _, err := suite.Lookup(spec.Workload); err != nil {
			resp.Errors[i] = err.Error()
			continue
		}
		done := make(chan taskResult, 1)
		switch err := s.dispatch(r.Context(), spec, done); {
		case err == nil:
			results[i] = done
		case errors.Is(err, errQueueFull):
			// Admission control: reject the whole batch rather than block
			// the handler on a saturated pool. Specs dispatched above ride
			// the request context, which cancels when this handler returns —
			// a rejected batch abandons its queued work instead of loading
			// the saturated pool further.
			rejectOverload(w, spec, i)
			return
		default:
			resp.Errors[i] = err.Error()
		}
	}
	for i, done := range results {
		if done == nil {
			continue
		}
		res, ok := s.collect(done)
		if !ok {
			resp.Errors[i] = "serve: server is shut down"
			continue
		}
		if res.err != nil {
			resp.Errors[i] = res.err.Error()
			continue
		}
		rec := res.rec
		resp.Records[i] = &rec
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleHealth answers GET /healthz: liveness, the runner's execution and
// store counters, the per-workload pool shape, and the full metrics
// snapshot. The store record count and pool map are read under the server's
// read lock, so health reporting observes a consistent view against
// concurrent pool starts without serializing health probes behind each
// other.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:       "ok",
		Executions:   s.runner.Executions(),
		StoreErrors:  s.runner.StoreErrors(),
		StoreRecords: -1,
		Pools:        map[string]int{},
	}
	s.mu.RLock()
	store := s.store
	for workload := range s.pools {
		h.Pools[workload] = s.workers
	}
	s.mu.RUnlock()
	if store != nil {
		h.StoreRecords = store.Len()
	}
	h.Metrics = s.metrics.Snapshot()
	WriteJSON(w, http.StatusOK, h)
}

// handleMetrics answers GET /metrics with the Prometheus text exposition of
// every run_* and serve_* series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// WriteJSON renders one JSON response body — shared by the serving tier and
// the router, so error and batch bodies are formatted identically everywhere.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the connection is gone; nothing to do.
	_ = enc.Encode(v)
}
