// Package serve exposes the run API over HTTP/JSON — the serving layer the
// Spec→Record separation was built for. A POST to /v1/run carries a batch of
// run.Spec values and returns positional run.Records with per-spec errors,
// executed through one shared run.Runner; /healthz reports liveness plus the
// runner's execution and store-failure counters, which is how a caller (or
// the CI smoke job) asserts that a repeated batch was served from cache
// rather than recomputed.
//
// Specs are dispatched with per-workload shard affinity: each workload gets
// its own bounded worker pool, so the goroutines executing, say, Terrain
// Masking Specs are the ones whose runner already holds that workload's
// memoized scenario suites warm, and a batch mixing workloads fans out
// across pools instead of serializing behind one queue. The Runner's caches
// are process-wide either way — affinity is a throughput and warmth
// property, not a correctness one.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"repro/internal/c3i/suite"
	"repro/internal/run"
)

// RunPath and HealthPath are the server's endpoints.
const (
	RunPath    = "/v1/run"
	HealthPath = "/healthz"
)

// MaxBatchBytes bounds a request body; a batch of Specs is small, so
// anything bigger is a mistake or abuse, not a workload.
const MaxBatchBytes = 8 << 20

// BatchResponse answers one Spec batch positionally: Records[i] and
// Errors[i] describe the i-th submitted Spec, and exactly one of them is set
// (a failed Spec has a null record and a non-empty error; a successful one
// the reverse). One bad Spec never fails its batch.
type BatchResponse struct {
	Records []*run.Record `json:"records"`
	Errors  []string      `json:"errors"`
}

// ErrorResponse is the body of a non-200 answer. For a 400 caused by
// per-element decode failures, Errors is positional over the submitted batch
// (empty strings for the elements that were fine).
type ErrorResponse struct {
	Error  string   `json:"error"`
	Errors []string `json:"errors,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	Status string `json:"status"`
	// Executions is the runner's engine-run counter: unchanged across a
	// repeated batch means the batch was served from cache or store.
	Executions int64 `json:"executions"`
	// StoreErrors counts failed record-store writes (persistence degraded).
	StoreErrors int64 `json:"store_errors"`
	// StoreRecords is the disk store's current record count, -1 when the
	// server runs without a persistent store.
	StoreRecords int `json:"store_records"`
}

// Options configures a Server.
type Options struct {
	// WorkersPerWorkload bounds each workload's executor pool; < 1 means
	// GOMAXPROCS.
	WorkersPerWorkload int
	// Store, when non-nil, is reported in /healthz (record counts). The
	// store must already be attached to the Runner via SetStore; the server
	// never writes it directly.
	Store *run.DiskStore
}

// Server is an http.Handler serving the run API. Create with New; after the
// HTTP server has been shut down (drained), call Close to stop the worker
// pools.
type Server struct {
	runner  *run.Runner
	workers int
	store   *run.DiskStore
	mux     *http.ServeMux

	mu     sync.Mutex
	pools  map[string]chan task
	closed bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

// task is one Spec handed to a workload pool.
type task struct {
	ctx  context.Context
	spec run.Spec
	done chan taskResult
}

type taskResult struct {
	rec run.Record
	err error
}

// New builds a Server executing batches through runner.
func New(runner *run.Runner, opts Options) *Server {
	workers := opts.WorkersPerWorkload
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		runner:  runner,
		workers: workers,
		store:   opts.Store,
		pools:   map[string]chan task{},
		quit:    make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(RunPath, s.handleRun)
	s.mux.HandleFunc(HealthPath, s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops every workload pool. Close never closes the task channels
// themselves — a handler still dispatching past a drain deadline must get a
// per-spec "shut down" error, not a send-on-closed-channel panic — it
// signals a quit channel every worker and submission selects on. Workers
// finish the task they hold (the simulation is not preemptible) and exit;
// Close returns once they have. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// pool returns the workload's task channel, starting its workers on first
// use. Callers have already validated the workload against the registry, so
// pools exist only for real workloads — garbage requests cannot grow the
// pool map.
func (s *Server) pool(workload string) (chan task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server is shut down")
	}
	ch, ok := s.pools[workload]
	if !ok {
		ch = make(chan task)
		s.pools[workload] = ch
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for {
					select {
					case <-s.quit:
						return
					case t := <-ch:
						rec, err := s.runner.Run(t.ctx, t.spec)
						t.done <- taskResult{rec, err}
					}
				}
			}()
		}
	}
	return ch, nil
}

// handleRun answers POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST a JSON array of run Specs"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBatchBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if len(body) > MaxBatchBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("batch exceeds %d bytes", MaxBatchBytes)})
		return
	}
	// Decode the batch in two stages so one malformed element reports its
	// index instead of poisoning the whole body with a positionless error.
	var raw []json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("batch must be a JSON array of run Specs: %v", err)})
		return
	}
	if len(raw) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch"})
		return
	}
	specs := make([]run.Spec, len(raw))
	decodeErrs := make([]string, len(raw))
	bad := false
	for i, msg := range raw {
		if err := json.Unmarshal(msg, &specs[i]); err != nil {
			decodeErrs[i] = fmt.Sprintf("spec %d: %v", i, err)
			bad = true
		}
	}
	if bad {
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "malformed specs in batch", Errors: decodeErrs})
		return
	}

	resp := BatchResponse{
		Records: make([]*run.Record, len(specs)),
		Errors:  make([]string, len(specs)),
	}
	results := make([]chan taskResult, len(specs))
	for i, spec := range specs {
		// Validate the workload before pooling: unknown workloads answer as
		// structured per-spec errors (the batch still returns), and never
		// spawn a pool.
		if _, err := suite.Lookup(spec.Workload); err != nil {
			resp.Errors[i] = err.Error()
			continue
		}
		ch, err := s.pool(spec.Workload)
		if err != nil {
			resp.Errors[i] = err.Error()
			continue
		}
		done := make(chan taskResult, 1)
		results[i] = done
		select {
		case ch <- task{ctx: r.Context(), spec: spec, done: done}:
			// A worker holds the task now; its result send is buffered, so
			// collection below cannot deadlock even if the server quits.
		case <-r.Context().Done():
			results[i] = nil
			resp.Errors[i] = r.Context().Err().Error()
		case <-s.quit:
			results[i] = nil
			resp.Errors[i] = "serve: server is shut down"
		}
	}
	for i, done := range results {
		if done == nil {
			continue
		}
		res := <-done
		if res.err != nil {
			resp.Errors[i] = res.err.Error()
			continue
		}
		rec := res.rec
		resp.Records[i] = &rec
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth answers GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:       "ok",
		Executions:   s.runner.Executions(),
		StoreErrors:  s.runner.StoreErrors(),
		StoreRecords: -1,
	}
	if s.store != nil {
		h.StoreRecords = s.store.Len()
	}
	writeJSON(w, http.StatusOK, h)
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the connection is gone; nothing to do.
	_ = enc.Encode(v)
}
