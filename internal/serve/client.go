package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/run"
)

// Client-side metric names, published into Client.Metrics when a registry is
// attached (c3ibench -remote attaches the shared experiments registry, so
// -stats snapshots carry them; the router attaches its own).
const (
	// MetricClientAttempts counts every HTTP attempt a batch POST made,
	// labeled {path=...} — attempts minus requests is the retry pressure.
	MetricClientAttempts = "serve_client_attempts_total"
	// MetricClientRetries counts only the re-attempts, labeled {path=...,
	// reason="transport"|"status"}.
	MetricClientRetries = "serve_client_retries_total"
)

// Retry defaults: batch POSTs are idempotent (Specs are deterministic and
// cached server-side), so transient transport errors, 5xx and 429 are worth
// a few capped, jittered backoff rounds before giving up.
const (
	DefaultRetries      = 3
	DefaultRetryBackoff = 100 * time.Millisecond
	maxRetryBackoff     = 3 * time.Second
	maxRetryAfter       = 5 * time.Second
)

// Client executes Specs against a c3iserve (or c3irouter) endpoint. It
// implements run.Executor, so anything written against that interface — the
// experiment tables via `c3ibench -remote`, most usefully — runs remotely
// unchanged, and the Records that come back are the same bytes the server
// computed (same Key, ModelSeconds, Checksum: floats and checksums survive
// the JSON round trip exactly).
type Client struct {
	// Addr is the server base URL ("http://host:port").
	Addr string
	// HTTP overrides the transport; nil means a default client honoring
	// Timeout.
	HTTP *http.Client
	// Timeout bounds each whole request (connect through body read) when
	// HTTP is nil. The zero value means no timeout — deliberate, not an
	// oversight: a cold paper-scale sweep legitimately holds one batch
	// request open for minutes, so callers opt in to a bound rather than
	// having long experiments severed by a default.
	Timeout time.Duration
	// Retries bounds how many times an idempotent batch POST is re-attempted
	// after a transient transport error, a 5xx, or a 429 (admission
	// control). Retrying is safe because Specs are deterministic and the
	// server deduplicates: a retried Spec is served from cache, never
	// recomputed. 0 means DefaultRetries; negative disables retries (the
	// router does this — its failover to a replica IS the retry).
	Retries int
	// RetryBackoff is the first retry's backoff; it doubles per attempt
	// (capped) with up to 50% added jitter, and a server Retry-After header
	// is honored when longer. 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Metrics, when non-nil, receives the client_* attempt/retry counters.
	Metrics *obs.Registry
}

// The Client is the remote implementation of both faces of the run API:
// batch (Executor, via Run/RunAll) and stream (StreamExecutor, via
// RunStream) — consumers pick a transport through the interfaces, never a
// concrete client method.
var (
	_ run.Executor       = (*Client)(nil)
	_ run.StreamExecutor = (*Client)(nil)
)

// StatusError is the typed error RunBatch and RunStream return when the
// server answered with a non-200 status (after retries are exhausted, for
// retryable ones). Callers that care which status — the load harness counts
// 429 admission rejections separately from real failures — unwrap it with
// errors.As instead of matching message text.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Status is the full status line ("429 Too Many Requests").
	Status string
	// Msg is the server's error body, when it carried one.
	Msg string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s: %s", e.Status, e.Msg)
	}
	return e.Status
}

// statusError builds the StatusError for a non-200 response whose body has
// already been read.
func statusError(resp *http.Response, body []byte) *StatusError {
	se := &StatusError{Code: resp.StatusCode, Status: resp.Status}
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		se.Msg = er.Error
	} else if trimmed := bytes.TrimSpace(body); len(trimmed) > 0 {
		se.Msg = string(trimmed)
	}
	return se
}

// httpClient resolves the client every request uses: an explicit HTTP
// override wins, otherwise a client bounded by Timeout (the shared
// http.DefaultClient when no timeout is asked for).
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if c.Timeout > 0 {
		return &http.Client{Timeout: c.Timeout}
	}
	return http.DefaultClient
}

// retries resolves the Retries knob (0 = default, negative = none).
func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return DefaultRetries
	}
	return c.Retries
}

// count increments a client metric when a registry is attached.
func (c *Client) count(name string, labels obs.Labels) {
	if c.Metrics != nil {
		c.Metrics.Counter(name, labels).Inc()
	}
}

// retryableStatus reports whether a response status is worth re-attempting:
// server-side trouble (5xx) or admission-control pushback (429).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// retryDelay computes the next backoff: exponential from base with up to 50%
// jitter, capped, and stretched to a 429's Retry-After when the server asked
// for longer (itself capped — a server cannot park a client indefinitely).
func retryDelay(base time.Duration, attempt int, retryAfter string) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if ra, ok := retryAfterDelay(retryAfter, time.Now()); ok && ra > d {
		d = ra
	}
	return d
}

// retryAfterDelay parses a Retry-After header value into a wait duration.
// RFC 9110 §10.2.3 allows two forms: a non-negative delta-seconds integer,
// or an HTTP-date (any of the three formats http.ParseTime accepts), which
// is resolved against now. The result is capped at maxRetryAfter; a date in
// the past yields a zero wait. Unparseable values report ok=false and are
// ignored by the retry policy — a garbled header must not stall the client.
func retryAfterDelay(retryAfter string, now time.Time) (time.Duration, bool) {
	if retryAfter == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.Atoi(retryAfter); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(retryAfter); err == nil {
		d = at.Sub(now)
		if d < 0 {
			d = 0
		}
	} else {
		return 0, false
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// post issues one idempotent batch POST with the retry policy. It returns
// the first non-retryable response, the final retryable response once
// attempts are exhausted, or the final transport error; the caller still
// interprets the response status.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	base := c.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	max := c.retries()
	labels := obs.Labels{"path": path}
	for attempt := 0; ; attempt++ {
		c.count(MetricClientAttempts, labels)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := c.httpClient().Do(req)
		if rerr == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		// Out of attempts (or the context is gone): hand back whatever this
		// attempt produced.
		if attempt >= max || ctx.Err() != nil {
			return resp, rerr
		}
		reason, retryAfter := "transport", ""
		if rerr == nil {
			reason = "status"
			retryAfter = resp.Header.Get("Retry-After")
			// Drain so the connection is reusable for the retry.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		c.count(MetricClientRetries, obs.Labels{"path": path, "reason": reason})
		select {
		case <-time.After(retryDelay(base, attempt, retryAfter)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Run executes one Spec remotely (a batch of one).
func (c *Client) Run(ctx context.Context, spec run.Spec) (run.Record, error) {
	recs, err := c.RunAll(ctx, []run.Spec{spec})
	if err != nil {
		return run.Record{}, err
	}
	return recs[0], nil
}

// RunBatch executes a Spec batch remotely and returns the server's
// positional response verbatim: Records[i]/Errors[i] describe specs[i], with
// failed specs left as null records. The error covers transport and protocol
// problems only — per-spec failures live in the response. Transient
// transport errors, 5xx and 429 are retried per the Client's retry policy
// before any error is reported.
func (c *Client) RunBatch(ctx context.Context, specs []run.Spec) (BatchResponse, error) {
	body, err := json.Marshal(specs)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: encoding batch: %w", err)
	}
	resp, err := c.post(ctx, RunPath, body)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return BatchResponse{}, fmt.Errorf("serve: %w", statusError(resp, buf))
	}
	var br BatchResponse
	if err := json.Unmarshal(buf, &br); err != nil {
		return BatchResponse{}, fmt.Errorf("serve: decoding response: %w", err)
	}
	if len(br.Records) != len(specs) || len(br.Errors) != len(specs) {
		return BatchResponse{}, fmt.Errorf("serve: response not positional: %d records / %d errors for %d specs",
			len(br.Records), len(br.Errors), len(specs))
	}
	return br, nil
}

// RunStream executes a Spec batch via POST /v1/run/stream, invoking fn once
// per StreamEvent as each line arrives — Records stream in completion order
// while the sweep is still running. The retry policy applies only up to the
// response header (a stream that dies mid-body surfaces as an error: the
// caller decides whether re-submitting the incomplete remainder is worth it;
// the router's failover does exactly that). The returned error covers
// transport and protocol problems; per-spec failures arrive as error events.
func (c *Client) RunStream(ctx context.Context, specs []run.Spec, fn func(StreamEvent)) error {
	body, err := json.Marshal(specs)
	if err != nil {
		return fmt.Errorf("serve: encoding batch: %w", err)
	}
	resp, err := c.post(ctx, StreamPath, body)
	if err != nil {
		return fmt.Errorf("serve: %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return fmt.Errorf("serve: %w", statusError(resp, buf))
	}
	seen := make([]bool, len(specs))
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("serve: decoding stream line %d: %w", events, err)
		}
		if ev.Index < 0 || ev.Index >= len(specs) {
			return fmt.Errorf("serve: stream event index %d out of range for %d specs", ev.Index, len(specs))
		}
		if seen[ev.Index] {
			return fmt.Errorf("serve: stream delivered spec %d twice", ev.Index)
		}
		seen[ev.Index] = true
		events++
		fn(ev)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: reading stream: %w", err)
	}
	if events != len(specs) {
		return fmt.Errorf("serve: stream ended after %d of %d specs", events, len(specs))
	}
	return nil
}

// RunAll executes a Spec batch remotely and returns records positionally,
// mirroring run.Runner.RunAll: the returned error joins every per-spec
// failure, and successful entries are valid regardless.
func (c *Client) RunAll(ctx context.Context, specs []run.Spec) ([]run.Record, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	br, err := c.RunBatch(ctx, specs)
	if err != nil {
		return nil, err
	}
	recs := make([]run.Record, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		switch {
		case br.Errors[i] != "":
			errs[i] = fmt.Errorf("spec %d (%s): %s", i, specs[i].Key(), br.Errors[i])
		case br.Records[i] == nil:
			errs[i] = fmt.Errorf("spec %d (%s): server returned neither record nor error", i, specs[i].Key())
		default:
			recs[i] = *br.Records[i]
		}
	}
	return recs, errors.Join(errs...)
}

// Healthz fetches the server's health counters. Probes are not retried —
// health checking wants the current truth, not an eventually successful one.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Addr+HealthPath, nil)
	if err != nil {
		return Health{}, fmt.Errorf("serve: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("serve: %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("serve: decoding health: %w", err)
	}
	return h, nil
}
