package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/run"
)

// Client executes Specs against a c3iserve endpoint. It implements
// run.Executor, so anything written against that interface — the experiment
// tables via `c3ibench -remote`, most usefully — runs remotely unchanged,
// and the Records that come back are the same bytes the server computed
// (same Key, ModelSeconds, Checksum: floats and checksums survive the JSON
// round trip exactly).
type Client struct {
	// Addr is the server base URL ("http://host:port").
	Addr string
	// HTTP overrides the transport; nil means a default client honoring
	// Timeout.
	HTTP *http.Client
	// Timeout bounds each whole request (connect through body read) when
	// HTTP is nil. The zero value means no timeout — deliberate, not an
	// oversight: a cold paper-scale sweep legitimately holds one batch
	// request open for minutes, so callers opt in to a bound rather than
	// having long experiments severed by a default.
	Timeout time.Duration
}

// httpClient resolves the client every request uses: an explicit HTTP
// override wins, otherwise a client bounded by Timeout (the shared
// http.DefaultClient when no timeout is asked for).
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if c.Timeout > 0 {
		return &http.Client{Timeout: c.Timeout}
	}
	return http.DefaultClient
}

// Run executes one Spec remotely (a batch of one).
func (c *Client) Run(ctx context.Context, spec run.Spec) (run.Record, error) {
	recs, err := c.RunAll(ctx, []run.Spec{spec})
	if err != nil {
		return run.Record{}, err
	}
	return recs[0], nil
}

// RunBatch executes a Spec batch remotely and returns the server's
// positional response verbatim: Records[i]/Errors[i] describe specs[i], with
// failed specs left as null records. The error covers transport and protocol
// problems only — per-spec failures live in the response.
func (c *Client) RunBatch(ctx context.Context, specs []run.Spec) (BatchResponse, error) {
	body, err := json.Marshal(specs)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: encoding batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Addr+RunPath, bytes.NewReader(body))
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return BatchResponse{}, fmt.Errorf("serve: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if json.Unmarshal(buf, &er) == nil && er.Error != "" {
			return BatchResponse{}, fmt.Errorf("serve: %s: %s", resp.Status, er.Error)
		}
		return BatchResponse{}, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(buf))
	}
	var br BatchResponse
	if err := json.Unmarshal(buf, &br); err != nil {
		return BatchResponse{}, fmt.Errorf("serve: decoding response: %w", err)
	}
	if len(br.Records) != len(specs) || len(br.Errors) != len(specs) {
		return BatchResponse{}, fmt.Errorf("serve: response not positional: %d records / %d errors for %d specs",
			len(br.Records), len(br.Errors), len(specs))
	}
	return br, nil
}

// RunAll executes a Spec batch remotely and returns records positionally,
// mirroring run.Runner.RunAll: the returned error joins every per-spec
// failure, and successful entries are valid regardless.
func (c *Client) RunAll(ctx context.Context, specs []run.Spec) ([]run.Record, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	br, err := c.RunBatch(ctx, specs)
	if err != nil {
		return nil, err
	}
	recs := make([]run.Record, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		switch {
		case br.Errors[i] != "":
			errs[i] = fmt.Errorf("spec %d (%s): %s", i, specs[i].Key(), br.Errors[i])
		case br.Records[i] == nil:
			errs[i] = fmt.Errorf("spec %d (%s): server returned neither record nor error", i, specs[i].Key())
		default:
			recs[i] = *br.Records[i]
		}
	}
	return recs, errors.Join(errs...)
}

// Healthz fetches the server's health counters.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Addr+HealthPath, nil)
	if err != nil {
		return Health{}, fmt.Errorf("serve: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("serve: %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("serve: decoding health: %w", err)
	}
	return h, nil
}
