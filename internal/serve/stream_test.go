package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/serve"
)

// A workload whose runs block on a gate, so the admission-control tests can
// hold a worker busy and fill the queue deterministically.
var (
	gateStarted = make(chan struct{}, 16)
	gateRelease = make(chan struct{})
)

func init() {
	suite.MustRegister(&suite.Workload{
		Name: "serve-gate", Key: "sg", FileTag: "sg", Title: "Serve Gate Hook",
		Order: 99, PaperUnits: 1, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Generate: func(scale float64) []suite.Scenario {
			return []suite.Scenario{gateScenario{}}
		},
		Variants: []*suite.Variant{{
			Name: "sequential", Style: suite.Sequential,
			Defaults: suite.Params{"work": 100},
			Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
				gateStarted <- struct{}{}
				<-gateRelease
				t.Compute(int64(p["work"]))
				return suite.Output{Checksum: uint64(p["work"])}
			},
		}},
	})
}

type gateScenario struct{}

func (gateScenario) ScenarioName() string { return "sg-1" }
func (gateScenario) Units() int           { return 1 }
func (gateScenario) Warm()                {}

func gateSpec(work int) run.Spec {
	return run.Spec{Workload: "serve-gate", Variant: "sequential", Platform: "alpha", Procs: 1,
		Params: suite.Params{"work": work}}
}

func TestServeStreamMatchesBatch(t *testing.T) {
	// /v1/run/stream delivers every spec exactly once (the client verifies
	// that), and the streamed records are the batch endpoint's records.
	ts, runner, client := newServer(t, "")
	ctx := context.Background()
	specs := []run.Spec{hookSpec(2100), hookSpec(2200), hookSpec(2300),
		{Workload: "no-such-workload", Variant: "x", Platform: "alpha", Procs: 1}}

	got := make([]*run.Record, len(specs))
	var streamErr string
	err := client.RunStream(ctx, specs, func(ev serve.StreamEvent) {
		if ev.Error != "" {
			streamErr = ev.Error
			return
		}
		got[ev.Index] = ev.Record
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(streamErr, "no-such-workload") {
		t.Errorf("bad spec's stream error = %q", streamErr)
	}
	br, err := client.RunBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got[i] == nil {
			t.Fatalf("spec %d never streamed", i)
		}
		sb, _ := json.Marshal(got[i])
		bb, _ := json.Marshal(br.Records[i])
		if !bytes.Equal(sb, bb) {
			t.Errorf("spec %d: streamed record differs from batch record:\n  stream %s\n  batch  %s", i, sb, bb)
		}
	}
	if got := runner.Executions(); got != 3 {
		t.Errorf("streaming re-executed cached specs: %d executions", got)
	}

	// The raw response is NDJSON: one JSON object per non-empty line, with
	// the declared content type. And the endpoint label regression: the
	// request counters must classify /v1/run/stream, not fold it into
	// "other".
	body, _ := json.Marshal(specs[:2])
	resp, err := ts.Client().Post(ts.URL+serve.StreamPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	lines := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev serve.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("stream line %q is not a JSON event: %v", line, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("stream wrote %d events for 2 specs", lines)
	}
	mresp, err := ts.Client().Get(ts.URL + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbuf, _ := io.ReadAll(mresp.Body)
	if want := `serve_requests_total{code="2xx",path="/v1/run/stream"}`; !strings.Contains(string(mbuf), want) {
		t.Errorf("metrics missing %q — stream requests folded into \"other\":\n%s", want, mbuf)
	}

	// GET is rejected like the batch endpoint.
	gresp, err := ts.Client().Get(ts.URL + serve.StreamPath)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET %s: status %d, want 405", serve.StreamPath, gresp.StatusCode)
	}
}

func TestServeAdmissionControl(t *testing.T) {
	// One worker, queue depth one: with a run blocking the worker and one
	// spec parked in the queue, the next spec is rejected with 429 and a
	// Retry-After — the listener never blocks on a full pool.
	runner := run.NewRunner(0)
	srv := serve.New(runner, serve.Options{WorkersPerWorkload: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := &serve.Client{Addr: ts.URL, HTTP: ts.Client(), Retries: -1}

	// Occupy the worker.
	firstDone := make(chan error, 1)
	go func() {
		_, err := client.RunAll(context.Background(), []run.Spec{gateSpec(1)})
		firstDone <- err
	}()
	select {
	case <-gateStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("gated run never started")
	}

	// Fill the queue (spec 2) and overflow it (spec 3). Raw POST: a retrying
	// client would mask the 429.
	body, _ := json.Marshal([]run.Spec{gateSpec(2), gateSpec(3)})
	resp, err := ts.Client().Post(ts.URL+serve.RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow batch: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	var er serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || !strings.Contains(er.Error, "queue is full") {
		t.Errorf("429 body = %+v (%v), want a queue-is-full error", er, err)
	}

	// Release the gate: the occupied worker and the queued spec finish.
	close(gateRelease)
	if err := <-firstDone; err != nil {
		t.Fatalf("gated batch failed: %v", err)
	}

	// The rejected request's queued spec was abandoned with its context: the
	// 429 cost zero engine executions beyond the gated batch's own.
	if got := runner.Executions(); got != 1 {
		t.Errorf("rejected batch executed anyway: %d executions, want 1", got)
	}
	mresp, err := ts.Client().Get(ts.URL + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbuf, _ := io.ReadAll(mresp.Body)
	if want := `serve_rejected_total{workload="serve-gate"} 1`; !strings.Contains(string(mbuf), want) {
		t.Errorf("metrics missing %q:\n%s", want, mbuf)
	}
}

func TestClientRetriesStatusAndTransport(t *testing.T) {
	// Admission pushback resolves through the retry policy: two 429s then a
	// 200 looks like one successful request to the caller, with the attempts
	// on the books.
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte(`{"records":[null],"errors":["boom"]}`))
	}))
	defer stub.Close()
	reg := obs.NewRegistry()
	c := &serve.Client{Addr: stub.URL, RetryBackoff: time.Millisecond, Metrics: reg}
	br, err := c.RunBatch(context.Background(), []run.Spec{hookSpec(2400)})
	if err != nil {
		t.Fatalf("retryable 429s surfaced as an error: %v", err)
	}
	if br.Errors[0] != "boom" {
		t.Errorf("response = %+v", br)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	assertCounter(t, reg, serve.MetricClientAttempts, obs.Labels{"path": serve.RunPath}, 3)
	assertCounter(t, reg, serve.MetricClientRetries, obs.Labels{"path": serve.RunPath, "reason": "status"}, 2)

	// Transport errors retry too — and a dead server is still an error once
	// attempts run out.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	reg2 := obs.NewRegistry()
	c2 := &serve.Client{Addr: dead.URL, Retries: 1, RetryBackoff: time.Millisecond, Metrics: reg2}
	if _, err := c2.RunBatch(context.Background(), []run.Spec{hookSpec(2500)}); err == nil {
		t.Fatal("dead server did not error")
	}
	assertCounter(t, reg2, serve.MetricClientAttempts, obs.Labels{"path": serve.RunPath}, 2)
	assertCounter(t, reg2, serve.MetricClientRetries, obs.Labels{"path": serve.RunPath, "reason": "transport"}, 1)

	// 4xx other than 429 is the caller's bug, not transience: no retries.
	var badCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	}))
	defer bad.Close()
	c3 := &serve.Client{Addr: bad.URL, RetryBackoff: time.Millisecond}
	if _, err := c3.RunBatch(context.Background(), []run.Spec{hookSpec(2600)}); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if got := badCalls.Load(); got != 1 {
		t.Errorf("client retried a 400: %d attempts", got)
	}
}

// assertCounter checks one counter series in a registry snapshot.
func assertCounter(t *testing.T, reg *obs.Registry, name string, labels obs.Labels, want int64) {
	t.Helper()
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if c.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if c.Labels[k] != v {
				match = false
			}
		}
		if match {
			if c.Value != want {
				t.Errorf("%s%v = %d, want %d", name, labels, c.Value, want)
			}
			return
		}
	}
	t.Errorf("counter %s%v not found in snapshot", name, labels)
}
