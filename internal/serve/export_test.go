package serve

import "net/http"

// HTTPClientForTest exposes httpClient to the regression tests: which
// transport a client configuration resolves to is part of the Client
// contract (explicit override > Timeout > shared default).
func (c *Client) HTTPClientForTest() *http.Client { return c.httpClient() }
