package serve

import (
	"net/http"
	"time"
)

// HTTPClientForTest exposes httpClient to the regression tests: which
// transport a client configuration resolves to is part of the Client
// contract (explicit override > Timeout > shared default).
func (c *Client) HTTPClientForTest() *http.Client { return c.httpClient() }

// RetryDelayForTest exposes the backoff computation so its bounds (doubling,
// cap, jitter envelope, Retry-After stretch) are table-testable.
func RetryDelayForTest(base time.Duration, attempt int, retryAfter string) time.Duration {
	return retryDelay(base, attempt, retryAfter)
}

// RetryAfterDelayForTest exposes the Retry-After parser with an injectable
// clock, so the HTTP-date form is testable deterministically.
func RetryAfterDelayForTest(retryAfter string, now time.Time) (time.Duration, bool) {
	return retryAfterDelay(retryAfter, now)
}

// The retry policy's caps, exported for the bounds tests.
const (
	MaxRetryBackoffForTest = maxRetryBackoff
	MaxRetryAfterForTest   = maxRetryAfter
)
