package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/serve"
)

// TestRetryDelayBounds pins the backoff envelope: the pre-jitter delay
// doubles per attempt from the base until the cap, and jitter adds at most
// 50% on top. The jitter is random, so each case is sampled repeatedly and
// asserted against its [deterministic, deterministic*1.5] envelope.
func TestRetryDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	cases := []struct {
		name    string
		attempt int
		want    time.Duration // deterministic pre-jitter delay
	}{
		{"first retry", 0, 100 * time.Millisecond},
		{"doubles", 1, 200 * time.Millisecond},
		{"doubles again", 2, 400 * time.Millisecond},
		{"keeps doubling", 4, 1600 * time.Millisecond},
		{"capped", 5, serve.MaxRetryBackoffForTest}, // 3200ms would exceed the 3s cap
		{"stays capped", 20, serve.MaxRetryBackoffForTest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				d := serve.RetryDelayForTest(base, tc.attempt, "")
				lo, hi := tc.want, tc.want+tc.want/2
				if d < lo || d > hi {
					t.Fatalf("attempt %d: delay %v outside [%v, %v]", tc.attempt, d, lo, hi)
				}
			}
		})
	}
}

// TestRetryDelayRetryAfterStretch pins the header interaction: a Retry-After
// longer than the jittered backoff stretches the delay to it, but never past
// the maxRetryAfter cap, and a shorter (or garbled) one changes nothing.
func TestRetryDelayRetryAfterStretch(t *testing.T) {
	base := 10 * time.Millisecond
	// "4" seconds dwarfs a 10–15ms jittered backoff: the delay must be
	// stretched to exactly 4s.
	if d := serve.RetryDelayForTest(base, 0, "4"); d != 4*time.Second {
		t.Errorf("Retry-After 4 = %v, want 4s", d)
	}
	// "3600" is capped: a server cannot park a client for an hour.
	if d := serve.RetryDelayForTest(base, 0, "3600"); d != serve.MaxRetryAfterForTest {
		t.Errorf("Retry-After 3600 = %v, want the %v cap", d, serve.MaxRetryAfterForTest)
	}
	// A Retry-After below the backoff leaves the backoff envelope intact.
	if d := serve.RetryDelayForTest(time.Second, 3, "1"); d < 3*time.Second {
		t.Errorf("short Retry-After shrank the backoff to %v", d)
	}
	// Garbage is ignored, not fatal and not a stall.
	for _, garbled := range []string{"soon", "-5", "1.5", "Tue, 29 Feb"} {
		if d := serve.RetryDelayForTest(base, 0, garbled); d > 15*time.Millisecond {
			t.Errorf("garbled Retry-After %q stretched the delay to %v", garbled, d)
		}
	}
}

// TestRetryAfterDelayForms table-tests the RFC 9110 header parser over both
// allowed forms — delta-seconds and HTTP-date — against a fixed clock.
func TestRetryAfterDelayForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"empty", "", 0, false},
		{"delta seconds", "2", 2 * time.Second, true},
		{"delta zero", "0", 0, true},
		{"delta negative", "-1", 0, false},
		{"delta capped", "120", serve.MaxRetryAfterForTest, true},
		{"http date ahead", now.Add(3 * time.Second).Format(http.TimeFormat), 3 * time.Second, true},
		{"http date capped", now.Add(time.Hour).Format(http.TimeFormat), serve.MaxRetryAfterForTest, true},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
		// RFC 9110 keeps the two obsolete date formats parseable.
		{"rfc850 date", now.Add(4 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 4 * time.Second, true},
		{"asctime date", now.Add(4 * time.Second).Format(time.ANSIC), 4 * time.Second, true},
		{"garbage", "in a bit", 0, false},
		{"float", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, ok := serve.RetryAfterDelayForTest(tc.value, now)
			if ok != tc.ok || d != tc.want {
				t.Errorf("retryAfterDelay(%q) = (%v, %v), want (%v, %v)", tc.value, d, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestClientHonorsRetryAfterDate exercises the date form end to end: a 429
// carrying an HTTP-date Retry-After, then a 200. The client must wait at
// least roughly the advertised second before the retry that succeeds.
func TestClientHonorsRetryAfterDate(t *testing.T) {
	var times []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now())
		if len(times) == 1 {
			// +1.5s so the whole-second truncation of the date format still
			// leaves the advertised time ≥ 1s ahead of now.
			w.Header().Set("Retry-After", time.Now().Add(1500*time.Millisecond).UTC().Format(http.TimeFormat))
			serve.WriteJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "busy"})
			return
		}
		serve.WriteJSON(w, http.StatusOK, serve.BatchResponse{
			Records: []*run.Record{nil}, Errors: []string{"nope"},
		})
	}))
	defer ts.Close()

	c := &serve.Client{Addr: ts.URL, Retries: 1, RetryBackoff: time.Millisecond}
	if _, err := c.RunBatch(context.Background(), []run.Spec{{Workload: "x"}}); err != nil {
		t.Fatalf("RunBatch after retry: %v", err)
	}
	if len(times) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(times))
	}
	// The advertised date is ≥ 1s ahead even after its whole-second
	// truncation; a wait well past the millisecond backoff proves the date
	// was parsed rather than ignored. 700ms leaves scheduling slack.
	if gap := times[1].Sub(times[0]); gap < 700*time.Millisecond {
		t.Errorf("retry came after %v; the HTTP-date Retry-After was ignored", gap)
	}
}

// TestClientStatusError pins the typed error contract: a non-200 the retry
// policy gave up on unwraps to a StatusError carrying the status code, so
// consumers (the load harness's 429 accounting) never match message text.
func TestClientStatusError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		serve.WriteJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "queue full"})
	}))
	defer ts.Close()

	c := &serve.Client{Addr: ts.URL, Retries: -1}
	_, err := c.RunBatch(context.Background(), []run.Spec{{Workload: "x"}})
	var se *serve.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("RunBatch error %v does not unwrap to *StatusError", err)
	}
	if se.Code != http.StatusTooManyRequests || se.Msg != "queue full" {
		t.Errorf("StatusError = %+v, want code 429 with the server's message", se)
	}
	if err := c.RunStream(context.Background(), []run.Spec{{Workload: "x"}}, func(run.StreamEvent) {}); !errors.As(err, &se) {
		t.Errorf("RunStream error %v does not unwrap to *StatusError", err)
	} else if se.Code != http.StatusTooManyRequests {
		t.Errorf("RunStream StatusError code = %d, want 429", se.Code)
	}
}
