package experiments

// The paper's published measurements, used as the reference columns of every
// reproduced table and figure. All times are seconds, totals over the five
// benchmark input scenarios.

// PaperTable2 — sequential Threat Analysis without parallelization.
var PaperTable2 = map[string]float64{
	"Alpha":       187,
	"Pentium Pro": 458,
	"Exemplar":    343,
	"Tera":        2584,
}

// PaperTable3 — multithreaded Threat Analysis on the quad Pentium Pro.
// Index 0 is the sequential program; indices 1–4 are processor counts.
var PaperTable3 = map[int]float64{0: 458, 1: 466, 2: 233, 3: 157, 4: 117}

// PaperTable4 — multithreaded Threat Analysis on the 16-processor Exemplar.
var PaperTable4 = map[int]float64{
	0: 343, 1: 343, 2: 172, 3: 115, 4: 87, 5: 69, 6: 58, 7: 50, 8: 43,
	9: 39, 10: 35, 11: 32, 12: 29, 13: 27, 14: 26, 15: 24, 16: 22,
}

// PaperTable5 — multithreaded Threat Analysis on the Tera MTA (256 chunks).
var PaperTable5 = map[int]float64{1: 82, 2: 46}

// PaperTable6 — Threat Analysis on the dual-processor Tera MTA versus the
// number of chunks.
var PaperTable6 = map[int]float64{8: 386, 16: 197, 32: 104, 64: 61, 128: 46, 256: 46}

// PaperTable8 — sequential Terrain Masking without parallelization.
var PaperTable8 = map[string]float64{
	"Alpha":       158,
	"Pentium Pro": 197,
	"Exemplar":    228,
	"Tera":        978,
}

// PaperTable9 — coarse-grained Terrain Masking on the quad Pentium Pro.
var PaperTable9 = map[int]float64{0: 197, 1: 172, 2: 97, 3: 74, 4: 65}

// PaperTable10 — coarse-grained Terrain Masking on the 16-processor
// Exemplar (the paper's noisy plateau).
var PaperTable10 = map[int]float64{
	0: 228, 1: 228, 2: 102, 3: 90, 4: 59, 5: 62, 6: 43, 7: 51, 8: 37,
	9: 49, 10: 34, 11: 41, 12: 34, 13: 32, 14: 40, 15: 41, 16: 37,
}

// PaperTable11 — fine-grained Terrain Masking on the Tera MTA.
var PaperTable11 = map[int]float64{1: 48, 2: 34}
