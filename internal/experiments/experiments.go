// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2–12, Figures 1–4), plus the ablations DESIGN.md calls
// out. Each experiment runs the real benchmark programs through the machine
// models and reports the model's numbers side by side with the paper's.
//
// Workloads run at a configurable scale (fraction of the paper's threat
// counts); reported model times are normalized back to scale 1, so they are
// directly comparable with the paper columns. Comparisons are about shape —
// who wins, by what factor, where the curves bend — not absolute seconds;
// EXPERIMENTS.md records both for every table.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/c3i/route"
	"repro/internal/c3i/terrain"
	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/report"
)

// Config controls workload sizes for one experiment run.
type Config struct {
	ScaleTA float64 // fraction of the paper's 1000 threats/scenario
	ScaleTM float64 // fraction of the paper's 60 threats/scenario
	ScaleRO float64 // fraction of the route suite's 12 requests/scenario
}

// DefaultConfig balances fidelity (enough threats for the paper's
// load-balancing granularity effects) against wall-clock time.
func DefaultConfig() Config {
	return Config{ScaleTA: 0.25, ScaleTM: 0.5, ScaleRO: 0.25}
}

// Result is an experiment's rendered output.
type Result struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Text    string
}

// Experiment is one reproducible unit: a paper table/figure or an ablation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Platforms used in the performance comparison", runTable1},
		{"table2", "Sequential Threat Analysis without parallelization", runTable2},
		{"table3", "Multithreaded Threat Analysis on quad-processor Pentium Pro (+ Figure 1)", runTable3},
		{"table4", "Multithreaded Threat Analysis on 16-processor Exemplar (+ Figure 2)", runTable4},
		{"table5", "Multithreaded Threat Analysis on dual-processor Tera MTA", runTable5},
		{"table6", "Threat Analysis vs number of chunks on Tera MTA", runTable6},
		{"table7", "Performance comparison for Threat Analysis", runTable7},
		{"table8", "Sequential Terrain Masking without parallelization", runTable8},
		{"table9", "Coarse-grained Terrain Masking on quad-processor Pentium Pro (+ Figure 3)", runTable9},
		{"table10", "Coarse-grained Terrain Masking on 16-processor Exemplar (+ Figure 4)", runTable10},
		{"table11", "Fine-grained Terrain Masking on dual-processor Tera MTA", runTable11},
		{"table12", "Performance comparison for Terrain Masking", runTable12},
		{"autopar", "Automatic parallelization verdicts for Programs 1–4", runAutopar},
		{"ablation-streams", "MTA utilization and time vs thread count (single processor)", runAblationStreams},
		{"ablation-latency", "MTA exposed-memory-latency ablation (lookahead/dependence)", runAblationLatency},
		{"ablation-network", "Two-processor MTA speedup vs network maturity", runAblationNetwork},
		{"ablation-blocking", "Terrain Masking lock-blocking factor on the Exemplar", runAblationBlocking},
		{"ablation-finegrain-smp", "Fine-grained styles on conventional SMP vs the MTA", runAblationFineGrainSMP},
		{"projection-scaling", "Projected MTA scaling to many processors (the paper's future work)", runProjectionScaling},
		{"ro-sequential", "Sequential Route Optimization without parallelization (suite extension)", runRouteSeq},
		{"ro-streams", "Route Optimization scaling with threads: MTA vs cached SMPs (+ figure)", runRouteStreams},
		{"ro-variants", "Route Optimization parallelization styles across platforms", runRouteVariants},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// --- Workload caches -------------------------------------------------------

var (
	cacheMu  sync.Mutex
	taSuites = map[float64][]*threat.Scenario{}
	tmSuites = map[float64][]*terrain.Scenario{}
	roSuites = map[float64][]*route.Scenario{}
	runCache = map[string]machine.Result{}
)

// taSuite returns the (memoized) Threat Analysis suite at a scale.
func taSuite(scale float64) []*threat.Scenario {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := taSuites[scale]; ok {
		return s
	}
	s := threat.Suite(scale)
	taSuites[scale] = s
	return s
}

// tmSuite returns the (memoized, pre-warmed) Terrain Masking suite.
func tmSuite(scale float64) []*terrain.Scenario {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := tmSuites[scale]; ok {
		return s
	}
	s := terrain.Suite(scale)
	for _, sc := range s {
		sc.Warm()
	}
	tmSuites[scale] = s
	return s
}

// taNorm converts measured suite seconds to paper-scale seconds.
func taNorm(suite []*threat.Scenario) float64 {
	return 1000 / float64(len(suite[0].Threats))
}

// tmNorm converts measured suite seconds to paper-scale seconds.
func tmNorm(suite []*terrain.Scenario) float64 {
	return 60 / float64(len(suite[0].Threats))
}

// roSuite returns the (memoized) Route Optimization suite at a scale.
func roSuite(scale float64) []*route.Scenario {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := roSuites[scale]; ok {
		return s
	}
	s := route.Suite(scale)
	roSuites[scale] = s
	return s
}

// roNorm converts measured suite seconds to full-suite-scale seconds.
func roNorm(suite []*route.Scenario) float64 {
	return float64(route.DefaultQueries) / float64(len(suite[0].Queries))
}

// runOnce executes run on a fresh engine built by newEngine and memoizes the
// result under key (experiments share cells, e.g. the summary tables).
func runOnce(key string, newEngine func() *machine.Engine, run func(t *machine.Thread)) (machine.Result, error) {
	cacheMu.Lock()
	if r, ok := runCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	e := newEngine()
	res, err := e.Run(key, run)
	if err != nil {
		return machine.Result{}, fmt.Errorf("%s: %w", key, err)
	}
	cacheMu.Lock()
	runCache[key] = res
	cacheMu.Unlock()
	return res, nil
}

// ResetCaches drops all memoized workloads and results (tests use this to
// control memory).
func ResetCaches() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	taSuites = map[float64][]*threat.Scenario{}
	tmSuites = map[float64][]*terrain.Scenario{}
	roSuites = map[float64][]*route.Scenario{}
	runCache = map[string]machine.Result{}
}

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
