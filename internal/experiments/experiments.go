// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2–12, Figures 1–4), plus the ablations DESIGN.md calls
// out. Each experiment runs the real benchmark programs through the machine
// models and reports the model's numbers side by side with the paper's.
//
// Experiments are consumers of the internal/run execution API: each table,
// ablation and projection declares run.Specs (resolved through the
// internal/c3i/suite registry — experiments never call a workload's solver
// functions or construct machine engines directly), executes them through
// the shared run.Runner, and formats the resulting run.Records. The raw
// records ride along in Result.Records, so every cell of every table is
// individually addressable, serializable and reproducible from its Spec.
// Workloads run at a configurable scale (fraction of the paper's unit
// counts); reported model times are normalized back to scale 1, so they are
// directly comparable with the paper columns. Comparisons are about shape —
// who wins, by what factor, where the curves bend — not absolute seconds;
// EXPERIMENTS.md records both for every table.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	_ "repro/internal/c3i/hypothesis" // register the Hypothesis Testing workload
	_ "repro/internal/c3i/plottrack"  // register the Plot-Track Assignment workload
	_ "repro/internal/c3i/route"      // register the Route Optimization workload
	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/terrain" // register the Terrain Masking workload
	_ "repro/internal/c3i/threat"  // register the Threat Analysis workload
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/run"
)

// Registered workload names, as used in Config.Scales and the run helpers.
const (
	TA = "threat-analysis"
	TM = "terrain-masking"
	RO = "route-optimization"
	PT = "plot-track-assignment"
	HT = "hypothesis-testing"
)

// Config controls workload sizes and execution placement for one experiment
// run.
type Config struct {
	// Scales maps a registered workload name to the fraction of its
	// paper-scale workload to run; missing or non-positive entries fall
	// back to the workload's registered default.
	Scales map[string]float64
	// Executor, when non-nil, executes every declared Spec — e.g. a
	// serve.Client pointing at a c3iserve process (`c3ibench -remote`).
	// Nil means the package's shared in-process Runner.
	Executor run.Executor
}

// DefaultConfig takes every registered workload at its registered default
// scale — balanced between fidelity (enough units for the paper's
// granularity effects) and wall-clock time.
func DefaultConfig() Config {
	cfg := Config{Scales: map[string]float64{}}
	for _, w := range suite.All() {
		cfg.Scales[w.Name] = w.DefaultScale
	}
	return cfg
}

// Scale returns the configured scale for a workload, falling back to the
// registry default.
func (c Config) Scale(workload string) float64 {
	if s, ok := c.Scales[workload]; ok && s > 0 {
		return s
	}
	if w, err := suite.Lookup(workload); err == nil {
		return w.DefaultScale
	}
	return 1
}

// Result is an experiment's output: the rendered tables and figures, plus
// the raw execution records behind every model cell.
type Result struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Text    string
	// Records are the run.Records this experiment executed (cache hits
	// included), in execution order — the machine-readable counterpart of
	// the tables, and the payload of `c3ibench -json`.
	Records []run.Record
}

// Exec is the context an experiment body runs in: the scale configuration,
// the cancellation context, and the shared Runner every Spec goes through.
// It collects each executed Record for the experiment's Result.
type Exec struct {
	Cfg    Config
	ctx    context.Context
	runner run.Executor

	mu      sync.Mutex
	records []run.Record
}

// Spec builds the canonical run.Spec for a registered workload variant on a
// paper platform at the Exec's configured scale.
func (x *Exec) Spec(workload, variant, platform string, procs int, params suite.Params) run.Spec {
	return run.Spec{
		Workload: workload,
		Variant:  variant,
		Platform: platform,
		Procs:    procs,
		Scale:    x.Cfg.Scale(workload),
		Params:   params,
	}
}

// Run executes a Spec through the shared Runner and collects its Record.
func (x *Exec) Run(spec run.Spec) (run.Record, error) {
	rec, err := x.runner.Run(x.ctx, spec)
	if err != nil {
		return rec, err
	}
	x.mu.Lock()
	x.records = append(x.records, rec)
	x.mu.Unlock()
	return rec, nil
}

// Seconds is Run reduced to the paper-scale-normalized seconds most table
// cells need.
func (x *Exec) Seconds(spec run.Spec) (float64, error) {
	rec, err := x.Run(spec)
	return rec.PaperSeconds, err
}

// Experiment is one reproducible unit: a paper table/figure or an ablation.
type Experiment struct {
	ID    string
	Title string
	body  func(x *Exec) (*Result, error)
}

// Run executes the experiment at the given scales through the package's
// shared Runner.
func (e Experiment) Run(cfg Config) (*Result, error) {
	return e.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: Specs not yet started when ctx is
// cancelled fail with the context error.
func (e Experiment) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if e.body == nil {
		return nil, fmt.Errorf("experiments: experiment %q has no body", e.ID)
	}
	executor := cfg.Executor
	if executor == nil {
		executor = sharedRunner
	}
	x := &Exec{Cfg: cfg, ctx: ctx, runner: executor}
	res, err := e.body(x)
	if err != nil {
		return nil, err
	}
	res.Records = x.records
	return res, nil
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Platforms used in the performance comparison", runTable1},
		{"table2", "Sequential Threat Analysis without parallelization", runTable2},
		{"table3", "Multithreaded Threat Analysis on quad-processor Pentium Pro (+ Figure 1)", runTable3},
		{"table4", "Multithreaded Threat Analysis on 16-processor Exemplar (+ Figure 2)", runTable4},
		{"table5", "Multithreaded Threat Analysis on dual-processor Tera MTA", runTable5},
		{"table6", "Threat Analysis vs number of chunks on Tera MTA", runTable6},
		{"table7", "Performance comparison for Threat Analysis", runTable7},
		{"table8", "Sequential Terrain Masking without parallelization", runTable8},
		{"table9", "Coarse-grained Terrain Masking on quad-processor Pentium Pro (+ Figure 3)", runTable9},
		{"table10", "Coarse-grained Terrain Masking on 16-processor Exemplar (+ Figure 4)", runTable10},
		{"table11", "Fine-grained Terrain Masking on dual-processor Tera MTA", runTable11},
		{"table12", "Performance comparison for Terrain Masking", runTable12},
		{"autopar", "Automatic parallelization verdicts for Programs 1–4", runAutopar},
		{"ablation-streams", "MTA utilization and time vs thread count (single processor)", runAblationStreams},
		{"ablation-latency", "MTA exposed-memory-latency ablation (lookahead/dependence)", runAblationLatency},
		{"ablation-network", "Two-processor MTA speedup vs network maturity", runAblationNetwork},
		{"ablation-blocking", "Terrain Masking lock-blocking factor on the Exemplar", runAblationBlocking},
		{"ablation-finegrain-smp", "Fine-grained styles on conventional SMP vs the MTA", runAblationFineGrainSMP},
		{"projection-scaling", "Projected MTA scaling to many processors (the paper's future work)", runProjectionScaling},
		{"ro-sequential", "Sequential Route Optimization without parallelization (suite extension)", runRouteSeq},
		{"ro-streams", "Route Optimization scaling with threads: MTA vs cached SMPs (+ figure)", runRouteStreams},
		{"ro-variants", "Route Optimization parallelization styles across platforms", runRouteVariants},
		{"pt-sequential", "Sequential Plot-Track Assignment without parallelization (suite extension)", runPlotSeq},
		{"pt-streams", "Plot-Track Assignment scaling with threads: MTA vs cached SMPs (+ figure)", runPlotStreams},
		{"pt-variants", "Plot-Track Assignment parallelization styles across platforms", runPlotVariants},
		{"pt-pipelined", "Plot-Track Assignment exposed-latency ablation (dependent price loads vs perfect lookahead)", runPlotPipelined},
		{"ht-sequential", "Sequential Hypothesis Testing without parallelization (suite extension)", runHypoSeq},
		{"ht-streams", "Hypothesis Testing scaling with threads: MTA vs cached SMPs (+ figure)", runHypoStreams},
		{"ht-variants", "Hypothesis Testing parallelization styles across platforms", runHypoVariants},
		{"ht-grid", "Hypothesis Testing over the declared scenario grid (scale × gate × prune × network)", runHypoGrid},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// Outcome is one experiment's result from a RunMany batch.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
	Elapsed    time.Duration
}

// RunMany runs the experiments with the given IDs through a pool of jobs
// workers (jobs ≤ 1 means serial) and returns outcomes in the requested
// order regardless of completion order, so parallel sweeps report exactly
// like serial ones. The shared Runner's caches are single-flight, so cells
// reused across experiments (e.g. the summary tables) are computed once even
// when the experiments needing them run concurrently. Unknown IDs yield an
// Outcome with Err set; the remaining experiments still run.
func RunMany(ids []string, cfg Config, jobs int) []Outcome {
	return RunEach(ids, cfg, jobs, nil)
}

// RunEach is RunMany with streaming: emit (if non-nil) is called once per
// outcome, in request order, as soon as that outcome and all its
// predecessors have completed — a serial run therefore reports each
// experiment the moment it finishes, exactly like a plain loop, while a
// parallel run still prints deterministically.
func RunEach(ids []string, cfg Config, jobs int, emit func(Outcome)) []Outcome {
	out := make([]Outcome, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(ids) {
		jobs = len(ids)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i] = runExperiment(ids[i], cfg)
				close(ready[i])
			}
		}()
	}
	go func() {
		for i := range ids {
			work <- i
		}
		close(work)
	}()
	for i := range ids {
		<-ready[i]
		if emit != nil {
			emit(out[i])
		}
	}
	wg.Wait()
	return out
}

// runExperiment resolves and runs one experiment ID.
func runExperiment(id string, cfg Config) Outcome {
	id = strings.TrimSpace(id)
	e, err := Get(id)
	if err != nil {
		return Outcome{Experiment: Experiment{ID: id}, Err: err}
	}
	start := time.Now() //c3ivet:ignore determinism host-elapsed bookkeeping; model output comes from e.Run
	res, err := e.Run(cfg)
	return Outcome{Experiment: e, Result: res, Err: err, Elapsed: time.Since(start)} //c3ivet:ignore determinism Elapsed is host wall-clock, never part of the model artifact
}

// sharedRunner executes every experiment Spec; its suite and Record caches
// are what make concurrent RunMany sweeps compute shared cells once.
var sharedRunner = run.NewRunner(0)

// paperUnits returns a workload's registered paper-scale unit count. The
// workload names here are compile-time constants, so a failed lookup is a
// programming error and panics rather than corrupting a published table.
func paperUnits(workload string) int {
	w, err := suite.Lookup(workload)
	if err != nil {
		panic(err)
	}
	return w.PaperUnits
}

// coarseOverheadFullScaleGB projects a workload's coarse-variant
// private-buffer storage at full problem size for a worker count, in GB —
// the feasibility note the MTA tables quote. Panics if the workload has no
// coarse variant with an OverheadFullScale hook (a wiring error, not data).
func coarseOverheadFullScaleGB(workload string, workers int) float64 {
	w, err := suite.Lookup(workload)
	if err != nil {
		panic(err)
	}
	v, err := w.Variant("coarse")
	if err != nil {
		panic(err)
	}
	if v.OverheadFullScale == nil {
		panic(fmt.Sprintf("experiments: %s coarse variant has no OverheadFullScale hook", workload))
	}
	return float64(v.OverheadFullScale(workers)) / float64(1<<30)
}

// ResetCaches drops the shared Runner's memoized workloads and results
// (tests and the per-iteration benchmark harness use this to control memory
// and measurement).
func ResetCaches() {
	sharedRunner.Reset()
}

// Metrics exposes the shared Runner's metrics registry — per-workload
// execution latency histograms and cache/store counters accumulated across
// every experiment run in this process. `c3ibench -stats` snapshots it after
// a sweep. Note that Reset/ResetCaches does not zero metrics: they count the
// process's whole history, which is exactly what a post-sweep snapshot wants.
func Metrics() *obs.Registry {
	return sharedRunner.Metrics()
}
