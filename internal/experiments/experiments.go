// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2–12, Figures 1–4), plus the ablations DESIGN.md calls
// out. Each experiment runs the real benchmark programs through the machine
// models and reports the model's numbers side by side with the paper's.
//
// Workloads and their program variants are resolved exclusively through the
// internal/c3i/suite registry: experiments never call a workload's solver
// functions directly, so a new workload registered with the suite is
// immediately runnable here. Workloads run at a configurable scale (fraction
// of the paper's unit counts); reported model times are normalized back to
// scale 1, so they are directly comparable with the paper columns.
// Comparisons are about shape — who wins, by what factor, where the curves
// bend — not absolute seconds; EXPERIMENTS.md records both for every table.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	_ "repro/internal/c3i/plottrack" // register the Plot-Track Assignment workload
	_ "repro/internal/c3i/route"     // register the Route Optimization workload
	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/terrain" // register the Terrain Masking workload
	_ "repro/internal/c3i/threat"  // register the Threat Analysis workload
	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/report"
)

// Registered workload names, as used in Config.Scales and the run helpers.
const (
	TA = "threat-analysis"
	TM = "terrain-masking"
	RO = "route-optimization"
	PT = "plot-track-assignment"
)

// Config controls workload sizes for one experiment run.
type Config struct {
	// Scales maps a registered workload name to the fraction of its
	// paper-scale workload to run; missing or non-positive entries fall
	// back to the workload's registered default.
	Scales map[string]float64
}

// DefaultConfig takes every registered workload at its registered default
// scale — balanced between fidelity (enough units for the paper's
// granularity effects) and wall-clock time.
func DefaultConfig() Config {
	cfg := Config{Scales: map[string]float64{}}
	for _, w := range suite.All() {
		cfg.Scales[w.Name] = w.DefaultScale
	}
	return cfg
}

// Scale returns the configured scale for a workload, falling back to the
// registry default.
func (c Config) Scale(workload string) float64 {
	if s, ok := c.Scales[workload]; ok && s > 0 {
		return s
	}
	if w, err := suite.Lookup(workload); err == nil {
		return w.DefaultScale
	}
	return 1
}

// Result is an experiment's rendered output.
type Result struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Text    string
}

// Experiment is one reproducible unit: a paper table/figure or an ablation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Platforms used in the performance comparison", runTable1},
		{"table2", "Sequential Threat Analysis without parallelization", runTable2},
		{"table3", "Multithreaded Threat Analysis on quad-processor Pentium Pro (+ Figure 1)", runTable3},
		{"table4", "Multithreaded Threat Analysis on 16-processor Exemplar (+ Figure 2)", runTable4},
		{"table5", "Multithreaded Threat Analysis on dual-processor Tera MTA", runTable5},
		{"table6", "Threat Analysis vs number of chunks on Tera MTA", runTable6},
		{"table7", "Performance comparison for Threat Analysis", runTable7},
		{"table8", "Sequential Terrain Masking without parallelization", runTable8},
		{"table9", "Coarse-grained Terrain Masking on quad-processor Pentium Pro (+ Figure 3)", runTable9},
		{"table10", "Coarse-grained Terrain Masking on 16-processor Exemplar (+ Figure 4)", runTable10},
		{"table11", "Fine-grained Terrain Masking on dual-processor Tera MTA", runTable11},
		{"table12", "Performance comparison for Terrain Masking", runTable12},
		{"autopar", "Automatic parallelization verdicts for Programs 1–4", runAutopar},
		{"ablation-streams", "MTA utilization and time vs thread count (single processor)", runAblationStreams},
		{"ablation-latency", "MTA exposed-memory-latency ablation (lookahead/dependence)", runAblationLatency},
		{"ablation-network", "Two-processor MTA speedup vs network maturity", runAblationNetwork},
		{"ablation-blocking", "Terrain Masking lock-blocking factor on the Exemplar", runAblationBlocking},
		{"ablation-finegrain-smp", "Fine-grained styles on conventional SMP vs the MTA", runAblationFineGrainSMP},
		{"projection-scaling", "Projected MTA scaling to many processors (the paper's future work)", runProjectionScaling},
		{"ro-sequential", "Sequential Route Optimization without parallelization (suite extension)", runRouteSeq},
		{"ro-streams", "Route Optimization scaling with threads: MTA vs cached SMPs (+ figure)", runRouteStreams},
		{"ro-variants", "Route Optimization parallelization styles across platforms", runRouteVariants},
		{"pt-sequential", "Sequential Plot-Track Assignment without parallelization (suite extension)", runPlotSeq},
		{"pt-streams", "Plot-Track Assignment scaling with threads: MTA vs cached SMPs (+ figure)", runPlotStreams},
		{"pt-variants", "Plot-Track Assignment parallelization styles across platforms", runPlotVariants},
		{"pt-pipelined", "Plot-Track Assignment exposed-latency ablation (dependent price loads vs perfect lookahead)", runPlotPipelined},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// Outcome is one experiment's result from a RunMany batch.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
	Elapsed    time.Duration
}

// RunMany runs the experiments with the given IDs through a pool of jobs
// workers (jobs ≤ 1 means serial) and returns outcomes in the requested
// order regardless of completion order, so parallel sweeps report exactly
// like serial ones. The caches below are shared and single-flight, so cells
// reused across experiments (e.g. the summary tables) are computed once even
// when the experiments needing them run concurrently. Unknown IDs yield an
// Outcome with Err set; the remaining experiments still run.
func RunMany(ids []string, cfg Config, jobs int) []Outcome {
	return RunEach(ids, cfg, jobs, nil)
}

// RunEach is RunMany with streaming: emit (if non-nil) is called once per
// outcome, in request order, as soon as that outcome and all its
// predecessors have completed — a serial run therefore reports each
// experiment the moment it finishes, exactly like a plain loop, while a
// parallel run still prints deterministically.
func RunEach(ids []string, cfg Config, jobs int, emit func(Outcome)) []Outcome {
	out := make([]Outcome, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(ids) {
		jobs = len(ids)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i] = runExperiment(ids[i], cfg)
				close(ready[i])
			}
		}()
	}
	go func() {
		for i := range ids {
			work <- i
		}
		close(work)
	}()
	for i := range ids {
		<-ready[i]
		if emit != nil {
			emit(out[i])
		}
	}
	wg.Wait()
	return out
}

// runExperiment resolves and runs one experiment ID.
func runExperiment(id string, cfg Config) Outcome {
	id = strings.TrimSpace(id)
	e, err := Get(id)
	if err != nil {
		return Outcome{Experiment: Experiment{ID: id}, Err: err}
	}
	start := time.Now()
	res, err := e.Run(cfg)
	return Outcome{Experiment: e, Result: res, Err: err, Elapsed: time.Since(start)}
}

// --- Workload and result caches --------------------------------------------

// onceMap memoizes expensive computations by key and collapses concurrent
// calls for the same key into one execution (RunMany workers share workload
// suites and experiment cells). reset advances a generation so computations
// started before a reset cannot repopulate the post-reset maps.
type onceMap[T any] struct {
	mu       sync.Mutex
	gen      int
	done     map[string]T
	inflight map[string]*onceCall[T]
}

type onceCall[T any] struct {
	ready chan struct{}
	val   T
	err   error
}

// initLocked lazily allocates the maps; callers hold mu.
func (m *onceMap[T]) initLocked() {
	if m.done == nil {
		m.done = map[string]T{}
	}
	if m.inflight == nil {
		m.inflight = map[string]*onceCall[T]{}
	}
}

func (m *onceMap[T]) do(key string, fn func() (T, error)) (T, error) {
	m.mu.Lock()
	m.initLocked()
	if v, ok := m.done[key]; ok {
		m.mu.Unlock()
		return v, nil
	}
	if c, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		<-c.ready
		return c.val, c.err
	}
	c := &onceCall[T]{ready: make(chan struct{})}
	m.inflight[key] = c
	gen := m.gen
	m.mu.Unlock()

	c.val, c.err = fn()
	m.mu.Lock()
	// A reset during the computation dropped this call from inflight and
	// invalidated its result; only same-generation results are memoized.
	if m.gen == gen {
		if c.err == nil {
			m.done[key] = c.val
		}
		delete(m.inflight, key)
	}
	m.mu.Unlock()
	close(c.ready)
	return c.val, c.err
}

func (m *onceMap[T]) reset() {
	m.mu.Lock()
	m.gen++
	m.done = map[string]T{}
	m.inflight = map[string]*onceCall[T]{}
	m.mu.Unlock()
}

var (
	suiteCache onceMap[[]suite.Scenario]
	runCache   onceMap[machine.Result]
)

// suiteFor returns the memoized scenario suite for a workload at a scale,
// warmed so concurrent solver runs only read the shared scenarios.
func suiteFor(workload string, scale float64) ([]suite.Scenario, error) {
	return suiteCache.do(fmt.Sprintf("%s|s%g", workload, scale), func() ([]suite.Scenario, error) {
		w, err := suite.Lookup(workload)
		if err != nil {
			return nil, err
		}
		scs := w.Generate(scale)
		for _, sc := range scs {
			sc.Warm()
		}
		return scs, nil
	})
}

// runOnce executes run on a fresh engine built by newEngine and memoizes the
// result under key (experiments share cells, e.g. the summary tables).
func runOnce(key string, newEngine func() *machine.Engine, run func(t *machine.Thread)) (machine.Result, error) {
	return runCache.do(key, func() (machine.Result, error) {
		e := newEngine()
		res, err := e.Run(key, run)
		if err != nil {
			return machine.Result{}, fmt.Errorf("%s: %w", key, err)
		}
		return res, nil
	})
}

// runVariant runs one registered workload variant over the memoized suite on
// a paper platform, returning paper-scale-normalized seconds plus the raw
// machine result (for utilization inspection).
func runVariant(cfg Config, workload, variant, platform string, procs int, params suite.Params) (float64, machine.Result, error) {
	spec, err := platforms.Get(platform)
	if err != nil {
		return 0, machine.Result{}, err
	}
	return runVariantOn(cfg, workload, variant,
		fmt.Sprintf("%s|p%d", platform, procs),
		func() *machine.Engine { return spec.New(procs) }, params)
}

// runVariantOn is runVariant with an explicit engine constructor — the
// ablations and projections build custom machine configurations. engineKey
// must identify the engine configuration for memoization.
func runVariantOn(cfg Config, workload, variant, engineKey string, newEngine func() *machine.Engine, params suite.Params) (float64, machine.Result, error) {
	w, err := suite.Lookup(workload)
	if err != nil {
		return 0, machine.Result{}, err
	}
	v, err := w.Variant(variant)
	if err != nil {
		return 0, machine.Result{}, err
	}
	scale := cfg.Scale(workload)
	scs, err := suiteFor(workload, scale)
	if err != nil {
		return 0, machine.Result{}, err
	}
	p := params.Merged(v.Defaults)
	key := fmt.Sprintf("%s|%s|%s|%s|s%g", w.Key, variant, engineKey, p, scale)
	res, err := runOnce(key, newEngine, func(t *machine.Thread) {
		for _, sc := range scs {
			v.Run(t, sc, p)
		}
	})
	return res.Seconds * w.Norm(scs), res, err
}

// paperUnits returns a workload's registered paper-scale unit count. The
// workload names here are compile-time constants, so a failed lookup is a
// programming error and panics rather than corrupting a published table.
func paperUnits(workload string) int {
	w, err := suite.Lookup(workload)
	if err != nil {
		panic(err)
	}
	return w.PaperUnits
}

// coarseOverheadFullScaleGB projects a workload's coarse-variant
// private-buffer storage at full problem size for a worker count, in GB —
// the feasibility note the MTA tables quote. Panics if the workload has no
// coarse variant with an OverheadFullScale hook (a wiring error, not data).
func coarseOverheadFullScaleGB(workload string, workers int) float64 {
	w, err := suite.Lookup(workload)
	if err != nil {
		panic(err)
	}
	v, err := w.Variant("coarse")
	if err != nil {
		panic(err)
	}
	if v.OverheadFullScale == nil {
		panic(fmt.Sprintf("experiments: %s coarse variant has no OverheadFullScale hook", workload))
	}
	return float64(v.OverheadFullScale(workers)) / float64(1<<30)
}

// ResetCaches drops all memoized workloads and results (tests and the
// per-iteration benchmark harness use this to control memory).
func ResetCaches() {
	suiteCache.reset()
	runCache.reset()
}
