package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/platforms"
	"repro/internal/report"
	"repro/internal/run"
)

// Fine-grained Terrain Masking decomposition on the MTA: the ray fan is
// split into this many parallel sectors and the reset/minimize passes into
// this many row chunks, giving ~100 concurrent threads per threat.
const (
	tmSectors     = 96
	tmMergeChunks = 64
)

// tmBlocks is the paper's ten-by-ten blocking of the terrain for the
// coarse-grained variant's locks.
const tmBlocks = 10

// tmSeq runs sequential Terrain Masking (charge-replay mode) and returns
// paper-scale seconds.
func tmSeq(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(TM, "sequential", key, procs, nil))
}

// tmCoarse runs the coarse-grained lock-blocked variant.
func tmCoarse(x *Exec, key string, procs, workers, blocks int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(TM, "coarse", key, procs,
		suite.Params{"workers": workers, "blocks": blocks}))
	return rec.PaperSeconds, rec, err
}

// tmFine runs the fine-grained inner-loop variant.
func tmFine(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(TM, "fine", key, procs,
		suite.Params{"sectors": tmSectors, "merge": tmMergeChunks}))
}

// runTable8 reproduces Table 8: sequential Terrain Masking on all four
// platforms.
func runTable8(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table8",
		Title:   "Execution time of sequential Terrain Masking without parallelization",
		Columns: []string{"Platform", "Paper (s)", "Model (s)", "Model/Paper"},
		Notes:   []string{fmt.Sprintf("model at scale %g, normalized to the paper's 60 threats/scenario", x.Cfg.Scale(TM))},
	}
	for _, row := range []struct {
		name, key string
		procs     int
	}{
		{"Alpha", "alpha", 1},
		{"Pentium Pro", "ppro", 4},
		{"Exemplar", "exemplar", 16},
		{"Tera", "tera", 1},
	} {
		sec, err := tmSeq(x, row.key, row.procs)
		if err != nil {
			return nil, err
		}
		paper := PaperTable8[row.name]
		tb.AddRow(row.name, paper, sec, fmt.Sprintf("%.2f", sec/paper))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runTable9 reproduces Table 9 / Figure 3: coarse-grained Terrain Masking on
// the quad Pentium Pro, one worker per processor, ten-by-ten blocking.
func runTable9(x *Exec) (*Result, error) {
	model := map[int]float64{}
	seq, err := tmSeq(x, "ppro", 4)
	if err != nil {
		return nil, err
	}
	model[0] = seq
	for p := 1; p <= 4; p++ {
		sec, _, err := tmCoarse(x, "ppro", p, p, tmBlocks)
		if err != nil {
			return nil, err
		}
		model[p] = sec
	}
	return speedupTable("table9", "figure3",
		"Execution time of multithreaded Terrain Masking on quad-processor Pentium Pro",
		"Speedup of coarse-grained multithreaded Terrain Masking on quad-processor Pentium Pro",
		PaperTable9, model, 4,
		fmt.Sprintf("one thread per processor, ten-by-ten blocking; scale %g normalized", x.Cfg.Scale(TM))), nil
}

// runTable10 reproduces Table 10 / Figure 4: coarse-grained Terrain Masking
// on the 16-processor Exemplar.
func runTable10(x *Exec) (*Result, error) {
	model := map[int]float64{}
	seq, err := tmSeq(x, "exemplar", 16)
	if err != nil {
		return nil, err
	}
	model[0] = seq
	for p := 1; p <= 16; p++ {
		sec, _, err := tmCoarse(x, "exemplar", p, p, tmBlocks)
		if err != nil {
			return nil, err
		}
		model[p] = sec
	}
	return speedupTable("table10", "figure4",
		"Execution time of multithreaded Terrain Masking on 16-processor Exemplar",
		"Speedup of multithreaded Terrain Masking on 16-processor Exemplar",
		PaperTable10, model, 16,
		fmt.Sprintf("one thread per processor, ten-by-ten blocking; scale %g normalized", x.Cfg.Scale(TM))), nil
}

// runTable11 reproduces Table 11: fine-grained Terrain Masking on the Tera
// MTA, one and two processors. The coarse-grained variant is infeasible
// there — efficient use of the machine needs hundreds of streams, and
// hundreds of private temp arrays exceed the machine's 2 GB (see the note).
func runTable11(x *Exec) (*Result, error) {
	tera, err := platforms.Get("tera")
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		ID:      "table11",
		Title:   "Execution time of multithreaded Terrain Masking on dual-processor Tera MTA",
		Columns: []string{"Number of Processors", "Paper (s)", "Paper speedup", "Model (s)", "Model speedup"},
		Notes: []string{
			fmt.Sprintf("fine-grained inner-loop parallelism (%d ray sectors, %d merge chunks); scale %g normalized",
				tmSectors, tmMergeChunks, x.Cfg.Scale(TM)),
			fmt.Sprintf("coarse-grained variant infeasible on the MTA: 256 workers would need %.1f GB of private temp arrays vs %d GB of memory",
				coarseOverheadFullScaleGB(TM, 256), tera.MemoryBytes>>30),
		},
	}
	var oneProc float64
	for _, p := range []int{1, 2} {
		sec, err := tmFine(x, "tera", p)
		if err != nil {
			return nil, err
		}
		if p == 1 {
			oneProc = sec
		}
		tb.AddRow(p, PaperTable11[p], report.FormatSpeedup(PaperTable11[1]/PaperTable11[p]),
			sec, report.FormatSpeedup(oneProc/sec))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runTable12 reproduces Table 12: the Terrain Masking summary.
func runTable12(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table12",
		Title:   "Performance comparison for execution times of Terrain Masking",
		Columns: []string{"Parallelization", "Platform", "Paper (s)", "Model (s)"},
		Notes: []string{
			"automatic parallelization found no opportunities (see experiment `autopar`), so those rows equal sequential execution",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(TM)),
		},
	}
	type cell struct {
		group, name string
		paper       float64
		run         func() (float64, error)
	}
	cells := []cell{
		{"None", "Alpha", 158, func() (float64, error) { return tmSeq(x, "alpha", 1) }},
		{"None", "Pentium Pro", 197, func() (float64, error) { return tmSeq(x, "ppro", 4) }},
		{"None", "Exemplar", 228, func() (float64, error) { return tmSeq(x, "exemplar", 16) }},
		{"None", "Tera", 978, func() (float64, error) { return tmSeq(x, "tera", 1) }},
		{"Automatic", "Exemplar", 228, func() (float64, error) { return tmSeq(x, "exemplar", 16) }},
		{"Automatic", "Tera", 978, func() (float64, error) { return tmSeq(x, "tera", 1) }},
		{"Manual", "Pentium Pro (4 processors)", 65, func() (float64, error) {
			s, _, err := tmCoarse(x, "ppro", 4, 4, tmBlocks)
			return s, err
		}},
		{"Manual", "Exemplar (4 processors)", 59, func() (float64, error) {
			s, _, err := tmCoarse(x, "exemplar", 4, 4, tmBlocks)
			return s, err
		}},
		{"Manual", "Exemplar (8 processors)", 37, func() (float64, error) {
			s, _, err := tmCoarse(x, "exemplar", 8, 8, tmBlocks)
			return s, err
		}},
		{"Manual", "Exemplar (16 processors)", 37, func() (float64, error) {
			s, _, err := tmCoarse(x, "exemplar", 16, 16, tmBlocks)
			return s, err
		}},
		{"Manual", "Tera MTA (1 processor)", 48, func() (float64, error) { return tmFine(x, "tera", 1) }},
		{"Manual", "Tera MTA (2 processors)", 34, func() (float64, error) { return tmFine(x, "tera", 2) }},
	}
	for _, c := range cells {
		sec, err := c.run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.group, c.name, c.paper, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}
