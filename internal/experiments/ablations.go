package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/report"
	"repro/internal/run"
)

// runAblationStreams demonstrates the paper's §7 claim that the MTA needs
// on the order of 80–100 concurrent threads to approach full utilization of
// even one processor: Threat Analysis on one MTA processor as the chunk
// (= thread) count grows, with measured issue utilization.
func runAblationStreams(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "ablation-streams",
		Title:   "Threat Analysis on one Tera MTA processor vs thread count",
		Columns: []string{"Chunks (threads)", "Model (s)", "Issue utilization"},
		Notes: []string{
			"paper §7: \"80 concurrent threads are typically required to obtain full utilization of a single Tera MTA processor\"",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(TA)),
		},
	}
	fig := &report.Figure{
		ID: "ablation-streams-figure", Title: "MTA issue utilization vs thread count",
		XLabel: "threads (chunks)", YLabel: "utilization %",
	}
	var series report.Series
	series.Label, series.Marker = "issue utilization", '*'
	for _, chunks := range []int{1, 2, 4, 8, 16, 21, 32, 64, 96, 128} {
		sec, rec, err := taChunked(x, "tera", 1, chunks)
		if err != nil {
			return nil, err
		}
		tb.AddRow(chunks, sec, fmt.Sprintf("%.1f%%", rec.Stats.ProcUtil[0]*100))
		series.X = append(series.X, float64(chunks))
		series.Y = append(series.Y, rec.Stats.ProcUtil[0]*100)
	}
	fig.Series = []report.Series{series}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}, nil
}

// runAblationLatency isolates the role of exposed memory latency (the
// cache-less MTA's dependent loads) in sequential performance: the same
// kernels re-priced with all references fully pipelined (perfect lookahead,
// the sequential variants' "pipelined" parameter) versus the calibrated
// dependence mix.
func runAblationLatency(x *Exec) (*Result, error) {
	both := func(pipelined int) (float64, float64, error) {
		p := suite.Params{"pipelined": pipelined}
		taSec, err := x.Seconds(x.Spec(TA, "sequential", "tera", 1, p))
		if err != nil {
			return 0, 0, err
		}
		tmSec, err := x.Seconds(x.Spec(TM, "sequential", "tera", 1, p))
		if err != nil {
			return 0, 0, err
		}
		return taSec, tmSec, nil
	}

	taDep, tmDep, err := both(0)
	if err != nil {
		return nil, err
	}
	taPipe, tmPipe, err := both(1)
	if err != nil {
		return nil, err
	}

	tb := &report.Table{
		ID:      "ablation-latency",
		Title:   "Sequential execution on one Tera MTA processor: dependent loads vs perfect lookahead",
		Columns: []string{"Kernel", "Calibrated (s)", "All refs pipelined (s)", "Latency share"},
		Notes: []string{
			"with no cache, serially-dependent loads expose the full memory latency to a lone stream; multithreading (not lookahead) is what hides it",
		},
	}
	tb.AddRow("Threat Analysis", taDep, taPipe, fmt.Sprintf("%.0f%%", 100*(taDep-taPipe)/taDep))
	tb.AddRow("Terrain Masking", tmDep, tmPipe, fmt.Sprintf("%.0f%%", 100*(tmDep-tmPipe)/tmDep))
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runAblationNetwork sweeps the "development status of the current Tera MTA
// network" factors the paper blames for the 1.4–1.8 two-processor speedups:
// remote-latency multiplier and aggregate bandwidth efficiency, expressed as
// Spec network overrides on the two-processor MTA.
func runAblationNetwork(x *Exec) (*Result, error) {
	taParams := suite.Params{"chunks": 256}
	tmParams := suite.Params{"sectors": tmSectors, "merge": tmMergeChunks}

	base1TA, err := x.Seconds(x.Spec(TA, "coarse", "tera", 1, taParams))
	if err != nil {
		return nil, err
	}
	base1TM, err := x.Seconds(x.Spec(TM, "fine", "tera", 1, tmParams))
	if err != nil {
		return nil, err
	}

	tb := &report.Table{
		ID:      "ablation-network",
		Title:   "Two-processor Tera MTA speedup vs interconnection-network maturity",
		Columns: []string{"Latency multiplier", "Bandwidth efficiency", "TA speedup", "TM speedup"},
		Notes: []string{
			"paper: \"The less-than-ideal speedup may be a result of the development status of the current Tera MTA network\"; defaults are 1.8/0.62",
		},
	}
	for _, net := range []struct{ lat, bw float64 }{
		{1.0, 1.0}, {1.4, 0.8}, {1.8, 0.62}, {2.5, 0.45},
	} {
		netSpec := func(workload, variant string, params suite.Params) run.Spec {
			spec := x.Spec(workload, variant, "tera", 2, params)
			spec.NetLatencyMult, spec.NetBandwidthEff = net.lat, net.bw
			return spec
		}
		taSec, err := x.Seconds(netSpec(TA, "coarse", taParams))
		if err != nil {
			return nil, err
		}
		tmSec, err := x.Seconds(netSpec(TM, "fine", tmParams))
		if err != nil {
			return nil, err
		}
		tb.AddRow(net.lat, net.bw,
			report.FormatSpeedup(base1TA/taSec),
			report.FormatSpeedup(base1TM/tmSec))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runAblationBlocking sweeps the coarse-grained Terrain Masking blocking
// factor on the 16-processor Exemplar: one big lock serializes the merge
// phase; the paper's ten-by-ten blocking is already in the flat region.
func runAblationBlocking(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "ablation-blocking",
		Title:   "Coarse-grained Terrain Masking on 16-processor Exemplar vs lock blocking factor",
		Columns: []string{"Blocks per side", "Locks", "Model (s)"},
		Notes:   []string{fmt.Sprintf("16 workers; scale %g normalized; the paper ran ten-by-ten", x.Cfg.Scale(TM))},
	}
	for _, blocks := range []int{1, 2, 4, 10, 20, 40} {
		sec, _, err := tmCoarse(x, "exemplar", 16, 16, blocks)
		if err != nil {
			return nil, err
		}
		tb.AddRow(blocks, blocks*blocks, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runAblationFineGrainSMP shows the paper's asymmetry claim: fine-grained
// styles (hundreds of threads, per-element synchronization) are practical on
// the MTA and unreasonable on conventional machines, where coarse chunking
// is the right tool.
func runAblationFineGrainSMP(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "ablation-finegrain-smp",
		Title:   "Fine-grained vs coarse-grained styles across architectures",
		Columns: []string{"Kernel", "Platform", "Coarse (s)", "Fine-grained (s)", "Fine/Coarse"},
		Notes: []string{
			"fine-grained Threat Analysis = one thread per threat + atomic interval appends; fine-grained Terrain Masking = parallel inner loops per threat",
			"paper §7: thread creation and synchronization are \"many orders of magnitude less costly on the Tera MTA\"",
		},
	}

	// Threat Analysis.
	coarseEx, _, err := taChunked(x, "exemplar", 16, 16)
	if err != nil {
		return nil, err
	}
	fineEx, err := taFine(x, "exemplar", 16)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Threat Analysis", "Exemplar (16 proc)", coarseEx, fineEx, fmt.Sprintf("%.2f", fineEx/coarseEx))
	coarseT, _, err := taChunked(x, "tera", 1, 256)
	if err != nil {
		return nil, err
	}
	fineT, err := taFine(x, "tera", 1)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Threat Analysis", "Tera MTA (1 proc)", coarseT, fineT, fmt.Sprintf("%.2f", fineT/coarseT))

	// Terrain Masking.
	coarseTMEx, _, err := tmCoarse(x, "exemplar", 16, 16, tmBlocks)
	if err != nil {
		return nil, err
	}
	fineTMEx, err := tmFine(x, "exemplar", 16)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Terrain Masking", "Exemplar (16 proc)", coarseTMEx, fineTMEx, fmt.Sprintf("%.2f", fineTMEx/coarseTMEx))
	fineTMT, err := tmFine(x, "tera", 1)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Terrain Masking", "Tera MTA (1 proc)", "infeasible (memory)", fineTMT, "—")
	return &Result{Tables: []*report.Table{tb}}, nil
}
