package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/platforms"
	"repro/internal/report"
	"repro/internal/run"
)

// Plot-Track Assignment decomposition defaults: the worker/thread counts the
// paper-style tables use on each architecture (hundreds of threads on the
// MTA, one worker per processor on the conventional machines).
const (
	ptMTAThreads  = 256 // fine-grained bid threads per round on the MTA
	ptMTAWorkers  = 64  // coarse crew size on the MTA
	ptFineCompare = 64  // fine-grained thread count for cross-platform comparisons
)

// ptSeq runs the sequential Gauss-Seidel auction on a platform and returns
// full-suite-scale seconds.
func ptSeq(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(PT, "sequential", key, procs, nil))
}

// ptCoarse runs the Jacobi auction (private bid buffers, per-track merge
// locks) and returns full-suite-scale seconds plus the run record for
// utilization inspection.
func ptCoarse(x *Exec, key string, procs, workers int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(PT, "coarse", key, procs, suite.Params{"workers": workers}))
	return rec.PaperSeconds, rec, err
}

// ptFine runs the asynchronous auction (fetch-and-add plot claims,
// full/empty track-ownership cells).
func ptFine(x *Exec, key string, procs, threadsN int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(PT, "fine", key, procs, suite.Params{"threads": threadsN}))
	return rec.PaperSeconds, rec, err
}

// runPlotSeq builds the paper-style sequential table for the fourth
// workload: Plot-Track Assignment without parallelization on all four
// platforms. The paper's evaluation covered only Threat Analysis and
// Terrain Masking; there is no paper column, so the table reports each
// platform relative to the Alpha, the paper's sequential yardstick.
func runPlotSeq(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "pt-sequential",
		Title:   "Execution time of sequential Plot-Track Assignment without parallelization",
		Columns: []string{"Platform", "Model (s)", "vs Alpha"},
		Notes: []string{
			"suite extension: the C3IPBS Plot-Track Assignment problem, not evaluated in the paper",
			fmt.Sprintf("model at scale %g, normalized to the suite's %d plots/scenario",
				x.Cfg.Scale(PT), paperUnits(PT)),
		},
	}
	var alpha float64
	for _, row := range []struct {
		name, key string
		procs     int
	}{
		{"Alpha", "alpha", 1},
		{"Pentium Pro", "ppro", 4},
		{"Exemplar", "exemplar", 16},
		{"Tera", "tera", 1},
	} {
		sec, err := ptSeq(x, row.key, row.procs)
		if err != nil {
			return nil, err
		}
		if row.name == "Alpha" {
			alpha = sec
		}
		tb.AddRow(row.name, sec, fmt.Sprintf("%.2f", sec/alpha))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runPlotStreams sweeps the thread count on one MTA processor (fine-grained
// variant) against the same sweep on the cached SMPs (coarse variant, their
// practical style): the MTA keeps gaining as streams multiply while the
// conventional machines saturate at their processor and bus limits — the
// acceptance shape for the suite's synchronization-heavy workload.
func runPlotStreams(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:    "pt-streams",
		Title: "Plot-Track Assignment vs thread count: one Tera MTA processor against the cached SMPs",
		Columns: []string{"Threads", "MTA fine (s)", "MTA issue util",
			"Exemplar-16 coarse (s)", "PPro-4 coarse (s)"},
		Notes: []string{
			"MTA runs the asynchronous auction, the SMPs the Jacobi crew auction (each architecture's practical style)",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(PT)),
		},
	}
	fig := &report.Figure{
		ID: "pt-streams-figure", Title: "Plot-Track Assignment speedup vs threads (speedup over 1 thread)",
		XLabel: "threads", YLabel: "speedup",
	}
	var mtaS, exS, ppS report.Series
	mtaS.Label, mtaS.Marker = "Tera MTA (1 proc)", '*'
	exS.Label, exS.Marker = "Exemplar (16 proc)", '+'
	ppS.Label, ppS.Marker = "Pentium Pro (4 proc)", 'o'
	var mta1, ex1, pp1 float64
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		mtaSec, rec, err := ptFine(x, "tera", 1, n)
		if err != nil {
			return nil, err
		}
		exSec, _, err := ptCoarse(x, "exemplar", 16, n)
		if err != nil {
			return nil, err
		}
		ppSec, _, err := ptCoarse(x, "ppro", 4, n)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			mta1, ex1, pp1 = mtaSec, exSec, ppSec
		}
		tb.AddRow(n, mtaSec, fmt.Sprintf("%.1f%%", rec.Stats.ProcUtil[0]*100), exSec, ppSec)
		mtaS.X = append(mtaS.X, float64(n))
		mtaS.Y = append(mtaS.Y, mta1/mtaSec)
		exS.X = append(exS.X, float64(n))
		exS.Y = append(exS.Y, ex1/exSec)
		ppS.X = append(ppS.X, float64(n))
		ppS.Y = append(ppS.Y, pp1/ppSec)
	}
	fig.Series = []report.Series{mtaS, exS, ppS}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}, nil
}

// runPlotVariants compares the three program styles across platforms — the
// Table 7/12 analogue for the fourth workload — and records why the coarse
// style cannot use the MTA's hundreds of streams (private-buffer memory).
func runPlotVariants(x *Exec) (*Result, error) {
	tera, err := platforms.Get("tera")
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		ID:      "pt-variants",
		Title:   "Performance comparison for execution times of Plot-Track Assignment",
		Columns: []string{"Parallelization", "Platform", "Model (s)"},
		Notes: []string{
			fmt.Sprintf("coarse style at %d workers would need %.1f GB of private bid buffers at the full C3I surveillance-frame size vs %d GB on the MTA",
				ptMTAThreads, coarseOverheadFullScaleGB(PT, ptMTAThreads), tera.MemoryBytes>>30),
			"the contested-track commits serialize on per-track locks for the coarse crew; the MTA's full/empty cells make the same serialization word-grained",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(PT)),
		},
	}
	type cell struct {
		group, name string
		run         func() (float64, error)
	}
	cells := []cell{
		{"None", "Alpha", func() (float64, error) { return ptSeq(x, "alpha", 1) }},
		{"None", "Tera", func() (float64, error) { return ptSeq(x, "tera", 1) }},
		{"Coarse", "Pentium Pro (4 processors)", func() (float64, error) {
			s, _, err := ptCoarse(x, "ppro", 4, 4)
			return s, err
		}},
		{"Coarse", "Exemplar (16 processors)", func() (float64, error) {
			s, _, err := ptCoarse(x, "exemplar", 16, 16)
			return s, err
		}},
		{"Coarse", fmt.Sprintf("Tera MTA (1 processor, %d workers)", ptMTAWorkers), func() (float64, error) {
			s, _, err := ptCoarse(x, "tera", 1, ptMTAWorkers)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Exemplar (16 processors, %d threads)", ptFineCompare), func() (float64, error) {
			s, _, err := ptFine(x, "exemplar", 16, ptFineCompare)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (1 processor, %d threads)", ptMTAThreads), func() (float64, error) {
			s, _, err := ptFine(x, "tera", 1, ptMTAThreads)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (2 processors, %d threads)", ptMTAThreads), func() (float64, error) {
			s, _, err := ptFine(x, "tera", 2, ptMTAThreads)
			return s, err
		}},
	}
	for _, c := range cells {
		sec, err := c.run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.group, c.name, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runPlotPipelined isolates the role of exposed memory latency in the
// sequential auction on the cache-less MTA: the bid loop's price loads are
// serially dependent in the calibrated kernel; the ablation re-prices them
// as fully pipelined streaming traffic (perfect lookahead) — the same
// restructuring argument as the repo-wide ablation-latency experiment,
// applied to the suite's synchronization-heavy workload.
func runPlotPipelined(x *Exec) (*Result, error) {
	price := func(pipelined int) (float64, error) {
		return x.Seconds(x.Spec(PT, "sequential", "tera", 1,
			suite.Params{"pipelined": pipelined}))
	}
	dep, err := price(0)
	if err != nil {
		return nil, err
	}
	pipe, err := price(1)
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		ID:      "pt-pipelined",
		Title:   "Sequential Plot-Track Assignment on one Tera MTA processor: dependent price loads vs perfect lookahead",
		Columns: []string{"Kernel", "Calibrated (s)", "All refs pipelined (s)", "Latency share"},
		Notes: []string{
			"with no cache, the bid loop's price-chasing loads expose the full memory latency to a lone stream; multithreading (not lookahead) is what hides it",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(PT)),
		},
	}
	tb.AddRow("Plot-Track Assignment", dep, pipe, fmt.Sprintf("%.0f%%", 100*(dep-pipe)/dep))
	return &Result{Tables: []*report.Table{tb}}, nil
}
