package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/report"
	"repro/internal/run"
)

// runProjectionScaling realizes the paper's stated future work (§8): "A
// potential strength of the Tera MTA that we were unable to investigate on a
// dual-processor configuration is scalability to large numbers of
// processors… It is possible that the Tera model of large numbers of
// fine-grained threads and no memory hierarchy may be effective in
// overcoming this obstacle."
//
// The projection runs both benchmarks on 1–64 processor MTA configurations
// under a mature-network assumption (latency multiplier 1.0, full bandwidth
// scaling), expressed as Spec network overrides. With a mature network the
// no-cache/many-threads model keeps scaling where the cached SMPs saturated
// — provided the program can supply enough threads, which is exactly the
// machine's precondition.
func runProjectionScaling(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "projection-scaling",
		Title:   "Projected Tera MTA scaling (the paper's future work, in the model)",
		Columns: []string{"Processors", "TA (speedup)", "TM fine (speedup)", "TM hybrid (speedup)"},
		Notes: []string{
			"mature network assumed (latency multiplier 1.0, full bandwidth); threads scale with processors",
			"TM fine keeps the per-threat driver serial (Amdahl-bound); TM hybrid overlaps drivers across workers with block locks",
			"Threat Analysis tops out when the 1000-threat outer loop runs out of parallelism — the paper's \"not all programs have the potential for hundreds of threads\"",
			fmt.Sprintf("scales %g/%g normalized", x.Cfg.Scale(TA), x.Cfg.Scale(TM)),
		},
	}

	mature := func(workload, variant string, procs int, params suite.Params) run.Spec {
		spec := x.Spec(workload, variant, "tera", procs, params)
		spec.NetLatencyMult, spec.NetBandwidthEff = 1.0, 1.0
		return spec
	}
	runTA := func(procs int) (float64, error) {
		// Enough threads to cover all processors' streams (until the threat
		// count runs out — the interesting limit).
		chunks := 256
		if c := procs * 128; c > chunks {
			chunks = c
		}
		return x.Seconds(mature(TA, "coarse", procs, suite.Params{"chunks": chunks}))
	}
	runTMFine := func(procs int) (float64, error) {
		return x.Seconds(mature(TM, "fine", procs,
			suite.Params{"sectors": tmSectors * procs, "merge": tmMergeChunks * procs}))
	}
	runTMHybrid := func(procs int) (float64, error) {
		return x.Seconds(mature(TM, "hybrid", procs,
			suite.Params{"workers": procs * 2, "sectors": tmSectors, "merge": tmMergeChunks, "blocks": 10}))
	}

	taBase, err := runTA(1)
	if err != nil {
		return nil, err
	}
	tmFineBase, err := runTMFine(1)
	if err != nil {
		return nil, err
	}
	tmHybridBase, err := runTMHybrid(1)
	if err != nil {
		return nil, err
	}

	fig := &report.Figure{
		ID: "projection-figure", Title: "Projected MTA speedup vs processors (mature network)",
		XLabel: "processors", YLabel: "speedup",
	}
	var taS, tmFineS, tmHybS report.Series
	taS.Label, taS.Marker = "Threat Analysis", '*'
	tmFineS.Label, tmFineS.Marker = "TM fine", '+'
	tmHybS.Label, tmHybS.Marker = "TM hybrid", 'o'

	for _, procs := range []int{1, 2, 4, 8, 16, 32, 64} {
		ta, err := runTA(procs)
		if err != nil {
			return nil, err
		}
		tmF, err := runTMFine(procs)
		if err != nil {
			return nil, err
		}
		tmH, err := runTMHybrid(procs)
		if err != nil {
			return nil, err
		}
		tb.AddRow(procs,
			report.FormatSpeedup(taBase/ta),
			report.FormatSpeedup(tmFineBase/tmF),
			report.FormatSpeedup(tmHybridBase/tmH))
		taS.X = append(taS.X, float64(procs))
		taS.Y = append(taS.Y, taBase/ta)
		tmFineS.X = append(tmFineS.X, float64(procs))
		tmFineS.Y = append(tmFineS.Y, tmFineBase/tmF)
		tmHybS.X = append(tmHybS.X, float64(procs))
		tmHybS.Y = append(tmHybS.Y, tmHybridBase/tmH)
	}
	fig.Series = []report.Series{taS, tmFineS, tmHybS}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}, nil
}
