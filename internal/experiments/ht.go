package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/platforms"
	"repro/internal/report"
	"repro/internal/run"
)

// Hypothesis Testing decomposition defaults: the worker/thread counts the
// paper-style tables use on each architecture (hundreds of threads on the
// MTA, one worker per processor on the conventional machines).
const (
	htMTAThreads  = 256 // fine-grained scoring threads on the MTA
	htMTAWorkers  = 64  // coarse crew size on the MTA
	htFineCompare = 64  // fine-grained thread count for cross-platform comparisons
)

// htSeq runs the sequential scoring loop on a platform and returns
// full-suite-scale seconds.
func htSeq(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(HT, "sequential", key, procs, nil))
}

// htCoarse runs the crew reduction (private partial-score buffers, barrier,
// per-hypothesis merge) and returns full-suite-scale seconds plus the run
// record for utilization inspection.
func htCoarse(x *Exec, key string, procs, workers int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(HT, "coarse", key, procs, suite.Params{"workers": workers}))
	return rec.PaperSeconds, rec, err
}

// htFine runs the asynchronous reduction (fetch-and-add observation claims,
// full/empty score guards).
func htFine(x *Exec, key string, procs, threadsN int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(HT, "fine", key, procs, suite.Params{"threads": threadsN}))
	return rec.PaperSeconds, rec, err
}

// runHypoSeq builds the paper-style sequential table for the fifth workload:
// Hypothesis Testing without parallelization on all four platforms. The
// paper's evaluation covered only Threat Analysis and Terrain Masking; there
// is no paper column, so the table reports each platform relative to the
// Alpha, the paper's sequential yardstick.
func runHypoSeq(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "ht-sequential",
		Title:   "Execution time of sequential Hypothesis Testing without parallelization",
		Columns: []string{"Platform", "Model (s)", "vs Alpha"},
		Notes: []string{
			"suite extension: the C3IPBS Hypothesis Testing problem, not evaluated in the paper",
			fmt.Sprintf("model at scale %g, normalized to the suite's %d observations/scenario",
				x.Cfg.Scale(HT), paperUnits(HT)),
		},
	}
	var alpha float64
	for _, row := range []struct {
		name, key string
		procs     int
	}{
		{"Alpha", "alpha", 1},
		{"Pentium Pro", "ppro", 4},
		{"Exemplar", "exemplar", 16},
		{"Tera", "tera", 1},
	} {
		sec, err := htSeq(x, row.key, row.procs)
		if err != nil {
			return nil, err
		}
		if row.name == "Alpha" {
			alpha = sec
		}
		tb.AddRow(row.name, sec, fmt.Sprintf("%.2f", sec/alpha))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runHypoStreams sweeps the thread count on one MTA processor (fine-grained
// variant) against the same sweep on the cached SMPs (coarse variant, their
// practical style): the scatter-add reduction keeps the MTA gaining as
// streams multiply while the conventional machines saturate — the acceptance
// shape for the suite's reduction-heavy workload.
func runHypoStreams(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:    "ht-streams",
		Title: "Hypothesis Testing vs thread count: one Tera MTA processor against the cached SMPs",
		Columns: []string{"Threads", "MTA fine (s)", "MTA issue util",
			"Exemplar-16 coarse (s)", "PPro-4 coarse (s)"},
		Notes: []string{
			"MTA commits evidence through full/empty score guards, the SMPs reduce private partial buffers (each architecture's practical style)",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(HT)),
		},
	}
	fig := &report.Figure{
		ID: "ht-streams-figure", Title: "Hypothesis Testing speedup vs threads (speedup over 1 thread)",
		XLabel: "threads", YLabel: "speedup",
	}
	var mtaS, exS, ppS report.Series
	mtaS.Label, mtaS.Marker = "Tera MTA (1 proc)", '*'
	exS.Label, exS.Marker = "Exemplar (16 proc)", '+'
	ppS.Label, ppS.Marker = "Pentium Pro (4 proc)", 'o'
	var mta1, ex1, pp1 float64
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		mtaSec, rec, err := htFine(x, "tera", 1, n)
		if err != nil {
			return nil, err
		}
		exSec, _, err := htCoarse(x, "exemplar", 16, n)
		if err != nil {
			return nil, err
		}
		ppSec, _, err := htCoarse(x, "ppro", 4, n)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			mta1, ex1, pp1 = mtaSec, exSec, ppSec
		}
		tb.AddRow(n, mtaSec, fmt.Sprintf("%.1f%%", rec.Stats.ProcUtil[0]*100), exSec, ppSec)
		mtaS.X = append(mtaS.X, float64(n))
		mtaS.Y = append(mtaS.Y, mta1/mtaSec)
		exS.X = append(exS.X, float64(n))
		exS.Y = append(exS.Y, ex1/exSec)
		ppS.X = append(ppS.X, float64(n))
		ppS.Y = append(ppS.Y, pp1/ppSec)
	}
	fig.Series = []report.Series{mtaS, exS, ppS}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}, nil
}

// runHypoVariants compares the three program styles across platforms — the
// Table 7/12 analogue for the fifth workload — and records why the coarse
// style cannot use the MTA's hundreds of streams (every worker carries a
// full private score vector).
func runHypoVariants(x *Exec) (*Result, error) {
	tera, err := platforms.Get("tera")
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		ID:      "ht-variants",
		Title:   "Performance comparison for execution times of Hypothesis Testing",
		Columns: []string{"Parallelization", "Platform", "Model (s)"},
		Notes: []string{
			fmt.Sprintf("coarse style at %d workers would need %.1f GB of private partial-score buffers at the full C3I hypothesis-space size vs %d GB on the MTA",
				htMTAThreads, coarseOverheadFullScaleGB(HT, htMTAThreads), tera.MemoryBytes>>30),
			"the contested evidence commits serialize on the merge reduction for the coarse crew; the MTA's full/empty guards make the same serialization word-grained",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(HT)),
		},
	}
	type cell struct {
		group, name string
		run         func() (float64, error)
	}
	cells := []cell{
		{"None", "Alpha", func() (float64, error) { return htSeq(x, "alpha", 1) }},
		{"None", "Tera", func() (float64, error) { return htSeq(x, "tera", 1) }},
		{"Coarse", "Pentium Pro (4 processors)", func() (float64, error) {
			s, _, err := htCoarse(x, "ppro", 4, 4)
			return s, err
		}},
		{"Coarse", "Exemplar (16 processors)", func() (float64, error) {
			s, _, err := htCoarse(x, "exemplar", 16, 16)
			return s, err
		}},
		{"Coarse", fmt.Sprintf("Tera MTA (1 processor, %d workers)", htMTAWorkers), func() (float64, error) {
			s, _, err := htCoarse(x, "tera", 1, htMTAWorkers)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Exemplar (16 processors, %d threads)", htFineCompare), func() (float64, error) {
			s, _, err := htFine(x, "exemplar", 16, htFineCompare)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (1 processor, %d threads)", htMTAThreads), func() (float64, error) {
			s, _, err := htFine(x, "tera", 1, htMTAThreads)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (2 processors, %d threads)", htMTAThreads), func() (float64, error) {
			s, _, err := htFine(x, "tera", 2, htMTAThreads)
			return s, err
		}},
	}
	for _, c := range cells {
		sec, err := c.run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.group, c.name, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runHypoGrid sweeps the workload's declared scenario grid — every
// combination of scale, gating window, prune threshold and network maturity
// — through the fine-grained variant on a two-processor MTA. Unlike the
// other experiments, each point carries its own scale (the grid's scale
// axis), so the configured scale does not apply; every Spec validates, so
// every row carries the output checksum the grid-wide conformance contract
// is stated over.
func runHypoGrid(x *Exec) (*Result, error) {
	pts, err := run.GridSpecs(HT, "fine", "tera", 2, nil)
	if err != nil {
		return nil, err
	}
	w, err := suite.Lookup(HT)
	if err != nil {
		return nil, err
	}
	cols := []string{}
	for _, a := range w.Grid.Axes {
		cols = append(cols, a.Name)
	}
	cols = append(cols, "Model (s)", "Checksum")
	tb := &report.Table{
		ID:      "ht-grid",
		Title:   "Hypothesis Testing over the declared scenario grid (fine-grained, two-processor Tera MTA)",
		Columns: cols,
		Notes: []string{
			fmt.Sprintf("%d grid points, row-major over the declared axes; net 0 is the calibrated network", len(pts)),
			"model seconds normalized per point to the suite's full observation load at that point's scale",
		},
	}
	for _, gp := range pts {
		rec, err := x.Run(gp.Spec)
		if err != nil {
			return nil, fmt.Errorf("grid point %s: %w", gp.Label, err)
		}
		row := []any{}
		for _, a := range w.Grid.Axes {
			row = append(row, fmt.Sprintf("%g", gp.Point[a.Name]))
		}
		row = append(row, rec.PaperSeconds, fmt.Sprintf("%016x", uint64(rec.Checksum)))
		tb.AddRow(row...)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}
