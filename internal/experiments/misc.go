package experiments

import (
	"strings"

	"repro/internal/autopar"
	"repro/internal/platforms"
	"repro/internal/report"
)

// runTable1 reproduces Table 1: the platforms used in the comparison.
func runTable1(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table1",
		Title:   "Platforms used in our performance comparison",
		Columns: []string{"Machine", "Processors", "Memory", "Operating System"},
	}
	for _, s := range platforms.All() {
		mem := "500 MB"
		if s.MemoryBytes >= 1<<30 {
			tb.AddRow(s.Name, s.Processors, formatGB(s.MemoryBytes), s.OS)
			continue
		}
		tb.AddRow(s.Name, s.Processors, mem, s.OS)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

func formatGB(b uint64) string {
	switch b >> 30 {
	case 2:
		return "2 GB"
	case 4:
		return "4 GB"
	default:
		return "≥1 GB"
	}
}

// runAutopar reproduces the paper's automatic-parallelization result: the
// dependence analyzer's verdicts and feedback for Programs 1–4 (plus the
// textbook controls showing the analyzer is not trivially pessimistic).
func runAutopar(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "autopar",
		Title:   "Automatic parallelization verdicts (dependence analyzer)",
		Columns: []string{"Program", "Verdict (outer loop)", "Practical opportunities found"},
		Notes: []string{
			"matches the paper: \"the manufacturer-supplied automatic parallelizing compilers were unable to identify any practical opportunities for parallelization\"",
			"the transformed programs parallelize only via their explicit pragmas",
		},
	}
	var text strings.Builder
	add := func(p *autopar.Program) {
		reports := autopar.AnalyzeProgram(p)
		verdict := "—"
		if len(reports) > 0 {
			verdict = reports[0].Verdict.String()
		}
		practical := "no"
		if autopar.AnyPractical(reports) {
			practical = "yes"
		}
		tb.AddRow(p.Name, verdict, practical)
		text.WriteString(autopar.Render(p.Name, reports))
		text.WriteString("\n")
	}
	add(autopar.Program1ThreatSequential())
	add(autopar.Program2ThreatChunked(false))
	add(autopar.Program2ThreatChunked(true))
	add(autopar.Program3TerrainSequential())
	add(autopar.Program4TerrainCoarse(false))
	add(autopar.Program4TerrainCoarse(true))

	// Controls: the analyzer does parallelize what is actually parallel.
	ctl := &report.Table{
		ID:      "autopar-controls",
		Title:   "Analyzer controls (textbook loops)",
		Columns: []string{"Loop", "Verdict"},
	}
	for _, p := range []*autopar.Program{
		autopar.VectorAdd(), autopar.SumReduction(),
		autopar.StridedDisjoint(), autopar.Stencil1D(),
	} {
		reports := autopar.AnalyzeProgram(p)
		ctl.AddRow(p.Name, reports[0].Verdict.String())
		text.WriteString(autopar.Render(p.Name, reports))
		text.WriteString("\n")
	}
	return &Result{Tables: []*report.Table{tb, ctl}, Text: text.String()}, nil
}
