package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/run"
)

// Integration tests: every qualitative finding of the paper must hold in the
// model at reduced workload scale. These run the full pipeline (benchmark
// programs through machine models), so they are the repository's
// end-to-end checks.

var testCfg = Config{Scales: map[string]float64{TA: 0.1, TM: 0.1, RO: 0.05, PT: 0.1, HT: 0.1}}

// testX is the Exec the helper-level tests run their Specs through; it
// shares the package Runner, so cells overlap with the experiment-level
// tests exactly as production consumers overlap.
var testX = &Exec{Cfg: testCfg, ctx: context.Background(), runner: sharedRunner}

func TestSequentialTAOrdering(t *testing.T) {
	// Paper Table 2: Alpha < Exemplar < Pentium Pro ≪ Tera.
	alpha, err := taSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	ppro, err := taSeq(testX, "ppro", 4)
	if err != nil {
		t.Fatal(err)
	}
	exem, err := taSeq(testX, "exemplar", 16)
	if err != nil {
		t.Fatal(err)
	}
	tera, err := taSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(alpha < exem && exem < ppro && ppro < tera) {
		t.Errorf("ordering wrong: alpha=%.0f exemplar=%.0f ppro=%.0f tera=%.0f", alpha, exem, ppro, tera)
	}
	if r := tera / alpha; r < 8 || r > 20 {
		t.Errorf("tera/alpha = %.1f, want ≈ 14 (paper: roughly 14 times slower)", r)
	}
}

func TestTAExemplarScalesNearLinearly(t *testing.T) {
	// Paper Table 4: 15.4-fold speedup on 16 processors.
	seq, err := taSeq(testX, "exemplar", 16)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := taChunked(testX, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s := seq / par; s < 11 || s > 16.5 {
		t.Errorf("16-proc speedup = %.1f, want ≈ 14-15.5", s)
	}
}

func TestTATeraChunkSweepShape(t *testing.T) {
	// Paper Table 6: time falls with chunk count and flattens by 128.
	var prev float64
	times := map[int]float64{}
	for _, chunks := range []int{8, 16, 32, 64, 128, 256} {
		sec, _, err := taChunked(testX, "tera", 2, chunks)
		if err != nil {
			t.Fatal(err)
		}
		times[chunks] = sec
		if prev > 0 && sec > prev*1.08 {
			t.Errorf("chunk sweep not non-increasing: %d chunks %.1f s after %.1f s", chunks, sec, prev)
		}
		prev = sec
	}
	if f := times[128] / times[256]; f < 0.85 || f > 1.2 {
		t.Errorf("128 vs 256 chunks = %.2f, want ≈ flat", f)
	}
	if f := times[8] / times[128]; f < 4 || f > 12 {
		t.Errorf("8 vs 128 chunks = %.1fx, want ≈ 8x (the machine needs hundreds of threads)", f)
	}
}

func TestTATeraMultithreadedVsSequential(t *testing.T) {
	// Paper: "The multithreaded program runs dramatically faster (32 times
	// faster on one processor) than the sequential program on the Tera MTA."
	seq, err := taSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := taChunked(testX, "tera", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if f := seq / par; f < 20 || f > 40 {
		t.Errorf("tera multithreaded speedup = %.1f, want ≈ 30", f)
	}
}

func TestTATeraTwoProcSpeedup(t *testing.T) {
	// Paper Table 5: 1.8 on two processors.
	one, _, err := taChunked(testX, "tera", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := taChunked(testX, "tera", 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s := one / two; s < 1.5 || s > 2.05 {
		t.Errorf("2-proc speedup = %.2f, want ≈ 1.8", s)
	}
}

func TestSequentialTMOrderingAndRatios(t *testing.T) {
	// Paper Table 8: Alpha < PPro < Exemplar ≪ Tera; Tera ≈ 6x Alpha.
	alpha, err := tmSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	tera, err := tmSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := tera / alpha; r < 4.5 || r > 9 {
		t.Errorf("tera/alpha = %.1f, want ≈ 6 (memory-bound: smaller gap than TA)", r)
	}
	// The key contrast with TA: the Tera penalty is much smaller for the
	// memory-bound program.
	taAlpha, err := taSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	taTera, err := taSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if (tera / alpha) >= (taTera / taAlpha) {
		t.Errorf("TM tera ratio %.1f not smaller than TA ratio %.1f", tera/alpha, taTera/taAlpha)
	}
}

func TestTMPentiumProSaturates(t *testing.T) {
	// Paper Table 9: three-fold speedup on four processors (memory-bound).
	seq, err := tmSeq(testX, "ppro", 4)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := tmCoarse(testX, "ppro", 4, 4, tmBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if s := seq / par; s < 2.2 || s > 3.8 {
		t.Errorf("PPro 4-proc TM speedup = %.1f, want ≈ 3 (bus saturation)", s)
	}
}

func TestTMExemplarPlateaus(t *testing.T) {
	// Paper Table 10: speedup plateaus around 6-7 well below 16.
	seq, err := tmSeq(testX, "exemplar", 16)
	if err != nil {
		t.Fatal(err)
	}
	par16, _, err := tmCoarse(testX, "exemplar", 16, 16, tmBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if s := seq / par16; s < 4.5 || s > 10 {
		t.Errorf("Exemplar 16-proc TM speedup = %.1f, want ≈ 6-8 (plateau)", s)
	}
}

func TestTMTeraFine(t *testing.T) {
	// Paper Table 11 + §6: ~20x over Tera sequential; 1.4 on two processors.
	seq, err := tmSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := tmFine(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := tmFine(testX, "tera", 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := seq / one; f < 15 || f > 35 {
		t.Errorf("fine-grained vs sequential = %.1fx, want ≈ 20x", f)
	}
	if s := one / two; s < 1.05 || s > 1.7 {
		t.Errorf("2-proc speedup = %.2f, want ≈ 1.4", s)
	}
}

func TestTeraBeatsAlphaWhenMultithreaded(t *testing.T) {
	// Paper §7: one MTA processor multithreaded is 2-3.5x faster than the
	// Alpha for these codes.
	taAlpha, err := taSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	taTera, _, err := taChunked(testX, "tera", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r := taAlpha / taTera; r < 1.5 || r > 4 {
		t.Errorf("TA: alpha/tera-1proc = %.2f, want ≈ 2.3", r)
	}
	tmAlpha, err := tmSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	tmTera, err := tmFine(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := tmAlpha / tmTera; r < 1.8 || r > 5 {
		t.Errorf("TM: alpha/tera-1proc = %.2f, want ≈ 3.3", r)
	}
}

func TestTeraOneProcEquivalentToFourExemplar(t *testing.T) {
	// Paper §5: "the performance of one 255 MHz Tera MTA processor is
	// approximately equivalent to four 180 MHz Exemplar processors."
	tera, _, err := taChunked(testX, "tera", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	exem4, _, err := taChunked(testX, "exemplar", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r := tera / exem4; r < 0.6 || r > 1.6 {
		t.Errorf("tera-1proc / exemplar-4proc = %.2f, want ≈ 1", r)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	for _, e := range All() {
		res, err := e.Run(testCfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no tables produced", e.ID)
		}
		for _, tb := range res.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: table %s empty", e.ID, tb.ID)
			}
			if out := tb.Render(); !strings.Contains(out, "│") {
				t.Errorf("%s: table %s renders empty", e.ID, tb.ID)
			}
		}
	}
}

func TestFiguresProducedForSpeedupTables(t *testing.T) {
	for _, id := range []string{"table3", "table4", "table9", "table10"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(testCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Figures) != 1 {
			t.Errorf("%s: %d figures, want 1", id, len(res.Figures))
			continue
		}
		if out := res.Figures[0].Render(50, 12); !strings.Contains(out, "speedup") {
			t.Errorf("%s: figure missing axis labels", id)
		}
	}
}

func TestAutomaticEqualsSequentialInSummaries(t *testing.T) {
	for _, id := range []string{"table7", "table12"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(testCfg)
		if err != nil {
			t.Fatal(err)
		}
		tb := res.Tables[0]
		byKey := map[string]string{}
		for _, row := range tb.Rows {
			byKey[row[0]+"|"+row[1]] = row[3]
		}
		for _, plat := range []string{"Exemplar", "Tera"} {
			if byKey["Automatic|"+plat] != byKey["None|"+plat] {
				t.Errorf("%s: automatic (%s) != sequential (%s) for %s",
					id, byKey["Automatic|"+plat], byKey["None|"+plat], plat)
			}
		}
	}
}

func TestAutoparExperimentVerdicts(t *testing.T) {
	e, err := Get("autopar")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	practical := map[string]string{}
	for _, row := range tb.Rows {
		practical[row[0]] = row[2]
	}
	for name, want := range map[string]string{
		"Program 1: sequential Threat Analysis": "no",
		"Program 3: sequential Terrain Masking": "no",
	} {
		if practical[name] != want {
			t.Errorf("%s practical = %q, want %q", name, practical[name], want)
		}
	}
	if !strings.Contains(res.Text, "num_intervals") {
		t.Error("autopar feedback does not mention num_intervals")
	}
	// Controls: the analyzer parallelizes what is actually parallel.
	ctl := res.Tables[1]
	for _, row := range ctl.Rows {
		if row[0] == "vector add" && row[1] != "PARALLELIZED" {
			t.Errorf("vector add verdict = %q", row[1])
		}
		if row[0] == "1-d stencil" && row[1] != "NOT PARALLELIZED" {
			t.Errorf("stencil verdict = %q", row[1])
		}
	}
}

func TestFineGrainedStylePracticalOnlyOnMTA(t *testing.T) {
	// Ablation: fine-grained TM should be much worse than coarse on the
	// Exemplar, while on the MTA fine-grained is the practical approach.
	coarse, _, err := tmCoarse(testX, "exemplar", 16, 16, tmBlocks)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := tmFine(testX, "exemplar", 16)
	if err != nil {
		t.Fatal(err)
	}
	if fine < coarse*1.5 {
		t.Errorf("fine (%.1f) vs coarse (%.1f) on Exemplar: want ≥ 1.5x worse", fine, coarse)
	}
}

func TestRouteSequentialOrdering(t *testing.T) {
	// The suite's irregular workload: dependent scattered loads are nearly
	// free under a cache that holds the distance array and expose the full
	// memory latency on the cache-less MTA, so the sequential gap is at
	// least as dramatic as Threat Analysis's.
	alpha, err := roSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	tera, err := roSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := tera / alpha; r < 10 || r > 40 {
		t.Errorf("tera/alpha = %.1f, want 10-40 (pointer-chasing exposes full latency)", r)
	}
}

func TestRouteMTAScalesWhileSMPsSaturate(t *testing.T) {
	// The acceptance shape for the third workload: the MTA's fine-grained
	// variant keeps scaling with streams, while the cached SMPs saturate at
	// their processor counts and memory systems, then degrade.
	fine1, _, err := roFine(testX, "tera", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine128, _, err := roFine(testX, "tera", 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	mtaSpeedup := fine1 / fine128
	if mtaSpeedup < 8 {
		t.Errorf("MTA fine-grained speedup at 128 threads = %.1f, want ≥ 8", mtaSpeedup)
	}

	ex1, _, err := roCoarse(testX, "exemplar", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex16, _, err := roCoarse(testX, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ex128, _, err := roCoarse(testX, "exemplar", 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ex16 >= ex1 {
		t.Errorf("Exemplar coarse did not speed up at all: %.1f s at 16 workers vs %.1f s at 1", ex16, ex1)
	}
	if s := ex1 / ex16; s >= mtaSpeedup {
		t.Errorf("Exemplar speedup %.1f not below MTA's %.1f — the SMP should saturate first", s, mtaSpeedup)
	}
	if ex128 < ex16 {
		t.Errorf("Exemplar kept scaling past saturation: %.1f s at 128 workers vs %.1f s at 16", ex128, ex16)
	}

	pp1, _, err := roCoarse(testX, "ppro", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp4, _, err := roCoarse(testX, "ppro", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := pp1 / pp4; s < 1.3 || s > 4.2 {
		t.Errorf("PPro 4-worker speedup = %.1f, want modest (bus-bound)", s)
	}
}

func TestRouteFineGrainedImpracticalOnSMP(t *testing.T) {
	// The Tera style (a crowd of threads per wavefront, per-word sync) must
	// be far worse than the coarse crew on a conventional SMP.
	coarse, _, err := roCoarse(testX, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := roFine(testX, "exemplar", 16, roFineCompare)
	if err != nil {
		t.Fatal(err)
	}
	if fine < coarse*1.5 {
		t.Errorf("fine (%.1f) vs coarse (%.1f) on Exemplar: want ≥ 1.5x worse", fine, coarse)
	}
}

func TestPlotSequentialOrdering(t *testing.T) {
	// The suite's synchronization-heavy workload: the bid loop's price
	// chasing is dependent-load bound, so the cache-less MTA pays a
	// dramatic sequential penalty, like the other workloads.
	alpha, err := ptSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	tera, err := ptSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := tera / alpha; r < 6 || r > 30 {
		t.Errorf("tera/alpha = %.1f, want 6-30 (price chasing exposes full latency)", r)
	}
}

func TestPlotMTAScalesWhileSMPsSaturate(t *testing.T) {
	// The acceptance shape for the fourth workload: the MTA's asynchronous
	// auction keeps scaling with streams, while the cached SMPs saturate at
	// their processor counts and lock traffic, then degrade.
	fine1, _, err := ptFine(testX, "tera", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine128, _, err := ptFine(testX, "tera", 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	mtaSpeedup := fine1 / fine128
	if mtaSpeedup < 8 {
		t.Errorf("MTA fine-grained speedup at 128 threads = %.1f, want ≥ 8", mtaSpeedup)
	}

	ex1, _, err := ptCoarse(testX, "exemplar", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	exBest, _, err := ptCoarse(testX, "exemplar", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex128, _, err := ptCoarse(testX, "exemplar", 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	if exBest >= ex1 {
		t.Errorf("Exemplar coarse did not speed up at all: %.1f s at 4 workers vs %.1f s at 1", exBest, ex1)
	}
	if s := ex1 / exBest; s >= mtaSpeedup {
		t.Errorf("Exemplar speedup %.1f not below MTA's %.1f — the SMP should saturate first", s, mtaSpeedup)
	}
	if ex128 < exBest {
		t.Errorf("Exemplar kept scaling past saturation: %.1f s at 128 workers vs %.1f s at 4", ex128, exBest)
	}
}

func TestPlotFineGrainedImpracticalOnSMP(t *testing.T) {
	// The Tera style (a crowd of bid threads per frame, full/empty commits)
	// must be far worse than the coarse crew on a conventional SMP.
	coarse, _, err := ptCoarse(testX, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := ptFine(testX, "exemplar", 16, ptFineCompare)
	if err != nil {
		t.Fatal(err)
	}
	if fine < coarse*1.5 {
		t.Errorf("fine (%.1f) vs coarse (%.1f) on Exemplar: want ≥ 1.5x worse", fine, coarse)
	}
}

func TestPlotPipelinedAblationShape(t *testing.T) {
	// The perfect-lookahead re-pricing must help the lone MTA stream but
	// not erase the gap: latency hiding needs threads, not lookahead.
	res, err := runPlotPipelined(testX)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Tables[0].Rows[0]
	dep, pipe := row[1], row[2]
	var d, p float64
	if _, err := fmt.Sscanf(dep, "%f", &d); err != nil {
		t.Fatalf("calibrated cell %q: %v", dep, err)
	}
	if _, err := fmt.Sscanf(pipe, "%f", &p); err != nil {
		t.Fatalf("pipelined cell %q: %v", pipe, err)
	}
	if !(p < d) {
		t.Errorf("pipelined %.2f not below calibrated %.2f", p, d)
	}
	if p < d*0.3 {
		t.Errorf("pipelined %.2f vs %.2f: lookahead should not erase most of the time", p, d)
	}
}

func TestHypoSequentialOrdering(t *testing.T) {
	// The suite's reduction-heavy workload: the scoring loop's evidence
	// commits are scattered read-modify-writes, so the cache-less MTA pays a
	// substantial sequential penalty, like the other workloads.
	alpha, err := htSeq(testX, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	tera, err := htSeq(testX, "tera", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := tera / alpha; r < 4 || r > 30 {
		t.Errorf("tera/alpha = %.1f, want 4-30 (scatter-adds expose full latency)", r)
	}
}

func TestHypoMTAScalesWhileSMPsSaturate(t *testing.T) {
	// The acceptance shape for the fifth workload: the MTA's asynchronous
	// scatter-add reduction keeps scaling with streams, while on the cached
	// SMPs the crew overhead (OS thread creation, the merge's linear-in-
	// workers partial-buffer traffic) swamps the small reduction almost
	// immediately. Run at full scale so the SMP crew has its best case.
	big := &Exec{Cfg: Config{Scales: map[string]float64{HT: 1}}, ctx: context.Background(), runner: sharedRunner}
	fine1, _, err := htFine(big, "tera", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine128, _, err := htFine(big, "tera", 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	mtaSpeedup := fine1 / fine128
	if mtaSpeedup < 8 {
		t.Errorf("MTA fine-grained speedup at 128 threads = %.1f, want ≥ 8", mtaSpeedup)
	}
	ex1, _, err := htCoarse(big, "exemplar", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	exBest := ex1
	for _, w := range []int{2, 4, 8} {
		s, _, err := htCoarse(big, "exemplar", 16, w)
		if err != nil {
			t.Fatal(err)
		}
		if s < exBest {
			exBest = s
		}
	}
	ex16, _, err := htCoarse(big, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if exBest >= ex1 {
		t.Errorf("Exemplar coarse never beat one worker: best %.2f s vs %.2f s", exBest, ex1)
	}
	if s := ex1 / exBest; s >= mtaSpeedup {
		t.Errorf("Exemplar speedup %.1f not below MTA's %.1f — the SMP should saturate first", s, mtaSpeedup)
	}
	if ex16 < exBest {
		t.Errorf("Exemplar kept scaling to 16 workers: %.2f s vs best %.2f s — crew overhead should bite", ex16, exBest)
	}
}

func TestHypoFineGrainedImpracticalOnSMP(t *testing.T) {
	// The Tera style (a thread per observation, full/empty evidence commits)
	// must be clearly worse than the coarse crew on a conventional SMP.
	coarse, _, err := htCoarse(testX, "exemplar", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := htFine(testX, "exemplar", 16, htFineCompare)
	if err != nil {
		t.Fatal(err)
	}
	if fine < coarse*1.5 {
		t.Errorf("fine (%.1f) vs coarse (%.1f) on Exemplar: want ≥ 1.5x worse", fine, coarse)
	}
}

func TestHypoGridOneRecordPerPoint(t *testing.T) {
	// The grid sweep experiment must execute exactly the declared grid: one
	// validated record per point, in the grid's canonical order, every
	// record carrying a checksum, and all records at one semantic point
	// (same scale and params, different network) agreeing on it.
	pts, err := run.GridSpecs(HT, "fine", "tera", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Get2(t, "ht-grid").Run(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(pts) {
		t.Fatalf("%d records for %d declared grid points", len(res.Records), len(pts))
	}
	byBinding := map[string]run.Checksum{}
	for i, rec := range res.Records {
		if rec.Key != pts[i].Spec.Key() {
			t.Errorf("record %d key %s, want grid order %s", i, rec.Key, pts[i].Spec.Key())
		}
		if rec.Checksum == 0 {
			t.Errorf("record %d (%s): no checksum on a validated grid run", i, rec.Key)
		}
		bind := fmt.Sprintf("s%g|%s", rec.Spec.Scale, rec.Spec.Params.String())
		if prev, ok := byBinding[bind]; ok && prev != rec.Checksum {
			t.Errorf("binding %s: checksum changed with the network axis: %016x vs %016x",
				bind, uint64(rec.Checksum), uint64(prev))
		}
		byBinding[bind] = rec.Checksum
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != len(pts) {
		t.Errorf("grid table does not have one row per point")
	}
}

// Get2 is Get with the error folded into the test.
func Get2(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// render flattens an experiment result to one comparable string.
func render(res *Result) string {
	if res == nil {
		return ""
	}
	var sb strings.Builder
	for _, tb := range res.Tables {
		sb.WriteString(tb.Render())
	}
	for _, fig := range res.Figures {
		sb.WriteString(fig.Render(56, 16))
	}
	sb.WriteString(res.Text)
	return sb.String()
}

func TestRunManyParallelMatchesSerial(t *testing.T) {
	// The acceptance property for the parallel runner: a -jobs 4 sweep must
	// reproduce exactly the serial run's tables and figures, in order, with
	// unknown IDs reported in place rather than aborting the sweep.
	ids := []string{"table1", "table2", "table5", "autopar", "no-such-experiment", "ro-sequential"}
	var streamed []string
	serial := RunEach(ids, testCfg, 1, func(oc Outcome) {
		streamed = append(streamed, oc.Experiment.ID)
	})
	ResetCaches()
	parallel := RunMany(ids, testCfg, 4)
	if len(streamed) != len(ids) {
		t.Fatalf("emit called %d times, want %d", len(streamed), len(ids))
	}
	for i, id := range ids {
		if streamed[i] != id {
			t.Errorf("streamed[%d] = %q, want %q", i, streamed[i], id)
		}
	}
	if len(serial) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("outcome counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(ids))
	}
	for i, id := range ids {
		s, p := serial[i], parallel[i]
		if s.Experiment.ID != id || p.Experiment.ID != id {
			t.Errorf("outcome %d out of order: serial %q, parallel %q, want %q",
				i, s.Experiment.ID, p.Experiment.ID, id)
		}
		if id == "no-such-experiment" {
			if s.Err == nil || p.Err == nil {
				t.Errorf("unknown id %q did not error (serial %v, parallel %v)", id, s.Err, p.Err)
			}
			continue
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s failed: serial %v, parallel %v", id, s.Err, p.Err)
		}
		if render(s.Result) != render(p.Result) {
			t.Errorf("%s: parallel output differs from serial", id)
		}
	}
}

func TestRunManyConcurrentSweep(t *testing.T) {
	// Experiments that share summary cells run concurrently against the
	// single-flight caches; every table must still materialize.
	if testing.Short() {
		t.Skip("concurrent sweep is slow")
	}
	ResetCaches()
	ids := []string{"table2", "table5", "table6", "table7", "ablation-streams"}
	for _, oc := range RunMany(ids, testCfg, len(ids)) {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Experiment.ID, oc.Err)
		}
		if len(oc.Result.Tables) == 0 || len(oc.Result.Tables[0].Rows) == 0 {
			t.Errorf("%s: empty result", oc.Experiment.ID)
		}
	}
}

func TestDefaultConfigCoversRegistry(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range []string{TA, TM, RO, PT} {
		if cfg.Scales[name] <= 0 {
			t.Errorf("DefaultConfig missing scale for %s", name)
		}
		if cfg.Scale(name) != cfg.Scales[name] {
			t.Errorf("Scale(%s) = %g, want %g", name, cfg.Scale(name), cfg.Scales[name])
		}
	}
	// Missing entries fall back to registry defaults rather than zero.
	if (Config{}).Scale(TA) <= 0 {
		t.Error("zero Config does not fall back to the registered default scale")
	}
}

func TestResultCarriesRecords(t *testing.T) {
	// Every model cell of a table must be backed by a raw run.Record — the
	// machine-readable counterpart the -json CLI mode and the CI model_s
	// gate consume.
	e, err := Get("table5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("table5 produced %d records, want 2 (one and two MTA processors)", len(res.Records))
	}
	for i, rec := range res.Records {
		if rec.Spec.Workload != TA || rec.Spec.Variant != "coarse" || rec.Spec.Platform != "tera" {
			t.Errorf("record %d spec = %+v, want TA coarse on tera", i, rec.Spec)
		}
		if rec.Spec.Procs != i+1 {
			t.Errorf("record %d procs = %d, want %d", i, rec.Spec.Procs, i+1)
		}
		if rec.ModelSeconds <= 0 || rec.PaperSeconds <= 0 {
			t.Errorf("record %d has non-positive seconds: %+v", i, rec)
		}
		if rec.Key == "" || rec.Key != rec.Spec.Key() {
			t.Errorf("record %d key %q does not match its spec key %q", i, rec.Key, rec.Spec.Key())
		}
	}
}

func TestRecordsRoundTripThroughSpecs(t *testing.T) {
	// The acceptance property of the execution API: records serialized to
	// JSON (the `c3ibench -json` payload) and re-executed from their own
	// Specs on a fresh Runner reproduce identical ModelSeconds and Checksum.
	e, err := Get("table5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []run.Record
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	fresh := run.NewRunner(0)
	for i, rec := range decoded {
		again, err := fresh.Run(context.Background(), rec.Spec)
		if err != nil {
			t.Fatalf("re-executing record %d (%s): %v", i, rec.Key, err)
		}
		if again.ModelSeconds != rec.ModelSeconds {
			t.Errorf("record %d: re-run ModelSeconds %g != emitted %g", i, again.ModelSeconds, rec.ModelSeconds)
		}
		if again.Checksum != rec.Checksum {
			t.Errorf("record %d: re-run Checksum %016x != emitted %016x", i, uint64(again.Checksum), uint64(rec.Checksum))
		}
		if again.Key != rec.Key {
			t.Errorf("record %d: re-run Key %q != emitted %q", i, again.Key, rec.Key)
		}
	}
}

func TestGetUnknownExperiment(t *testing.T) {
	if _, err := Get("table99"); err == nil {
		t.Error("Get(table99) did not fail")
	}
}

func TestIDsMatchAll(t *testing.T) {
	ids := IDs()
	all := All()
	if len(ids) != len(all) {
		t.Fatalf("IDs() len %d != All() len %d", len(ids), len(all))
	}
	for i := range all {
		if ids[i] != all[i].ID {
			t.Errorf("IDs[%d] = %q, want %q", i, ids[i], all[i].ID)
		}
	}
}
