package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/platforms"
	"repro/internal/report"
	"repro/internal/run"
)

// Route Optimization decomposition defaults: the coarse variant's grid
// blocking for its merge locks, and the chunk/thread counts the paper-style
// tables use on each architecture (hundreds of threads on the MTA, one
// worker per processor on the conventional machines).
const (
	roBlocks      = 4   // blocks×blocks per-block merge locks (16 locks)
	roMTAThreads  = 256 // fine-grained threads per wavefront on the MTA
	roMTAChunks   = 64  // coarse chunks on the MTA
	roFineCompare = 64  // fine-grained thread count for cross-platform comparisons
)

// roSeq runs sequential Route Optimization (Dijkstra) on a platform and
// returns full-suite-scale seconds.
func roSeq(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(RO, "sequential", key, procs, nil))
}

// roCoarse runs the coarse ∆-stepping variant (private candidate buffers,
// per-block merge locks) and returns full-suite-scale seconds plus the run
// record for utilization inspection.
func roCoarse(x *Exec, key string, procs, workers int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(RO, "coarse", key, procs,
		suite.Params{"workers": workers, "blocks": roBlocks}))
	return rec.PaperSeconds, rec, err
}

// roFine runs the fine-grained shared-bucket variant (fetch-and-add claims,
// full/empty distance guards).
func roFine(x *Exec, key string, procs, threadsN int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(RO, "fine", key, procs, suite.Params{"threads": threadsN}))
	return rec.PaperSeconds, rec, err
}

// runRouteSeq builds the paper-style sequential table for the third
// workload: Route Optimization without parallelization on all four
// platforms. The paper's evaluation covered only Threat Analysis and Terrain
// Masking; there is no paper column, so the table reports each platform
// relative to the Alpha, the paper's sequential yardstick.
func runRouteSeq(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "ro-sequential",
		Title:   "Execution time of sequential Route Optimization without parallelization",
		Columns: []string{"Platform", "Model (s)", "vs Alpha"},
		Notes: []string{
			"suite extension: the C3IPBS Route Optimization problem, not evaluated in the paper",
			fmt.Sprintf("model at scale %g, normalized to the suite's %d route requests/scenario",
				x.Cfg.Scale(RO), paperUnits(RO)),
		},
	}
	var alpha float64
	for _, row := range []struct {
		name, key string
		procs     int
	}{
		{"Alpha", "alpha", 1},
		{"Pentium Pro", "ppro", 4},
		{"Exemplar", "exemplar", 16},
		{"Tera", "tera", 1},
	} {
		sec, err := roSeq(x, row.key, row.procs)
		if err != nil {
			return nil, err
		}
		if row.name == "Alpha" {
			alpha = sec
		}
		tb.AddRow(row.name, sec, fmt.Sprintf("%.2f", sec/alpha))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runRouteStreams sweeps the thread count on one MTA processor (fine-grained
// variant) against the same sweep on the cached SMPs (coarse variant, their
// practical style): the MTA keeps gaining as streams multiply while the
// conventional machines saturate at their processor and bus limits — the
// acceptance shape for the suite's irregular workload.
func runRouteStreams(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:    "ro-streams",
		Title: "Route Optimization vs thread count: one Tera MTA processor against the cached SMPs",
		Columns: []string{"Threads", "MTA fine (s)", "MTA issue util",
			"Exemplar-16 coarse (s)", "PPro-4 coarse (s)"},
		Notes: []string{
			"MTA runs the fine-grained shared-bucket variant, the SMPs the coarse private-buffer variant (each architecture's practical style)",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(RO)),
		},
	}
	fig := &report.Figure{
		ID: "ro-streams-figure", Title: "Route Optimization speedup vs threads (speedup over 1 thread)",
		XLabel: "threads", YLabel: "speedup",
	}
	var mtaS, exS, ppS report.Series
	mtaS.Label, mtaS.Marker = "Tera MTA (1 proc)", '*'
	exS.Label, exS.Marker = "Exemplar (16 proc)", '+'
	ppS.Label, ppS.Marker = "Pentium Pro (4 proc)", 'o'
	var mta1, ex1, pp1 float64
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		mtaSec, rec, err := roFine(x, "tera", 1, n)
		if err != nil {
			return nil, err
		}
		exSec, _, err := roCoarse(x, "exemplar", 16, n)
		if err != nil {
			return nil, err
		}
		ppSec, _, err := roCoarse(x, "ppro", 4, n)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			mta1, ex1, pp1 = mtaSec, exSec, ppSec
		}
		tb.AddRow(n, mtaSec, fmt.Sprintf("%.1f%%", rec.Stats.ProcUtil[0]*100), exSec, ppSec)
		mtaS.X = append(mtaS.X, float64(n))
		mtaS.Y = append(mtaS.Y, mta1/mtaSec)
		exS.X = append(exS.X, float64(n))
		exS.Y = append(exS.Y, ex1/exSec)
		ppS.X = append(ppS.X, float64(n))
		ppS.Y = append(ppS.Y, pp1/ppSec)
	}
	fig.Series = []report.Series{mtaS, exS, ppS}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}, nil
}

// runRouteVariants compares the three program styles across platforms — the
// Table 7/12 analogue for the third workload — and records why the coarse
// style cannot use the MTA's hundreds of streams (private-buffer memory).
func runRouteVariants(x *Exec) (*Result, error) {
	tera, err := platforms.Get("tera")
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		ID:      "ro-variants",
		Title:   "Performance comparison for execution times of Route Optimization",
		Columns: []string{"Parallelization", "Platform", "Model (s)"},
		Notes: []string{
			fmt.Sprintf("coarse style at %d workers would need %.1f GB of private candidate buffers at full terrain resolution vs %d GB on the MTA",
				roMTAThreads, coarseOverheadFullScaleGB(RO, roMTAThreads), tera.MemoryBytes>>30),
			"two MTA processors gain little here: each wavefront's dependent-load chain bounds the phase critical path, and the development-status network lengthens it (cf. the paper's 1.4 Terrain Masking speedup)",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(RO)),
		},
	}
	type cell struct {
		group, name string
		run         func() (float64, error)
	}
	cells := []cell{
		{"None", "Alpha", func() (float64, error) { return roSeq(x, "alpha", 1) }},
		{"None", "Tera", func() (float64, error) { return roSeq(x, "tera", 1) }},
		{"Coarse", "Pentium Pro (4 processors)", func() (float64, error) {
			s, _, err := roCoarse(x, "ppro", 4, 4)
			return s, err
		}},
		{"Coarse", "Exemplar (16 processors)", func() (float64, error) {
			s, _, err := roCoarse(x, "exemplar", 16, 16)
			return s, err
		}},
		{"Coarse", fmt.Sprintf("Tera MTA (1 processor, %d chunks)", roMTAChunks), func() (float64, error) {
			s, _, err := roCoarse(x, "tera", 1, roMTAChunks)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Exemplar (16 processors, %d threads)", roFineCompare), func() (float64, error) {
			s, _, err := roFine(x, "exemplar", 16, roFineCompare)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (1 processor, %d threads)", roMTAThreads), func() (float64, error) {
			s, _, err := roFine(x, "tera", 1, roMTAThreads)
			return s, err
		}},
		{"Fine-grained", fmt.Sprintf("Tera MTA (2 processors, %d threads)", roMTAThreads), func() (float64, error) {
			s, _, err := roFine(x, "tera", 2, roMTAThreads)
			return s, err
		}},
	}
	for _, c := range cells {
		sec, err := c.run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.group, c.name, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}
