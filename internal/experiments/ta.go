package experiments

import (
	"fmt"

	"repro/internal/c3i/suite"
	"repro/internal/report"
	"repro/internal/run"
)

// taSeq runs sequential Threat Analysis on a platform and returns
// paper-scale seconds.
func taSeq(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(TA, "sequential", key, procs, nil))
}

// taChunked runs the chunked (Program 2) variant and returns paper-scale
// seconds plus the run record (for utilization ablations).
func taChunked(x *Exec, key string, procs, chunks int) (float64, run.Record, error) {
	rec, err := x.Run(x.Spec(TA, "coarse", key, procs, suite.Params{"chunks": chunks}))
	return rec.PaperSeconds, rec, err
}

// taFine runs the fine-grained (sync-variable) variant.
func taFine(x *Exec, key string, procs int) (float64, error) {
	return x.Seconds(x.Spec(TA, "fine", key, procs, nil))
}

// runTable2 reproduces Table 2: sequential Threat Analysis on all four
// platforms.
func runTable2(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table2",
		Title:   "Execution time of sequential Threat Analysis without parallelization",
		Columns: []string{"Platform", "Paper (s)", "Model (s)", "Model/Paper"},
		Notes:   []string{fmt.Sprintf("model at scale %g, normalized to the paper's 1000 threats/scenario", x.Cfg.Scale(TA))},
	}
	for _, row := range []struct {
		name, key string
		procs     int
	}{
		{"Alpha", "alpha", 1},
		{"Pentium Pro", "ppro", 4},
		{"Exemplar", "exemplar", 16},
		{"Tera", "tera", 1},
	} {
		sec, err := taSeq(x, row.key, row.procs)
		if err != nil {
			return nil, err
		}
		paper := PaperTable2[row.name]
		tb.AddRow(row.name, paper, sec, fmt.Sprintf("%.2f", sec/paper))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// speedupTable builds a paper-style processors/time/speedup table plus the
// corresponding speedup figure.
func speedupTable(id, figID, title, figTitle string, paper map[int]float64,
	model map[int]float64, maxProcs int, note string) *Result {

	tb := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Number of processors", "Paper (s)", "Paper speedup", "Model (s)", "Model speedup"},
		Notes:   []string{note},
	}
	paperSeq, modelSeq := paper[0], model[0]
	tb.AddRow("Sequential", paperSeq, "N.A.", modelSeq, "N.A.")
	fig := &report.Figure{
		ID: figID, Title: figTitle,
		XLabel: "processors", YLabel: "speedup",
	}
	var paperS, modelS report.Series
	paperS.Label, paperS.Marker = "paper", '+'
	modelS.Label, modelS.Marker = "model", '*'
	for p := 1; p <= maxProcs; p++ {
		ps, ok1 := paper[p]
		ms, ok2 := model[p]
		if !ok1 || !ok2 {
			continue
		}
		tb.AddRow(p, ps, report.FormatSpeedup(paperSeq/ps), ms, report.FormatSpeedup(modelSeq/ms))
		paperS.X = append(paperS.X, float64(p))
		paperS.Y = append(paperS.Y, paperSeq/ps)
		modelS.X = append(modelS.X, float64(p))
		modelS.Y = append(modelS.Y, modelSeq/ms)
	}
	fig.Series = []report.Series{modelS, paperS}
	return &Result{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}
}

// runTable3 reproduces Table 3 / Figure 1: chunked Threat Analysis on the
// quad Pentium Pro, one chunk per processor.
func runTable3(x *Exec) (*Result, error) {
	model := map[int]float64{}
	seq, err := taSeq(x, "ppro", 4)
	if err != nil {
		return nil, err
	}
	model[0] = seq
	for p := 1; p <= 4; p++ {
		sec, _, err := taChunked(x, "ppro", p, p)
		if err != nil {
			return nil, err
		}
		model[p] = sec
	}
	return speedupTable("table3", "figure1",
		"Execution time of multithreaded Threat Analysis on quad-processor Pentium Pro",
		"Speedup of multithreaded Threat Analysis on quad-processor Pentium Pro",
		PaperTable3, model, 4,
		fmt.Sprintf("one chunk/thread per processor; scale %g normalized", x.Cfg.Scale(TA))), nil
}

// runTable4 reproduces Table 4 / Figure 2: chunked Threat Analysis on the
// 16-processor Exemplar.
func runTable4(x *Exec) (*Result, error) {
	model := map[int]float64{}
	seq, err := taSeq(x, "exemplar", 16)
	if err != nil {
		return nil, err
	}
	model[0] = seq
	for p := 1; p <= 16; p++ {
		sec, _, err := taChunked(x, "exemplar", p, p)
		if err != nil {
			return nil, err
		}
		model[p] = sec
	}
	return speedupTable("table4", "figure2",
		"Execution time of multithreaded Threat Analysis on 16-processor Exemplar",
		"Speedup of multithreaded Threat Analysis on 16-processor Exemplar",
		PaperTable4, model, 16,
		fmt.Sprintf("one chunk/thread per processor; scale %g normalized", x.Cfg.Scale(TA))), nil
}

// runTable5 reproduces Table 5: chunked Threat Analysis on the Tera MTA with
// 256 chunks, one and two processors.
func runTable5(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table5",
		Title:   "Execution time of multithreaded Threat Analysis on dual-processor Tera MTA",
		Columns: []string{"Number of Processors", "Paper (s)", "Paper speedup", "Model (s)", "Model speedup"},
		Notes:   []string{fmt.Sprintf("256 chunks; scale %g normalized", x.Cfg.Scale(TA))},
	}
	var oneProc float64
	for _, p := range []int{1, 2} {
		sec, _, err := taChunked(x, "tera", p, 256)
		if err != nil {
			return nil, err
		}
		if p == 1 {
			oneProc = sec
		}
		tb.AddRow(p, PaperTable5[p], report.FormatSpeedup(PaperTable5[1]/PaperTable5[p]),
			sec, report.FormatSpeedup(oneProc/sec))
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runTable6 reproduces Table 6: Threat Analysis on the dual-processor Tera
// MTA as the chunk count varies.
func runTable6(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table6",
		Title:   "Execution time of multithreaded Threat Analysis with varying number of chunks on Tera MTA",
		Columns: []string{"Number of Chunks", "Paper (s)", "Model (s)"},
		Notes:   []string{fmt.Sprintf("two processors; scale %g normalized", x.Cfg.Scale(TA))},
	}
	for _, chunks := range suite.SortedKeys(PaperTable6) {
		sec, _, err := taChunked(x, "tera", 2, chunks)
		if err != nil {
			return nil, err
		}
		tb.AddRow(chunks, PaperTable6[chunks], sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}

// runTable7 reproduces Table 7: the Threat Analysis summary across
// parallelization strategies and platforms. The "Automatic" rows equal the
// sequential rows because the dependence analyzer (like the paper's
// compilers) finds no practical opportunities — see the autopar experiment.
func runTable7(x *Exec) (*Result, error) {
	tb := &report.Table{
		ID:      "table7",
		Title:   "Performance comparison for execution times of Threat Analysis",
		Columns: []string{"Parallelization", "Platform", "Paper (s)", "Model (s)"},
		Notes: []string{
			"automatic parallelization found no opportunities (see experiment `autopar`), so those rows equal sequential execution",
			fmt.Sprintf("scale %g normalized", x.Cfg.Scale(TA)),
		},
	}
	type cell struct {
		group, name string
		paper       float64
		run         func() (float64, error)
	}
	cells := []cell{
		{"None", "Alpha", 187, func() (float64, error) { return taSeq(x, "alpha", 1) }},
		{"None", "Pentium Pro", 458, func() (float64, error) { return taSeq(x, "ppro", 4) }},
		{"None", "Exemplar", 343, func() (float64, error) { return taSeq(x, "exemplar", 16) }},
		{"None", "Tera", 2584, func() (float64, error) { return taSeq(x, "tera", 1) }},
		{"Automatic", "Exemplar", 343, func() (float64, error) { return taSeq(x, "exemplar", 16) }},
		{"Automatic", "Tera", 2584, func() (float64, error) { return taSeq(x, "tera", 1) }},
		{"Manual", "Pentium Pro (4 processors)", 117, func() (float64, error) {
			s, _, err := taChunked(x, "ppro", 4, 4)
			return s, err
		}},
		{"Manual", "Exemplar (4 processors)", 87, func() (float64, error) {
			s, _, err := taChunked(x, "exemplar", 4, 4)
			return s, err
		}},
		{"Manual", "Exemplar (8 processors)", 43, func() (float64, error) {
			s, _, err := taChunked(x, "exemplar", 8, 8)
			return s, err
		}},
		{"Manual", "Exemplar (16 processors)", 22, func() (float64, error) {
			s, _, err := taChunked(x, "exemplar", 16, 16)
			return s, err
		}},
		{"Manual", "Tera MTA (1 processor)", 82, func() (float64, error) {
			s, _, err := taChunked(x, "tera", 1, 256)
			return s, err
		}},
		{"Manual", "Tera MTA (2 processors)", 46, func() (float64, error) {
			s, _, err := taChunked(x, "tera", 2, 256)
			return s, err
		}},
	}
	for _, c := range cells {
		sec, err := c.run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.group, c.name, c.paper, sec)
	}
	return &Result{Tables: []*report.Table{tb}}, nil
}
