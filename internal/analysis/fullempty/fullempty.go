// Package fullempty checks full/empty-bit discipline in the fine-style
// solvers: every ReadFE guard (read-full-set-empty) must be paired with a
// WriteEF or Write commit on the same synchronization variable within the
// same function, and machine counters/barriers must keep their registered
// names — an unpaired guard leaves a word empty forever, which on the
// modeled Tera hardware means every later reader blocks.
package fullempty

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fullempty",
	Doc: "pair every machine.SyncVar ReadFE guard with a WriteEF/Write " +
		"commit in the same function, and require machine counters/barriers " +
		"to be kept under a non-empty registered name",
	Run: run,
}

// commitMethods refill a sync variable after a ReadFE drained it. Reset is
// deliberately absent: purging a word is not a commit.
var commitMethods = map[string]bool{"WriteEF": true, "Write": true}

// registeredCtors are the Thread methods that create named synchronization
// objects; their results must be kept and their names must be non-empty.
var registeredCtors = map[string]bool{
	"NewCounter": true, "NewBarrier": true, "NewSyncVar": true, "NewLock": true,
}

func run(pass *analysis.Pass) (any, error) {
	analysis.WalkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkPairing(pass, fd)
	})
	for _, f := range pass.Files {
		checkCtors(pass, f)
	}
	return nil, nil
}

// checkPairing matches guards to commits per receiver expression inside one
// top-level function (nested literals included: a solver's worker closures
// share the declaration's stripe variables).
func checkPairing(pass *analysis.Pass, fd *ast.FuncDecl) {
	type guard struct {
		pos  ast.Node
		recv string
	}
	var guards []guard
	commits := map[string]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || analysis.FuncPkgName(fn) != "machine" {
			return true
		}
		named := analysis.RecvNamed(fn)
		if named == nil || named.Obj().Name() != "SyncVar" {
			return true
		}
		recv := types.ExprString(sel.X)
		switch {
		case fn.Name() == "ReadFE":
			guards = append(guards, guard{pos: call, recv: recv})
		case commitMethods[fn.Name()]:
			commits[recv] = true
		}
		return true
	})
	for _, g := range guards {
		if !commits[g.recv] {
			pass.Reportf(g.pos.Pos(),
				"ReadFE on %s has no matching WriteEF/Write commit in %s; an aborted guard leaves the word empty and deadlocks later readers",
				g.recv, fd.Name.Name)
		}
	}
}

// checkCtors enforces that registered synchronization objects are kept and
// carry a non-empty name.
func checkCtors(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		// A constructor call standing alone as a statement discards the
		// object the name was registered for.
		if stmt, ok := n.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
				if fn := ctorFunc(pass, call); fn != nil {
					pass.Reportf(call.Pos(),
						"result of machine.%s is discarded; keep the registered synchronization object",
						fn.Name())
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := ctorFunc(pass, call)
		if fn == nil || len(call.Args) == 0 {
			return true
		}
		if name, isConst := analysis.ConstString(pass.TypesInfo, call.Args[0]); isConst && name == "" {
			pass.Reportf(call.Args[0].Pos(),
				"machine.%s registered with an empty name; full/empty objects must carry their registered name",
				fn.Name())
		}
		return true
	})
}

func ctorFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || analysis.FuncPkgName(fn) != "machine" || !registeredCtors[fn.Name()] {
		return nil
	}
	if named := analysis.RecvNamed(fn); named == nil || named.Obj().Name() != "Thread" {
		return nil
	}
	return fn
}
