package fullempty_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fullempty"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, fullempty.Analyzer, "fe")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, fullempty.Analyzer, "feclean")
}
