// Package feclean holds the sanctioned counterparts of the fe fixture's
// violations: guard/commit pairs on the same stripe (including inside worker
// closures) and kept, named synchronization objects.
package feclean

import "repro/internal/machine"

// GuardedUpdate refills the stripe it drained.
func GuardedUpdate(t *machine.Thread, sv *machine.SyncVar) {
	v := sv.ReadFE(t)
	sv.WriteEF(t, v+1)
}

// WorkerClosure pairs guard and commit inside a spawned closure, the shape
// of the fine-style solvers.
func WorkerClosure(t *machine.Thread, sv *machine.SyncVar) *machine.Thread {
	return t.Go("worker", func(c *machine.Thread) {
		v := sv.ReadFE(c)
		sv.Write(c, v)
	})
}

// Registered keeps its named objects.
func Registered(t *machine.Thread) (*machine.Counter, *machine.Barrier) {
	return t.NewCounter("claims", 0), t.NewBarrier("phase", 2)
}
