// Package fe exercises every violation path of the fullempty analyzer.
package fe

import "repro/internal/machine"

// BadGuard drains a stripe and never refills it.
func BadGuard(t *machine.Thread, sv *machine.SyncVar) int64 {
	return sv.ReadFE(t) // want `ReadFE on sv has no matching WriteEF/Write commit in BadGuard`
}

// MismatchedGuard commits to a different stripe than it drained.
func MismatchedGuard(t *machine.Thread, a, b *machine.SyncVar) {
	v := a.ReadFE(t) // want `ReadFE on a has no matching WriteEF/Write commit in MismatchedGuard`
	b.WriteEF(t, v)
}

// DroppedCounter discards the registered object.
func DroppedCounter(t *machine.Thread) {
	t.NewCounter("dropped", 0) // want `result of machine\.NewCounter is discarded`
}

// AnonymousBarrier registers an empty name.
func AnonymousBarrier(t *machine.Thread) *machine.Barrier {
	return t.NewBarrier("", 2) // want `machine\.NewBarrier registered with an empty name`
}
