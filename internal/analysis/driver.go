package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnoreDirective is the comment prefix that suppresses a diagnostic on its
// own line or the line directly below it.
const IgnoreDirective = "c3ivet:ignore"

// A Config describes one checker run.
type Config struct {
	Dir       string // directory the go tool runs in ("" = cwd)
	Patterns  []string
	Analyzers []*Analyzer
}

// A Result is the outcome of a checker run.
type Result struct {
	// Diagnostics are the surviving findings, ordered by position then
	// analyzer name.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by an ignore directive, in the same
	// order; drivers may surface the count.
	Suppressed []Diagnostic
}

// Run loads every package matched by cfg.Patterns, applies each analyzer's
// Run to each package, then each analyzer's Finish across all packages, and
// filters the collected diagnostics through ignore directives.
func Run(cfg Config) (*Result, error) {
	fset, pkgs, err := Load(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	sup := newSuppressions(fset, pkgs)
	diags = append(diags, sup.malformed...)

	for _, a := range cfg.Analyzers {
		results := map[string]any{}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				TypesInfo:  pkg.Info,
				ImportPath: pkg.ImportPath,
				report:     report,
			}
			res, rerr := a.Run(pass)
			if rerr != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, rerr)
			}
			if res != nil {
				results[pkg.ImportPath] = res
			}
		}
		if a.Finish != nil {
			fp := &FinishPass{Analyzer: a, Fset: fset, Results: results, report: report}
			if ferr := a.Finish(fp); ferr != nil {
				return nil, fmt.Errorf("%s: finish: %w", a.Name, ferr)
			}
		}
	}

	res := &Result{}
	for _, d := range diags {
		if sup.covers(d) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressions indexes ignore directives by file and line.
type suppressions struct {
	// byLine maps filename → directive line → analyzer names suppressed
	// there. A directive covers its own line and the next line, so a
	// trailing comment and a comment above the statement both work.
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

func newSuppressions(fset *token.FileSet, pkgs []*Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, IgnoreDirective) {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, IgnoreDirective))
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Diagnostic{
							Analyzer: "c3ivet",
							Pos:      pos,
							Message: fmt.Sprintf("malformed %s directive: want %q",
								IgnoreDirective, "//"+IgnoreDirective+" <analyzer> <reason>"),
						})
						continue
					}
					m := s.byLine[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						s.byLine[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], fields[0])
				}
			}
		}
	}
	return s
}

// covers reports whether d is silenced by a directive on its line or the
// line above.
func (s *suppressions) covers(d Diagnostic) bool {
	m := s.byLine[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// WalkFuncs visits every top-level function declaration in the files; nested
// function literals are part of their enclosing declaration's body, which is
// the granularity the pairing analyzers reason at.
func WalkFuncs(files []*ast.File, visit func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
