// Package supp exercises the driver's ignore directives: a bare finding, a
// properly suppressed one, and a malformed directive (no reason) that both
// fails to suppress and is reported itself.
package supp

func target() {}

// Calls holds three flaggable calls with different suppression outcomes.
func Calls() {
	target()
	target() //c3ivet:ignore fake documented reason
	//c3ivet:ignore fake
	target()
}
