package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// CalleeFunc resolves the statically-known function or method a call
// expression invokes, or nil (builtins, function values, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ConstString evaluates expr as a compile-time string constant.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// FuncPkgPath returns the import path of the package a function belongs to
// ("" for builtins without a package).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// FuncPkgName returns the name of the package a function belongs to. Matching
// analyzers key on package *name* rather than import path so analysistest
// fixtures can stub the real packages under testdata.
func FuncPkgName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// RecvNamed returns the named type of a method's receiver, dereferencing one
// pointer, or nil for non-methods.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOn reports whether fn is a method named methName on a type named
// typeName declared in a package named pkgName.
func IsMethodOn(fn *types.Func, pkgName, typeName, methName string) bool {
	if fn == nil || fn.Name() != methName || FuncPkgName(fn) != pkgName {
		return false
	}
	named := RecvNamed(fn)
	return named != nil && named.Obj().Name() == typeName
}
