// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against `// want "regexp"` comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// Fixture packages live under the analyzer's testdata/src/ directory and are
// addressed by explicit relative path (testdata is invisible to `...`
// wildcards, so each package is named outright). A want comment sits on the
// line the diagnostic is expected at and may carry several quoted regexps:
//
//	x := time.Now() // want `time\.Now` "host-time"
//
// Every diagnostic must match a want on its line, and every want must be
// matched by a diagnostic; suppressed diagnostics count as absent, so clean
// fixtures can exercise ignore directives too.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies a to the fixture packages at the given testdata-relative dirs
// (e.g. "determ", "determ_clean") and reports mismatches through t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	var patterns []string
	for _, fx := range fixtures {
		patterns = append(patterns, "./"+filepath.ToSlash(filepath.Join("testdata", "src", fx)))
	}
	res, err := analysis.Run(analysis.Config{Patterns: patterns, Analyzers: []*analysis.Analyzer{a}})
	if err != nil {
		t.Fatalf("analysis run: %v", err)
	}

	wants, err := collectWants(patterns)
	if err != nil {
		t.Fatalf("collect want comments: %v", err)
	}

	for _, d := range res.Diagnostics {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(d analysis.Diagnostic) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// collectWants re-parses the fixtures (cheaply, sharing the loader) to pull
// out want comments with their positions.
func collectWants(patterns []string) (*wantSet, error) {
	fset, pkgs, err := analysis.Load("", patterns)
	if err != nil {
		return nil, err
	}
	ws := &wantSet{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					res, perr := parseWants(strings.TrimPrefix(text, "want "))
					if perr != nil {
						return nil, fmt.Errorf("%s: %v", pos, perr)
					}
					for _, re := range res {
						ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return ws, nil
}

// parseWants extracts a sequence of quoted (double-quote or backquote)
// regexps from the remainder of a want comment.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted regexp in want comment")
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted regexp %s: %v", s[:end+1], err)
			}
			lit, s = unq, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted regexp in want comment")
			}
			lit, s = s[1:end+1], s[end+2:]
		default:
			return nil, fmt.Errorf("want comment must hold quoted regexps, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
}
