// Package reg exercises every violation path of the registrylint analyzer:
// a workload registered without a codec entry, and Params keys never
// declared by a variant default or grid axis.
package reg

import (
	"repro/internal/c3i/data"
	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

func run(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
	_ = p["tuned"] // want `params key "tuned" is not declared`
	return suite.Output{}
}

// codecs covers only one of the two registered workloads.
var codecs = map[string]data.Codec{
	"reg-covered": {},
}

// Kinds keeps the codec table referenced.
func Kinds() int { return len(codecs) }

// Register declares one orphaned and one covered workload.
func Register() {
	suite.MustRegister(&suite.Workload{ // want `workload "reg-orphan" is registered with no matching data\.Codec entry`
		Name: "reg-orphan",
		Variants: []*suite.Variant{
			{Name: "sequential", Style: suite.Sequential, Defaults: suite.Params{"chunks": 4}, Run: run},
		},
	})
	suite.MustRegister(&suite.Workload{
		Name: "reg-covered",
		Variants: []*suite.Variant{
			{Name: "sequential", Style: suite.Sequential, Run: run},
		},
	})
	_ = suite.Params{"typo": 1} // want `params key "typo" is not declared`
}
