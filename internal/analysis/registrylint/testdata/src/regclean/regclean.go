// Package regclean holds the sanctioned counterparts of the reg fixture's
// violations: a codec entry per registration, and every Params key declared
// through a variant default (inline, shared var, or Merged overlay) or a
// grid axis.
package regclean

import (
	"repro/internal/c3i/data"
	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// shared is the shared-defaults idiom: its keys are declarations because a
// Defaults field references it.
var shared = suite.Params{"rounds": 0}

func run(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
	_ = p["rounds"]
	_ = p["chunks"]
	return suite.Output{}
}

var codecs = map[string]data.Codec{
	"regclean-wl": {},
}

// Kinds keeps the codec table referenced.
func Kinds() int { return len(codecs) }

// Register declares a covered workload whose params are all declared.
func Register() {
	suite.MustRegister(&suite.Workload{
		Name: "regclean-wl",
		Variants: []*suite.Variant{
			{Name: "coarse", Style: suite.Coarse, Defaults: shared.Merged(suite.Params{"chunks": 8}), Run: run},
		},
		Grid: &suite.Grid{Axes: []suite.Axis{
			{Name: "chunks", Kind: suite.AxisParam, Values: []float64{4, 8}},
		}},
	})
	_ = suite.Params{"chunks": 16}
}
