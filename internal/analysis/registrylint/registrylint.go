// Package registrylint cross-checks the workload registry against its
// consumers, module-wide: every workload registered with suite.MustRegister
// must have a data.Codec entry (or c3idata cannot round-trip its scenarios),
// and every string-literal Params key used in spec construction or solver
// lookups must be declared by some variant's Defaults, a grid axis, or the
// suite's validate switch — an undeclared key is a silent typo that reads as
// zero.
package registrylint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "registrylint",
	Doc: "pair suite registrations with data.Codec entries and require " +
		"every Params key to be a declared registry param",
	Run:    run,
	Finish: finish,
}

// A Reg is one statically-resolvable workload registration.
type Reg struct {
	Name string
	Pos  token.Pos
}

// A Use is one string-literal Params key outside a Defaults declaration.
type Use struct {
	Key string
	Pos token.Pos
}

// Facts is the per-package result consumed by Finish.
type Facts struct {
	ImportPath     string
	Registered     []Reg
	DeclaredParams []string
	CodecKinds     []string
	HasCodecTable  bool
	UsedParams     []Use
}

func run(pass *analysis.Pass) (any, error) {
	facts := &Facts{ImportPath: pass.ImportPath}

	// The suite package's validate switch is a declared key everywhere.
	if pass.Pkg != nil && pass.Pkg.Name() == "suite" {
		if obj := pass.Pkg.Scope().Lookup("ValidateParam"); obj != nil {
			if c, ok := obj.(*types.Const); ok && c.Val().Kind() == constant.String {
				facts.DeclaredParams = append(facts.DeclaredParams, constant.StringVal(c.Val()))
			}
		}
	}

	// Params literals declared as variant Defaults are declaration sites,
	// not uses; collect them first so the use scan can skip their subtrees.
	// A Defaults field may hold the literal inline or name a package-level
	// var shared between variants (the plottrack auctionDefaults idiom), so
	// var initializers are resolvable too.
	varInits := map[types.Object]*ast.CompositeLit{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok && isSuiteType(pass, lit, "Params") {
						varInits[pass.TypesInfo.Defs[name]] = lit
					}
				}
			}
		}
	}
	defaults := map[*ast.CompositeLit]bool{}
	var resolveDefaults func(e ast.Expr)
	resolveDefaults = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			if isSuiteType(pass, e, "Params") {
				defaults[e] = true
				facts.DeclaredParams = append(facts.DeclaredParams, litStringKeys(pass, e)...)
			}
		case *ast.Ident:
			if lit := varInits[pass.TypesInfo.Uses[e]]; lit != nil {
				defaults[lit] = true
				facts.DeclaredParams = append(facts.DeclaredParams, litStringKeys(pass, lit)...)
			}
		case *ast.CallExpr:
			// shared.Merged(suite.Params{...}) composes defaults; both the
			// receiver's and the overlay's keys are declared.
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Merged" {
				resolveDefaults(sel.X)
				for _, arg := range e.Args {
					resolveDefaults(arg)
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Defaults" {
				resolveDefaults(kv.Value)
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				collectRegistration(pass, n, facts)
			case *ast.CompositeLit:
				if defaults[n] {
					return false // declaration site, keys handled above
				}
				collectLit(pass, n, facts)
			case *ast.IndexExpr:
				// p["key"] lookups inside solvers and spec helpers.
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && isNamed(tv.Type, "suite", "Params") {
					if key, isConst := analysis.ConstString(pass.TypesInfo, n.Index); isConst {
						facts.UsedParams = append(facts.UsedParams, Use{Key: key, Pos: n.Index.Pos()})
					}
				}
			}
			return true
		})
	}
	if len(facts.Registered)+len(facts.DeclaredParams)+len(facts.CodecKinds)+len(facts.UsedParams) == 0 && !facts.HasCodecTable {
		return nil, nil
	}
	return facts, nil
}

// collectRegistration records the workload name of a statically-resolvable
// suite.MustRegister / suite.Register call.
func collectRegistration(pass *analysis.Pass, call *ast.CallExpr, facts *Facts) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || analysis.FuncPkgName(fn) != "suite" {
		return
	}
	if fn.Name() != "MustRegister" && fn.Name() != "Register" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = ast.Unparen(u.X)
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok || !isSuiteType(pass, lit, "Workload") {
		return // registration through a variable: resolved elsewhere or not at all
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
			if name, isConst := analysis.ConstString(pass.TypesInfo, kv.Value); isConst {
				facts.Registered = append(facts.Registered, Reg{Name: name, Pos: call.Pos()})
			}
		}
	}
}

// collectLit records grid-axis declarations, codec-table kinds, and Params
// literal uses.
func collectLit(pass *analysis.Pass, lit *ast.CompositeLit, facts *Facts) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch {
	case isNamed(tv.Type, "suite", "Axis"):
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
				if name, isConst := analysis.ConstString(pass.TypesInfo, kv.Value); isConst {
					facts.DeclaredParams = append(facts.DeclaredParams, name)
				}
			}
		}
	case isNamed(tv.Type, "suite", "Params"):
		for _, key := range litStringKeys(pass, lit) {
			facts.UsedParams = append(facts.UsedParams, Use{Key: key, Pos: lit.Pos()})
		}
	default:
		// A map literal whose value type is data.Codec is the codec table.
		if m, ok := tv.Type.Underlying().(*types.Map); ok && isNamed(m.Elem(), "data", "Codec") {
			facts.HasCodecTable = true
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if kind, isConst := analysis.ConstString(pass.TypesInfo, kv.Key); isConst {
					facts.CodecKinds = append(facts.CodecKinds, kind)
				}
			}
		}
	}
}

func litStringKeys(pass *analysis.Pass, lit *ast.CompositeLit) []string {
	var keys []string
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, isConst := analysis.ConstString(pass.TypesInfo, kv.Key); isConst {
			keys = append(keys, key)
		}
	}
	return keys
}

func isSuiteType(pass *analysis.Pass, lit *ast.CompositeLit, name string) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	return ok && isNamed(tv.Type, "suite", name)
}

// isNamed reports whether t (or its pointer element) is a named type with
// the given name declared in a package with the given name. Matching on
// package name rather than import path lets fixtures stub suite/data.
func isNamed(t types.Type, pkgName, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

func finish(fp *analysis.FinishPass) error {
	paths := make([]string, 0, len(fp.Results))
	for path := range fp.Results {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	declared := map[string]bool{}
	kinds := map[string]bool{}
	hasCodecs := false
	anyRegs := false
	for _, path := range paths {
		facts := fp.Results[path].(*Facts)
		for _, k := range facts.DeclaredParams {
			declared[k] = true
		}
		for _, k := range facts.CodecKinds {
			kinds[k] = true
		}
		hasCodecs = hasCodecs || facts.HasCodecTable
		anyRegs = anyRegs || len(facts.Registered) > 0
	}

	for _, path := range paths {
		facts := fp.Results[path].(*Facts)
		if hasCodecs {
			for _, reg := range facts.Registered {
				if !kinds[reg.Name] {
					fp.Reportf(reg.Pos,
						"workload %q is registered with no matching data.Codec entry; c3idata cannot round-trip its scenarios",
						reg.Name)
				}
			}
		}
		// Only judge uses when the registry surface is part of the run;
		// analyzing a lone consumer package would otherwise flag everything.
		if anyRegs {
			for _, use := range facts.UsedParams {
				if !declared[use.Key] {
					fp.Reportf(use.Pos,
						"params key %q is not declared by any variant default or grid axis; undeclared keys read as zero",
						use.Key)
				}
			}
		}
	}
	return nil
}
