package registrylint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registrylint"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, registrylint.Analyzer, "reg")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, registrylint.Analyzer, "regclean")
}
