// Package determclean holds the sanctioned counterparts of the determ
// fixture's violations: sorted map iteration, spec-seeded randomness,
// order-insensitive map-to-map copies, and a documented suppression.
package determclean

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// RenderTable iterates sorted keys; the accumulating loop is excused by the
// sort in the same function.
func RenderTable(w io.Writer, rows map[string]int) {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, rows[k])
	}
}

// SeededJitter draws from a locally-seeded generator, the sanctioned source
// of model randomness.
func SeededJitter(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Copy writes map-to-map, which is order-insensitive.
func Copy(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// HostTimestamp documents a deliberate host-time exception.
func HostTimestamp() time.Time {
	return time.Now() //c3ivet:ignore determinism fixture demonstrates a documented host-time exception
}
