// Package determ exercises every violation path of the determinism analyzer.
package determ

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Artifact stamps model output with wall-clock values.
func Artifact() (time.Time, time.Duration) {
	start := time.Now()             // want `call to time\.Now`
	return start, time.Since(start) // want `call to time\.Since`
}

// Jitter draws from the global unseeded source.
func Jitter(n int) int {
	return rand.Intn(n) // want `global math/rand Intn`
}

// RenderTable prints map entries in iteration order.
func RenderTable(w io.Writer, rows map[string]int) {
	for name, v := range rows { // want `range over map feeds fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", name, v)
	}
}

// CollectNames accumulates key-derived values with no sort anywhere.
func CollectNames(rows map[string]int) []string {
	var out []string
	for name := range rows { // want `appends iteration-derived values and CollectNames never sorts`
		out = append(out, name)
	}
	return out
}
