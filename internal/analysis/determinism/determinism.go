// Package determinism flags host-nondeterminism in model/artifact-producing
// packages: the repo's byte-identical local-vs-remote envelope contract only
// holds if model outputs never depend on wall-clock time, the unseeded global
// rand source, or Go's randomized map iteration order.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// scope lists substrings of import paths the analyzer applies to; packages
// like internal/serve legitimately use wall-clock time and jitter, so the
// default is exactly the model/artifact surface.
var scope = strings.Join([]string{
	"internal/c3i/",
	"internal/run",
	"internal/experiments",
	"internal/load",
	"internal/benchgate",
}, ",")

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag time.Now/time.Since, global math/rand, and map iteration " +
		"whose order can reach checksums, artifacts, or rendered tables in " +
		"model/artifact-producing packages",
	Flags: []*analysis.Flag{
		{Name: "scope", Usage: "comma-separated import-path substrings the analyzer applies to", Value: &scope},
	},
	Run: run,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared, unseeded source. rand.New/NewSource/NewPCG stay legal: a
// locally-seeded generator is the sanctioned way to get spec-derived noise.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

// orderedSinkMethods are method names whose call inside a map-range body
// means iteration order reaches rendered or hashed output directly.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AddRow": true,
}

func inScope(importPath string) bool {
	for _, frag := range strings.Split(scope, ",") {
		if frag != "" && strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.ImportPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		checkCalls(pass, f)
	}
	analysis.WalkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkMapRanges(pass, fd)
	})
	return nil, nil
}

// checkCalls flags wall-clock reads and global-rand draws anywhere in the
// file, including package-level initializers.
func checkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch analysis.FuncPkgPath(fn) {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(),
					"call to time.%s in a model/artifact package; host time must not influence model outputs",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[fn.Name()] && analysis.RecvNamed(fn) == nil {
				pass.Reportf(call.Pos(),
					"global math/rand %s draws from the shared unseeded source; derive randomness from the spec seed",
					fn.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags range-over-map statements in fd whose iteration order
// can leak into ordered output: a rendering/hash sink called inside the loop
// body, or key/value-derived appends in a function that never sorts.
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	sorts := false
	var ranges []*ast.RangeStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				pkg := analysis.FuncPkgPath(fn)
				if pkg == "sort" || pkg == "slices" || fn.Name() == "SortedKeys" || fn.Name() == "sortedKeys" {
					sorts = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, n)
				}
			}
		}
		return true
	})
	for _, rng := range ranges {
		checkOneRange(pass, fd, rng, sorts)
	}
}

func checkOneRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, sorts bool) {
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}

	var sinkPos token.Pos = token.NoPos
	sinkName := ""
	appendPos := token.NoPos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(dst, <expr using k or v>...) — order-sensitive accumulation.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltinAppend(pass, id) {
			for _, arg := range call.Args[1:] {
				if usesAny(pass, arg, iterVars) && appendPos == token.NoPos {
					appendPos = call.Pos()
				}
			}
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if analysis.FuncPkgPath(fn) == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
			if sinkPos == token.NoPos {
				sinkPos, sinkName = call.Pos(), "fmt."+fn.Name()
			}
			return true
		}
		if analysis.RecvNamed(fn) != nil && orderedSinkMethods[fn.Name()] {
			if sinkPos == token.NoPos {
				sinkPos, sinkName = call.Pos(), fn.Name()
			}
		}
		return true
	})

	if sinkPos != token.NoPos {
		pass.Reportf(rng.Pos(),
			"range over map feeds %s inside the loop body; map order is nondeterministic — iterate sorted keys",
			sinkName)
		return
	}
	if appendPos != token.NoPos && !sorts {
		pass.Reportf(rng.Pos(),
			"range over map appends iteration-derived values and %s never sorts; iterate sorted keys or sort the result",
			fd.Name.Name)
	}
}

func isBuiltinAppend(pass *analysis.Pass, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
