package determinism_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

// withFixtureScope points the analyzer's scope flag at the fixture tree so
// the testdata packages count as model/artifact packages.
func withFixtureScope(t *testing.T) {
	t.Helper()
	scope := determinism.Analyzer.Flags[0].Value
	old := *scope
	*scope = "testdata/src/"
	t.Cleanup(func() { *scope = old })
}

func TestViolations(t *testing.T) {
	withFixtureScope(t)
	analysistest.Run(t, determinism.Analyzer, "determ")
}

func TestClean(t *testing.T) {
	withFixtureScope(t)
	analysistest.Run(t, determinism.Analyzer, "determclean")
}

// TestOutOfScope leaves the default scope in place: the fixture package is
// then not a model/artifact package and must produce no findings.
func TestOutOfScope(t *testing.T) {
	res, err := analysis.Run(analysis.Config{
		Patterns:  []string{"./testdata/src/determ"},
		Analyzers: []*analysis.Analyzer{determinism.Analyzer},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("out-of-scope fixture produced %d findings: %v", len(res.Diagnostics), res.Diagnostics)
	}
}
