package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Load resolves patterns with the go tool, parses every matched package's
// non-test sources, and type-checks them against the compiler's export data
// for their dependencies. It works entirely offline: `go list -export`
// populates the build cache with export files, and a gc-compatible importer
// reads dependencies from those files instead of a module download.
//
// dir is the directory the go tool runs in ("" = current directory); explicit
// testdata paths are accepted (the analysistest fixtures rely on this, since
// `...` wildcards skip testdata).
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	targets, err := goList(dir, nil, patterns)
	if err != nil {
		return nil, nil, err
	}
	want := make(map[string]bool, len(targets))
	for _, p := range targets {
		want[p.ImportPath] = true
	}

	// The -deps run compiles the whole dependency graph, yielding an export
	// data file per package; those files are the importer's source of truth.
	all, err := goList(dir, []string{"-e", "-export", "-deps"}, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	var typeErrs []string
	for _, p := range all {
		if !want[p.ImportPath] || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if perr != nil {
				return nil, nil, fmt.Errorf("parse %s: %w", gf, perr)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
		}
		tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Name:       p.Name,
			Dir:        p.Dir,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
		})
	}
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("type checking failed:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return fset, pkgs, nil
}

func goList(dir string, flags, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard"}, flags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("decode go list output: %w", derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
