// Package analysis is a small, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package at a time through a Pass and reports Diagnostics, and
// may additionally contribute per-package facts to a module-wide Finish hook
// for cross-package invariants (registry/codec pairing, metric label-set
// consistency).
//
// The framework deliberately depends only on the standard library: packages
// are loaded offline via `go list -export` and type-checked against the
// compiler's export data (see load.go), so the checker runs in hermetic CI
// and developer environments without a module cache.
//
// Diagnostics can be silenced at a call site with a suppression comment on
// the flagged line or the line above it:
//
//	//c3ivet:ignore <analyzer> <reason>
//
// The reason is mandatory — an ignore directive without one is itself
// reported — so every suppression documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in suppression comments.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Flags declares per-analyzer string settings; drivers expose each as
	// -<analyzer>.<flag>.
	Flags []*Flag

	// Run inspects one package. The returned value is recorded as the
	// package's fact for Finish (nil if the analyzer has no cross-package
	// component).
	Run func(*Pass) (any, error)

	// Finish, if non-nil, runs once after every package has been analyzed,
	// with access to all per-package Run results. Cross-package invariants
	// report through it.
	Finish func(*FinishPass) error
}

// A Flag is a named, documented string setting on an Analyzer.
type Flag struct {
	Name  string
	Usage string
	Value *string // points at the analyzer's setting; drivers bind it
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File // non-test source files, parsed with comments
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A FinishPass presents the accumulated per-package facts of one Analyzer
// after the whole run.
type FinishPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Results maps import path → the value returned by Run for that package,
	// for every package where Run returned non-nil.
	Results map[string]any

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (fp *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	fp.report(Diagnostic{
		Analyzer: fp.Analyzer.Name,
		Pos:      fp.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}
