package metriclint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metriclint"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, metriclint.Analyzer, "ml")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, metriclint.Analyzer, "mlclean")
}
