// Package ml exercises every violation path of the metriclint analyzer.
package ml

import (
	"fmt"

	"repro/internal/obs"
)

// MetricShared is reused below with two different label-key sets.
const MetricShared = "ml_shared_total"

// InlineName registers with an inline literal instead of a constant.
func InlineName(r *obs.Registry) {
	r.Counter("ml_inline_total", nil) // want `inline string literal`
}

// SprintfName builds an unbounded name dynamically.
func SprintfName(r *obs.Registry, shard int) {
	r.Counter(fmt.Sprintf("ml_shard_%d_total", shard), nil) // want `built by a function call`
}

// ConcatName concatenates a non-constant suffix.
func ConcatName(r *obs.Registry, suffix string) {
	r.Counter("ml_"+suffix, nil) // want `not statically bounded`
}

// DynamicKey uses a runtime label key.
func DynamicKey(r *obs.Registry, k string) {
	r.Gauge(MetricShared, obs.Labels{k: "v"}) // want `label key is not a compile-time constant`
}

// Inconsistent uses two label-key sets for one metric name.
func Inconsistent(r *obs.Registry) {
	r.Counter(MetricShared, obs.Labels{"shard": "0"})
	r.Counter(MetricShared, obs.Labels{"replica": "0"}) // want `label keys must be consistent per metric name`
}
