// Package mlclean holds the sanctioned counterparts of the ml fixture's
// violations: declared name constants, constant label keys used consistently,
// and the thin-wrapper idiom that threads a constant through a parameter.
package mlclean

import "repro/internal/obs"

// MetricRequests is the declared name for the request counter.
const MetricRequests = "mlclean_requests_total"

// count is the wrapper idiom: the name parameter is an identifier, and the
// constant is checked where the wrapper is called.
func count(r *obs.Registry, name, shard string) {
	r.Counter(name, obs.Labels{"shard": shard}).Inc()
}

// Record uses one label-key set for the metric at every call site.
func Record(r *obs.Registry, shard string) {
	count(r, MetricRequests, shard)
	r.Counter(MetricRequests, obs.Labels{"shard": shard}).Inc()
}
