// Package metriclint bounds the cardinality of the obs metrics surface:
// metric registration must use declared string constants (never inline
// literals or fmt.Sprintf-built names), label keys must be compile-time
// constants, and a given metric name must use the same label-key set at
// every call site across the module — differing key sets silently split one
// logical series into several.
package metriclint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metriclint",
	Doc: "require statically declared obs metric names and bounded, " +
		"call-site-consistent label sets",
	Run:    run,
	Finish: finish,
}

// registryMethods create or look up a metric series by name + labels.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// A Site is one registry call with a statically-known name and label-key
// set, recorded for the cross-package consistency check.
type Site struct {
	Name string
	Keys []string // sorted label keys; nil means unknown (non-literal labels)
	Lit  bool     // labels argument was a composite literal
	Pos  token.Pos
}

// Facts is the per-package result consumed by Finish.
type Facts struct {
	ImportPath string
	Sites      []Site
}

func run(pass *analysis.Pass) (any, error) {
	facts := &Facts{ImportPath: pass.ImportPath}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || analysis.FuncPkgName(fn) != "obs" || !registryMethods[fn.Name()] {
				return true
			}
			if named := analysis.RecvNamed(fn); named == nil || named.Obj().Name() != "Registry" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			site := Site{Pos: call.Pos()}
			checkName(pass, fn.Name(), call.Args[0], &site)
			checkLabels(pass, call.Args[1], &site)
			if site.Name != "" && site.Lit {
				facts.Sites = append(facts.Sites, site)
			}
			return true
		})
	}
	if len(facts.Sites) == 0 {
		return nil, nil
	}
	return facts, nil
}

// checkName enforces that the metric name is a declared constant (or a plain
// identifier, which permits thin wrappers that thread a constant through a
// parameter).
func checkName(pass *analysis.Pass, method string, arg ast.Expr, site *Site) {
	arg = ast.Unparen(arg)
	name, isConst := analysis.ConstString(pass.TypesInfo, arg)
	if isConst {
		if _, isLit := arg.(*ast.BasicLit); isLit {
			pass.Reportf(arg.Pos(),
				"obs.%s name is an inline string literal; declare an exported metric-name constant",
				method)
			return
		}
		site.Name = name
		return
	}
	switch arg.(type) {
	case *ast.Ident:
		// A non-constant identifier is a wrapper parameter; the constant is
		// checked where the wrapper is called.
	case *ast.CallExpr:
		pass.Reportf(arg.Pos(),
			"obs.%s name is built by a function call; metric names must be static (no fmt.Sprintf)",
			method)
	default:
		pass.Reportf(arg.Pos(),
			"obs.%s name is not statically bounded; use a declared metric-name constant",
			method)
	}
}

// checkLabels enforces constant label keys and records the key set when the
// labels argument is a composite literal.
func checkLabels(pass *analysis.Pass, arg ast.Expr, site *Site) {
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return // nil or a labels variable: cardinality judged at its literal
	}
	site.Lit = true
	keys := []string{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, isConst := analysis.ConstString(pass.TypesInfo, kv.Key)
		if !isConst {
			pass.Reportf(kv.Key.Pos(),
				"obs label key is not a compile-time constant; label sets must be statically bounded")
			site.Lit = false
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	site.Keys = keys
}

// finish cross-checks label-key sets per metric name across every package.
func finish(fp *analysis.FinishPass) error {
	paths := make([]string, 0, len(fp.Results))
	for path := range fp.Results {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	type first struct {
		keys string
		pos  token.Pos
	}
	seen := map[string]first{}
	for _, path := range paths {
		facts := fp.Results[path].(*Facts)
		for _, site := range facts.Sites {
			keys := strings.Join(site.Keys, ",")
			prev, ok := seen[site.Name]
			if !ok {
				seen[site.Name] = first{keys: keys, pos: site.Pos}
				continue
			}
			if prev.keys != keys {
				fp.Reportf(site.Pos,
					"metric %q used with label keys [%s] here but [%s] at %s; label keys must be consistent per metric name",
					site.Name, keys, prev.keys, fp.Fset.Position(prev.pos))
			}
		}
	}
	return nil
}
