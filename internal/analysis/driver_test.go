package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// fakeAnalyzer flags every call to a function named "target"; the supp
// fixture pairs it with one bare call, one suppressed call, and one call
// under a malformed (reason-less) directive.
func fakeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fake",
		Doc:  "flag calls to target",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Name() == "target" {
						pass.Reportf(call.Pos(), "call to target")
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

func TestDriverSuppressions(t *testing.T) {
	res, err := Run(Config{
		Patterns:  []string{"./testdata/src/supp"},
		Analyzers: []*Analyzer{fakeAnalyzer()},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var fake, malformed int
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == "fake":
			fake++
		case strings.Contains(d.Message, "malformed"):
			malformed++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if fake != 2 {
		t.Errorf("fake diagnostics = %d, want 2 (bare call + call under malformed directive): %v", fake, res.Diagnostics)
	}
	if malformed != 1 {
		t.Errorf("malformed-directive diagnostics = %d, want 1", malformed)
	}
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d, want 1: %v", len(res.Suppressed), res.Suppressed)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	res, err := Run(Config{
		Patterns:  []string{"./testdata/src/supp"},
		Analyzers: []*Analyzer{fakeAnalyzer()},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 1; i < len(res.Diagnostics); i++ {
		a, b := res.Diagnostics[i-1], res.Diagnostics[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

func TestLoadRejectsTypeErrors(t *testing.T) {
	if _, _, err := Load("", []string{"./testdata/src/doesnotexist"}); err == nil {
		t.Error("Load of a nonexistent package succeeded, want error")
	}
}
