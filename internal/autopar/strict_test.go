package autopar

import "testing"

// TestAnySequential pins the -strict gate's predicate, including nested
// loops: a parallel outer loop with a sequential inner loop must still trip
// the gate.
func TestAnySequential(t *testing.T) {
	if AnySequential(AnalyzeProgram(VectorAdd())) {
		t.Error("vector add tripped the strict gate; want all-parallel")
	}
	if !AnySequential(AnalyzeProgram(Stencil1D())) {
		t.Error("stencil did not trip the strict gate; want Sequential detected")
	}
	if !AnySequential(AnalyzeProgram(Program1ThreatSequential())) {
		t.Error("Program 1 did not trip the strict gate")
	}

	// Nested detection: build a report tree whose only Sequential verdict is
	// a grandchild.
	tree := []*Report{{
		Verdict: Parallel,
		Children: []*Report{{
			Verdict:  ParallelByPragma,
			Children: []*Report{{Verdict: Sequential}},
		}},
	}}
	if !AnySequential(tree) {
		t.Error("nested Sequential verdict not detected")
	}
	if AnySequential([]*Report{{Verdict: Parallel}}) {
		t.Error("all-parallel tree tripped the strict gate")
	}
}
