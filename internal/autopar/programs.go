package autopar

// This file contains loop-nest models of the four programs whose
// parallelizability the paper studies (Programs 1–4), plus small textbook
// loops used to validate that the analyzer is not trivially pessimistic.

// Program1ThreatSequential models the paper's Program 1, sequential Threat
// Analysis: three nested loops where every interval append increments the
// shared num_intervals counter and writes intervals[num_intervals], and the
// interception times come from time-stepped simulation inside a while loop.
// As the paper says: "The indices that a particular iteration assigns to
// cannot be determined without first executing the prior iterations."
func Program1ThreatSequential() *Program {
	while := While{
		Cond: "weapon can intercept threat in [t0 .. impact]",
		Body: []Stmt{
			Assign{LHS: Ref{Array: "t1"}, Reads: nil},
			Assign{LHS: Ref{Array: "t2"}, Reads: nil},
			Assign{
				LHS:   Ref{Array: "intervals", Index: []Expr{Opaque{"num_intervals, a sequential scalar"}}},
				Reads: []Ref{{Array: "num_intervals"}},
			},
			Assign{LHS: Ref{Array: "num_intervals"}, Reads: []Ref{{Array: "num_intervals"}}},
			Assign{LHS: Ref{Array: "t0"}, Reads: []Ref{{Array: "t2"}}},
		},
	}
	weaponLoop := Loop{
		Var: "weapon", Lo: Con(0), Hi: V("num_weapons-1"),
		Body: []Stmt{
			Assign{LHS: Ref{Array: "t0"}},
			Call{Name: "InitialDetectionTime"},
			Call{Name: "TimeSteppedIntercept"},
			while,
		},
	}
	threatLoop := Loop{
		Var: "threat", Lo: Con(0), Hi: V("num_threats-1"),
		Body: []Stmt{weaponLoop},
	}
	return &Program{
		Name:  "Program 1: sequential Threat Analysis",
		Top:   []Stmt{threatLoop},
		Notes: "shared num_intervals/intervals plus t0,t1,t2 at function scope",
	}
}

// Program2ThreatChunked models the paper's Program 2, the manually
// transformed Threat Analysis: a chunk loop annotated with the parallel
// pragma; each chunk owns num_intervals[chunk] and intervals[chunk][...],
// and all scalars are localized into the loop body. The per-chunk counter is
// affine in chunk, but the second subscript of intervals still flows through
// it, and the body still contains calls and the time-stepped while — so
// without the pragma the analyzer (like the paper's compilers) cannot prove
// independence.
func Program2ThreatChunked(pragma bool) *Program {
	while := While{
		Cond: "weapon can intercept threat in [t0 .. impact]",
		Body: []Stmt{
			Assign{
				LHS: Ref{Array: "intervals", Index: []Expr{
					V("chunk"), Opaque{"num_intervals[chunk], carried through the while loop"},
				}},
				Reads: []Ref{{Array: "num_intervals", Index: []Expr{V("chunk")}}},
			},
			Assign{
				LHS:   Ref{Array: "num_intervals", Index: []Expr{V("chunk")}},
				Reads: []Ref{{Array: "num_intervals", Index: []Expr{V("chunk")}}},
			},
		},
	}
	chunkLoop := Loop{
		Var: "chunk", Lo: Con(0), Hi: V("num_chunks-1"),
		Pragma: pragma,
		Locals: []string{"first_threat", "last_threat", "threat", "weapon", "t0", "t1", "t2"},
		Body: []Stmt{
			Assign{LHS: Ref{Array: "num_intervals", Index: []Expr{V("chunk")}}},
			Call{Name: "TimeSteppedIntercept"},
			while,
		},
	}
	return &Program{
		Name:  "Program 2: multithreaded Threat Analysis (chunked)",
		Top:   []Stmt{chunkLoop},
		Notes: "per-chunk arrays; pragma asserts chunk independence",
	}
}

// Program3TerrainSequential models the paper's Program 3, sequential
// Terrain Masking: the outer loop over threats assigns to overlapping
// regions of the masking array (subscripts depend on each threat's region of
// influence, computed through pointer arithmetic), and the inner compute
// pass reads neighboring points — a genuine loop-carried dependence.
func Program3TerrainSequential() *Program {
	// Inner x-loop of the compute pass: masking[x][y] from masking[x-1][y].
	computeInner := Loop{
		Var: "x", Lo: Con(0), Hi: V("region_x-1"),
		Body: []Stmt{
			Call{Name: "MaxSafeAltitude"},
			Assign{
				LHS: Ref{Array: "masking", Index: []Expr{V("x"), V("y")}},
				Reads: []Ref{
					{Array: "masking", Index: []Expr{Aff(-1, Term{"x", 1}), V("y")}},
				},
			},
		},
	}
	// Save/min passes walk the region of influence via pointer arithmetic.
	savePass := Assign{
		LHS:   Ref{Array: "temp", Index: []Expr{Opaque{"pointer walk over region of influence"}}},
		Reads: []Ref{{Array: "masking", Index: []Expr{Opaque{"pointer walk over region of influence"}}}},
	}
	minPass := Assign{
		LHS: Ref{Array: "masking", Index: []Expr{Opaque{"region of influence of threat (overlaps between threats)"}}},
		Reads: []Ref{
			{Array: "masking", Index: []Expr{Opaque{"region of influence of threat (overlaps between threats)"}}},
			{Array: "temp", Index: []Expr{Opaque{"pointer walk over region of influence"}}},
		},
	}
	threatLoop := Loop{
		Var: "threat", Lo: Con(0), Hi: V("num_threats-1"),
		Body: []Stmt{savePass, computeInner, minPass},
	}
	return &Program{
		Name:  "Program 3: sequential Terrain Masking",
		Top:   []Stmt{threatLoop},
		Notes: "overlapping regions of influence; neighbor-dependent compute pass",
	}
}

// Program4TerrainCoarse models the paper's Program 4, coarse-grained
// multithreaded Terrain Masking: a pragma-annotated thread loop whose body
// dynamically claims threats from a shared queue inside a while loop and
// minimizes into the shared masking array under block locks. Nothing here is
// provable for a compiler; the pragma (plus the locking discipline) carries
// the correctness argument.
func Program4TerrainCoarse(pragma bool) *Program {
	while := While{
		Cond: "unprocessed threats",
		Body: []Stmt{
			Assign{LHS: Ref{Array: "next_threat"}, Reads: []Ref{{Array: "next_threat"}}},
			Call{Name: "MaxSafeAltitude"},
			Call{Name: "lock"},
			Assign{
				LHS: Ref{Array: "masking", Index: []Expr{Opaque{"region of overlap between threat and block"}}},
				Reads: []Ref{
					{Array: "masking", Index: []Expr{Opaque{"region of overlap between threat and block"}}},
					{Array: "temp", Index: []Expr{Opaque{"private temp array"}}},
				},
			},
			Call{Name: "unlock"},
		},
	}
	threadLoop := Loop{
		Var: "thread", Lo: Con(0), Hi: V("num_threads-1"),
		Pragma: pragma,
		Locals: []string{"threat", "x", "y", "temp"},
		Body:   []Stmt{while},
	}
	return &Program{
		Name:  "Program 4: coarse-grained multithreaded Terrain Masking",
		Top:   []Stmt{threadLoop},
		Notes: "dynamic threat queue; per-block locking; private temp arrays",
	}
}

// --- Textbook loops used to validate the analyzer itself ---

// VectorAdd is the trivially parallel a[i] = b[i] + c[i].
func VectorAdd() *Program {
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{V("i")}},
			Reads: []Ref{{Array: "b", Index: []Expr{V("i")}}, {Array: "c", Index: []Expr{V("i")}}},
		}},
	}
	return &Program{Name: "vector add", Top: []Stmt{l}}
}

// Stencil1D is the flow-dependent a[i] = a[i-1] + b[i]: inherently serial.
func Stencil1D() *Program {
	l := Loop{
		Var: "i", Lo: Con(1), Hi: V("n-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{V("i")}},
			Reads: []Ref{{Array: "a", Index: []Expr{Aff(-1, Term{"i", 1})}}, {Array: "b", Index: []Expr{V("i")}}},
		}},
	}
	return &Program{Name: "1-d stencil", Top: []Stmt{l}}
}

// SumReduction is sum += a[i] with the reduction recognized.
func SumReduction() *Program {
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Body: []Stmt{Assign{
			LHS:       Ref{Array: "sum"},
			Reads:     []Ref{{Array: "sum"}, {Array: "a", Index: []Expr{V("i")}}},
			Reduction: true,
		}},
	}
	return &Program{Name: "sum reduction", Top: []Stmt{l}}
}

// StridedDisjoint writes a[2i] and reads a[2i+1]: the GCD test proves
// independence.
func StridedDisjoint() *Program {
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{Aff(0, Term{"i", 2})}},
			Reads: []Ref{{Array: "a", Index: []Expr{Aff(1, Term{"i", 2})}}},
		}},
	}
	return &Program{Name: "strided disjoint", Top: []Stmt{l}}
}
