// Package autopar reproduces the paper's automatic-parallelization
// experiments: a dependence analyzer in the style of the manufacturer
// compilers on the HP Exemplar and the Tera MTA, applied to loop-nest models
// of the paper's Programs 1–4.
//
// The paper's finding is negative: "the manufacturer-supplied automatic
// parallelizing compilers were unable to identify any practical
// opportunities for parallelization" of either benchmark, for two
// fundamental reasons — efficient parallelization requires algorithmic
// change, and general-purpose programs contain "chains of function calls,
// pointer operations, and non-trivial index expressions that thwart compiler
// analysis". This analyzer fails in exactly those ways and explains why,
// like the compiler-feedback tools the paper describes. It succeeds on
// textbook affine loops (so the negative result is meaningful), and it
// accepts the manually transformed programs only when the explicit parallel
// pragma asserts independence — also matching the paper ("the compilers were
// not even able to parallelize the manually transformed programs without the
// explicit parallel loop pragmas").
package autopar

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a subscript or bound expression: either affine in loop variables
// and symbolic parameters, or opaque to analysis.
type Expr interface {
	isExpr()
	String() string
}

// Term is one linear term of an affine expression.
type Term struct {
	Var  string
	Coef int
}

// Affine is c + Σ coef·var. Terms are kept sorted by variable name.
type Affine struct {
	Const int
	Terms []Term
}

func (Affine) isExpr() {}

// String renders the affine expression.
func (a Affine) String() string {
	var parts []string
	for _, t := range a.Terms {
		switch t.Coef {
		case 1:
			parts = append(parts, t.Var)
		case -1:
			parts = append(parts, "-"+t.Var)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", t.Coef, t.Var))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, "+")
}

// Coef returns the coefficient of variable v (0 if absent).
func (a Affine) Coef(v string) int {
	for _, t := range a.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// without returns the affine expression with variable v removed.
func (a Affine) without(v string) Affine {
	out := Affine{Const: a.Const}
	for _, t := range a.Terms {
		if t.Var != v {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// equalParams reports whether two affine expressions have identical
// parameter parts (everything except variable v and the constant).
func equalParams(a, b Affine, v string) bool {
	x, y := a.without(v), b.without(v)
	if len(x.Terms) != len(y.Terms) {
		return false
	}
	for i := range x.Terms {
		if x.Terms[i] != y.Terms[i] {
			return false
		}
	}
	return true
}

// Aff builds an affine expression from a constant and terms; terms are
// normalized (sorted, zero coefficients dropped, duplicates merged).
func Aff(c int, terms ...Term) Affine {
	m := map[string]int{}
	for _, t := range terms {
		m[t.Var] += t.Coef
	}
	vars := make([]string, 0, len(m))
	for v, coef := range m {
		if coef != 0 {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	a := Affine{Const: c}
	for _, v := range vars {
		a.Terms = append(a.Terms, Term{Var: v, Coef: m[v]})
	}
	return a
}

// V is the affine expression consisting of a single variable.
func V(name string) Affine { return Aff(0, Term{Var: name, Coef: 1}) }

// Con is a constant affine expression.
func Con(c int) Affine { return Aff(c) }

// Opaque is an expression the compiler cannot analyze: the result of a
// function call, a pointer dereference, or a value carried through a
// sequential scalar.
type Opaque struct {
	Why string
}

func (Opaque) isExpr() {}

// String renders the opaque expression with its reason.
func (o Opaque) String() string { return fmt.Sprintf("⟨%s⟩", o.Why) }

// Ref is an array (or scalar, if Index is empty) reference.
type Ref struct {
	Array string
	Index []Expr
	Write bool
}

// String renders the reference.
func (r Ref) String() string {
	if len(r.Index) == 0 {
		return r.Array
	}
	var idx []string
	for _, e := range r.Index {
		idx = append(idx, e.String())
	}
	return fmt.Sprintf("%s[%s]", r.Array, strings.Join(idx, "]["))
}

// Stmt is a statement in a loop body.
type Stmt interface{ isStmt() }

// Assign models one assignment: LHS written, Reads read. Reduction marks the
// recognized pattern "x = x ⊕ e" for an associative ⊕, which a parallelizer
// may legally run as a reduction.
type Assign struct {
	LHS       Ref
	Reads     []Ref
	Reduction bool
}

func (Assign) isStmt() {}

// Call models a call with unanalyzable side effects — the paper's "chains of
// function calls … that thwart compiler analysis".
type Call struct {
	Name string
}

func (Call) isStmt() {}

// While models a data-dependent inner loop (a time-stepped simulation): its
// trip count is unknown at compile time and its body executes sequentially.
type While struct {
	Cond string
	Body []Stmt
}

func (While) isStmt() {}

// If models a conditional. Both arms' references participate in dependence
// analysis (the compiler must assume either may execute), and the
// data-dependent control flow itself does not block parallelization.
type If struct {
	Cond string
	Then []Stmt
	Else []Stmt
}

func (If) isStmt() {}

// Loop is a counted loop, possibly annotated with the explicit parallel
// pragma. Locals are the variables declared inside the body (each iteration
// gets its own copy, so they never carry dependences).
type Loop struct {
	Var    string
	Lo, Hi Expr // inclusive bounds
	Pragma bool // #pragma multithreaded: programmer asserts independence
	Locals []string
	Body   []Stmt
}

func (Loop) isStmt() {}

// Program is a named loop nest under analysis.
type Program struct {
	Name  string
	Top   []Stmt // top-level statements (usually one outer loop)
	Notes string // description shown in reports
}
