package autopar

import (
	"fmt"
	"strings"
)

// Verdict is the analyzer's conclusion about one loop.
type Verdict int

const (
	// Parallel: the loop's iterations are provably independent.
	Parallel Verdict = iota
	// ParallelByPragma: not provable, but the programmer's explicit pragma
	// asserts independence (the paper's manual parallelization).
	ParallelByPragma
	// Sequential: the loop cannot be parallelized as written.
	Sequential
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Parallel:
		return "PARALLELIZED"
	case ParallelByPragma:
		return "PARALLELIZED (by explicit pragma only)"
	default:
		return "NOT PARALLELIZED"
	}
}

// ObstacleKind classifies why a loop resists parallelization.
type ObstacleKind int

const (
	// ObSharedScalar: a scalar live across iterations is written (the
	// num_intervals pattern).
	ObSharedScalar ObstacleKind = iota
	// ObCarriedDependence: a proven loop-carried array dependence.
	ObCarriedDependence
	// ObOpaqueSubscript: a subscript the analyzer cannot express affinely.
	ObOpaqueSubscript
	// ObUnknownCall: a call with unanalyzable side effects.
	ObUnknownCall
	// ObDataDependentLoop: an inner while with unknown trip count.
	ObDataDependentLoop
)

// Obstacle is one reason a loop was not parallelized, with the compiler-
// feedback explanation shown to the programmer.
type Obstacle struct {
	Kind ObstacleKind
	Text string
}

// Report is the analysis result for one loop, with nested loop reports.
type Report struct {
	LoopVar   string
	Verdict   Verdict
	Obstacles []Obstacle
	Notes     []string // non-blocking observations (reductions, pragma use)
	Children  []*Report
}

// AnalyzeProgram analyzes every top-level loop of a program.
func AnalyzeProgram(p *Program) []*Report {
	var out []*Report
	for _, s := range p.Top {
		if l, ok := s.(Loop); ok {
			out = append(out, AnalyzeLoop(&l))
		}
	}
	return out
}

// AnalyzeLoop determines whether the loop's iterations can run in parallel,
// producing the obstacles a compiler-feedback tool would report. Nested
// loops are analyzed recursively (each as a parallelization candidate in its
// own right, with outer variables treated as loop-invariant parameters).
func AnalyzeLoop(l *Loop) *Report {
	r := &Report{LoopVar: l.Var}
	local := map[string]bool{l.Var: true}
	for _, v := range l.Locals {
		local[v] = true
	}

	var refs []colRef
	collect(l.Body, local, nil, r, &refs)

	// Scalar dependences: any non-local scalar written in the body is live
	// across iterations.
	seenScalar := map[string]bool{}
	for _, cr := range refs {
		ref := cr.ref
		if len(ref.Index) > 0 || !ref.Write || local[ref.Array] || seenScalar[ref.Array] {
			continue
		}
		seenScalar[ref.Array] = true
		r.Obstacles = append(r.Obstacles, Obstacle{ObSharedScalar, fmt.Sprintf(
			"scalar %q is written on every iteration and carries a value between iterations",
			ref.Array)})
	}

	// Array dependences: test every pair on the same array with ≥1 write.
	reported := map[string]bool{}
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			a, b := refs[i], refs[j]
			if a.ref.Array != b.ref.Array || len(a.ref.Index) == 0 || len(b.ref.Index) == 0 {
				continue
			}
			if !a.ref.Write && !b.ref.Write {
				continue
			}
			if local[a.ref.Array] {
				continue // loop-private array: each iteration has its own
			}
			if ob, dep := testDependence(l, a, b); dep {
				key := ob.Text
				if !reported[key] {
					reported[key] = true
					r.Obstacles = append(r.Obstacles, ob)
				}
			}
		}
	}

	// Verdict.
	switch {
	case len(r.Obstacles) == 0:
		r.Verdict = Parallel
	case l.Pragma:
		r.Verdict = ParallelByPragma
		r.Notes = append(r.Notes, "explicit pragma overrides the dependence analysis; "+
			"correctness is the programmer's responsibility")
	default:
		r.Verdict = Sequential
	}

	// Recurse into nested loops as independent candidates.
	var walkChildren func(body []Stmt)
	walkChildren = func(body []Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case Loop:
				r.Children = append(r.Children, AnalyzeLoop(&st))
			case While:
				walkChildren(st.Body)
			case If:
				walkChildren(st.Then)
				walkChildren(st.Else)
			}
		}
	}
	walkChildren(l.Body)
	return r
}

// colRef is a collected reference together with the inner-loop variables in
// scope where it occurs. Those variables range over many values within one
// outer iteration, so the outer dependence test must treat them universally,
// not as fixed parameters.
type colRef struct {
	ref     Ref
	varying map[string]bool
}

// collect gathers references and structural obstacles from a body. Refs
// inside nested counted loops are included (their loop variables recorded as
// varying); whiles and calls are obstacles in their own right.
func collect(body []Stmt, local map[string]bool, varying map[string]bool, r *Report, refs *[]colRef) {
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			if st.Reduction && len(st.LHS.Index) == 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"recognized reduction on %q (legal to parallelize with a combining tree)", st.LHS.Array))
			} else {
				lhs := st.LHS
				lhs.Write = true
				*refs = append(*refs, colRef{lhs, varying})
			}
			for _, rd := range st.Reads {
				*refs = append(*refs, colRef{rd, varying})
			}
		case Call:
			r.Obstacles = append(r.Obstacles, Obstacle{ObUnknownCall, fmt.Sprintf(
				"call %s(...) has unknown side effects; interprocedural analysis fails", st.Name)})
		case While:
			r.Obstacles = append(r.Obstacles, Obstacle{ObDataDependentLoop, fmt.Sprintf(
				"inner while (%s) has a data-dependent trip count (time-stepped simulation)", st.Cond)})
			collect(st.Body, local, varying, r, refs)
		case If:
			collect(st.Then, local, varying, r, refs)
			collect(st.Else, local, varying, r, refs)
		case Loop:
			inner := map[string]bool{}
			for k := range local {
				inner[k] = true
			}
			inner[st.Var] = true
			for _, v := range st.Locals {
				inner[v] = true
			}
			vary := map[string]bool{st.Var: true}
			for k := range varying {
				vary[k] = true
			}
			// Nested refs participate in the outer dependence test; nested
			// calls/whiles are obstacles for the outer loop too.
			collect(st.Body, inner, vary, r, refs)
		}
	}
}

// testDependence decides whether refs a and b may touch the same element of
// their array on different iterations of loop l. It returns the obstacle to
// report when a dependence (or undecidability) is found.
func testDependence(l *Loop, a, b colRef) (Obstacle, bool) {
	v := l.Var
	pairName := fmt.Sprintf("%s and %s", a.ref.String(), b.ref.String())

	varying := map[string]bool{}
	for k := range a.varying {
		varying[k] = true
	}
	for k := range b.varying {
		varying[k] = true
	}

	// Any opaque subscript defeats analysis.
	for _, ref := range []Ref{a.ref, b.ref} {
		for _, e := range ref.Index {
			if o, ok := e.(Opaque); ok {
				return Obstacle{ObOpaqueSubscript, fmt.Sprintf(
					"subscript of %s is not analyzable: %s", ref.String(), o.Why)}, true
			}
		}
	}
	if len(a.ref.Index) != len(b.ref.Index) {
		return Obstacle{ObOpaqueSubscript, fmt.Sprintf(
			"references %s have mismatched dimensionality", pairName)}, true
	}

	// Dimension-by-dimension affine tests: the pair is independent if ANY
	// dimension proves no cross-iteration solution exists; it is
	// loop-independent (harmless) only if every dimension pins the access to
	// the same iteration.
	allSameIter := true
	for d := range a.ref.Index {
		fa := a.ref.Index[d].(Affine)
		fb := b.ref.Index[d].(Affine)
		switch testDim(l, v, fa, fb, varying) {
		case depNone:
			return Obstacle{}, false // provably independent
		case depLoopIndependent:
			// Same iteration only; keep checking other dimensions.
		default:
			allSameIter = false
		}
	}
	if allSameIter {
		return Obstacle{}, false
	}
	return Obstacle{ObCarriedDependence, fmt.Sprintf(
		"possible loop-carried dependence between %s", pairName)}, true
}

type depResult int

const (
	depNone            depResult = iota // provably no cross-iteration overlap
	depLoopIndependent                  // overlap only within one iteration
	depCarried                          // proven cross-iteration dependence
	depUnknown                          // cannot decide; assume dependence
)

// testDim tests one subscript dimension: does fa(i) = fb(i') admit a
// solution with i ≠ i'? Uses the GCD test and constant-distance reasoning.
// Symbolic parameters must match; symbols in varying (inner-loop variables)
// range over many values within one iteration of l, so they can absorb any
// constant difference — only exact same-iteration coincidence can then be
// concluded, never independence.
func testDim(l *Loop, v string, fa, fb Affine, varying map[string]bool) depResult {
	av, bv := fa.Coef(v), fb.Coef(v)
	if !equalParams(fa, fb, v) {
		// Different symbolic parts: e.g. base+i vs base2+i. Without knowing
		// the parameters, the compiler must assume overlap.
		return depUnknown
	}
	hasVarying := false
	for _, t := range fa.without(v).Terms {
		if varying[t.Var] {
			hasVarying = true
		}
	}
	ca, cb := fa.Const, fb.Const
	delta := cb - ca
	if hasVarying {
		// Identical varying parts: a different inner-loop value on another
		// iteration of l can cancel any constant difference, so overlap
		// cannot be ruled out. Only the exact same-subscript case with a
		// loop-variant coefficient pins the access to one iteration of l.
		if delta == 0 && av == bv && av != 0 {
			return depLoopIndependent
		}
		if delta == 0 && av == 0 && bv == 0 {
			return depCarried // the same varying range is re-touched every iteration
		}
		return depUnknown
	}
	switch {
	case av == 0 && bv == 0:
		if delta != 0 {
			return depNone // distinct constant elements
		}
		return depCarried // the same element every iteration
	case av == bv:
		if delta%av != 0 {
			return depNone // GCD test: no integral solution
		}
		dist := delta / av
		if dist == 0 {
			return depLoopIndependent
		}
		// Banerjee-style bound: a constant distance larger than the
		// iteration count cannot be realized.
		if lo, okLo := l.Lo.(Affine); okLo {
			if hi, okHi := l.Hi.(Affine); okHi && len(lo.Terms) == 0 && len(hi.Terms) == 0 {
				span := hi.Const - lo.Const
				if dist > span || -dist > span {
					return depNone
				}
			}
		}
		return depCarried
	default:
		// a·i − b·i′ = delta: solvable over the integers iff gcd(a,b) | delta.
		if delta%gcd(abs(av), abs(bv)) != 0 {
			return depNone
		}
		return depUnknown
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Render formats a report tree as compiler feedback text.
func Render(name string, reports []*Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", name)
	var walk func(r *Report, depth int)
	walk = func(r *Report, depth int) {
		ind := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%sloop over %s: %s\n", ind, r.LoopVar, r.Verdict)
		for _, ob := range r.Obstacles {
			fmt.Fprintf(&sb, "%s  - %s\n", ind, ob.Text)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "%s  * %s\n", ind, n)
		}
		for _, c := range r.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range reports {
		walk(r, 0)
	}
	return sb.String()
}

// AnyPractical reports whether the analysis found any loop it could
// parallelize without a pragma — the paper's criterion for "practical
// opportunities for parallelization".
func AnyPractical(reports []*Report) bool {
	var any func(r *Report) bool
	any = func(r *Report) bool {
		if r.Verdict == Parallel {
			return true
		}
		for _, c := range r.Children {
			if any(c) {
				return true
			}
		}
		return false
	}
	for _, r := range reports {
		if any(r) {
			return true
		}
	}
	return false
}

// AnySequential reports whether any analyzed loop, at any nesting depth, was
// left sequential — the predicate behind cmd/autopar's -strict gate, which
// fails a build whose loops the analyzer could not (or was not told to)
// parallelize.
func AnySequential(reports []*Report) bool {
	for _, r := range reports {
		if r.Verdict == Sequential || AnySequential(r.Children) {
			return true
		}
	}
	return false
}
