package autopar

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func topVerdict(t *testing.T, p *Program) *Report {
	t.Helper()
	reports := AnalyzeProgram(p)
	if len(reports) == 0 {
		t.Fatalf("%s: no loops analyzed", p.Name)
	}
	return reports[0]
}

func TestVectorAddParallel(t *testing.T) {
	r := topVerdict(t, VectorAdd())
	if r.Verdict != Parallel {
		t.Errorf("vector add verdict = %v, obstacles %v", r.Verdict, r.Obstacles)
	}
}

func TestStencilSequential(t *testing.T) {
	r := topVerdict(t, Stencil1D())
	if r.Verdict != Sequential {
		t.Errorf("stencil verdict = %v, want Sequential", r.Verdict)
	}
	found := false
	for _, ob := range r.Obstacles {
		if ob.Kind == ObCarriedDependence {
			found = true
		}
	}
	if !found {
		t.Errorf("stencil obstacles %v missing carried dependence", r.Obstacles)
	}
}

func TestSumReductionParallelWithNote(t *testing.T) {
	r := topVerdict(t, SumReduction())
	if r.Verdict != Parallel {
		t.Errorf("reduction verdict = %v, obstacles %v", r.Verdict, r.Obstacles)
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "reduction") {
		t.Errorf("reduction note missing: %v", r.Notes)
	}
}

func TestStridedDisjointParallelByGCD(t *testing.T) {
	r := topVerdict(t, StridedDisjoint())
	if r.Verdict != Parallel {
		t.Errorf("strided disjoint verdict = %v, obstacles %v (GCD test failed)", r.Verdict, r.Obstacles)
	}
}

func TestProgram1NotParallelized(t *testing.T) {
	// The paper: the compilers "were unable to identify any practical
	// opportunities for parallelization" of sequential Threat Analysis.
	p := Program1ThreatSequential()
	reports := AnalyzeProgram(p)
	if AnyPractical(reports) {
		t.Fatalf("Program 1 was parallelized:\n%s", Render(p.Name, reports))
	}
	r := reports[0]
	if r.Verdict != Sequential {
		t.Errorf("outer threat loop verdict = %v, want Sequential", r.Verdict)
	}
	kinds := map[ObstacleKind]bool{}
	var collectKinds func(rep *Report)
	collectKinds = func(rep *Report) {
		for _, ob := range rep.Obstacles {
			kinds[ob.Kind] = true
		}
		for _, c := range rep.Children {
			collectKinds(c)
		}
	}
	collectKinds(r)
	for _, want := range []ObstacleKind{ObSharedScalar, ObOpaqueSubscript, ObUnknownCall, ObDataDependentLoop} {
		if !kinds[want] {
			t.Errorf("Program 1 missing obstacle kind %d; report:\n%s", want, Render(p.Name, reports))
		}
	}
}

func TestProgram1SharedScalarIsNumIntervals(t *testing.T) {
	p := Program1ThreatSequential()
	text := Render(p.Name, AnalyzeProgram(p))
	if !strings.Contains(text, "num_intervals") {
		t.Errorf("report does not name num_intervals:\n%s", text)
	}
}

func TestProgram2NeedsPragma(t *testing.T) {
	// Without the pragma the transformed program still fails (the paper:
	// "the compilers were not even able to parallelize the manually
	// transformed programs without the explicit parallel loop pragmas").
	without := topVerdict(t, Program2ThreatChunked(false))
	if without.Verdict != Sequential {
		t.Errorf("Program 2 without pragma = %v, want Sequential", without.Verdict)
	}
	with := topVerdict(t, Program2ThreatChunked(true))
	if with.Verdict != ParallelByPragma {
		t.Errorf("Program 2 with pragma = %v, want ParallelByPragma", with.Verdict)
	}
}

func TestProgram3NotParallelized(t *testing.T) {
	p := Program3TerrainSequential()
	reports := AnalyzeProgram(p)
	if AnyPractical(reports) {
		t.Fatalf("Program 3 was parallelized:\n%s", Render(p.Name, reports))
	}
	r := reports[0]
	if r.Verdict != Sequential {
		t.Errorf("threat loop verdict = %v, want Sequential", r.Verdict)
	}
	// The inner compute loop must be rejected for its neighbor dependence.
	if len(r.Children) == 0 {
		t.Fatal("no inner loop report")
	}
	inner := r.Children[0]
	if inner.Verdict != Sequential {
		t.Errorf("inner compute loop = %v, want Sequential (neighbor dependence)", inner.Verdict)
	}
}

func TestProgram4NeedsPragma(t *testing.T) {
	without := topVerdict(t, Program4TerrainCoarse(false))
	if without.Verdict != Sequential {
		t.Errorf("Program 4 without pragma = %v, want Sequential", without.Verdict)
	}
	with := topVerdict(t, Program4TerrainCoarse(true))
	if with.Verdict != ParallelByPragma {
		t.Errorf("Program 4 with pragma = %v, want ParallelByPragma", with.Verdict)
	}
}

func TestPrivateArraysDoNotBlock(t *testing.T) {
	// A loop writing a loop-local (private) array is parallel.
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Locals: []string{"scratch"},
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "scratch", Index: []Expr{V("j")}},
			Reads: []Ref{{Array: "b", Index: []Expr{V("i")}}},
		}},
	}
	r := AnalyzeLoop(&l)
	if r.Verdict != Parallel {
		t.Errorf("private array loop = %v, obstacles %v", r.Verdict, r.Obstacles)
	}
}

func TestInnerLoopVariableBlocksFalseIndependence(t *testing.T) {
	// for i { for j { a[j] = ... } }: every i iteration writes the same
	// a[j] range — a carried dependence the analyzer must not miss even
	// though the subscripts do not mention i.
	inner := Loop{
		Var: "j", Lo: Con(0), Hi: V("m-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{V("j")}},
			Reads: []Ref{{Array: "a", Index: []Expr{V("j")}}},
		}},
	}
	outer := Loop{Var: "i", Lo: Con(0), Hi: V("n-1"), Body: []Stmt{inner}}
	r := AnalyzeLoop(&outer)
	if r.Verdict != Sequential {
		t.Errorf("outer loop over rewritten range = %v, want Sequential", r.Verdict)
	}
	// The inner loop alone is fine (same-iteration access).
	if len(r.Children) != 1 || r.Children[0].Verdict != Parallel {
		t.Errorf("inner loop should be Parallel, got %+v", r.Children)
	}
}

func TestInnerVariablePlusOffsetUnknown(t *testing.T) {
	// for i { for j { a[j+1] = a[j] } }: constant difference absorbed by j
	// across i iterations — must stay unparallelized at the i level.
	inner := Loop{
		Var: "j", Lo: Con(0), Hi: V("m-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{Aff(1, Term{"j", 1})}},
			Reads: []Ref{{Array: "a", Index: []Expr{V("j")}}},
		}},
	}
	outer := Loop{Var: "i", Lo: Con(0), Hi: V("n-1"), Body: []Stmt{inner}}
	r := AnalyzeLoop(&outer)
	if r.Verdict != Sequential {
		t.Errorf("verdict = %v, want Sequential", r.Verdict)
	}
}

func TestDistanceBeyondBoundsIndependent(t *testing.T) {
	// a[i] vs a[i+100] in a loop of 10 iterations: Banerjee bound proves
	// independence.
	l := Loop{
		Var: "i", Lo: Con(0), Hi: Con(9),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{V("i")}},
			Reads: []Ref{{Array: "a", Index: []Expr{Aff(100, Term{"i", 1})}}},
		}},
	}
	r := AnalyzeLoop(&l)
	if r.Verdict != Parallel {
		t.Errorf("distance-100 in 10-trip loop = %v, obstacles %v", r.Verdict, r.Obstacles)
	}
}

func TestDifferentParamBasesUnknown(t *testing.T) {
	// a[base1+i] = a[base2+i]: without values for the bases the compiler
	// must assume overlap.
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Body: []Stmt{Assign{
			LHS:   Ref{Array: "a", Index: []Expr{Aff(0, Term{"base1", 1}, Term{"i", 1})}},
			Reads: []Ref{{Array: "a", Index: []Expr{Aff(0, Term{"base2", 1}, Term{"i", 1})}}},
		}},
	}
	r := AnalyzeLoop(&l)
	if r.Verdict != Sequential {
		t.Errorf("different-base subscripts = %v, want Sequential", r.Verdict)
	}
}

func TestRenderContainsVerdictsAndObstacles(t *testing.T) {
	p := Program1ThreatSequential()
	text := Render(p.Name, AnalyzeProgram(p))
	for _, want := range []string{"NOT PARALLELIZED", "while", "unknown side effects", "loop over threat"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestAffineStringAndNormalization(t *testing.T) {
	a := Aff(3, Term{"i", 2}, Term{"i", -2}, Term{"j", 1})
	if a.Coef("i") != 0 {
		t.Errorf("i coefficient = %d, want 0 after merge", a.Coef("i"))
	}
	if got := a.String(); got != "j+3" {
		t.Errorf("String = %q, want j+3", got)
	}
	if got := Con(0).String(); got != "0" {
		t.Errorf("Con(0).String = %q", got)
	}
	if got := Aff(0, Term{"x", -1}).String(); got != "-x" {
		t.Errorf("String = %q, want -x", got)
	}
}

// Property: the GCD-based dimension test is sound — whenever it claims
// independence (depNone), brute-force enumeration over a small iteration
// space finds no conflicting pair.
func TestPropertyGCDSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo, hi := 0, 1+rng.Intn(30)
		a := rng.Intn(9) - 4
		b := rng.Intn(9) - 4
		ca := rng.Intn(40) - 20
		cb := rng.Intn(40) - 20
		l := Loop{Var: "i", Lo: Con(lo), Hi: Con(hi)}
		res := testDim(&l, "i",
			Aff(ca, Term{"i", a}),
			Aff(cb, Term{"i", b}), nil)
		// Brute force: any i ≠ i' in bounds with a·i+ca == b·i'+cb?
		conflict := false
		sameIterOnly := true
		for i := lo; i <= hi; i++ {
			for i2 := lo; i2 <= hi; i2++ {
				if a*i+ca == b*i2+cb {
					if i != i2 {
						conflict = true
					}
				}
			}
		}
		switch res {
		case depNone:
			return !conflict
		case depLoopIndependent:
			// claims: only same-iteration coincidences exist
			for i := lo; i <= hi; i++ {
				for i2 := lo; i2 <= hi; i2++ {
					if i != i2 && a*i+ca == b*i2+cb {
						sameIterOnly = false
					}
				}
			}
			return sameIterOnly
		default:
			return true // conservative answers are always sound
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIfArmsAnalyzed(t *testing.T) {
	// A conditional write to a[i-1] inside either arm must still be found.
	l := Loop{
		Var: "i", Lo: Con(1), Hi: V("n-1"),
		Body: []Stmt{If{
			Cond: "x > 0",
			Then: []Stmt{Assign{
				LHS:   Ref{Array: "a", Index: []Expr{V("i")}},
				Reads: []Ref{{Array: "a", Index: []Expr{Aff(-1, Term{"i", 1})}}},
			}},
			Else: []Stmt{Assign{
				LHS: Ref{Array: "b", Index: []Expr{V("i")}},
			}},
		}},
	}
	r := AnalyzeLoop(&l)
	if r.Verdict != Sequential {
		t.Errorf("conditional stencil verdict = %v, want Sequential", r.Verdict)
	}
}

func TestIfAloneDoesNotBlock(t *testing.T) {
	// Data-dependent control flow without cross-iteration references is
	// still parallel.
	l := Loop{
		Var: "i", Lo: Con(0), Hi: V("n-1"),
		Body: []Stmt{If{
			Cond: "a[i] > 0",
			Then: []Stmt{Assign{
				LHS:   Ref{Array: "b", Index: []Expr{V("i")}},
				Reads: []Ref{{Array: "a", Index: []Expr{V("i")}}},
			}},
		}},
	}
	r := AnalyzeLoop(&l)
	if r.Verdict != Parallel {
		t.Errorf("guarded vector op verdict = %v, obstacles %v", r.Verdict, r.Obstacles)
	}
}

func TestPrintProgramListings(t *testing.T) {
	for _, p := range []*Program{
		Program1ThreatSequential(),
		Program2ThreatChunked(true),
		Program3TerrainSequential(),
		Program4TerrainCoarse(true),
	} {
		out := PrintProgram(p)
		if !strings.Contains(out, "for (") {
			t.Errorf("%s: listing missing loop:\n%s", p.Name, out)
		}
	}
	p2 := PrintProgram(Program2ThreatChunked(true))
	for _, want := range []string{"#pragma multithreaded", "while (", "declare", "num_intervals[chunk]"} {
		if !strings.Contains(p2, want) {
			t.Errorf("Program 2 listing missing %q:\n%s", want, p2)
		}
	}
	withIf := &Program{Name: "if-demo", Top: []Stmt{Loop{
		Var: "i", Lo: Con(0), Hi: Con(9),
		Body: []Stmt{If{Cond: "c", Then: []Stmt{Call{Name: "f"}}, Else: []Stmt{Call{Name: "g"}}}},
	}}}
	out := PrintProgram(withIf)
	if !strings.Contains(out, "if (c)") || !strings.Contains(out, "} else {") {
		t.Errorf("if/else not rendered:\n%s", out)
	}
}
