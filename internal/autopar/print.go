package autopar

import (
	"fmt"
	"strings"
)

// PrintProgram renders a program's loop nest as pseudocode in the style of
// the paper's Program listings, so the analyzer's input is inspectable next
// to its verdict (cmd/autopar -show).
func PrintProgram(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Name)
	if p.Notes != "" {
		fmt.Fprintf(&sb, "  // %s\n", p.Notes)
	}
	for _, s := range p.Top {
		printStmt(&sb, s, 1)
	}
	return sb.String()
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	switch st := s.(type) {
	case Loop:
		pragma := ""
		if st.Pragma {
			fmt.Fprintf(sb, "%s#pragma multithreaded\n", ind)
		}
		fmt.Fprintf(sb, "%sfor (%s = %s .. %s) {%s\n", ind, st.Var, st.Lo.String(), st.Hi.String(), pragma)
		if len(st.Locals) > 0 {
			fmt.Fprintf(sb, "%s    declare %s;\n", ind, strings.Join(st.Locals, ", "))
		}
		for _, inner := range st.Body {
			printStmt(sb, inner, depth+1)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	case While:
		fmt.Fprintf(sb, "%swhile (%s) {\n", ind, st.Cond)
		for _, inner := range st.Body {
			printStmt(sb, inner, depth+1)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	case If:
		fmt.Fprintf(sb, "%sif (%s) {\n", ind, st.Cond)
		for _, inner := range st.Then {
			printStmt(sb, inner, depth+1)
		}
		if len(st.Else) > 0 {
			fmt.Fprintf(sb, "%s} else {\n", ind)
			for _, inner := range st.Else {
				printStmt(sb, inner, depth+1)
			}
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	case Assign:
		var reads []string
		for _, r := range st.Reads {
			reads = append(reads, r.String())
		}
		rhs := "..."
		if len(reads) > 0 {
			rhs = strings.Join(reads, ", ")
		}
		op := "="
		if st.Reduction {
			op = "⊕="
		}
		fmt.Fprintf(sb, "%s%s %s f(%s);\n", ind, st.LHS.String(), op, rhs)
	case Call:
		fmt.Fprintf(sb, "%s%s(...);\n", ind, st.Name)
	default:
		fmt.Fprintf(sb, "%s/* ? */\n", ind)
	}
}
