// Package smp models the paper's conventional platforms: a fast cached
// uniprocessor (Digital AlphaStation 500 MHz 21164A), a commodity
// quad-processor SMP (NeTpower Sparta, 4×200 MHz Pentium Pro under Windows
// NT), and a shared-memory multiprocessor supercomputer (HP Exemplar,
// 16×180 MHz PA-8000).
//
// Each processor executes at an effective rate of OpsPerCycle for
// cache-resident code; threads assigned to the same processor time-share it.
// Data traffic runs through a per-processor cache model (package cache);
// misses pay DRAM latency (divided by the processor's memory-level
// parallelism for pipelined bursts, undivided for serially-dependent loads)
// and transfer a line across a shared bus modeled as a processor-sharing
// queue — the resource whose saturation caps Terrain Masking's speedup in
// the paper ("memory-bound, causing contention between threads for access to
// shared memory").
//
// Thread and synchronization costs are the conventional-OS ones the paper
// contrasts with the MTA: thread creation "costs tens of thousands to
// hundreds of thousands of cycles and thread synchronization costs hundreds
// to thousands of cycles". Full/empty synchronization variables are emulated
// with a lock and condition variable at SyncVarCost — usable, but three
// orders of magnitude more expensive than the MTA's, which is why
// fine-grained styles are impractical on these machines.
package smp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psq"
)

// Params configures a conventional SMP model.
type Params struct {
	Name             string
	Procs            int
	ClockHz          float64
	OpsPerCycle      float64 // effective execution rate for cache-resident code
	CacheBytes       uint64  // per-processor cache capacity
	LineBytes        uint64  // miss transfer unit
	GranuleBytes     uint64  // cache-model residency granule
	DRAMLatency      float64 // miss latency in cycles
	MLP              float64 // overlapped misses for pipelined bursts
	BusBytesPerCycle float64 // aggregate bus/interconnect bandwidth
	ThreadCreate     float64 // OS thread create+start cost, cycles
	LockCost         float64 // lock or unlock, cycles
	SyncVarCost      float64 // emulated full/empty operation, cycles
	AtomicCost       float64 // bus-locked read-modify-write, cycles
	BarrierCost      float64 // per-arrival barrier cost, cycles
}

// dramNanos is the memory latency in nanoseconds assumed for all three
// conventional platforms (mid-1990s DRAM); each preset converts it to cycles
// at its own clock.
const dramNanos = 150

func cyclesAt(hz float64) float64 { return dramNanos * 1e-9 * hz }

// AlphaStation returns the Digital AlphaStation 500 MHz model: the paper's
// "fast execution on a top-of-the-line conventional processor".
func AlphaStation() Params {
	const hz = 500e6
	return Params{
		Name:             "Alpha",
		Procs:            1,
		ClockHz:          hz,
		OpsPerCycle:      1.0,
		CacheBytes:       1 << 20, // board-level cache (smaller than TM's working set)
		LineBytes:        64,
		GranuleBytes:     2048,
		DRAMLatency:      cyclesAt(hz),
		MLP:              1.15, // in-order 21164A: little overlap between misses
		BusBytesPerCycle: 8,
		ThreadCreate:     100_000,
		LockCost:         200,
		SyncVarCost:      1_200,
		AtomicCost:       120,
		BarrierCost:      400,
	}
}

// PentiumProSMP returns the NeTpower Sparta model: 4×200 MHz Pentium Pro
// with one shared snooping bus, under Windows NT with the Caltech Sthreads
// library.
func PentiumProSMP(procs int) Params {
	const hz = 200e6
	return Params{
		Name:             "Pentium Pro",
		Procs:            procs,
		ClockHz:          hz,
		OpsPerCycle:      1.0,
		CacheBytes:       256 << 10, // 256 KB L2 per package
		LineBytes:        32,
		GranuleBytes:     1024,
		DRAMLatency:      cyclesAt(hz),
		MLP:              4,       // out-of-order P6 core overlaps misses well
		BusBytesPerCycle: 2.67,    // 66 MHz × 8 B P6 front-side bus
		ThreadCreate:     200_000, // Win32 CreateThread + startup (~1 ms)
		LockCost:         300,
		SyncVarCost:      1_800,
		AtomicCost:       150,
		BarrierCost:      500,
	}
}

// Exemplar returns the HP Exemplar model: up to 16×180 MHz PA-8000 with a
// higher-bandwidth (but still saturable) shared-memory interconnect and the
// Exemplar shared-memory programming pragmas.
func Exemplar(procs int) Params {
	const hz = 180e6
	return Params{
		Name:             "Exemplar",
		Procs:            procs,
		ClockHz:          hz,
		OpsPerCycle:      1.5, // 4-way out-of-order PA-8000
		CacheBytes:       1 << 20,
		LineBytes:        32,
		GranuleBytes:     1024,
		DRAMLatency:      cyclesAt(hz),
		MLP:              1.0, // crossbar hop leaves no miss overlap
		BusBytesPerCycle: 5.5, // crossbar-class interconnect, still saturable
		ThreadCreate:     150_000,
		LockCost:         250,
		SyncVarCost:      1_500,
		AtomicCost:       140,
		BarrierCost:      450,
	}
}

// Model implements machine.Model for conventional cached SMPs.
type Model struct {
	p Params

	e      *machine.Engine
	exec   []*psq.Queue   // per-processor execution (time-shared, uncapped)
	caches []*cache.Cache // per-processor cache
	bus    *psq.Queue     // shared memory bus, units = bytes

	next int // round-robin thread placement
}

var _ machine.Model = (*Model)(nil)

// New creates a conventional SMP machine from the given parameters.
func New(p Params) *machine.Engine {
	if p.Procs < 1 {
		p.Procs = 1
	}
	m := &Model{p: p}
	name := p.Name
	if p.Procs > 1 {
		name = fmt.Sprintf("%s (%d proc)", p.Name, p.Procs)
	}
	cfg := machine.Config{Name: name, ClockHz: p.ClockHz, Procs: p.Procs}
	return machine.New(cfg, m)
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// Init implements machine.Model.
func (m *Model) Init(e *machine.Engine) {
	m.e = e
	m.exec = make([]*psq.Queue, m.p.Procs)
	m.caches = make([]*cache.Cache, m.p.Procs)
	for i := 0; i < m.p.Procs; i++ {
		m.exec[i] = psq.New(e.Kern, fmt.Sprintf("%s exec p%d", m.p.Name, i), m.p.OpsPerCycle, 0)
		m.caches[i] = cache.New(m.p.CacheBytes, m.p.LineBytes, m.p.GranuleBytes)
	}
	m.bus = psq.New(e.Kern, m.p.Name+" bus", m.p.BusBytesPerCycle, 0)
}

// Compute implements machine.Model: ops time-share the thread's processor.
func (m *Model) Compute(t *machine.Thread, ops int64) {
	m.exec[t.Proc].Serve(t.P, float64(ops))
}

// Memory implements machine.Model. Cache hits cost nothing beyond the
// instructions already charged via Compute; misses transfer lines over the
// shared bus and stall for DRAM latency (fully for dependent loads,
// overlapped by MLP for pipelined bursts).
func (m *Model) Memory(t *machine.Thread, b mem.Burst) {
	_, misses := m.caches[t.Proc].AccessBurst(b)
	if misses == 0 {
		return
	}
	m.bus.Serve(t.P, float64(misses)*float64(m.p.LineBytes))
	if b.Write {
		return // write-buffered: no stall beyond bus occupancy
	}
	stall := float64(misses) * m.p.DRAMLatency
	if !b.Dep && m.p.MLP > 1 {
		stall /= m.p.MLP
	}
	t.P.Sleep(stall)
}

// SyncTouch implements machine.Model: emulated full/empty operation
// (lock + condition variable) — hundreds to thousands of cycles.
func (m *Model) SyncTouch(t *machine.Thread) {
	m.exec[t.Proc].Serve(t.P, m.p.SyncVarCost*m.p.OpsPerCycle)
	m.bus.Serve(t.P, float64(m.p.LineBytes))
}

// AtomicTouch implements machine.Model: bus-locked read-modify-write.
func (m *Model) AtomicTouch(t *machine.Thread) {
	m.exec[t.Proc].Serve(t.P, m.p.AtomicCost*m.p.OpsPerCycle)
	m.bus.Serve(t.P, float64(m.p.LineBytes))
}

// LockTouch implements machine.Model.
func (m *Model) LockTouch(t *machine.Thread) {
	m.exec[t.Proc].Serve(t.P, m.p.LockCost*m.p.OpsPerCycle)
	m.bus.Serve(t.P, float64(m.p.LineBytes))
}

// BarrierTouch implements machine.Model.
func (m *Model) BarrierTouch(t *machine.Thread) {
	m.exec[t.Proc].Serve(t.P, m.p.BarrierCost*m.p.OpsPerCycle)
	m.bus.Serve(t.P, float64(m.p.LineBytes))
}

// SpawnCost implements machine.Model: OS thread creation.
func (m *Model) SpawnCost(parent *machine.Thread) {
	parent.P.Sleep(m.p.ThreadCreate)
}

// Admit implements machine.Model: round-robin placement, time-sharing when
// oversubscribed (the OS scheduler).
func (m *Model) Admit(t *machine.Thread) {
	t.Proc = m.next % m.p.Procs
	m.next++
}

// Release implements machine.Model.
func (m *Model) Release(t *machine.Thread) {}

// Finish implements machine.Model.
func (m *Model) Finish(st *machine.Stats) {
	st.ProcUtil = make([]float64, len(m.exec))
	for i, q := range m.exec {
		st.ProcUtil[i] = q.Utilization()
	}
	st.MemUtil = m.bus.Utilization()
	for _, c := range m.caches {
		st.CacheHits += c.Hits()
		st.CacheMisses += c.Misses()
	}
}
