package smp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mem"
)

// TestRunsAreBitwiseDeterministic mirrors the MTA determinism test for the
// conventional models: identical programs must produce identical cycles.
func TestRunsAreBitwiseDeterministic(t *testing.T) {
	run := func() float64 {
		e := New(Exemplar(8))
		res, err := e.Run("main", func(th *machine.Thread) {
			r := th.Alloc("data", 4<<20)
			l := th.NewLock("l")
			var ts []*machine.Thread
			for i := 0; i < 24; i++ {
				i := i
				ts = append(ts, th.Go(fmt.Sprintf("w%d", i), func(c *machine.Thread) {
					c.Compute(int64(5000 + i*311))
					c.Burst(mem.ReadBurst(r, uint64(i)*8192, 8, 400))
					l.Lock(c)
					c.Compute(100)
					l.Unlock(c)
				}))
			}
			th.JoinAll(ts)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic cycles: %v vs %v", a, b)
	}
}

// Property: adding memory traffic never makes a run faster, and utilization
// stays bounded.
func TestPropertyMoreTrafficNeverFaster(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		run := func(extra int) float64 {
			e := New(PentiumProSMP(2))
			res, err := e.Run("main", func(th *machine.Thread) {
				r := th.Alloc("data", 8<<20)
				th.Compute(10_000)
				th.Burst(mem.ReadBurst(r, 0, 8, n))
				if extra > 0 {
					th.Burst(mem.ReadBurst(r, 4<<20, 8, extra))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats.Cycles
		}
		base := run(0)
		more := run(1 + rng.Intn(5000))
		return more >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: cache hit/miss split conserves references across random bursts
// issued through a full machine run (end-to-end accounting).
func TestPropertyStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var refs int64
		e := New(AlphaStation())
		res, err := e.Run("main", func(th *machine.Thread) {
			r := th.Alloc("data", 2<<20)
			for i := 0; i < 10; i++ {
				n := rng.Intn(2000)
				off := uint64(rng.Intn(1 << 20))
				th.Burst(mem.ReadBurst(r, off, 8, n))
				refs += int64(n)
			}
		})
		if err != nil {
			return false
		}
		if res.Stats.MemRefs != refs {
			return false
		}
		return res.Stats.CacheHits+res.Stats.CacheMisses == refs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
