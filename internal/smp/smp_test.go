package smp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func run(t *testing.T, p Params, fn func(*machine.Thread)) machine.Result {
	t.Helper()
	e := New(p)
	res, err := e.Run("main", fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeRate(t *testing.T) {
	// 1e6 ops at OpsPerCycle 1.5 → 666667 cycles.
	p := Exemplar(1)
	res := run(t, p, func(th *machine.Thread) { th.Compute(1_500_000) })
	if math.Abs(res.Stats.Cycles-1e6) > 1 {
		t.Errorf("cycles = %v, want 1e6", res.Stats.Cycles)
	}
}

func TestClockRatiosMatchPaperSequentialOrdering(t *testing.T) {
	// The same compute-bound work must order Alpha < Exemplar < PentiumPro in
	// time, like the paper's sequential Threat Analysis row.
	work := int64(10_000_000)
	seconds := func(p Params) float64 {
		res := run(t, p, func(th *machine.Thread) { th.Compute(work) })
		return res.Seconds
	}
	alpha := seconds(AlphaStation())
	ppro := seconds(PentiumProSMP(4))
	exem := seconds(Exemplar(16))
	if !(alpha < exem && exem < ppro) {
		t.Errorf("ordering wrong: alpha=%v exemplar=%v ppro=%v", alpha, exem, ppro)
	}
	// Alpha at 500 MHz/IPC1 vs PPro at 200 MHz/IPC1: ratio 2.5.
	if r := ppro / alpha; math.Abs(r-2.5) > 0.01 {
		t.Errorf("ppro/alpha = %v, want 2.5", r)
	}
}

func TestCacheResidentBurstsAreFree(t *testing.T) {
	p := PentiumProSMP(1)
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("small", 64<<10)         // fits in 256 KB cache
		th.Burst(mem.ReadBurst(r, 0, 8, 8192)) // cold pass: misses
		base := th.NowCycles()
		th.Burst(mem.ReadBurst(r, 0, 8, 8192)) // warm pass: all hits
		if th.NowCycles() != base {
			t.Errorf("warm pass cost %v cycles, want 0", th.NowCycles()-base)
		}
	})
	if res.Stats.CacheHits == 0 || res.Stats.CacheMisses == 0 {
		t.Errorf("hits=%d misses=%d, want both nonzero", res.Stats.CacheHits, res.Stats.CacheMisses)
	}
}

func TestStreamingPaysDRAMAndBus(t *testing.T) {
	p := PentiumProSMP(1)
	const bytes = 1 << 20 // 4x the cache
	n := bytes / 8
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("big", bytes)
		th.Burst(mem.ReadBurst(r, 0, 8, n))
	})
	misses := float64(bytes) / float64(p.LineBytes)
	want := misses*float64(p.LineBytes)/p.BusBytesPerCycle + misses*p.DRAMLatency/p.MLP
	if math.Abs(res.Stats.Cycles-want)/want > 0.05 {
		t.Errorf("cycles = %v, want ≈ %v", res.Stats.Cycles, want)
	}
}

func TestDependentMissesDoNotOverlap(t *testing.T) {
	p := PentiumProSMP(1)
	const bytes = 1 << 20
	n := bytes / 8
	dep := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("big", bytes)
		th.Burst(mem.Burst{Region: r, Offset: 0, Stride: 8, Elem: 8, N: n, Dep: true})
	})
	pipe := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("big", bytes)
		th.Burst(mem.ReadBurst(r, 0, 8, n))
	})
	if dep.Stats.Cycles <= pipe.Stats.Cycles {
		t.Errorf("dependent (%v) not slower than pipelined (%v)", dep.Stats.Cycles, pipe.Stats.Cycles)
	}
}

func TestWritesNoStallBeyondBus(t *testing.T) {
	p := PentiumProSMP(1)
	const bytes = 1 << 20
	n := bytes / 8
	w := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("big", bytes)
		th.Burst(mem.WriteBurst(r, 0, 8, n))
	})
	rd := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("big", bytes)
		th.Burst(mem.ReadBurst(r, 0, 8, n))
	})
	if w.Stats.Cycles >= rd.Stats.Cycles {
		t.Errorf("writes (%v) not cheaper than reads (%v)", w.Stats.Cycles, rd.Stats.Cycles)
	}
}

func TestComputeBoundParallelSpeedupNearLinear(t *testing.T) {
	// The paper's Threat Analysis result: independent cache-resident threads
	// scale almost perfectly on the Exemplar (15.4 on 16 procs).
	work := int64(1_600_000_000) // large enough to amortize thread creation
	elapsed := func(procs, threads int) float64 {
		res := run(t, Exemplar(procs), func(th *machine.Thread) {
			var ts []*machine.Thread
			for i := 0; i < threads; i++ {
				ts = append(ts, th.Go(fmt.Sprintf("w%d", i), func(c *machine.Thread) {
					c.Compute(work / int64(threads))
				}))
			}
			th.JoinAll(ts)
		})
		return res.Stats.Cycles
	}
	seq := elapsed(1, 1)
	par := elapsed(16, 16)
	speedup := seq / par
	if speedup < 14.5 || speedup > 16.05 {
		t.Errorf("16-proc speedup = %v, want ≈ 15-16", speedup)
	}
}

func TestMemoryBoundParallelSpeedupSaturates(t *testing.T) {
	// Streaming threads on the Pentium Pro bus: speedup well under linear —
	// the paper's Terrain Masking behaviour (3.0 on 4 processors).
	const regionBytes = 4 << 20
	elapsed := func(procs, threads int) float64 {
		res := run(t, PentiumProSMP(procs), func(th *machine.Thread) {
			var ts []*machine.Thread
			for i := 0; i < threads; i++ {
				i := i
				ts = append(ts, th.Go(fmt.Sprintf("w%d", i), func(c *machine.Thread) {
					r := c.Alloc(fmt.Sprintf("big%d", i), regionBytes)
					for pass := 0; pass < 2; pass++ {
						c.Compute(200_000)
						c.Burst(mem.ReadBurst(r, 0, 8, regionBytes/8))
					}
				}))
			}
			th.JoinAll(ts)
		})
		return res.Stats.Cycles
	}
	seq := elapsed(1, 1)
	par4 := elapsed(4, 4)
	speedup := 4 * seq / par4 // per-thread work constant: scale to speedup
	if speedup > 3.6 {
		t.Errorf("4-proc memory-bound speedup = %v, want saturated (≤3.6)", speedup)
	}
	if speedup < 1.5 {
		t.Errorf("4-proc memory-bound speedup = %v, implausibly low", speedup)
	}
}

func TestTimeSharingWhenOversubscribed(t *testing.T) {
	// Two compute threads on one processor take twice as long as one.
	p := AlphaStation()
	one := run(t, p, func(th *machine.Thread) {
		c := th.Go("w", func(c *machine.Thread) { c.Compute(1_000_000) })
		th.Join(c)
	})
	two := run(t, p, func(th *machine.Thread) {
		a := th.Go("a", func(c *machine.Thread) { c.Compute(1_000_000) })
		b := th.Go("b", func(c *machine.Thread) { c.Compute(1_000_000) })
		th.Join(a)
		th.Join(b)
	})
	r := two.Stats.Cycles / one.Stats.Cycles
	if r < 1.9 || r > 2.1 {
		t.Errorf("oversubscription ratio = %v, want ≈ 2", r)
	}
}

func TestThreadCreateCostVisible(t *testing.T) {
	// Spawning should cost tens of thousands of cycles on a conventional OS.
	p := Exemplar(4)
	res := run(t, p, func(th *machine.Thread) {
		before := th.NowCycles()
		c := th.Go("w", func(c *machine.Thread) {})
		cost := th.NowCycles() - before
		if cost < 10_000 {
			t.Errorf("spawn cost = %v cycles, want ≥ 10k (OS threads)", cost)
		}
		th.Join(c)
	})
	_ = res
}

func TestSyncVarEmulationExpensive(t *testing.T) {
	// An emulated full/empty op costs ≥ SyncVarCost cycles — versus ~1 cycle
	// issue on the MTA. This asymmetry is the paper's fine-grained argument.
	p := Exemplar(1)
	res := run(t, p, func(th *machine.Thread) {
		v := th.NewSyncVar("cell")
		v.Write(th, 1)
	})
	if res.Stats.Cycles < p.SyncVarCost {
		t.Errorf("sync op = %v cycles, want ≥ %v", res.Stats.Cycles, p.SyncVarCost)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	p := Exemplar(4)
	var procs []int
	run(t, p, func(th *machine.Thread) {
		var ts []*machine.Thread
		for i := 0; i < 8; i++ {
			ts = append(ts, th.Go("w", func(c *machine.Thread) {
				procs = append(procs, c.Proc)
			}))
		}
		th.JoinAll(ts)
	})
	want := []int{1, 2, 3, 0, 1, 2, 3, 0} // main thread took proc 0
	for i := range want {
		if procs[i] != want[i] {
			t.Errorf("placement = %v, want %v", procs, want)
			break
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	p := PentiumProSMP(2)
	res := run(t, p, func(th *machine.Thread) {
		r := th.Alloc("a", 1<<20)
		th.Compute(1000)
		th.Burst(mem.ReadBurst(r, 0, 8, 1000))
	})
	if len(res.Stats.ProcUtil) != 2 {
		t.Errorf("ProcUtil len = %d, want 2", len(res.Stats.ProcUtil))
	}
	if res.Stats.CacheMisses == 0 {
		t.Error("CacheMisses = 0 for streaming burst")
	}
	if res.Stats.MemUtil <= 0 {
		t.Errorf("MemUtil = %v, want > 0", res.Stats.MemUtil)
	}
}

func TestPresetsSane(t *testing.T) {
	for _, p := range []Params{AlphaStation(), PentiumProSMP(4), Exemplar(16)} {
		if p.ClockHz <= 0 || p.OpsPerCycle <= 0 || p.Procs < 1 {
			t.Errorf("%s: bad core params %+v", p.Name, p)
		}
		if p.DRAMLatency <= 0 || p.BusBytesPerCycle <= 0 {
			t.Errorf("%s: bad memory params %+v", p.Name, p)
		}
		if p.ThreadCreate < 10_000 {
			t.Errorf("%s: thread create %v too cheap for an OS thread", p.Name, p.ThreadCreate)
		}
		if p.SyncVarCost < 100 {
			t.Errorf("%s: sync emulation %v too cheap", p.Name, p.SyncVarCost)
		}
	}
}

func TestZeroProcsClamped(t *testing.T) {
	e := New(Params{Name: "x", ClockHz: 1e6, OpsPerCycle: 1, CacheBytes: 8192,
		LineBytes: 32, GranuleBytes: 1024, DRAMLatency: 10, MLP: 1,
		BusBytesPerCycle: 1, ThreadCreate: 1, LockCost: 1, SyncVarCost: 1,
		AtomicCost: 1, BarrierCost: 1})
	if e.Config().Procs != 1 {
		t.Errorf("procs = %d, want 1", e.Config().Procs)
	}
}
