// Package report renders the reproduction's results in the paper's formats:
// numbered tables (execution times, speedups, comparisons) and speedup
// figures, as ASCII for terminals plus Markdown and CSV for documents.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a paper-style results table.
type Table struct {
	ID      string // e.g. "table5"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSeconds(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatSeconds renders a duration in seconds the way the paper does:
// whole seconds for large values, one decimal under ten.
func FormatSeconds(s float64) string {
	switch {
	case math.IsInf(s, 0) || math.IsNaN(s):
		return "—"
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}

// FormatSpeedup renders a speedup with one decimal, like the paper's tables.
func FormatSpeedup(s float64) string {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return "N.A."
	}
	return fmt.Sprintf("%.1f", s)
}

// Render draws the table with box-drawing rules for terminal output.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s: %s\n", strings.ToUpper(t.ID), t.Title)
	}
	line := func(l, m, r string) {
		sb.WriteString(l)
		for i, w := range widths {
			sb.WriteString(strings.Repeat("─", w+2))
			if i < len(widths)-1 {
				sb.WriteString(m)
			}
		}
		sb.WriteString(r + "\n")
	}
	writeRow := func(cells []string) {
		sb.WriteString("│")
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			pad := w - len([]rune(cell))
			sb.WriteString(" " + cell + strings.Repeat(" ", pad) + " │")
		}
		sb.WriteString("\n")
	}
	line("┌", "┬", "┐")
	writeRow(t.Columns)
	line("├", "┼", "┤")
	for _, row := range t.Rows {
		writeRow(row)
	}
	line("└", "┴", "┘")
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		id := t.ID
		if id != "" {
			id = strings.ToUpper(id[:1]) + id[1:]
		}
		fmt.Fprintf(&sb, "**%s: %s**\n\n", id, t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*note: %s*\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells with commas are
// quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	sb.WriteString(strings.Join(cols, ",") + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		sb.WriteString(strings.Join(cells, ",") + "\n")
	}
	return sb.String()
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Marker rune
	X, Y   []float64
}

// Figure is a paper-style speedup plot rendered in ASCII.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render draws the figure on a width×height character canvas with axes,
// ticks and a legend.
func (f *Figure) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymax = 0, 1, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	ymax *= 1.05

	canvas := make([][]rune, height)
	for i := range canvas {
		canvas[i] = []rune(strings.Repeat(" ", width))
	}
	plotX := func(x float64) int {
		return int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
	}
	plotY := func(y float64) int {
		return height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
	}
	for _, s := range f.Series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		// Connect consecutive points with interpolated markers.
		for i := 0; i+1 < len(s.X); i++ {
			x0, y0 := plotX(s.X[i]), plotY(s.Y[i])
			x1, y1 := plotX(s.X[i+1]), plotY(s.Y[i+1])
			steps := maxInt(absInt(x1-x0), absInt(y1-y0))
			for k := 0; k <= steps; k++ {
				var xx, yy int
				if steps == 0 {
					xx, yy = x0, y0
				} else {
					xx = x0 + (x1-x0)*k/steps
					yy = y0 + (y1-y0)*k/steps
				}
				if yy >= 0 && yy < height && xx >= 0 && xx < width {
					canvas[yy][xx] = '·'
				}
			}
		}
		for i := range s.X {
			xx, yy := plotX(s.X[i]), plotY(s.Y[i])
			if yy >= 0 && yy < height && xx >= 0 && xx < width {
				canvas[yy][xx] = m
			}
		}
	}

	var sb strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&sb, "%s: %s\n", strings.ToUpper(f.ID), f.Title)
	}
	for i, row := range canvas {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.1f ", ymax)
		} else if i == height-1 {
			label = fmt.Sprintf("%7.1f ", ymin)
		} else if i == height/2 {
			label = fmt.Sprintf("%7.1f ", ymin+(ymax-ymin)/2)
		}
		sb.WriteString(label + "│" + string(row) + "\n")
	}
	sb.WriteString("        └" + strings.Repeat("─", width) + "\n")
	fmt.Fprintf(&sb, "        %-8.4g%s%8.4g\n", xmin, strings.Repeat(" ", maxInt(width-16, 1)), xmax)
	fmt.Fprintf(&sb, "        x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		fmt.Fprintf(&sb, "        %c %s\n", m, s.Label)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
