package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "table5",
		Title:   "Execution time of multithreaded Threat Analysis on dual-processor Tera MTA",
		Columns: []string{"Number of Processors", "Time (seconds)", "Speedup"},
	}
	t.AddRow(1, 82.0, FormatSpeedup(1.0))
	t.AddRow(2, 46.0, FormatSpeedup(82.0/46.0))
	t.Notes = append(t.Notes, "256 chunks")
	return t
}

func TestTableRender(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"TABLE5", "Number of Processors", "82.0", "46.0", "1.8", "note: 256 chunks", "│", "┌"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + rule rows: consistent width.
	w := len([]rune(lines[1]))
	for _, l := range lines[1:6] {
		if len([]rune(l)) != w {
			t.Errorf("ragged table output:\n%s", out)
			break
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "| Number of Processors | Time (seconds) | Speedup |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Errorf("markdown rule missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[1] != "1,82.0,1.0" {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{ID: "x", Columns: []string{"a,b", `q"t`}}
	tb.AddRow("v,1", "plain")
	out := tb.CSV()
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"q""t"`) || !strings.Contains(out, `"v,1"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		2584: "2584",
		187:  "187",
		46:   "46.0",
		9.95: "9.95",
		0.5:  "0.50",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID:     "figure2",
		Title:  "Speedup of multithreaded Threat Analysis on 16-processor Exemplar",
		XLabel: "processors",
		YLabel: "speedup",
		Series: []Series{
			{Label: "measured", Marker: '*', X: []float64{1, 4, 8, 16}, Y: []float64{1, 3.9, 7.9, 15.4}},
			{Label: "ideal", Marker: '+', X: []float64{1, 16}, Y: []float64{1, 16}},
		},
	}
	out := f.Render(48, 14)
	for _, want := range []string{"FIGURE2", "*", "+", "measured", "ideal", "processors", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigureDegenerate(t *testing.T) {
	// Empty and single-point figures must not panic or divide by zero.
	(&Figure{ID: "f", Series: nil}).Render(30, 10)
	(&Figure{ID: "f", Series: []Series{{X: []float64{2}, Y: []float64{5}}}}).Render(30, 10)
}

func TestTableRaggedRowsTolerated(t *testing.T) {
	tb := &Table{ID: "r", Columns: []string{"a", "b", "c"}}
	tb.Rows = append(tb.Rows, []string{"only-one"})
	out := tb.Render() // must not panic
	if !strings.Contains(out, "only-one") {
		t.Error("row lost")
	}
}
