// Package machine provides the platform-independent programming interface
// shared by every simulated machine in this repository, together with the
// thread, lock, full/empty synchronization-variable, counter and barrier
// primitives the C3I benchmark programs are written against.
//
// A machine is an Engine (thread lifecycle, synchronization semantics,
// statistics) combined with a Model (platform-specific operation pricing).
// Package mta supplies the Tera MTA model; package smp supplies the
// conventional cached shared-memory models (AlphaStation, Pentium Pro SMP,
// HP Exemplar). Benchmarks written against *machine.Thread run unmodified on
// every platform, exactly as the paper's C sources did.
//
// Charging convention: benchmark kernels charge Compute(ops) for all
// instructions executed, including loads and stores, and separately describe
// their data traffic with Burst so that the platform can price cache misses,
// bus or network bandwidth, and exposed memory latency. Synchronization
// primitives charge their own costs.
package machine

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config identifies a simulated platform.
type Config struct {
	Name    string  // e.g. "Tera MTA (2 proc)"
	ClockHz float64 // processor clock
	Procs   int     // processor count
}

// Stats aggregates activity over one Run. The JSON tags are the
// internal/run Record wire format.
type Stats struct {
	Cycles      float64   `json:"cycles"`     // simulated cycles from start to completion
	Ops         int64     `json:"ops"`        // abstract operations charged via Compute
	MemRefs     int64     `json:"mem_refs"`   // references described via Burst
	CacheHits   int64     `json:"cache_hits"` // conventional machines only
	CacheMisses int64     `json:"cache_misses"`
	SyncOps     int64     `json:"sync_ops"`    // full/empty variable touches
	AtomicOps   int64     `json:"atomic_ops"`  // counter fetch-and-add operations
	LockOps     int64     `json:"lock_ops"`    // lock/unlock operations
	BarrierOps  int64     `json:"barrier_ops"` // barrier arrivals
	Spawns      int64     `json:"spawns"`      // threads created
	MaxLive     int       `json:"max_live"`    // high-water mark of live threads
	ProcUtil    []float64 `json:"proc_util"`   // per-processor utilization (issue or execution)
	MemUtil     float64   `json:"mem_util"`    // memory/bus utilization
}

// Result is the outcome of running a program on a machine.
type Result struct {
	Seconds float64 // simulated wall-clock seconds
	Stats   Stats
}

// Model prices operations for a specific platform. Implementations may block
// the calling thread's proc on psq resources or sleeps. All methods are
// invoked from inside the simulation.
type Model interface {
	// Init is called once per Run with the fresh engine, so the model can
	// create its simulation resources (issue queues, buses, caches).
	Init(e *Engine)
	// Compute charges ops abstract operations of pure execution to t.
	Compute(t *Thread, ops int64)
	// Memory charges the data traffic described by b to t.
	Memory(t *Thread, b mem.Burst)
	// SyncTouch charges one full/empty-bit operation (excluding block time).
	SyncTouch(t *Thread)
	// AtomicTouch charges one atomic fetch-and-add.
	AtomicTouch(t *Thread)
	// LockTouch charges one lock or unlock operation (excluding block time).
	LockTouch(t *Thread)
	// BarrierTouch charges one barrier arrival (excluding block time).
	BarrierTouch(t *Thread)
	// SpawnCost charges the parent for creating one thread.
	SpawnCost(parent *Thread)
	// Admit is called on the child thread before its body runs. It assigns
	// t.Proc and may block until an execution slot (e.g. a hardware stream)
	// is available.
	Admit(t *Thread)
	// Release is called when a thread's body returns, freeing its slot.
	Release(t *Thread)
	// Finish fills machine-specific fields of st after the run completes.
	Finish(st *Stats)
}

// Engine runs programs on a Model. Create one per Run via New.
type Engine struct {
	Kern  *sim.Kernel
	Space *mem.Space
	cfg   Config
	model Model

	tracer *trace.Log
	stats  Stats
	live   int
}

// New creates an engine for one run on the given model.
func New(cfg Config, model Model) *Engine {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("machine: config %q has %d procs", cfg.Name, cfg.Procs))
	}
	if cfg.ClockHz <= 0 {
		panic(fmt.Sprintf("machine: config %q has clock %g", cfg.Name, cfg.ClockHz))
	}
	e := &Engine{Kern: sim.NewKernel(), Space: mem.NewSpace(), cfg: cfg, model: model}
	model.Init(e)
	return e
}

// Config returns the engine's platform description.
func (e *Engine) Config() Config { return e.cfg }

// Model returns the engine's cost model, for platform-specific inspection.
func (e *Engine) Model() Model { return e.model }

// SetTracer attaches a timeline log; thread starts, ends and Marks are
// recorded into it. Must be called before Run.
func (e *Engine) SetTracer(t *trace.Log) { e.tracer = t }

// Tracer returns the attached timeline log (nil when tracing is off).
func (e *Engine) Tracer() *trace.Log { return e.tracer }

// Stats returns a snapshot of the counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Run executes main as the program's initial thread and returns simulated
// time and statistics. The engine must not be reused afterwards.
func (e *Engine) Run(name string, main func(t *Thread)) (Result, error) {
	root := e.newThread(nil, name, main)
	root.start()
	if err := e.Kern.Run(); err != nil {
		return Result{}, err
	}
	e.stats.Cycles = e.Kern.Now()
	e.model.Finish(&e.stats)
	return Result{
		Seconds: e.stats.Cycles / e.cfg.ClockHz,
		Stats:   e.stats,
	}, nil
}

// Thread is a simulated thread of execution and the context benchmark code
// runs in. All methods must be called from the thread's own body.
type Thread struct {
	E    *Engine
	P    *sim.Proc
	Proc int // processor index, assigned by Model.Admit

	name string
	body func(*Thread)
	done bool
	wait *sim.WaitQ // joiners
}

func (e *Engine) newThread(parent *Thread, name string, body func(*Thread)) *Thread {
	t := &Thread{E: e, name: name, body: body, wait: sim.NewWaitQ("join " + name)}
	e.stats.Spawns++
	e.live++
	if e.live > e.stats.MaxLive {
		e.stats.MaxLive = e.live
	}
	return t
}

// start launches the thread's sim proc.
func (t *Thread) start() {
	t.P = t.E.Kern.Spawn(t.name, func(p *sim.Proc) {
		t.E.model.Admit(t)
		t.E.tracer.Record(trace.Event{T: p.Now(), Thread: t.name, Proc: t.Proc, Kind: trace.ThreadStart})
		t.body(t)
		t.E.model.Release(t)
		t.E.tracer.Record(trace.Event{T: p.Now(), Thread: t.name, Proc: t.Proc, Kind: trace.ThreadEnd})
		t.E.live--
		t.done = true
		t.wait.WakeAll(t.E.Kern)
	})
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// NowCycles returns the current simulated time in cycles.
func (t *Thread) NowCycles() float64 { return t.P.Now() }

// NowSeconds returns the current simulated time in seconds.
func (t *Thread) NowSeconds() float64 { return t.P.Now() / t.E.cfg.ClockHz }

// Mark annotates the thread's timeline with a named phase point (a no-op
// when no tracer is attached).
func (t *Thread) Mark(label string) {
	t.E.tracer.Record(trace.Event{T: t.P.Now(), Thread: t.name, Proc: t.Proc, Kind: trace.Mark, Label: label})
}

// Compute charges ops abstract operations of execution.
func (t *Thread) Compute(ops int64) {
	if ops <= 0 {
		return
	}
	t.E.stats.Ops += ops
	t.E.model.Compute(t, ops)
}

// Burst charges the memory traffic described by b.
func (t *Thread) Burst(b mem.Burst) {
	if b.N <= 0 {
		return
	}
	b.Validate()
	t.E.stats.MemRefs += int64(b.N)
	t.E.model.Memory(t, b)
}

// Read charges a single serially-dependent load of elem bytes.
func (t *Thread) Read(r *mem.Region, off, elem uint64) {
	t.Burst(mem.Burst{Region: r, Offset: off, Elem: elem, N: 1, Dep: true})
}

// Write charges a single store of elem bytes.
func (t *Thread) Write(r *mem.Region, off, elem uint64) {
	t.Burst(mem.Burst{Region: r, Offset: off, Elem: elem, N: 1, Write: true})
}

// Alloc reserves a named region in the machine's address space.
func (t *Thread) Alloc(name string, bytes uint64) *mem.Region {
	return t.E.Space.Alloc(name, bytes)
}

// Go spawns a child thread running fn and returns its handle. The spawn cost
// is charged to the caller.
func (t *Thread) Go(name string, fn func(*Thread)) *Thread {
	t.E.model.SpawnCost(t)
	c := t.E.newThread(t, name, fn)
	c.start()
	return c
}

// Join blocks until c's body has returned.
func (t *Thread) Join(c *Thread) {
	for !c.done {
		c.wait.Wait(t.P, "join")
	}
}

// JoinAll joins every thread in ts in order.
func (t *Thread) JoinAll(ts []*Thread) {
	for _, c := range ts {
		t.Join(c)
	}
}

// Lock is a mutual-exclusion lock with FIFO-fair blocking.
type Lock struct {
	e    *Engine
	name string
	held bool
	q    *sim.WaitQ
}

// NewLock creates a lock.
func (t *Thread) NewLock(name string) *Lock {
	return &Lock{e: t.E, name: name, q: sim.NewWaitQ("lock " + name)}
}

// Lock acquires the lock, blocking while it is held.
func (l *Lock) Lock(t *Thread) {
	l.e.stats.LockOps++
	l.e.model.LockTouch(t)
	for l.held {
		l.q.Wait(t.P, "acquire")
	}
	l.held = true
}

// Unlock releases the lock and wakes one waiter.
func (l *Lock) Unlock(t *Thread) {
	if !l.held {
		panic("machine: Unlock of unheld lock " + l.name)
	}
	l.e.stats.LockOps++
	l.e.model.LockTouch(t)
	l.held = false
	l.q.WakeOne(l.e.Kern)
}

// SyncVar is a word of memory with a full/empty bit — the Tera MTA's
// fine-grained synchronization primitive. It is created empty. On
// conventional machines the same semantics are emulated (expensively) with
// a lock and condition variable; the Model prices the difference.
type SyncVar struct {
	e    *Engine
	name string
	full bool
	val  int64
	q    *sim.WaitQ
}

// NewSyncVar creates an empty synchronization variable.
func (t *Thread) NewSyncVar(name string) *SyncVar {
	return &SyncVar{e: t.E, name: name, q: sim.NewWaitQ("syncvar " + name)}
}

func (v *SyncVar) touch(t *Thread) {
	v.e.stats.SyncOps++
	v.e.model.SyncTouch(t)
}

// ReadFF waits until the variable is full and returns its value, leaving it
// full (read when full, leave full).
func (v *SyncVar) ReadFF(t *Thread) int64 {
	v.touch(t)
	for !v.full {
		v.q.Wait(t.P, "readFF")
	}
	return v.val
}

// ReadFE waits until the variable is full, sets it empty, and returns the
// value (read when full, set empty).
func (v *SyncVar) ReadFE(t *Thread) int64 {
	v.touch(t)
	for !v.full {
		v.q.Wait(t.P, "readFE")
	}
	v.full = false
	v.q.WakeAll(v.e.Kern)
	return v.val
}

// WriteEF waits until the variable is empty, then stores x and sets it full
// (write when empty, set full).
func (v *SyncVar) WriteEF(t *Thread, x int64) {
	v.touch(t)
	for v.full {
		v.q.Wait(t.P, "writeEF")
	}
	v.full = true
	v.val = x
	v.q.WakeAll(v.e.Kern)
}

// Write stores x and sets the variable full unconditionally (ordinary store
// with the full bit set).
func (v *SyncVar) Write(t *Thread, x int64) {
	v.touch(t)
	v.full = true
	v.val = x
	v.q.WakeAll(v.e.Kern)
}

// Reset sets the variable empty unconditionally (purge).
func (v *SyncVar) Reset(t *Thread) {
	v.touch(t)
	v.full = false
	v.q.WakeAll(v.e.Kern)
}

// Full reports the state of the full/empty bit without charging a touch
// (test-and-inspection helper, not a simulated operation).
func (v *SyncVar) Full() bool { return v.full }

// Counter is an atomic fetch-and-add cell (the MTA's int_fetch_add; a
// bus-locked read-modify-write on conventional machines).
type Counter struct {
	e    *Engine
	name string
	val  int64
}

// NewCounter creates a counter with the given initial value. The name is
// recorded in the timeline (a SyncAlloc event) like every other named
// primitive, so traces show which counters a phase allocates.
func (t *Thread) NewCounter(name string, init int64) *Counter {
	t.E.tracer.Record(trace.Event{T: t.P.Now(), Thread: t.name, Proc: t.Proc,
		Kind: trace.SyncAlloc, Label: "counter " + name})
	return &Counter{e: t.E, name: name, val: init}
}

// Name returns the counter's diagnostic name.
func (c *Counter) Name() string { return c.name }

// Next atomically returns the current value and increments by one.
func (c *Counter) Next(t *Thread) int64 {
	return c.Add(t, 1)
}

// Add atomically returns the current value and adds d.
func (c *Counter) Add(t *Thread, d int64) int64 {
	c.e.stats.AtomicOps++
	c.e.model.AtomicTouch(t)
	v := c.val
	c.val += d
	return v
}

// Value returns the current value without charging an operation.
func (c *Counter) Value() int64 { return c.val }

// Barrier blocks parties threads until all have arrived, then releases all
// of them; it is reusable across generations.
type Barrier struct {
	e          *Engine
	name       string
	parties    int
	count      int
	generation int
	q          *sim.WaitQ
}

// NewBarrier creates a barrier for the given number of parties. Like
// NewCounter, the name is kept and recorded in the timeline.
func (t *Thread) NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		panic("machine: barrier with no parties: " + name)
	}
	t.E.tracer.Record(trace.Event{T: t.P.Now(), Thread: t.name, Proc: t.Proc,
		Kind: trace.SyncAlloc, Label: "barrier " + name})
	return &Barrier{e: t.E, name: name, parties: parties, q: sim.NewWaitQ("barrier " + name)}
}

// Name returns the barrier's diagnostic name.
func (b *Barrier) Name() string { return b.name }

// Arrive blocks until all parties have arrived at the current generation.
func (b *Barrier) Arrive(t *Thread) {
	b.e.stats.BarrierOps++
	b.e.model.BarrierTouch(t)
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.generation++
		b.q.WakeAll(b.e.Kern)
		return
	}
	g := b.generation
	for b.generation == g {
		b.q.Wait(t.P, "arrive")
	}
}
