package machine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// unitModel charges one cycle per op/ref/touch and admits threads
// round-robin across procs — a trivial model for engine tests.
type unitModel struct {
	e     *Engine
	next  int
	admit int64
}

func (m *unitModel) Init(e *Engine)                { m.e = e }
func (m *unitModel) Compute(t *Thread, ops int64)  { t.P.Sleep(float64(ops)) }
func (m *unitModel) Memory(t *Thread, b mem.Burst) { t.P.Sleep(float64(b.N)) }
func (m *unitModel) SyncTouch(t *Thread)           { t.P.Sleep(1) }
func (m *unitModel) AtomicTouch(t *Thread)         { t.P.Sleep(1) }
func (m *unitModel) LockTouch(t *Thread)           { t.P.Sleep(1) }
func (m *unitModel) BarrierTouch(t *Thread)        { t.P.Sleep(1) }
func (m *unitModel) SpawnCost(parent *Thread)      { parent.P.Sleep(10) }
func (m *unitModel) Admit(t *Thread) {
	t.Proc = m.next % m.e.Config().Procs
	m.next++
	m.admit++
}
func (m *unitModel) Release(t *Thread) {}
func (m *unitModel) Finish(st *Stats)  { st.MemUtil = 0.5 }

func newTestEngine(procs int) *Engine {
	return New(Config{Name: "unit", ClockHz: 1e6, Procs: procs}, &unitModel{})
}

func TestRunComputesSeconds(t *testing.T) {
	e := newTestEngine(1)
	res, err := e.Run("main", func(th *Thread) {
		th.Compute(500)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 500 {
		t.Errorf("cycles = %v, want 500", res.Stats.Cycles)
	}
	if res.Seconds != 500/1e6 {
		t.Errorf("seconds = %v, want %v", res.Seconds, 500/1e6)
	}
	if res.Stats.Ops != 500 {
		t.Errorf("ops = %v, want 500", res.Stats.Ops)
	}
	if res.Stats.MemUtil != 0.5 {
		t.Errorf("Finish hook not applied: MemUtil = %v", res.Stats.MemUtil)
	}
}

func TestComputeZeroOrNegativeFree(t *testing.T) {
	e := newTestEngine(1)
	res, err := e.Run("main", func(th *Thread) {
		th.Compute(0)
		th.Compute(-5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 0 || res.Stats.Ops != 0 {
		t.Errorf("cycles=%v ops=%v, want 0,0", res.Stats.Cycles, res.Stats.Ops)
	}
}

func TestGoJoin(t *testing.T) {
	e := newTestEngine(2)
	var childTime float64
	res, err := e.Run("main", func(th *Thread) {
		c := th.Go("child", func(c *Thread) {
			c.Compute(100)
			childTime = c.NowCycles()
		})
		th.Join(c)
		if th.NowCycles() < childTime {
			t.Error("join returned before child finished")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Spawns != 2 { // main + child
		t.Errorf("spawns = %d, want 2", res.Stats.Spawns)
	}
	if res.Stats.MaxLive != 2 {
		t.Errorf("maxLive = %d, want 2", res.Stats.MaxLive)
	}
}

func TestJoinAlreadyFinished(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		c := th.Go("quick", func(c *Thread) {})
		th.Compute(1000) // child finishes long before
		th.Join(c)       // must not block forever
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinAll(t *testing.T) {
	e := newTestEngine(4)
	_, err := e.Run("main", func(th *Thread) {
		var ts []*Thread
		for i := 0; i < 5; i++ {
			i := i
			ts = append(ts, th.Go(fmt.Sprintf("c%d", i), func(c *Thread) {
				c.Compute(int64(10 * (i + 1)))
			}))
		}
		th.JoinAll(ts)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinProcAssignment(t *testing.T) {
	e := newTestEngine(3)
	var procs []int
	_, err := e.Run("main", func(th *Thread) {
		var ts []*Thread
		for i := 0; i < 6; i++ {
			ts = append(ts, th.Go("c", func(c *Thread) {
				procs = append(procs, c.Proc)
			}))
		}
		th.JoinAll(ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	// main took proc 0; children take 1,2,0,1,2,0
	want := []int{1, 2, 0, 1, 2, 0}
	for i := range want {
		if procs[i] != want[i] {
			t.Errorf("procs = %v, want %v", procs, want)
			break
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	e := newTestEngine(4)
	inside := 0
	maxInside := 0
	_, err := e.Run("main", func(th *Thread) {
		l := th.NewLock("m")
		var ts []*Thread
		for i := 0; i < 8; i++ {
			ts = append(ts, th.Go("worker", func(c *Thread) {
				l.Lock(c)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				c.Compute(50) // hold the lock across simulated time
				inside--
				l.Unlock(c)
			}))
		}
		th.JoinAll(ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("maxInside = %d, want 1 (mutual exclusion violated)", maxInside)
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	e := newTestEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unheld lock did not panic")
		}
	}()
	e.Run("main", func(th *Thread) {
		l := th.NewLock("m")
		l.Unlock(th)
	})
}

func TestSyncVarProducerConsumer(t *testing.T) {
	e := newTestEngine(2)
	var got []int64
	_, err := e.Run("main", func(th *Thread) {
		v := th.NewSyncVar("cell")
		consumer := th.Go("consumer", func(c *Thread) {
			for i := 0; i < 5; i++ {
				got = append(got, v.ReadFE(c))
			}
		})
		for i := int64(0); i < 5; i++ {
			v.WriteEF(th, i*i) // blocks until consumer empties the cell
		}
		th.Join(consumer)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != int64(i*i) {
			t.Errorf("got[%d] = %d, want %d", i, g, i*i)
		}
	}
}

func TestSyncVarReadFFDoesNotEmpty(t *testing.T) {
	e := newTestEngine(2)
	_, err := e.Run("main", func(th *Thread) {
		v := th.NewSyncVar("cell")
		v.Write(th, 42)
		if x := v.ReadFF(th); x != 42 {
			t.Errorf("ReadFF = %d, want 42", x)
		}
		if !v.Full() {
			t.Error("ReadFF emptied the cell")
		}
		if x := v.ReadFE(th); x != 42 {
			t.Errorf("ReadFE = %d, want 42", x)
		}
		if v.Full() {
			t.Error("ReadFE left the cell full")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncVarBlockingRead(t *testing.T) {
	e := newTestEngine(2)
	_, err := e.Run("main", func(th *Thread) {
		v := th.NewSyncVar("cell")
		reader := th.Go("reader", func(c *Thread) {
			x := v.ReadFF(c)
			if x != 7 {
				t.Errorf("ReadFF = %d, want 7", x)
			}
			if c.NowCycles() < 100 {
				t.Errorf("read returned at %v, before write at 100", c.NowCycles())
			}
		})
		th.Compute(100)
		v.Write(th, 7)
		th.Join(reader)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncVarReset(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		v := th.NewSyncVar("cell")
		v.Write(th, 1)
		v.Reset(th)
		if v.Full() {
			t.Error("Reset left the cell full")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncVarDeadlockDetected(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		v := th.NewSyncVar("never-filled")
		v.ReadFF(th)
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestCounterAtomicity(t *testing.T) {
	e := newTestEngine(4)
	const workers, each = 8, 25
	seen := map[int64]bool{}
	_, err := e.Run("main", func(th *Thread) {
		ctr := th.NewCounter("n", 0)
		var ts []*Thread
		for i := 0; i < workers; i++ {
			ts = append(ts, th.Go("w", func(c *Thread) {
				for j := 0; j < each; j++ {
					v := ctr.Next(c)
					if seen[v] {
						t.Errorf("duplicate counter value %d", v)
					}
					seen[v] = true
				}
			}))
		}
		th.JoinAll(ts)
		if ctr.Value() != workers*each {
			t.Errorf("final = %d, want %d", ctr.Value(), workers*each)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*each {
		t.Errorf("distinct values = %d, want %d", len(seen), workers*each)
	}
}

func TestCounterAdd(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		ctr := th.NewCounter("n", 10)
		if v := ctr.Add(th, 5); v != 10 {
			t.Errorf("Add returned %d, want previous value 10", v)
		}
		if ctr.Value() != 15 {
			t.Errorf("Value = %d, want 15", ctr.Value())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := newTestEngine(4)
	var releaseTimes []float64
	_, err := e.Run("main", func(th *Thread) {
		b := th.NewBarrier("b", 4)
		var ts []*Thread
		for i := 0; i < 4; i++ {
			i := i
			ts = append(ts, th.Go("w", func(c *Thread) {
				c.Compute(int64(10 * (i + 1))) // staggered arrival
				b.Arrive(c)
				releaseTimes = append(releaseTimes, c.NowCycles())
			}))
		}
		th.JoinAll(ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(releaseTimes) != 4 {
		t.Fatalf("releases = %d, want 4", len(releaseTimes))
	}
	for _, rt := range releaseTimes {
		if rt != releaseTimes[0] {
			t.Errorf("staggered release times %v, want all equal", releaseTimes)
			break
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	e := newTestEngine(2)
	count := 0
	_, err := e.Run("main", func(th *Thread) {
		b := th.NewBarrier("b", 2)
		w := th.Go("w", func(c *Thread) {
			for i := 0; i < 3; i++ {
				b.Arrive(c)
				count++
			}
		})
		for i := 0; i < 3; i++ {
			b.Arrive(th)
		}
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestStatsCounting(t *testing.T) {
	e := newTestEngine(2)
	res, err := e.Run("main", func(th *Thread) {
		r := th.Alloc("a", 1024)
		th.Burst(mem.ReadBurst(r, 0, 8, 100))
		th.Read(r, 0, 8)
		th.Write(r, 8, 8)
		l := th.NewLock("l")
		l.Lock(th)
		l.Unlock(th)
		v := th.NewSyncVar("v")
		v.Write(th, 1)
		ctr := th.NewCounter("c", 0)
		ctr.Next(th)
		b := th.NewBarrier("b", 1)
		b.Arrive(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.MemRefs != 102 {
		t.Errorf("MemRefs = %d, want 102", st.MemRefs)
	}
	if st.LockOps != 2 {
		t.Errorf("LockOps = %d, want 2", st.LockOps)
	}
	if st.SyncOps != 1 {
		t.Errorf("SyncOps = %d, want 1", st.SyncOps)
	}
	if st.AtomicOps != 1 {
		t.Errorf("AtomicOps = %d, want 1", st.AtomicOps)
	}
	if st.BarrierOps != 1 {
		t.Errorf("BarrierOps = %d, want 1", st.BarrierOps)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "noprocs", ClockHz: 1e6, Procs: 0},
		{Name: "noclock", ClockHz: 0, Procs: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, &unitModel{})
		}()
	}
}

func TestCounterBarrierNamesThreadedIntoTrace(t *testing.T) {
	// NewCounter and NewBarrier must not drop their name argument: the name
	// is kept on the primitive and recorded as a SyncAlloc timeline event,
	// matching the named WaitQs of NewLock/NewSyncVar.
	e := newTestEngine(1)
	log := trace.New(1e6)
	e.SetTracer(log)
	if _, err := e.Run("main", func(th *Thread) {
		c := th.NewCounter("claims", 0)
		if c.Name() != "claims" {
			t.Errorf("counter name = %q, want claims", c.Name())
		}
		b := th.NewBarrier("phase", 1)
		if b.Name() != "phase" {
			t.Errorf("barrier name = %q, want phase", b.Name())
		}
		c.Next(th)
		b.Arrive(th)
	}); err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, ev := range log.Events {
		if ev.Kind == trace.SyncAlloc {
			labels[ev.Label] = true
		}
	}
	for _, want := range []string{"counter claims", "barrier phase"} {
		if !labels[want] {
			t.Errorf("trace log missing SyncAlloc %q (events: %v)", want, labels)
		}
	}
}

func TestSyncAllocDoesNotDisturbGantt(t *testing.T) {
	// SyncAlloc events are log-only: span pairing and the Gantt chart must
	// render exactly as if they were absent.
	e := newTestEngine(1)
	log := trace.New(1e6)
	e.SetTracer(log)
	if _, err := e.Run("main", func(th *Thread) {
		th.NewCounter("c", 0)
		th.Compute(10)
	}); err != nil {
		t.Fatal(err)
	}
	out := log.Gantt(40, 8)
	if strings.Contains(out, "counter") {
		t.Errorf("Gantt rendered the SyncAlloc event:\n%s", out)
	}
	if !strings.Contains(out, "main") {
		t.Errorf("Gantt lost the thread row:\n%s", out)
	}
}
