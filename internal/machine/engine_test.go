package machine

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// These tests cover engine-level behaviours beyond the primitive semantics
// in machine_test.go: panic propagation, tracing hooks, model access, and
// misuse detection.

func TestBenchmarkBugSurfacesAsPanic(t *testing.T) {
	// A burst overrunning its region is a simulation programming bug; it
	// must surface as a panic from Run (on the caller's goroutine), not hang
	// or crash the process.
	e := newTestEngine(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overrunning burst did not panic through Run")
		}
		if !strings.Contains(r.(string), "overruns region") {
			t.Errorf("panic value %v does not explain the overrun", r)
		}
	}()
	e.Run("main", func(th *Thread) {
		r := th.Alloc("tiny", 16)
		th.Burst(mem.ReadBurst(r, 0, 8, 100))
	})
}

func TestPanicInChildThread(t *testing.T) {
	e := newTestEngine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("child panic not propagated")
		}
	}()
	e.Run("main", func(th *Thread) {
		c := th.Go("child", func(c *Thread) {
			panic("child bug")
		})
		th.Join(c)
	})
}

func TestModelAccessor(t *testing.T) {
	m := &unitModel{}
	e := New(Config{Name: "m", ClockHz: 1e6, Procs: 1}, m)
	if e.Model() != m {
		t.Error("Model() did not return the installed model")
	}
}

func TestTracerRecordsLifecycleAndMarks(t *testing.T) {
	e := newTestEngine(2)
	l := trace.New(e.Config().ClockHz)
	e.SetTracer(l)
	if e.Tracer() != l {
		t.Fatal("Tracer() accessor broken")
	}
	_, err := e.Run("main", func(th *Thread) {
		th.Mark("phase-a")
		c := th.Go("child", func(c *Thread) { c.Compute(10) })
		th.Join(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends, marks int
	for _, ev := range l.Events {
		switch ev.Kind {
		case trace.ThreadStart:
			starts++
		case trace.ThreadEnd:
			ends++
		case trace.Mark:
			marks++
		}
	}
	if starts != 2 || ends != 2 || marks != 1 {
		t.Errorf("events = %d starts, %d ends, %d marks; want 2/2/1", starts, ends, marks)
	}
}

func TestNoTracerIsFree(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		th.Mark("ignored") // must be a no-op without a tracer
		th.Compute(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tracer() != nil {
		t.Error("tracer should be nil by default")
	}
}

func TestDeadlockReportedAsError(t *testing.T) {
	e := newTestEngine(1)
	_, err := e.Run("main", func(th *Thread) {
		l := th.NewLock("m")
		l.Lock(th)
		l.Lock(th) // self-deadlock
	})
	if err == nil {
		t.Fatal("self-deadlock not reported")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q does not mention deadlock", err)
	}
}

func TestJoinOtherEnginesThreadPanics(t *testing.T) {
	// Threads belong to one engine; joining across engines is a bug the
	// simulation surfaces as a deadlock or panic rather than silent nonsense.
	e1 := newTestEngine(1)
	var foreign *Thread
	_, err := e1.Run("main", func(th *Thread) {
		foreign = th.Go("f", func(c *Thread) {})
		th.Join(foreign)
	})
	if err != nil {
		t.Fatal(err)
	}
	// foreign is done; joining it from another engine returns immediately
	// (done flag), which is the defined semantics.
	e2 := newTestEngine(1)
	if _, err := e2.Run("main", func(th *Thread) { th.Join(foreign) }); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSnapshotDuringRun(t *testing.T) {
	e := newTestEngine(1)
	var mid Stats
	_, err := e.Run("main", func(th *Thread) {
		th.Compute(100)
		mid = e.Stats()
		th.Compute(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Ops != 100 {
		t.Errorf("mid-run Ops = %d, want 100", mid.Ops)
	}
	if e.Stats().Ops != 200 {
		t.Errorf("final Ops = %d, want 200", e.Stats().Ops)
	}
}

func TestZeroCountBurstIgnored(t *testing.T) {
	e := newTestEngine(1)
	res, err := e.Run("main", func(th *Thread) {
		r := th.Alloc("r", 64)
		th.Burst(mem.Burst{Region: r, N: 0})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemRefs != 0 || res.Stats.Cycles != 0 {
		t.Errorf("zero burst charged: %+v", res.Stats)
	}
}
