package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels name one metric series within a family ({workload="threat-analysis"}).
// A nil or empty map is a valid unlabeled series.
type Labels map[string]string

// Registry holds named metrics. Lookup is get-or-create: asking for the same
// name+labels returns the same metric, so instrumentation sites do not need
// registration ceremony — but asking for an existing series as a different
// kind panics, because two call sites disagreeing about what a name means is
// a programming error no snapshot should paper over.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name   string
	labels Labels
	series string // rendered {k="v",...} label set, "" when unlabeled
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Counter returns the counter with the given name and labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.get(name, labels, counterKind, nil).c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.get(name, labels, gaugeKind, nil).g
}

// Histogram returns the histogram with the given name, labels and bucket
// bounds, creating it on first use. Bounds are fixed by the first call for a
// series; later calls return the existing histogram regardless of the bounds
// they pass (all call sites for one family should share one bounds slice).
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	return r.get(name, labels, histogramKind, bounds).h
}

func (r *Registry) get(name string, labels Labels, kind metricKind, bounds []float64) *metric {
	series := renderLabels(labels)
	key := name + series
	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if m, ok = r.metrics[key]; !ok {
			m = &metric{name: name, series: series, kind: kind}
			if len(labels) > 0 {
				m.labels = Labels{}
				for k, v := range labels {
					m.labels[k] = v
				}
			}
			switch kind {
			case counterKind:
				m.c = &Counter{}
			case gaugeKind:
				m.g = &Gauge{}
			case histogramKind:
				if bounds == nil {
					bounds = DefLatencyBuckets
				}
				m.h = NewHistogram(bounds...)
			}
			r.metrics[key] = m
		}
		r.mu.Unlock()
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %s%s requested as %s but registered as %s",
			name, series, kind, m.kind))
	}
	return m
}

// sorted returns every metric ordered by name then label series — the one
// deterministic order Snapshot and WritePrometheus both emit.
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].series < out[j].series
	})
	return out
}

// MetricValue is one counter or gauge series in a Snapshot.
type MetricValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramValue is one histogram series in a Snapshot: count, sum, the
// interpolated percentile summary, and the cumulative buckets.
type HistogramValue struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets []BucketCount     `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, ordered by name then
// label series, shaped for JSON (the /healthz body and `c3ibench -stats`).
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every metric. The arrays are always
// present (empty, never null), so jq gates can index them unconditionally.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []MetricValue{},
		Gauges:     []MetricValue{},
		Histograms: []HistogramValue{},
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case counterKind:
			snap.Counters = append(snap.Counters, MetricValue{Name: m.name, Labels: m.labels, Value: m.c.Value()})
		case gaugeKind:
			snap.Gauges = append(snap.Gauges, MetricValue{Name: m.name, Labels: m.labels, Value: m.g.Value()})
		case histogramKind:
			snap.Histograms = append(snap.Histograms, HistogramValue{
				Name: m.name, Labels: m.labels,
				Count: m.h.Count(), Sum: m.h.Sum(),
				P50: m.h.Quantile(0.50), P95: m.h.Quantile(0.95), P99: m.h.Quantile(0.99),
				Buckets: m.h.Buckets(),
			})
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers, histogram `_bucket`/`_sum`/
// `_count` expansion with cumulative `le` labels, deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastName := ""
	for _, m := range r.sorted() {
		if m.name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case counterKind:
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.series, m.c.Value())
		case gaugeKind:
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.series, m.g.Value())
		case histogramKind:
			for _, b := range m.h.Buckets() {
				le := "+Inf"
				if !math.IsInf(b.LE, 1) {
					le = formatFloat(b.LE)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.series, "le", le), b.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.series, formatFloat(m.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.series, m.h.Count())
		}
	}
}

// renderLabels renders a sorted, escaped {k="v",...} series string.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// withLabel inserts one extra label into an already-rendered series.
func withLabel(series, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if series == "" {
		return "{" + extra + "}"
	}
	return series[:len(series)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
