package obs_test

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	. "repro/internal/obs"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	// `le` semantics: a value exactly on a bound belongs to that bound's
	// bucket, just above it to the next.
	h.Observe(1)    // bucket le=1
	h.Observe(1.01) // bucket le=10
	h.Observe(10)   // bucket le=10
	h.Observe(100)  // bucket le=100
	h.Observe(101)  // overflow
	h.Observe(-5)   // below every bound still lands in the first bucket
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("got %d buckets, want 4 (3 finite + overflow)", len(bs))
	}
	wantCum := []int64{2, 4, 5, 6}
	for i, b := range bs {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%v): cumulative %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(bs[3].LE, 1) {
		t.Errorf("last bucket le = %v, want +Inf", bs[3].LE)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1+1.01+10+100+101-5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	h.Observe(5) // the (1, 10] bucket
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		got := h.Quantile(q)
		if got < 1 || got > 10 {
			t.Errorf("Quantile(%v) = %v, want inside the sample's (1,10] bucket", q, got)
		}
	}
	// Every quantile of a single sample names the same (whole) bucket, so
	// the estimate must be identical across q — rank clamps at the first
	// observation.
	if h.Quantile(0.01) != h.Quantile(0.99) {
		t.Errorf("single-sample quantiles differ: q01=%v q99=%v", h.Quantile(0.01), h.Quantile(0.99))
	}
}

func TestHistogramQuantileAllInOverflow(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for i := 0; i < 10; i++ {
		h.Observe(50) // far above every bound
	}
	// The histogram cannot see above its largest finite bound; the defined
	// answer is that bound, never +Inf or a panic.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 0.1 {
			t.Errorf("all-overflow Quantile(%v) = %v, want 0.1 (largest finite bound)", q, got)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram(10, 20)
	// 10 samples in (10, 20]: p50 has rank 5 of 10 → halfway into the
	// bucket by linear interpolation.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("p50 = %v, want 15 (linear interpolation of rank 5/10 into (10,20])", got)
	}
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %v, want 20 (top of the bucket)", got)
	}
	// First bucket interpolates from 0, not from the bound below.
	h2 := NewHistogram(8, 16)
	h2.Observe(4)
	h2.Observe(4)
	if got := h2.Quantile(0.5); got <= 0 || got > 8 {
		t.Errorf("first-bucket p50 = %v, want in (0, 8]", got)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {10, 1},
		"duplicate":  {1, 1},
		"nan":        {1, math.NaN()},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%s bounds) did not panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits_total", Labels{"workload": "ta"})
	c2 := r.Counter("hits_total", Labels{"workload": "ta"})
	if c1 != c2 {
		t.Error("same name+labels returned distinct counters")
	}
	c3 := r.Counter("hits_total", Labels{"workload": "tm"})
	if c1 == c3 {
		t.Error("distinct labels returned the same counter")
	}
	c1.Inc()
	if c2.Value() != 1 || c3.Value() != 0 {
		t.Errorf("series not independent: %d / %d", c2.Value(), c3.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", nil)
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter series as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", nil)
}

func TestSnapshotShapeAndOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{"w": "2"}).Add(7)
	r.Counter("b_total", Labels{"w": "1"}).Add(3)
	r.Gauge("a_gauge", nil).Set(5)
	h := r.Histogram("lat_seconds", Labels{"w": "1"}, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot sizes: %d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	// Deterministic order: name, then label series.
	if snap.Counters[0].Labels["w"] != "1" || snap.Counters[1].Labels["w"] != "2" {
		t.Errorf("counters not label-ordered: %+v", snap.Counters)
	}
	hv := snap.Histograms[0]
	if hv.Count != 2 || hv.Sum != 5.5 || hv.P50 <= 0 {
		t.Errorf("histogram summary: %+v", hv)
	}
	if len(hv.Buckets) != 3 {
		t.Errorf("histogram snapshot has %d buckets, want 3", len(hv.Buckets))
	}

	// The snapshot must be JSON-clean (no NaN/Inf from empty percentile
	// math), and empty registries emit arrays, not nulls.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	empty, err := json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s := string(empty); !strings.Contains(s, `"counters":[]`) {
		t.Errorf("empty snapshot = %s, want explicit empty arrays", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("run_executions_total", Labels{"workload": "threat-analysis"}).Add(5)
	r.Gauge("serve_inflight", Labels{"path": "/v1/run"}).Set(2)
	h := r.Histogram("serve_request_seconds", Labels{"path": "/v1/run"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE run_executions_total counter",
		`run_executions_total{workload="threat-analysis"} 5`,
		"# TYPE serve_inflight gauge",
		`serve_inflight{path="/v1/run"} 2`,
		"# TYPE serve_request_seconds histogram",
		`serve_request_seconds_bucket{path="/v1/run",le="0.1"} 1`,
		`serve_request_seconds_bucket{path="/v1/run",le="1"} 2`,
		`serve_request_seconds_bucket{path="/v1/run",le="+Inf"} 3`,
		`serve_request_seconds_sum{path="/v1/run"} 30.55`,
		`serve_request_seconds_count{path="/v1/run"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, not per series.
	r.Counter("run_executions_total", Labels{"workload": "terrain-masking"}).Inc()
	sb.Reset()
	r.WritePrometheus(&sb)
	if n := strings.Count(sb.String(), "# TYPE run_executions_total"); n != 1 {
		t.Errorf("%d TYPE headers for one family, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", Labels{"k": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if want := `c_total{k="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaped output missing %q:\n%s", want, sb.String())
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", Labels{"g": "x"}).Inc()
				r.Gauge("g", nil).Add(1)
				r.Histogram("h_seconds", nil, []float64{0.5, 1}).Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", Labels{"g": "x"}).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	h := r.Histogram("h_seconds", nil, nil)
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-6000) > 1e-6 {
		t.Errorf("histogram sum = %v, want 6000", h.Sum())
	}
}
