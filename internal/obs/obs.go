// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges, and fixed-bucket latency histograms with percentile
// summaries, collected in a Registry that snapshots to JSON and renders the
// Prometheus text exposition format. The run API instruments executions and
// cache traffic with it, the serving tier instruments requests and worker
// pools, and `GET /metrics` / `c3ibench -stats` are thin views over a
// Registry snapshot — the instrument panel every performance PR is judged
// with.
//
// Everything here is safe for concurrent use and allocation-free on the hot
// path (Observe/Inc/Add are atomic operations on pre-allocated state);
// metric lookup by name+labels takes a registry lock, so callers on hot
// paths should resolve their metric handles once and hold them.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error; it is not checked on the
// hot path, but Prometheus semantics assume counters never decrease).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight requests,
// pool size).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram bucketing for request and
// execution latencies, in seconds: sub-millisecond cache hits through the
// multi-minute paper-scale sweeps (`ro-streams` is ~54 s of host time in
// BENCH_baseline.json), roughly log-spaced.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram counts observations into fixed upper-bound buckets and keeps
// their sum, from which Quantile interpolates p50/p95/p99. Observation i
// lands in the first bucket whose bound is >= the value (`le` semantics);
// values above every bound land in the implicit overflow (+Inf) bucket.
type Histogram struct {
	bounds []float64      // sorted ascending, immutable after construction
	counts []atomic.Int64 // len(bounds)+1; last entry is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given upper bounds, which must be
// at least one strictly increasing finite value. Panics otherwise — bucket
// layout is declared at construction by code, not data.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %d (%v) is not finite", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d (%v after %v)",
				i, b, bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket the rank falls in, the same estimate Prometheus'
// histogram_quantile computes. Edges are defined, not special-cased by
// callers: an empty histogram reports 0; a rank landing in the first bucket
// interpolates from 0; a rank landing in the overflow bucket reports the
// largest finite bound (the histogram cannot know how far above it the
// observations went). Concurrent Observes make the estimate approximate,
// never a panic.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	if target < 1 {
		target = 1 // the rank of the first observation
	}
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (h.bounds[i]-lower)*(target-cum)/c
		}
		cum += c
	}
	// Racing Observes moved counts under us; the overflow answer is the
	// defined fallback.
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the cumulative per-bucket counts in Prometheus `le` form:
// one entry per finite bound plus the +Inf total.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out = append(out, BucketCount{LE: le, Count: cum})
	}
	return out
}

// BucketCount is one cumulative histogram bucket: the count of observations
// ≤ LE (+Inf for the overflow bucket). It travels in JSON with `le` as the
// Prometheus label string ("0.5", "+Inf") — encoding/json has no
// representation for the infinite bound.
type BucketCount struct {
	LE    float64 `json:"-"`
	Count int64   `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON implements json.Unmarshaler (snapshots round-trip through
// CI artifacts).
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var wire struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		f, err := strconv.ParseFloat(wire.LE, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket le %q: %w", wire.LE, err)
		}
		b.LE = f
	}
	b.Count = wire.Count
	return nil
}

// atomicFloat is a float64 accumulated with a CAS loop on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
