package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkExperiments/table1-8         	       1	    152000 ns/op	         0 key-model-s
BenchmarkExperiments/pt-streams-8     	       1	 310000000 ns/op	         0.19 key-model-s
BenchmarkWorkloadVariants/ta/sequential-8 	       1	  52000000 ns/op	       218.0 model-s
BenchmarkWorkloadVariants/pt/fine-16  	       1	  12345678.5 ns/op	         0.21 model-s
not a benchmark line
PASS
ok  	repro	12.345s
`

// sampleRecords is a `c3ibench -json` envelope with two run records (the
// shape the bench CI job pipes into the model_s source).
const sampleRecords = `{"experiments": ` + sampleExperiments + `, "failed": []}`

// sampleExperiments is the experiments array — also the whole document in
// the pre-envelope format old artifacts use.
const sampleExperiments = `[
  {
    "experiment": "table5",
    "title": "Multithreaded Threat Analysis on dual-processor Tera MTA",
    "elapsed_s": 1.5,
    "records": [
      {
        "spec": {"workload": "threat-analysis", "variant": "coarse", "platform": "tera", "procs": 1,
                 "scale": 0.25, "params": {"chunks": 256, "pipelined": 0}},
        "key": "threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0",
        "model_seconds": 20.5, "paper_seconds": 82.1, "checksum": "0000000000000000",
        "overhead_bytes": 0, "stats": {"cycles": 1, "ops": 1, "mem_refs": 0, "cache_hits": 0,
        "cache_misses": 0, "sync_ops": 0, "atomic_ops": 0, "lock_ops": 0, "barrier_ops": 0,
        "spawns": 1, "max_live": 1, "proc_util": [0.9], "mem_util": 0.1},
        "host_elapsed_ns": 1000000
      },
      {
        "spec": {"workload": "threat-analysis", "variant": "coarse", "platform": "tera", "procs": 2,
                 "scale": 0.25, "params": {"chunks": 256, "pipelined": 0}},
        "key": "threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0",
        "model_seconds": 11.5, "paper_seconds": 46.2, "checksum": "0000000000000000",
        "overhead_bytes": 0, "stats": {"cycles": 1, "ops": 1, "mem_refs": 0, "cache_hits": 0,
        "cache_misses": 0, "sync_ops": 0, "atomic_ops": 0, "lock_ops": 0, "barrier_ops": 0,
        "spawns": 1, "max_live": 1, "proc_util": [0.85, 0.84], "mem_util": 0.1},
        "host_elapsed_ns": 900000
      }
    ]
  }
]`

// rpt builds a Report from family-keyed entries via the declared table.
func rpt(t *testing.T, fams map[string]map[string]float64) *Report {
	t.Helper()
	r := &Report{}
	for name, entries := range fams {
		if err := r.Set(name, entries); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestFamilyTable(t *testing.T) {
	// The table is the artifact contract: every declared family resolves,
	// has a unit, an extractor and a sane default gate.
	for _, f := range Families {
		got, err := FamilyByName(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Unit == "" || got.Extract == nil || got.Threshold <= 1 {
			t.Errorf("family %s is underdeclared: %+v", f.Name, got)
		}
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Error("undeclared family resolved")
	}
	if err := (&Report{}).Set("nope", map[string]float64{"a": 1}); err == nil {
		t.Error("Set accepted an undeclared family")
	}
}

func TestParseNormalizesNames(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkExperiments/table1":             152000,
		"BenchmarkExperiments/pt-streams":         310000000,
		"BenchmarkWorkloadVariants/ta/sequential": 52000000,
		"BenchmarkWorkloadVariants/pt/fine":       12345678.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %g, want %g (GOMAXPROCS suffix must be stripped)", name, got[name], ns)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no benchmark lines accepted")
	}
}

func TestParseKeepsMinimumOfRepeats(t *testing.T) {
	// A -count N run repeats each benchmark; the artifact keeps the
	// minimum, the standard noise floor for 1-iteration measurements.
	out := `BenchmarkX/a-8 1 300 ns/op
BenchmarkX/a-8 1 100 ns/op
BenchmarkX/a-8 1 200 ns/op
`
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX/a"] != 100 {
		t.Errorf("BenchmarkX/a = %g, want the minimum 100", got["BenchmarkX/a"])
	}
}

func TestParseRecords(t *testing.T) {
	ms, err := ParseRecords(strings.NewReader(sampleRecords))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0": 82.1,
		"threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0": 46.2,
	}
	if len(ms) != len(want) {
		t.Fatalf("parsed %d model_s entries, want %d: %v", len(ms), len(want), ms)
	}
	for key, v := range want {
		if ms[key] != v {
			t.Errorf("%s = %g, want %g", key, ms[key], v)
		}
	}
}

func TestParseRecordsRejectsGarbage(t *testing.T) {
	if _, err := ParseRecords(strings.NewReader("[]")); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := ParseRecords(strings.NewReader(`{"experiments": [], "failed": []}`)); err == nil {
		t.Error("empty envelope accepted")
	}
	if _, err := ParseRecords(strings.NewReader("{not json")); err == nil {
		t.Error("malformed records accepted")
	}
	if _, err := ParseRecords(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseRecordsAcceptsLegacyArray(t *testing.T) {
	// Pre-envelope artifacts are a bare experiments array; they must keep
	// parsing so committed baselines do not need regeneration in lockstep.
	ms, err := ParseRecords(strings.NewReader(sampleExperiments))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("legacy array parsed %d entries, want 2", len(ms))
	}
}

func TestParseRecordsRejectsIncompleteSweep(t *testing.T) {
	// An envelope whose failure manifest is non-empty must not gate: the
	// missing experiments' records would silently vanish from the model_s
	// family and the comparison would pass on a subset.
	in := `{"experiments": ` + sampleExperiments + `,
	        "failed": [{"experiment": "table9", "error": "engine exploded"},
	                   {"experiment": "pt-streams", "error": "boom"}]}`
	_, err := ParseRecords(strings.NewReader(in))
	if err == nil {
		t.Fatal("incomplete artifact accepted")
	}
	for _, name := range []string{"table9", "pt-streams"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name failed experiment %s", err, name)
		}
	}
}

func TestParseLoad(t *testing.T) {
	// A minimal c3iload artifact: one endpoint measured, one step.
	artifact := `{
	  "config": {"addr": "http://x", "seed": 1, "steps_rps": "50", "step_duration_s": 1,
	             "warmup_s": 0, "mix": {"cold": 0, "warm": 0, "cached": 1},
	             "batch_sizes": "1=1", "workloads": "threat-analysis=1", "stream_ratio": 0,
	             "scale": 0.02, "platform": "tera", "procs": 1, "validate": false,
	             "max_inflight": 16},
	  "endpoints": {"/v1/run": {"requests": 50, "errors": 0, "rejected_429": 0, "dropped": 0,
	                "specs": 50, "records": 50, "spec_errors": 0, "achieved_rps": 49.8,
	                "throughput_records_per_s": 49.8, "p50_ms": 0.6, "p95_ms": 1.4,
	                "p99_ms": 2.8, "mean_ms": 0.7}},
	  "curve": [{"target_rps": 50, "duration_s": 1, "requests": 50, "errors": 0,
	             "rejected_429": 0, "dropped": 0, "specs": 50, "records": 50,
	             "spec_errors": 0, "achieved_rps": 49.8, "throughput_records_per_s": 49.8,
	             "p50_ms": 0.6, "p95_ms": 1.4, "p99_ms": 2.8, "mean_ms": 0.7}]
	}`
	got, err := ParseLoad(strings.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"/v1/run|p50_ms": 0.6, "/v1/run|p95_ms": 1.4, "/v1/run|p99_ms": 2.8,
	}
	if len(got) != len(want) {
		t.Fatalf("serve_latency = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %g, want %g", k, got[k], v)
		}
	}
	if _, err := ParseLoad(strings.NewReader(`{"curve": []}`)); err == nil {
		t.Error("artifact without a curve accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	bench, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	model, err := ParseRecords(strings.NewReader(sampleRecords))
	if err != nil {
		t.Fatal(err)
	}
	rep := rpt(t, map[string]map[string]float64{
		FamilyBenchmarks: bench,
		FamilyModelS:     model,
	})
	path := filepath.Join(t.TempDir(), "BENCH_pr.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rep.Len() {
		t.Fatalf("round trip lost entries: %d, want %d", got.Len(), rep.Len())
	}
	for _, fam := range FamilyNames() {
		for name, v := range rep.Family(fam) {
			if got.Family(fam)[name] != v {
				t.Errorf("%s %s = %g after round trip, want %g", fam, name, got.Family(fam)[name], v)
			}
		}
	}
}

func TestArtifactFormatIsStableAndClosed(t *testing.T) {
	// The on-disk shape is the pre-table flat object — committed baselines
	// from the two-family era must load unchanged...
	legacy := `{"benchmarks": {"BenchmarkX": 100}, "model_s": {"k": 2.5}}`
	var r Report
	if err := json.Unmarshal([]byte(legacy), &r); err != nil {
		t.Fatal(err)
	}
	if r.Family(FamilyBenchmarks)["BenchmarkX"] != 100 || r.Family(FamilyModelS)["k"] != 2.5 {
		t.Errorf("legacy artifact decoded wrong: %v / %v",
			r.Family(FamilyBenchmarks), r.Family(FamilyModelS))
	}
	// ...encoding keeps family order and sorted keys...
	out, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"benchmarks":{"BenchmarkX":100},"model_s":{"k":2.5}}`; string(out) != want {
		t.Errorf("encoded %s, want %s", out, want)
	}
	// ...and undeclared top-level keys are rejected, not silently kept as an
	// ungated family.
	if err := json.Unmarshal([]byte(`{"benchmurks": {"a": 1}}`), &r); err == nil {
		t.Error("undeclared family key accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"benchmurks": {"a": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted an undeclared family")
	}
}

func TestCompareGates(t *testing.T) {
	base := rpt(t, map[string]map[string]float64{FamilyBenchmarks: {
		"a": 100, "b": 100, "c": 100, "gone": 50,
	}})
	cur := rpt(t, map[string]map[string]float64{FamilyBenchmarks: {
		"a":   150, // 1.5x — inside a 2x gate
		"b":   250, // 2.5x — regression
		"c":   40,  // improvement
		"new": 1,   // added
	}})
	c, err := Compare(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 3 {
		t.Errorf("Compared = %d, want 3", c.Compared)
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "b" {
		t.Fatalf("Regressions = %+v, want just b", c.Regressions)
	}
	if r := c.Regressions[0].Ratio; r < 2.49 || r > 2.51 {
		t.Errorf("ratio = %g, want 2.5", r)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "benchmarks: gone" {
		t.Errorf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "benchmarks: new" {
		t.Errorf("Added = %v", c.Added)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed with a regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED [benchmarks] b") {
		t.Errorf("verdict %q does not name the regression", sb.String())
	}

	ok, err := Compare(base, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("identical reports failed the gate")
	}
	// Missing and added benchmarks alone must not fail the gate.
	only := rpt(t, map[string]map[string]float64{FamilyBenchmarks: {"a": 100}})
	miss, err := Compare(base, only, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !miss.Render(&sb) {
		t.Error("missing benchmarks failed the gate — they are informational")
	}
}

func TestCompareGatesModelS(t *testing.T) {
	// The acceptance scenario for the model family: simulated seconds
	// regress 3× while host ns/op is flat. ns/op alone would pass; the
	// model_s family must fail the gate.
	key := "threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0"
	base := rpt(t, map[string]map[string]float64{
		FamilyBenchmarks: {"BenchmarkExperiments/table5": 1e9},
		FamilyModelS:     {key: 82.0},
	})
	cur := rpt(t, map[string]map[string]float64{
		FamilyBenchmarks: {"BenchmarkExperiments/table5": 1e9}, // flat host time
		FamilyModelS:     {key: 246.0},                         // 3× simulated time
	})
	c, err := Compare(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 2 {
		t.Errorf("Compared = %d, want 2 (one per family)", c.Compared)
	}
	if len(c.Regressions) != 1 {
		t.Fatalf("Regressions = %+v, want exactly the model_s entry", c.Regressions)
	}
	r := c.Regressions[0]
	if r.Family != FamilyModelS || r.Name != key {
		t.Errorf("regression = %+v, want model_s on %s", r, key)
	}
	if r.Ratio < 2.9 || r.Ratio > 3.1 {
		t.Errorf("ratio = %g, want ≈ 3", r.Ratio)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed a 3× model_s regression")
	}
	if !strings.Contains(sb.String(), "model_s") {
		t.Errorf("verdict %q does not name the model_s family", sb.String())
	}

	// The same comparison with model_s improving must pass.
	if err := cur.Set(FamilyModelS, map[string]float64{key: 60.0}); err != nil {
		t.Fatal(err)
	}
	ok, err := Compare(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("model_s improvement failed the gate")
	}
}

func TestCompareGatesServeLatency(t *testing.T) {
	// The serving gate: a slowed server's percentiles blow through the
	// serve_latency threshold even with host benchmarks flat.
	base := rpt(t, map[string]map[string]float64{FamilyServeLatency: {
		"/v1/run|p50_ms": 0.5, "/v1/run|p95_ms": 1.2, "/v1/run|p99_ms": 3.0,
	}})
	slow := rpt(t, map[string]map[string]float64{FamilyServeLatency: {
		"/v1/run|p50_ms": 250.6, "/v1/run|p95_ms": 252.1, "/v1/run|p99_ms": 254.0,
	}})
	c, err := Compare(base, slow, map[string]float64{FamilyServeLatency: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 3 || len(c.Regressions) != 3 {
		t.Fatalf("slowed server: compared %d, regressions %+v", c.Compared, c.Regressions)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed a slowed server")
	}
	if !strings.Contains(sb.String(), "serve_latency") || !strings.Contains(sb.String(), "ms") {
		t.Errorf("verdict %q does not carry the family and unit", sb.String())
	}

	// Plausible jitter inside the override gate must pass.
	jitter := rpt(t, map[string]map[string]float64{FamilyServeLatency: {
		"/v1/run|p50_ms": 1.1, "/v1/run|p95_ms": 2.9, "/v1/run|p99_ms": 9.1,
	}})
	ok, err := Compare(base, jitter, map[string]float64{FamilyServeLatency: 5})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("in-gate latency jitter failed")
	}
}

func TestCompareFamiliesIndependent(t *testing.T) {
	// A model_s-only baseline against a benchmarks-only current: nothing
	// overlaps, nothing regresses, everything is informational.
	base := rpt(t, map[string]map[string]float64{FamilyModelS: {"k": 1}})
	cur := rpt(t, map[string]map[string]float64{FamilyBenchmarks: {"b": 1}})
	c, err := Compare(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 0 || len(c.Regressions) != 0 {
		t.Errorf("disjoint families compared: %+v", c)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "model_s: k" {
		t.Errorf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "benchmarks: b" {
		t.Errorf("Added = %v", c.Added)
	}
}

func TestCompareRejectsBadOverrides(t *testing.T) {
	r := rpt(t, map[string]map[string]float64{FamilyBenchmarks: {"a": 1}})
	if _, err := Compare(r, r, map[string]float64{FamilyBenchmarks: 1.0}); err == nil {
		t.Error("threshold 1.0 accepted")
	}
	if _, err := Compare(r, r, map[string]float64{"benchmurks": 2.0}); err == nil {
		t.Error("override for an undeclared family accepted")
	}
}
