package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkExperiments/table1-8         	       1	    152000 ns/op	         0 key-model-s
BenchmarkExperiments/pt-streams-8     	       1	 310000000 ns/op	         0.19 key-model-s
BenchmarkWorkloadVariants/ta/sequential-8 	       1	  52000000 ns/op	       218.0 model-s
BenchmarkWorkloadVariants/pt/fine-16  	       1	  12345678.5 ns/op	         0.21 model-s
not a benchmark line
PASS
ok  	repro	12.345s
`

// sampleRecords is a `c3ibench -json` envelope with two run records (the
// shape the bench CI job pipes into -records).
const sampleRecords = `{"experiments": ` + sampleExperiments + `, "failed": []}`

// sampleExperiments is the experiments array — also the whole document in
// the pre-envelope format old artifacts use.
const sampleExperiments = `[
  {
    "experiment": "table5",
    "title": "Multithreaded Threat Analysis on dual-processor Tera MTA",
    "elapsed_s": 1.5,
    "records": [
      {
        "spec": {"workload": "threat-analysis", "variant": "coarse", "platform": "tera", "procs": 1,
                 "scale": 0.25, "params": {"chunks": 256, "pipelined": 0}},
        "key": "threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0",
        "model_seconds": 20.5, "paper_seconds": 82.1, "checksum": "0000000000000000",
        "overhead_bytes": 0, "stats": {"cycles": 1, "ops": 1, "mem_refs": 0, "cache_hits": 0,
        "cache_misses": 0, "sync_ops": 0, "atomic_ops": 0, "lock_ops": 0, "barrier_ops": 0,
        "spawns": 1, "max_live": 1, "proc_util": [0.9], "mem_util": 0.1},
        "host_elapsed_ns": 1000000
      },
      {
        "spec": {"workload": "threat-analysis", "variant": "coarse", "platform": "tera", "procs": 2,
                 "scale": 0.25, "params": {"chunks": 256, "pipelined": 0}},
        "key": "threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0",
        "model_seconds": 11.5, "paper_seconds": 46.2, "checksum": "0000000000000000",
        "overhead_bytes": 0, "stats": {"cycles": 1, "ops": 1, "mem_refs": 0, "cache_hits": 0,
        "cache_misses": 0, "sync_ops": 0, "atomic_ops": 0, "lock_ops": 0, "barrier_ops": 0,
        "spawns": 1, "max_live": 1, "proc_util": [0.85, 0.84], "mem_util": 0.1},
        "host_elapsed_ns": 900000
      }
    ]
  }
]`

func TestParseNormalizesNames(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkExperiments/table1":             152000,
		"BenchmarkExperiments/pt-streams":         310000000,
		"BenchmarkWorkloadVariants/ta/sequential": 52000000,
		"BenchmarkWorkloadVariants/pt/fine":       12345678.5,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, ns := range want {
		if got := rep.Benchmarks[name]; got != ns {
			t.Errorf("%s = %g, want %g (GOMAXPROCS suffix must be stripped)", name, got, ns)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no benchmark lines accepted")
	}
}

func TestParseKeepsMinimumOfRepeats(t *testing.T) {
	// A -count N run repeats each benchmark; the artifact keeps the
	// minimum, the standard noise floor for 1-iteration measurements.
	out := `BenchmarkX/a-8 1 300 ns/op
BenchmarkX/a-8 1 100 ns/op
BenchmarkX/a-8 1 200 ns/op
`
	rep, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks["BenchmarkX/a"]; got != 100 {
		t.Errorf("BenchmarkX/a = %g, want the minimum 100", got)
	}
}

func TestParseRecords(t *testing.T) {
	ms, err := ParseRecords(strings.NewReader(sampleRecords))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0": 82.1,
		"threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0": 46.2,
	}
	if len(ms) != len(want) {
		t.Fatalf("parsed %d model_s entries, want %d: %v", len(ms), len(want), ms)
	}
	for key, v := range want {
		if ms[key] != v {
			t.Errorf("%s = %g, want %g", key, ms[key], v)
		}
	}
}

func TestParseRecordsRejectsGarbage(t *testing.T) {
	if _, err := ParseRecords(strings.NewReader("[]")); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := ParseRecords(strings.NewReader(`{"experiments": [], "failed": []}`)); err == nil {
		t.Error("empty envelope accepted")
	}
	if _, err := ParseRecords(strings.NewReader("{not json")); err == nil {
		t.Error("malformed records accepted")
	}
	if _, err := ParseRecords(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseRecordsAcceptsLegacyArray(t *testing.T) {
	// Pre-envelope artifacts are a bare experiments array; they must keep
	// parsing so committed baselines do not need regeneration in lockstep.
	ms, err := ParseRecords(strings.NewReader(sampleExperiments))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("legacy array parsed %d entries, want 2", len(ms))
	}
}

func TestParseRecordsRejectsIncompleteSweep(t *testing.T) {
	// An envelope whose failure manifest is non-empty must not gate: the
	// missing experiments' records would silently vanish from the model_s
	// family and the comparison would pass on a subset.
	in := `{"experiments": ` + sampleExperiments + `,
	        "failed": [{"experiment": "table9", "error": "engine exploded"},
	                   {"experiment": "pt-streams", "error": "boom"}]}`
	_, err := ParseRecords(strings.NewReader(in))
	if err == nil {
		t.Fatal("incomplete artifact accepted")
	}
	for _, name := range []string{"table9", "pt-streams"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name failed experiment %s", err, name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rep.ModelS, err = ParseRecords(strings.NewReader(sampleRecords))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_pr.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) || len(got.ModelS) != len(rep.ModelS) {
		t.Fatalf("round trip lost entries: %d/%d benchmarks, %d/%d model_s",
			len(got.Benchmarks), len(rep.Benchmarks), len(got.ModelS), len(rep.ModelS))
	}
	for name, ns := range rep.Benchmarks {
		if got.Benchmarks[name] != ns {
			t.Errorf("%s = %g after round trip, want %g", name, got.Benchmarks[name], ns)
		}
	}
	for key, s := range rep.ModelS {
		if got.ModelS[key] != s {
			t.Errorf("%s = %g after round trip, want %g", key, got.ModelS[key], s)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := &Report{Benchmarks: map[string]float64{
		"a": 100, "b": 100, "c": 100, "gone": 50,
	}}
	cur := &Report{Benchmarks: map[string]float64{
		"a":   150, // 1.5x — inside a 2x gate
		"b":   250, // 2.5x — regression
		"c":   40,  // improvement
		"new": 1,   // added
	}}
	c, err := Compare(base, cur, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 3 {
		t.Errorf("Compared = %d, want 3", c.Compared)
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "b" {
		t.Fatalf("Regressions = %+v, want just b", c.Regressions)
	}
	if r := c.Regressions[0].Ratio; r < 2.49 || r > 2.51 {
		t.Errorf("ratio = %g, want 2.5", r)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "ns/op: gone" {
		t.Errorf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "ns/op: new" {
		t.Errorf("Added = %v", c.Added)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed with a regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED b") {
		t.Errorf("verdict %q does not name the regression", sb.String())
	}

	ok, err := Compare(base, base, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("identical reports failed the gate")
	}
	// Missing and added benchmarks alone must not fail the gate.
	sb.Reset()
	if !c2(t, base, &Report{Benchmarks: map[string]float64{"a": 100}}).Render(&sb) {
		t.Error("missing benchmarks failed the gate — they are informational")
	}
}

func TestCompareGatesModelS(t *testing.T) {
	// The acceptance scenario for the second family: simulated seconds
	// regress 3× while host ns/op is flat. ns/op alone would pass; the
	// model_s family must fail the gate.
	key := "threat-analysis|coarse|tera|p1|s0.25|chunks=256,pipelined=0"
	base := &Report{
		Benchmarks: map[string]float64{"BenchmarkExperiments/table5": 1e9},
		ModelS:     map[string]float64{key: 82.0},
	}
	cur := &Report{
		Benchmarks: map[string]float64{"BenchmarkExperiments/table5": 1e9}, // flat host time
		ModelS:     map[string]float64{key: 246.0},                         // 3× simulated time
	}
	c, err := Compare(base, cur, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 2 {
		t.Errorf("Compared = %d, want 2 (one per family)", c.Compared)
	}
	if len(c.Regressions) != 1 {
		t.Fatalf("Regressions = %+v, want exactly the model_s entry", c.Regressions)
	}
	r := c.Regressions[0]
	if r.Metric != MetricModelS || r.Name != key {
		t.Errorf("regression = %+v, want model_s on %s", r, key)
	}
	if r.Ratio < 2.9 || r.Ratio > 3.1 {
		t.Errorf("ratio = %g, want ≈ 3", r.Ratio)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed a 3× model_s regression")
	}
	if !strings.Contains(sb.String(), "model_s") {
		t.Errorf("verdict %q does not name the model_s family", sb.String())
	}

	// The same comparison with model_s improving must pass.
	cur.ModelS[key] = 60.0
	ok, err := Compare(base, cur, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("model_s improvement failed the gate")
	}
}

func TestCompareModelSFamiliesIndependent(t *testing.T) {
	// A model_s-only baseline against a benchmarks-only current: nothing
	// overlaps, nothing regresses, everything is informational.
	base := &Report{ModelS: map[string]float64{"k": 1}}
	cur := &Report{Benchmarks: map[string]float64{"b": 1}}
	c, err := Compare(base, cur, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 0 || len(c.Regressions) != 0 {
		t.Errorf("disjoint families compared: %+v", c)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "model_s: k" {
		t.Errorf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "ns/op: b" {
		t.Errorf("Added = %v", c.Added)
	}
}

func c2(t *testing.T, base, cur *Report) *Comparison {
	t.Helper()
	c, err := Compare(base, cur, 2.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompareRejectsBadThreshold(t *testing.T) {
	r := &Report{Benchmarks: map[string]float64{"a": 1}}
	if _, err := Compare(r, r, 1.0, 1.5); err == nil {
		t.Error("ns/op threshold 1.0 accepted")
	}
	if _, err := Compare(r, r, 2.0, 1.0); err == nil {
		t.Error("model threshold 1.0 accepted")
	}
}
