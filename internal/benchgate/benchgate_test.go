package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkExperiments/table1-8         	       1	    152000 ns/op	         0 key-model-s
BenchmarkExperiments/pt-streams-8     	       1	 310000000 ns/op	         0.19 key-model-s
BenchmarkWorkloadVariants/ta/sequential-8 	       1	  52000000 ns/op	       218.0 model-s
BenchmarkWorkloadVariants/pt/fine-16  	       1	  12345678.5 ns/op	         0.21 model-s
not a benchmark line
PASS
ok  	repro	12.345s
`

func TestParseNormalizesNames(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkExperiments/table1":             152000,
		"BenchmarkExperiments/pt-streams":         310000000,
		"BenchmarkWorkloadVariants/ta/sequential": 52000000,
		"BenchmarkWorkloadVariants/pt/fine":       12345678.5,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, ns := range want {
		if got := rep.Benchmarks[name]; got != ns {
			t.Errorf("%s = %g, want %g (GOMAXPROCS suffix must be stripped)", name, got, ns)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no benchmark lines accepted")
	}
}

func TestParseKeepsMinimumOfRepeats(t *testing.T) {
	// A -count N run repeats each benchmark; the artifact keeps the
	// minimum, the standard noise floor for 1-iteration measurements.
	out := `BenchmarkX/a-8 1 300 ns/op
BenchmarkX/a-8 1 100 ns/op
BenchmarkX/a-8 1 200 ns/op
`
	rep, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks["BenchmarkX/a"]; got != 100 {
		t.Errorf("BenchmarkX/a = %g, want the minimum 100", got)
	}
}

func TestRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_pr.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(got.Benchmarks), len(rep.Benchmarks))
	}
	for name, ns := range rep.Benchmarks {
		if got.Benchmarks[name] != ns {
			t.Errorf("%s = %g after round trip, want %g", name, got.Benchmarks[name], ns)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := &Report{Benchmarks: map[string]float64{
		"a": 100, "b": 100, "c": 100, "gone": 50,
	}}
	cur := &Report{Benchmarks: map[string]float64{
		"a":   150, // 1.5x — inside a 2x gate
		"b":   250, // 2.5x — regression
		"c":   40,  // improvement
		"new": 1,   // added
	}}
	c, err := Compare(base, cur, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 3 {
		t.Errorf("Compared = %d, want 3", c.Compared)
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "b" {
		t.Fatalf("Regressions = %+v, want just b", c.Regressions)
	}
	if r := c.Regressions[0].Ratio; r < 2.49 || r > 2.51 {
		t.Errorf("ratio = %g, want 2.5", r)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "gone" {
		t.Errorf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "new" {
		t.Errorf("Added = %v", c.Added)
	}
	var sb strings.Builder
	if c.Render(&sb) {
		t.Error("gate passed with a regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED b") {
		t.Errorf("verdict %q does not name the regression", sb.String())
	}

	ok, err := Compare(base, base, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !ok.Render(&sb) {
		t.Error("identical reports failed the gate")
	}
	// Missing and added benchmarks alone must not fail the gate.
	sb.Reset()
	if !c2(t, base, &Report{Benchmarks: map[string]float64{"a": 100}}).Render(&sb) {
		t.Error("missing benchmarks failed the gate — they are informational")
	}
}

func c2(t *testing.T, base, cur *Report) *Comparison {
	t.Helper()
	c, err := Compare(base, cur, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompareRejectsBadThreshold(t *testing.T) {
	r := &Report{Benchmarks: map[string]float64{"a": 1}}
	if _, err := Compare(r, r, 1.0); err == nil {
		t.Error("threshold 1.0 accepted")
	}
}
