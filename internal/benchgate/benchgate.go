// Package benchgate turns benchmark measurements into a committed JSON
// artifact and compares two such artifacts with regression thresholds — the
// repository's benchmark-regression CI gate. An artifact carries two metric
// families:
//
//   - "benchmarks": benchmark name → ns/op, parsed from `go test -bench`
//     output. Host time on shared, noisy runners, so the gate is
//     deliberately generous (default 2×) and the committed baseline may come
//     from different hardware.
//   - "model_s": run key → simulated seconds, taken from the run records
//     `c3ibench -json` emits. Simulated time is deterministic for a given
//     source tree, so this family gates model-*shape* regressions with a
//     much tighter threshold: if a change makes the modeled machines
//     slower, it fails here even when host ns/op is flat.
//
// Entries present in only one artifact are reported but never fail the gate
// — registry growth adds benchmarks and records on every workload, and that
// must not require baseline surgery to land.
package benchgate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/run"
)

// Metric family names, used in verdicts and Missing/Added prefixes.
const (
	MetricNsOp   = "ns/op"
	MetricModelS = "model_s"
)

// Report is the committed artifact. Benchmark names are normalized (the
// -GOMAXPROCS suffix stripped), so artifacts recorded on machines with
// different core counts stay comparable; model_s keys are run.Spec keys,
// which are machine-independent by construction.
type Report struct {
	Benchmarks map[string]float64 `json:"benchmarks"`
	ModelS     map[string]float64 `json:"model_s,omitempty"`
}

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkWorkloadVariants/pt/fine-8   1   123456 ns/op   0.43 model-s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Parse extracts benchmark results from `go test -bench` output. Lines that
// are not benchmark results (headers, PASS/ok trailers, log noise) are
// ignored. Repeated names (a `-count N` run) keep the minimum measurement —
// min-of-N is the standard noise reducer for single-iteration benchmarks on
// shared runners.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := rep.Benchmarks[m[1]]; !ok || ns < prev {
			rep.Benchmarks[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return rep, nil
}

// ParseRecords reads `c3ibench -json` output and returns the model_s family:
// each record's canonical key mapped to its paper-scale simulated seconds.
// Records repeated across experiments (shared cells) carry identical values,
// so duplicates are harmless.
//
// The input is the RecordSet envelope, whose failure manifest is enforced
// here: an artifact that names failed experiments is rejected outright, so
// the gate can never silently compare against an incomplete sweep (the bare
// pre-envelope array form is still accepted for old artifacts).
func ParseRecords(r io.Reader) (map[string]float64, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading run records: %w", err)
	}
	var set run.RecordSet
	if trimmed := bytes.TrimSpace(buf); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(buf, &set.Experiments); err != nil {
			return nil, fmt.Errorf("benchgate: decoding run records: %w", err)
		}
	} else if err := json.Unmarshal(buf, &set); err != nil {
		return nil, fmt.Errorf("benchgate: decoding run records: %w", err)
	}
	if len(set.Failed) > 0 {
		names := make([]string, len(set.Failed))
		for i, f := range set.Failed {
			names[i] = f.Experiment
		}
		return nil, fmt.Errorf("benchgate: records artifact is incomplete: %d failed experiment(s): %s",
			len(set.Failed), strings.Join(names, ", "))
	}
	ms := map[string]float64{}
	for _, ex := range set.Experiments {
		for _, rec := range ex.Records {
			if rec.Key == "" {
				return nil, fmt.Errorf("benchgate: record without a key in experiment %s", ex.Experiment)
			}
			ms[rec.Key] = rec.PaperSeconds
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("benchgate: no run records found in input")
	}
	return ms, nil
}

// WriteFile writes the report as stable (sorted-key, indented) JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ") // map keys marshal sorted
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 && len(r.ModelS) == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no benchmarks or model_s entries", path)
	}
	return &r, nil
}

// Regression is one entry that slowed beyond its family's threshold.
type Regression struct {
	Name      string
	Metric    string // MetricNsOp or MetricModelS
	Base      float64
	Cur       float64
	Ratio     float64
	Threshold float64
}

// Comparison is the gate's verdict over two reports.
type Comparison struct {
	Regressions []Regression // over-threshold entries, sorted worst first
	Missing     []string     // in base, absent from current (renamed/removed)
	Added       []string     // in current, absent from base (new entries)
	Compared    int          // entries present in both, across families
}

// Compare evaluates current against base. Each family has its own ratio
// threshold (> 1): nsThreshold for host ns/op, modelThreshold for simulated
// model_s seconds.
func Compare(base, current *Report, nsThreshold, modelThreshold float64) (*Comparison, error) {
	if nsThreshold <= 1 || modelThreshold <= 1 {
		return nil, fmt.Errorf("benchgate: thresholds %g/%g, need > 1", nsThreshold, modelThreshold)
	}
	c := &Comparison{}
	c.compareFamily(MetricNsOp, base.Benchmarks, current.Benchmarks, nsThreshold)
	c.compareFamily(MetricModelS, base.ModelS, current.ModelS, modelThreshold)
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c, nil
}

// compareFamily gates one metric family; names in Missing/Added are
// prefixed with the family for unambiguous reporting.
func (c *Comparison) compareFamily(metric string, base, current map[string]float64, threshold float64) {
	prefix := metric + ": "
	for name, b := range base {
		cur, ok := current[name]
		if !ok {
			c.Missing = append(c.Missing, prefix+name)
			continue
		}
		c.Compared++
		if b > 0 && cur/b > threshold {
			c.Regressions = append(c.Regressions, Regression{
				Name: name, Metric: metric,
				Base: b, Cur: cur, Ratio: cur / b, Threshold: threshold,
			})
		}
	}
	for name := range current {
		if _, ok := base[name]; !ok {
			c.Added = append(c.Added, prefix+name)
		}
	}
}

// Render writes the human-readable verdict to w and reports whether the
// gate passes.
func (c *Comparison) Render(w io.Writer) bool {
	fmt.Fprintf(w, "benchgate: %d entries compared, %d added, %d missing\n",
		c.Compared, len(c.Added), len(c.Missing))
	for _, name := range c.Added {
		fmt.Fprintf(w, "  new:      %s (not in baseline — informational)\n", name)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "  missing:  %s (in baseline only — informational)\n", name)
	}
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  REGRESSED %s: %g → %g %s (%.2fx > %.2fx gate)\n",
			r.Name, r.Base, r.Cur, r.Metric, r.Ratio, r.Threshold)
	}
	if len(c.Regressions) == 0 {
		fmt.Fprintln(w, "benchgate: no regressions beyond the gates")
		return true
	}
	return false
}
