// Package benchgate turns performance measurements into a committed JSON
// artifact and compares two such artifacts with per-family regression
// thresholds — the repository's performance-regression CI gate.
//
// The gate is organized around a declared Family table (see Families): each
// family names one metric class (host ns/op, simulated model seconds,
// serving-latency percentiles), the unit its verdicts render with, the
// extractor that builds its entries from a source artifact, and a default
// ratio threshold. An artifact is a JSON object keyed by family name:
//
//	{"benchmarks": {"BenchmarkX": 123456, ...},
//	 "model_s": {"threat-analysis|paper|tera|p16|s1.00": 0.43, ...},
//	 "serve_latency": {"/v1/run|p95_ms": 1.8, ...}}
//
// Adding a family is one table entry in family.go — the artifact encoding,
// comparison, rendering and the cmd/benchgate flag surface are all driven
// from the table.
//
// Entries present in only one artifact are reported but never fail the gate
// — registry growth adds benchmarks and records on every workload, and that
// must not require baseline surgery to land.
package benchgate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/run"
)

// Report is the committed artifact: family name → entry name → value.
// Benchmark names are normalized (the -GOMAXPROCS suffix stripped), so
// artifacts recorded on machines with different core counts stay comparable;
// model_s keys are run.Spec keys, which are machine-independent by
// construction.
type Report struct {
	families map[string]map[string]float64
}

// Family returns one family's entries (nil if absent).
func (r *Report) Family(name string) map[string]float64 { return r.families[name] }

// Set installs one family's entries, replacing any previous ones. The name
// must be declared in the Families table — the artifact format is closed over
// it. Empty maps are dropped rather than stored.
func (r *Report) Set(name string, entries map[string]float64) error {
	if _, err := FamilyByName(name); err != nil {
		return err
	}
	if len(entries) == 0 {
		delete(r.families, name)
		return nil
	}
	if r.families == nil {
		r.families = map[string]map[string]float64{}
	}
	r.families[name] = entries
	return nil
}

// Len counts entries across all families.
func (r *Report) Len() int {
	n := 0
	for _, fam := range r.families {
		n += len(fam)
	}
	return n
}

// Summary renders per-family entry counts in table order ("3 benchmarks,
// 12 model_s entries").
func (r *Report) Summary() string {
	var parts []string
	for _, f := range Families {
		if n := len(r.families[f.Name]); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, f.Name))
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, ", ") + " entries"
}

// MarshalJSON encodes the artifact as a flat family-keyed object, families in
// table order and entry keys sorted — the committed file is byte-stable.
func (r *Report) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	first := true
	for _, f := range Families {
		fam := r.families[f.Name]
		if len(fam) == 0 {
			continue
		}
		if !first {
			buf.WriteByte(',')
		}
		first = false
		inner, err := json.Marshal(fam) // map keys marshal sorted
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "%q:%s", f.Name, inner)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON decodes a family-keyed artifact, rejecting families the table
// does not declare — a typoed key must not silently become an ungated family.
func (r *Report) UnmarshalJSON(data []byte) error {
	var raw map[string]map[string]float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	r.families = nil
	for name, entries := range raw {
		if err := r.Set(name, entries); err != nil {
			return err
		}
	}
	return nil
}

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkWorkloadVariants/pt/fine-8   1   123456 ns/op   0.43 model-s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Parse extracts the benchmarks family from `go test -bench` output. Lines
// that are not benchmark results (headers, PASS/ok trailers, log noise) are
// ignored. Repeated names (a `-count N` run) keep the minimum measurement —
// min-of-N is the standard noise reducer for single-iteration benchmarks on
// shared runners.
func Parse(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return out, nil
}

// ParseRecords reads `c3ibench -json` output and returns the model_s family:
// each record's canonical key mapped to its paper-scale simulated seconds.
// Records repeated across experiments (shared cells) carry identical values,
// so duplicates are harmless.
//
// The input is the RecordSet envelope, whose failure manifest is enforced
// here: an artifact that names failed experiments is rejected outright, so
// the gate can never silently compare against an incomplete sweep (the bare
// pre-envelope array form is still accepted for old artifacts).
func ParseRecords(r io.Reader) (map[string]float64, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading run records: %w", err)
	}
	var set run.RecordSet
	if trimmed := bytes.TrimSpace(buf); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(buf, &set.Experiments); err != nil {
			return nil, fmt.Errorf("benchgate: decoding run records: %w", err)
		}
	} else if err := json.Unmarshal(buf, &set); err != nil {
		return nil, fmt.Errorf("benchgate: decoding run records: %w", err)
	}
	if len(set.Failed) > 0 {
		names := make([]string, len(set.Failed))
		for i, f := range set.Failed {
			names[i] = f.Experiment
		}
		return nil, fmt.Errorf("benchgate: records artifact is incomplete: %d failed experiment(s): %s",
			len(set.Failed), strings.Join(names, ", "))
	}
	ms := map[string]float64{}
	for _, ex := range set.Experiments {
		for _, rec := range ex.Records {
			if rec.Key == "" {
				return nil, fmt.Errorf("benchgate: record without a key in experiment %s", ex.Experiment)
			}
			ms[rec.Key] = rec.PaperSeconds
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("benchgate: no run records found in input")
	}
	return ms, nil
}

// WriteFile writes the report as stable (table-ordered, sorted-key, indented)
// JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if r.Len() == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no entries in any declared family", path)
	}
	return &r, nil
}

// Regression is one entry that slowed beyond its family's threshold.
type Regression struct {
	Name      string
	Family    string // declared family name
	Unit      string // that family's unit, for rendering
	Base      float64
	Cur       float64
	Ratio     float64
	Threshold float64
}

// Comparison is the gate's verdict over two reports.
type Comparison struct {
	Regressions []Regression // over-threshold entries, sorted worst first
	Missing     []string     // in base, absent from current (renamed/removed)
	Added       []string     // in current, absent from base (new entries)
	Compared    int          // entries present in both, across families
}

// Compare evaluates current against base across every declared family. Each
// family gates at its table default unless overridden by name; override
// ratios must be > 1 and name declared families.
func Compare(base, current *Report, overrides map[string]float64) (*Comparison, error) {
	thresholds := map[string]float64{}
	for _, f := range Families {
		thresholds[f.Name] = f.Threshold
	}
	for name, ratio := range overrides {
		if _, ok := thresholds[name]; !ok {
			return nil, fmt.Errorf("benchgate: threshold override for unknown family %q (declared: %s)",
				name, strings.Join(FamilyNames(), ", "))
		}
		if ratio <= 1 {
			return nil, fmt.Errorf("benchgate: threshold %g for family %s, need > 1", ratio, name)
		}
		thresholds[name] = ratio
	}
	c := &Comparison{}
	for _, f := range Families {
		c.compareFamily(f, base.Family(f.Name), current.Family(f.Name), thresholds[f.Name])
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c, nil
}

// compareFamily gates one family; names in Missing/Added are prefixed with
// the family for unambiguous reporting. Both maps are walked in sorted key
// order so the comparison lists are deterministic on their own, not only
// after the caller's cross-family sort.
func (c *Comparison) compareFamily(f Family, base, current map[string]float64, threshold float64) {
	prefix := f.Name + ": "
	for _, name := range sortedKeys(base) {
		b := base[name]
		cur, ok := current[name]
		if !ok {
			c.Missing = append(c.Missing, prefix+name)
			continue
		}
		c.Compared++
		if b > 0 && cur/b > threshold {
			c.Regressions = append(c.Regressions, Regression{
				Name: name, Family: f.Name, Unit: f.Unit,
				Base: b, Cur: cur, Ratio: cur / b, Threshold: threshold,
			})
		}
	}
	for _, name := range sortedKeys(current) {
		if _, ok := base[name]; !ok {
			c.Added = append(c.Added, prefix+name)
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render writes the human-readable verdict to w and reports whether the
// gate passes.
func (c *Comparison) Render(w io.Writer) bool {
	fmt.Fprintf(w, "benchgate: %d entries compared, %d added, %d missing\n",
		c.Compared, len(c.Added), len(c.Missing))
	for _, name := range c.Added {
		fmt.Fprintf(w, "  new:      %s (not in baseline — informational)\n", name)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "  missing:  %s (in baseline only — informational)\n", name)
	}
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  REGRESSED [%s] %s: %g → %g %s (%.2fx > %.2fx gate)\n",
			r.Family, r.Name, r.Base, r.Cur, r.Unit, r.Ratio, r.Threshold)
	}
	if len(c.Regressions) == 0 {
		fmt.Fprintln(w, "benchgate: no regressions beyond the gates")
		return true
	}
	return false
}
