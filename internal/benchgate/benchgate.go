// Package benchgate turns `go test -bench` output into a committed JSON
// artifact (benchmark name → ns/op) and compares two such artifacts with a
// regression threshold — the repository's benchmark-regression CI gate.
//
// The gate is deliberately generous: CI runners are shared, noisy machines
// and the committed baseline may have been recorded on different hardware,
// so only large ratios (the default gate is 2×) are treated as regressions.
// Benchmarks present in only one artifact are reported but never fail the
// gate — registry growth adds benchmarks on every workload, and that must
// not require baseline surgery to land.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Report is the committed artifact: benchmark name → ns/op. Names are
// normalized (the -GOMAXPROCS suffix stripped), so artifacts recorded on
// machines with different core counts stay comparable.
type Report struct {
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkWorkloadVariants/pt/fine-8   1   123456 ns/op   0.43 model-s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Parse extracts benchmark results from `go test -bench` output. Lines that
// are not benchmark results (headers, PASS/ok trailers, log noise) are
// ignored. Repeated names (a `-count N` run) keep the minimum measurement —
// min-of-N is the standard noise reducer for single-iteration benchmarks on
// shared runners.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := rep.Benchmarks[m[1]]; !ok || ns < prev {
			rep.Benchmarks[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return rep, nil
}

// WriteFile writes the report as stable (sorted-key, indented) JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ") // map keys marshal sorted
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no benchmarks", path)
	}
	return &r, nil
}

// Regression is one benchmark that slowed beyond the gate's threshold.
type Regression struct {
	Name      string
	BaseNsOp  float64
	CurNsOp   float64
	Ratio     float64
	Threshold float64
}

// Comparison is the gate's verdict over two reports.
type Comparison struct {
	Regressions []Regression // current/base > threshold, sorted worst first
	Missing     []string     // in base, absent from current (renamed/removed)
	Added       []string     // in current, absent from base (new benchmarks)
	Compared    int          // benchmarks present in both
}

// Compare evaluates current against base with a ratio threshold (> 1).
func Compare(base, current *Report, threshold float64) (*Comparison, error) {
	if threshold <= 1 {
		return nil, fmt.Errorf("benchgate: threshold %g, need > 1", threshold)
	}
	c := &Comparison{}
	for name, b := range base.Benchmarks {
		cur, ok := current.Benchmarks[name]
		if !ok {
			c.Missing = append(c.Missing, name)
			continue
		}
		c.Compared++
		if b > 0 && cur/b > threshold {
			c.Regressions = append(c.Regressions, Regression{
				Name: name, BaseNsOp: b, CurNsOp: cur, Ratio: cur / b, Threshold: threshold,
			})
		}
	}
	for name := range current.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			c.Added = append(c.Added, name)
		}
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c, nil
}

// Render writes the human-readable verdict to w and reports whether the
// gate passes.
func (c *Comparison) Render(w io.Writer) bool {
	fmt.Fprintf(w, "benchgate: %d benchmarks compared, %d added, %d missing\n",
		c.Compared, len(c.Added), len(c.Missing))
	for _, name := range c.Added {
		fmt.Fprintf(w, "  new:      %s (not in baseline — informational)\n", name)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "  missing:  %s (in baseline only — informational)\n", name)
	}
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  REGRESSED %s: %.0f → %.0f ns/op (%.2fx > %.2fx gate)\n",
			r.Name, r.BaseNsOp, r.CurNsOp, r.Ratio, r.Threshold)
	}
	if len(c.Regressions) == 0 {
		fmt.Fprintln(w, "benchgate: no regressions beyond the gate")
		return true
	}
	return false
}
