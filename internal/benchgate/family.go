package benchgate

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/load"
)

// Canonical family names — the artifact's top-level JSON keys and the
// `-family name=ratio` flag vocabulary.
const (
	FamilyBenchmarks   = "benchmarks"
	FamilyModelS       = "model_s"
	FamilyServeLatency = "serve_latency"
)

// Family declares one metric family: its artifact key, the unit verdicts are
// rendered with, the default regression threshold, and the extractor that
// builds the family's entries from its source during `-parse`. The gate is
// table-driven — adding a family here is the whole integration: the CLI's
// `-src`/`-family` flags, artifact encoding, comparison and rendering all
// enumerate this table.
type Family struct {
	// Name keys the family in artifacts, flags and verdicts.
	Name string
	// Unit names the measurement for human-readable verdicts ("ns/op").
	Unit string
	// Threshold is the default gate ratio (> 1): current/base beyond it is a
	// regression. Overridable per run with `-family name=ratio`.
	Threshold float64
	// Source describes the input `-src name=path` expects, for usage text.
	Source string
	// Extract parses that source into the family's name → value entries.
	Extract func(r io.Reader) (map[string]float64, error)
}

// Families is the declared family table, in artifact/verdict order.
//
//   - benchmarks: host ns/op from `go test -bench` output. Host time on
//     shared, noisy runners, so the default gate is deliberately generous
//     and the committed baseline may come from different hardware.
//   - model_s: simulated paper-scale seconds from `c3ibench -json` run
//     records. Deterministic for a given source tree, so the gate is tight:
//     a breach is a model-shape regression even when host time is flat.
//   - serve_latency: client-side serving-latency percentiles (milliseconds,
//     per endpoint) from a `c3iload` artifact. Host-timing dependent like
//     ns/op, hence a generous default — but a deliberately slowed server
//     blows through any plausible threshold, which is what the gate is for.
var Families = []Family{
	{
		Name: FamilyBenchmarks, Unit: "ns/op", Threshold: 2.0,
		Source:  "`go test -bench` output",
		Extract: Parse,
	},
	{
		Name: FamilyModelS, Unit: "s", Threshold: 1.5,
		Source:  "`c3ibench -json` records",
		Extract: ParseRecords,
	},
	{
		Name: FamilyServeLatency, Unit: "ms", Threshold: 2.0,
		Source:  "`c3iload` artifact",
		Extract: ParseLoad,
	},
}

// FamilyByName resolves a declared family.
func FamilyByName(name string) (*Family, error) {
	for i := range Families {
		if Families[i].Name == name {
			return &Families[i], nil
		}
	}
	return nil, fmt.Errorf("benchgate: unknown family %q (declared: %s)", name, strings.Join(FamilyNames(), ", "))
}

// FamilyNames lists the declared family names in table order.
func FamilyNames() []string {
	names := make([]string, len(Families))
	for i, f := range Families {
		names[i] = f.Name
	}
	return names
}

// ParseLoad extracts the serve_latency family from a `c3iload` JSON
// artifact: per-endpoint p50/p95/p99 in milliseconds, keyed
// "<endpoint>|p50_ms". The artifact's own validation applies — no curve or
// no successfully measured endpoint rejects, so the gate can never compare
// against a run that measured nothing.
func ParseLoad(r io.Reader) (map[string]float64, error) {
	res, err := load.ParseResult(r)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return res.LatencyFamily(), nil
}
