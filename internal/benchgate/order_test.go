package benchgate

import (
	"reflect"
	"sort"
	"testing"
)

// TestCompareFamilyDeterministicOrder is the regression test for the c3ivet
// determinism finding: compareFamily used to walk both maps in Go's random
// iteration order, leaving Missing/Added/Regressions ordering to a sort in
// the caller. The lists must now be deterministic and sorted per family on
// their own.
func TestCompareFamilyDeterministicOrder(t *testing.T) {
	f := Family{Name: "benchmarks", Unit: "ns/op"}
	base := map[string]float64{
		"zeta": 100, "alpha": 100, "mid": 100, "kappa": 100, "beta": 100,
		"gone-b": 1, "gone-a": 1, "gone-c": 1,
	}
	current := map[string]float64{
		"zeta": 500, "alpha": 300, "mid": 100, "kappa": 100, "beta": 100,
		"new-b": 1, "new-a": 1, "new-c": 1,
	}

	var first Comparison
	first.compareFamily(f, base, current, 2)

	wantMissing := []string{"benchmarks: gone-a", "benchmarks: gone-b", "benchmarks: gone-c"}
	if !reflect.DeepEqual(first.Missing, wantMissing) {
		t.Errorf("Missing = %v, want %v", first.Missing, wantMissing)
	}
	wantAdded := []string{"benchmarks: new-a", "benchmarks: new-b", "benchmarks: new-c"}
	if !reflect.DeepEqual(first.Added, wantAdded) {
		t.Errorf("Added = %v, want %v", first.Added, wantAdded)
	}
	var regNames []string
	for _, r := range first.Regressions {
		regNames = append(regNames, r.Name)
	}
	if !sort.StringsAreSorted(regNames) {
		t.Errorf("Regressions not in sorted key order: %v", regNames)
	}

	// Identical inputs must yield identical output across repeated runs —
	// with map-order iteration this flaked at better than 1-in-many odds.
	for i := 0; i < 20; i++ {
		var again Comparison
		again.compareFamily(f, base, current, 2)
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d differs:\n%+v\nvs\n%+v", i, again, first)
		}
	}
}
