package load

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
	"repro/internal/run"
	"repro/internal/serve"
)

// A cheap deterministic workload so the load tests do not pay for real
// benchmark suites. Registered once for this test process; Config.Resolve's
// "all registered workloads" default resolves to exactly this.
func init() {
	suite.MustRegister(&suite.Workload{
		Name: "load-hook", Key: "lh", FileTag: "lh", Title: "Load Test Hook",
		Order: 97, PaperUnits: 1, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Generate: func(scale float64) []suite.Scenario {
			return []suite.Scenario{hookScenario{}}
		},
		Variants: []*suite.Variant{{
			Name: "sequential", Style: suite.Sequential,
			Defaults: suite.Params{"work": 50},
			Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
				t.Compute(int64(p["work"]))
				return suite.Output{Checksum: uint64(p["work"]) * 3}
			},
		}},
	})
}

type hookScenario struct{}

func (hookScenario) ScenarioName() string { return "lh-1" }
func (hookScenario) Units() int           { return 1 }
func (hookScenario) Warm()                {}

// baseConfig is a resolvable config over the hook workload.
func baseConfig() Config {
	return Config{
		Addr:         "http://example.invalid",
		Steps:        []float64{100},
		StepDuration: time.Second,
		Mix:          Mix{Cold: 0.1, Warm: 0.3, Cached: 0.6},
		StreamRatio:  0.5,
		Seed:         7,
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("cold=0.05,warm=0.2,cached=0.75")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cold != 0.05 || m.Warm != 0.2 || m.Cached != 0.75 {
		t.Errorf("mix = %+v", m)
	}
	if m, err = ParseMix("cached=1"); err != nil || m.Cold != 0 || m.Cached != 1 {
		t.Errorf("single-kind mix = %+v, err %v", m, err)
	}
	for _, bad := range []string{"", "cold=0,warm=0,cached=0", "hot=1", "cold=-1", "cold"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestParseDists(t *testing.T) {
	ints, err := ParseIntDist("1=6,4=3,16=1")
	if err != nil || len(ints) != 3 || ints[1].Value != 4 || ints[1].Weight != 3 {
		t.Errorf("int dist = %+v, err %v", ints, err)
	}
	for _, bad := range []string{"", "0=1", "x=1", "1=-2", "1"} {
		if _, err := ParseIntDist(bad); err == nil {
			t.Errorf("int dist %q accepted", bad)
		}
	}
	names, err := ParseNameDist("load-hook=3,other")
	if err != nil || len(names) != 2 || names[0].Weight != 3 || names[1].Weight != 1 {
		t.Errorf("name dist = %+v, err %v", names, err)
	}
	if _, err := ParseNameDist("=2"); err == nil {
		t.Error("empty name accepted")
	}
	steps, err := ParseSteps("50, 100,200")
	if err != nil || len(steps) != 3 || steps[2] != 200 {
		t.Errorf("steps = %v, err %v", steps, err)
	}
	for _, bad := range []string{"", "0", "-5", "fast"} {
		if _, err := ParseSteps(bad); err == nil {
			t.Errorf("steps %q accepted", bad)
		}
	}
}

func TestConfigResolveDefaults(t *testing.T) {
	cfg, err := baseConfig().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.BatchSizes) == 0 || len(cfg.Workloads) == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.Workloads[0].Value != "load-hook" {
		t.Errorf("default workloads = %+v, want the registered hook", cfg.Workloads)
	}
	if cfg.Scale != 0.02 || cfg.Platform != "tera" || cfg.Procs != 1 || cfg.MaxInflight != 256 {
		t.Errorf("scalar defaults wrong: %+v", cfg)
	}

	for name, mutate := range map[string]func(*Config){
		"no addr":          func(c *Config) { c.Addr = "" },
		"no steps":         func(c *Config) { c.Steps = nil },
		"zero rps":         func(c *Config) { c.Steps = []float64{0} },
		"zero duration":    func(c *Config) { c.StepDuration = 0 },
		"negative warmup":  func(c *Config) { c.Warmup = -time.Second },
		"empty mix":        func(c *Config) { c.Mix = Mix{} },
		"bad stream ratio": func(c *Config) { c.StreamRatio = 1.5 },
		"unknown workload": func(c *Config) { c.Workloads = []Choice[string]{{"nope", 1}} },
		"unknown platform": func(c *Config) { c.Platform = "cray-3" },
	} {
		c := baseConfig()
		mutate(&c)
		if _, err := c.Resolve(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// schedule draws n requests and flattens them to comparable strings.
func schedule(cfg Config, n int) []string {
	g := newGenerator(&cfg)
	var out []string
	for i := 0; i < n; i++ {
		req := g.next()
		keys := make([]string, len(req.specs))
		for j, s := range req.specs {
			keys[j] = s.Key()
		}
		out = append(out, req.endpoint+" "+strings.Join(keys, ";"))
	}
	return out
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg, err := baseConfig().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	a, b := schedule(cfg, 300), schedule(cfg, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := schedule(cfg2, 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGeneratorMixSemantics(t *testing.T) {
	cfg, err := baseConfig().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	g := newGenerator(&cfg)
	seen := map[string]int{}
	scales := map[float64]bool{}
	for i := 0; i < 2000; i++ {
		s := g.spec()
		seen[s.Key()]++
		scales[s.Scale] = true
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats += n - 1
		}
	}
	// Cached weight 0.6 over 2000 draws: a large share must be exact repeats
	// (server cache hits), and warm/cold must keep minting unique keys.
	if repeats < 500 {
		t.Errorf("only %d cached repeats in 2000 draws (weight 0.6)", repeats)
	}
	if len(seen) < 300 {
		t.Errorf("only %d unique keys in 2000 draws — warm/cold are not minting fresh Specs", len(seen))
	}
	// Cold draws derive fresh scales beyond the base.
	if len(scales) < 2 {
		t.Errorf("all draws at one scale %v — cold never generated a fresh workload×scale", scales)
	}
}

func TestHarnessEndToEnd(t *testing.T) {
	runner := run.NewRunner(0)
	srv := serve.New(runner, serve.Options{WorkersPerWorkload: 4})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	cfg := baseConfig()
	cfg.Addr = ts.URL
	cfg.Steps = []float64{150, 300}
	cfg.StepDuration = 250 * time.Millisecond
	cfg.Warmup = 50 * time.Millisecond
	cfg.Scale = 1
	cfg.Platform = "alpha"
	cfg.Timeout = 10 * time.Second

	h, err := New(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 2 {
		t.Fatalf("curve has %d steps, want 2", len(res.Curve))
	}
	if res.Config.Seed != cfg.Seed || res.Config.Addr != ts.URL {
		t.Errorf("config echo wrong: %+v", res.Config)
	}
	var requests, records int64
	for ep, st := range res.Endpoints {
		if ep != serve.RunPath && ep != serve.StreamPath {
			t.Errorf("unexpected endpoint %q", ep)
		}
		if st.Errors > 0 {
			t.Errorf("%s saw %d transport errors against a healthy local server", ep, st.Errors)
		}
		requests += st.Requests
		records += st.Records
	}
	if requests == 0 || records == 0 {
		t.Fatalf("measured nothing: %d requests, %d records", requests, records)
	}
	// With StreamRatio 0.5 over dozens of requests, both transports must
	// actually be exercised.
	if len(res.Endpoints) != 2 {
		t.Errorf("endpoints = %v, want both transports", res.Endpoints)
	}
	fam := res.LatencyFamily()
	for _, ep := range []string{serve.RunPath, serve.StreamPath} {
		for _, q := range []string{"p50_ms", "p95_ms", "p99_ms"} {
			if v, ok := fam[ep+"|"+q]; !ok || v <= 0 {
				t.Errorf("LatencyFamily[%s|%s] = %g, %v", ep, q, v, ok)
			}
		}
	}

	// The artifact round-trips through the benchgate extractor path.
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseResult(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.LatencyFamily()) != len(fam) {
		t.Errorf("round trip changed the latency family: %v vs %v", back.LatencyFamily(), fam)
	}
}

func TestHarnessRefusesUnhealthyTarget(t *testing.T) {
	cfg := baseConfig()
	cfg.Addr = "http://127.0.0.1:1" // nothing listens here
	cfg.Timeout = 500 * time.Millisecond
	h, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(context.Background()); err == nil {
		t.Fatal("run against a dead target succeeded")
	}
}

func TestParseResultRejectsBadArtifacts(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"unknown field": `{"curve": [], "bogus": 1}`,
		"no curve":      `{"config": {}, "endpoints": {}, "curve": []}`,
		"no successes": `{"config": {}, "endpoints": {"/v1/run": {"requests": 3, "errors": 3}},
		                  "curve": [{"target_rps": 1, "duration_s": 1}]}`,
	}
	for name, in := range cases {
		if _, err := ParseResult(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
