package load

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/run"
	"repro/internal/serve"
)

// Harness drives one load run against a serving endpoint.
type Harness struct {
	cfg    Config
	client *serve.Client
	// log, when non-nil, receives one progress line per step.
	log func(format string, args ...any)
}

// New validates the config and builds the harness. The underlying
// serve.Client runs with retries disabled: the harness measures the server
// as it is — a 429 is a data point for the artifact, not something to paper
// over with backoff that would close the open loop.
func New(cfg Config, log func(format string, args ...any)) (*Harness, error) {
	cfg, err := cfg.Resolve()
	if err != nil {
		return nil, err
	}
	return &Harness{
		cfg:    cfg,
		client: &serve.Client{Addr: cfg.Addr, Retries: -1, Timeout: cfg.Timeout},
		log:    log,
	}, nil
}

func (h *Harness) logf(format string, args ...any) {
	if h.log != nil {
		h.log(format, args...)
	}
}

// Run executes every step and assembles the artifact. The generator persists
// across steps, so later steps inherit the earlier steps' cached pool and
// warm families — a saturation sweep measures one progressively warmed
// server, the way sustained production traffic would.
func (h *Harness) Run(ctx context.Context) (*Result, error) {
	if _, err := h.client.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("load: target %s is not healthy: %w", h.cfg.Addr, err)
	}
	gen := newGenerator(&h.cfg)
	endpoints := map[string]*collector{
		serve.RunPath:    newCollector(),
		serve.StreamPath: newCollector(),
	}
	result := &Result{
		Config: ConfigEcho{
			Addr:        h.cfg.Addr,
			Seed:        h.cfg.Seed,
			Steps:       describeSteps(h.cfg.Steps),
			StepS:       h.cfg.StepDuration.Seconds(),
			WarmupS:     h.cfg.Warmup.Seconds(),
			Mix:         h.cfg.Mix,
			BatchSizes:  describeDist(h.cfg.BatchSizes),
			Workloads:   describeDist(h.cfg.Workloads),
			StreamRatio: h.cfg.StreamRatio,
			Scale:       h.cfg.Scale,
			Platform:    h.cfg.Platform,
			Procs:       h.cfg.Procs,
			Validate:    h.cfg.Validate,
			MaxInflight: h.cfg.MaxInflight,
		},
		Endpoints: map[string]TrafficStats{},
	}
	var measured time.Duration
	for _, rps := range h.cfg.Steps {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		step, window := h.runStep(ctx, gen, rps, endpoints)
		measured += window
		result.Curve = append(result.Curve, step)
		h.logf("step %6.1f rps: achieved %6.1f, p50 %.2fms p95 %.2fms p99 %.2fms, %d err, %d rejected, %d dropped",
			rps, step.AchievedRPS, step.P50Ms, step.P95Ms, step.P99Ms,
			step.Errors, step.Rejected, step.Dropped)
	}
	for ep, col := range endpoints {
		if st := col.stats(measured); st.Requests > 0 || st.Dropped > 0 {
			result.Endpoints[ep] = st
		}
	}
	return result, nil
}

// runStep paces one step open-loop at the target RPS: launch times follow
// the fixed schedule start + n·interval regardless of outstanding requests
// (arrivals do not wait for completions), with MaxInflight as the harness's
// own memory bound — an over-limit launch is counted as dropped and skipped.
// Requests launched during the warmup lead-in are sent but not recorded. The
// returned window is the measured send span the step's rates are computed
// over.
func (h *Harness) runStep(ctx context.Context, gen *generator, rps float64, endpoints map[string]*collector) (StepStats, time.Duration) {
	interval := float64(time.Second) / rps
	col := newCollector()
	tokens := make(chan struct{}, h.cfg.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now() //c3ivet:ignore determinism the load harness measures real wall-clock latency by design
	warmEnd := start.Add(h.cfg.Warmup)
	deadline := warmEnd.Add(h.cfg.StepDuration)
	for n := 0; ; n++ {
		target := start.Add(time.Duration(float64(n) * interval))
		if target.After(deadline) || ctx.Err() != nil {
			break
		}
		if d := time.Until(target); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		req := gen.next()
		recorded := !time.Now().Before(warmEnd) //c3ivet:ignore determinism warmup cutoff is a wall-clock decision, not a model input
		select {
		case tokens <- struct{}{}:
		default:
			if recorded {
				col.dropped.Add(1)
				endpoints[req.endpoint].dropped.Add(1)
			}
			continue
		}
		wg.Add(1)
		go func(req request, recorded bool) {
			defer wg.Done()
			defer func() { <-tokens }()
			o := h.send(ctx, req)
			if recorded {
				col.observe(o)
				endpoints[req.endpoint].observe(o)
			}
		}(req, recorded)
	}
	window := time.Since(warmEnd) //c3ivet:ignore determinism the measurement window is host wall-clock by design
	if window <= 0 {
		window = time.Nanosecond
	}
	wg.Wait()
	return StepStats{
		TargetRPS:    rps,
		DurationS:    window.Seconds(),
		TrafficStats: col.stats(window),
	}, window
}

// send issues one request on its transport and classifies the outcome.
// Latency spans the whole exchange — for the stream, until the last NDJSON
// event arrives, since a Record still in flight is not yet served.
func (h *Harness) send(ctx context.Context, req request) outcome {
	o := outcome{specs: len(req.specs)}
	t0 := time.Now() //c3ivet:ignore determinism per-request latency measurement is the harness output
	var err error
	if req.endpoint == serve.StreamPath {
		err = h.client.RunStream(ctx, req.specs, func(ev run.StreamEvent) {
			if ev.Error != "" {
				o.specErrors++
			} else {
				o.records++
			}
		})
	} else {
		var br serve.BatchResponse
		if br, err = h.client.RunBatch(ctx, req.specs); err == nil {
			for i := range br.Errors {
				switch {
				case br.Errors[i] != "":
					o.specErrors++
				case br.Records[i] != nil:
					o.records++
				}
			}
		}
	}
	o.latency = time.Since(t0) //c3ivet:ignore determinism per-request latency measurement is the harness output
	if err != nil {
		var se *serve.StatusError
		if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
			o.rejected = true
		} else {
			o.failed = true
		}
		o.records, o.specErrors = 0, 0
	}
	return o
}
