// Package load is the serving tier's load-test harness: it replays
// registry-enumerated Spec mixes against a c3iserve or c3irouter endpoint at
// a target request rate with open-loop pacing, over both the batch
// (POST /v1/run) and the NDJSON stream (POST /v1/run/stream) transports, and
// reports achieved RPS, throughput, client-side p50/p95/p99 latency per
// endpoint, error/429/drop counts, and a stepped-RPS saturation curve as a
// CI-ready JSON artifact (cmd/c3iload writes it; the benchgate serve_latency
// family gates it).
//
// The workload mix is parameterized, Task Bench style, instead of a fixed
// point: workload weights, a batch-size distribution, a stream/batch traffic
// split, and a cold/warm/cached ratio over Spec temperature —
//
//   - cached: an exact repeat of a Spec issued earlier in the run, which the
//     server answers from its record cache or disk store;
//   - warm: a fresh Spec (unique canonical key) inside a workload×scale the
//     run has already touched, so the server's memoized scenario suite is
//     warm but the engine must execute;
//   - cold: a fresh workload×scale, forcing scenario generation before the
//     engine runs.
//
// Everything is drawn from one seeded RNG on the pacing goroutine, so the
// generated request schedule — endpoints, batch sizes, every Spec — is a
// pure function of the Config: two runs with the same seed replay the same
// traffic, which is what makes artifacts comparable across commits.
//
// Pacing is open-loop: requests launch on the fixed schedule regardless of
// how many are still outstanding, the way independent users arrive, so a
// saturated server shows up as climbing latency and 429s rather than as a
// politely self-throttling client. MaxInflight is the harness's own memory
// bound; a request that would exceed it is counted as dropped, never sent —
// and never silently: drops mean the measured RPS understates the target.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/platforms"
	"repro/internal/run"
	"repro/internal/serve"
)

// Spec temperatures the mix ratios draw over.
const (
	KindCached = "cached"
	KindWarm   = "warm"
	KindCold   = "cold"
)

// historyCap bounds the ring of issued Specs that cached picks draw from.
const historyCap = 4096

// Choice is one weighted alternative in a distribution.
type Choice[T any] struct {
	Value  T
	Weight float64
}

// pick draws one alternative; weights are relative, not normalized. The
// caller guarantees a non-empty distribution with positive total weight
// (Config.Resolve enforced it).
func pick[T any](rng *rand.Rand, dist []Choice[T]) T {
	total := 0.0
	for _, c := range dist {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range dist {
		if x < c.Weight {
			return c.Value
		}
		x -= c.Weight
	}
	return dist[len(dist)-1].Value
}

// Mix is the cold/warm/cached temperature ratio. Values are relative
// weights; they need not sum to 1.
type Mix struct {
	Cold   float64 `json:"cold"`
	Warm   float64 `json:"warm"`
	Cached float64 `json:"cached"`
}

// dist renders the mix as a drawable distribution.
func (m Mix) dist() []Choice[string] {
	return []Choice[string]{
		{KindCached, m.Cached}, {KindWarm, m.Warm}, {KindCold, m.Cold},
	}
}

// ParseMix parses "cold=0.05,warm=0.2,cached=0.75". Omitted kinds weigh 0.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix term %q is not kind=weight", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix weight %q must be a non-negative number", v)
		}
		switch k {
		case KindCold:
			m.Cold = w
		case KindWarm:
			m.Warm = w
		case KindCached:
			m.Cached = w
		default:
			return Mix{}, fmt.Errorf("load: unknown mix kind %q (want cold/warm/cached)", k)
		}
	}
	if m.Cold+m.Warm+m.Cached <= 0 {
		return Mix{}, fmt.Errorf("load: mix %q has zero total weight", s)
	}
	return m, nil
}

// ParseIntDist parses a weighted integer distribution, "1=6,4=3,16=1".
func ParseIntDist(s string) ([]Choice[int], error) {
	var out []Choice[int]
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("load: distribution term %q is not value=weight", part)
		}
		val, err := strconv.Atoi(k)
		if err != nil || val < 1 {
			return nil, fmt.Errorf("load: distribution value %q must be a positive integer", k)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("load: distribution weight %q must be a non-negative number", v)
		}
		out = append(out, Choice[int]{val, w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty distribution %q", s)
	}
	return out, nil
}

// ParseNameDist parses a weighted name distribution, "threat-analysis=3,
// terrain-masking=1". A bare name weighs 1.
func ParseNameDist(s string) ([]Choice[string], error) {
	var out []Choice[string]
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, v, ok := strings.Cut(part, "=")
		w := 1.0
		if ok {
			var err error
			if w, err = strconv.ParseFloat(v, 64); err != nil || w < 0 {
				return nil, fmt.Errorf("load: weight %q must be a non-negative number", v)
			}
		}
		if name == "" {
			return nil, fmt.Errorf("load: empty name in %q", s)
		}
		out = append(out, Choice[string]{name, w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty distribution %q", s)
	}
	return out, nil
}

// Config describes one load run.
type Config struct {
	// Addr is the target base URL (a c3iserve or c3irouter).
	Addr string
	// Steps are the target request rates of the saturation sweep, each held
	// for StepDuration. A single-step run is a one-point "curve".
	Steps []float64
	// StepDuration is the measured window of each step.
	StepDuration time.Duration
	// Warmup is an unrecorded lead-in at the start of each step, paced at
	// the step's rate: connections open, pools start, suites warm.
	Warmup time.Duration
	// Mix is the cold/warm/cached temperature ratio of generated Specs.
	Mix Mix
	// BatchSizes is the weighted batch-size distribution.
	BatchSizes []Choice[int]
	// Workloads is the weighted workload mix; every name must be registered.
	Workloads []Choice[string]
	// StreamRatio is the fraction of requests sent to /v1/run/stream; the
	// rest POST /v1/run.
	StreamRatio float64
	// Scale is the base Spec scale (cold Specs derive fresh scales from it).
	Scale float64
	// Platform and Procs pin the machine model Specs request.
	Platform string
	Procs    int
	// Validate requests checksummed outputs instead of charge-only runs.
	Validate bool
	// Seed seeds the one RNG the whole schedule is drawn from.
	Seed int64
	// MaxInflight bounds outstanding requests; excess launches are dropped
	// (counted, never sent).
	MaxInflight int
	// Timeout bounds each request; 0 means none.
	Timeout time.Duration
}

// Resolve fills defaults and rejects configurations the harness cannot run
// deterministically. It returns the resolved copy.
func (c Config) Resolve() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("load: no target address")
	}
	if len(c.Steps) == 0 {
		return c, fmt.Errorf("load: no target RPS steps")
	}
	for _, rps := range c.Steps {
		if rps <= 0 {
			return c, fmt.Errorf("load: step RPS %g must be positive", rps)
		}
	}
	if c.StepDuration <= 0 {
		return c, fmt.Errorf("load: step duration %s must be positive", c.StepDuration)
	}
	if c.Warmup < 0 {
		return c, fmt.Errorf("load: negative warmup %s", c.Warmup)
	}
	if c.Mix.Cold+c.Mix.Warm+c.Mix.Cached <= 0 {
		return c, fmt.Errorf("load: mix has zero total weight")
	}
	if c.StreamRatio < 0 || c.StreamRatio > 1 {
		return c, fmt.Errorf("load: stream ratio %g outside [0, 1]", c.StreamRatio)
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []Choice[int]{{1, 6}, {4, 3}, {8, 1}}
	}
	if len(c.Workloads) == 0 {
		for _, w := range suite.All() {
			c.Workloads = append(c.Workloads, Choice[string]{w.Name, 1})
		}
		if len(c.Workloads) == 0 {
			return c, fmt.Errorf("load: no workloads registered")
		}
	}
	for _, w := range c.Workloads {
		if _, err := suite.Lookup(w.Value); err != nil {
			return c, fmt.Errorf("load: %w", err)
		}
	}
	if total := totalWeight(c.Workloads); total <= 0 {
		return c, fmt.Errorf("load: workload mix has zero total weight")
	}
	if total := totalWeight(c.BatchSizes); total <= 0 {
		return c, fmt.Errorf("load: batch-size distribution has zero total weight")
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Platform == "" {
		c.Platform = "tera"
	}
	if _, err := platforms.Get(c.Platform); err != nil {
		return c, fmt.Errorf("load: %w", err)
	}
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 256
	}
	return c, nil
}

func totalWeight[T any](dist []Choice[T]) float64 {
	total := 0.0
	for _, c := range dist {
		total += c.Weight
	}
	return total
}

// request is one generated unit of traffic.
type request struct {
	endpoint string // serve.RunPath or serve.StreamPath
	specs    []run.Spec
}

// generator draws the deterministic request schedule. All state mutates on
// the pacing goroutine only.
type generator struct {
	cfg      *Config
	rng      *rand.Rand
	mix      []Choice[string]
	families []family   // workload×scale combinations the run has touched
	history  []run.Spec // ring of issued Specs, the cached pool
	histNext int
	seq      int // unique-key counter for warm/cold Specs
	coldSeq  int // fresh-scale counter for cold Specs
}

// family is one workload×scale the generator has issued Specs in; warm picks
// land here.
type family struct {
	workload string
	variants []string
	scale    float64
}

// newGenerator seeds the schedule. Families are pre-seeded with every
// configured workload at the base scale so warm picks are defined from the
// first request.
func newGenerator(cfg *Config) *generator {
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		mix: cfg.Mix.dist(),
	}
	// Iterate the configured workload mix in its declared order: generator
	// state must never depend on map iteration.
	for _, wc := range cfg.Workloads {
		w, err := suite.Lookup(wc.Value)
		if err != nil {
			continue // Resolve already rejected unknown names
		}
		var variants []string
		for _, v := range w.Variants {
			variants = append(variants, v.Name)
		}
		g.families = append(g.families, family{workload: w.Name, variants: variants, scale: cfg.Scale})
	}
	return g
}

// next draws the next request: endpoint, batch size, then one Spec per slot.
func (g *generator) next() request {
	endpoint := serve.RunPath
	if g.rng.Float64() < g.cfg.StreamRatio {
		endpoint = serve.StreamPath
	}
	size := pick(g.rng, g.cfg.BatchSizes)
	specs := make([]run.Spec, size)
	for i := range specs {
		specs[i] = g.spec()
	}
	return request{endpoint: endpoint, specs: specs}
}

// spec draws one Spec at the mixed temperature.
func (g *generator) spec() run.Spec {
	var s run.Spec
	switch kind := pick(g.rng, g.mix); {
	case kind == KindCached && len(g.history) > 0:
		s = g.history[g.rng.Intn(len(g.history))]
		return s // an exact repeat re-enters neither history nor families
	case kind == KindCold:
		s = g.fresh(g.coldFamily())
	default: // warm, or cached before any history exists
		s = g.fresh(g.families[g.rng.Intn(len(g.families))])
	}
	g.remember(s)
	return s
}

// coldFamily derives a never-seen workload×scale: the workload mix picks the
// workload, and a fresh scale forces the server to generate a new scenario
// suite before executing.
func (g *generator) coldFamily() family {
	g.coldSeq++
	name := pick(g.rng, g.cfg.Workloads)
	w, _ := suite.Lookup(name) // Resolve vetted the mix
	var variants []string
	for _, v := range w.Variants {
		variants = append(variants, v.Name)
	}
	f := family{
		workload: name,
		variants: variants,
		scale:    g.cfg.Scale * (1 + 0.05*float64(g.coldSeq)),
	}
	g.families = append(g.families, f)
	return f
}

// fresh builds a new unique Spec in a family: random variant, a load_seq
// param that makes the canonical key unique (solvers ignore unknown params,
// so the execution cost is the variant's real cost — only the cache key
// changes).
func (g *generator) fresh(f family) run.Spec {
	g.seq++
	return run.Spec{
		Workload: f.workload,
		Variant:  f.variants[g.rng.Intn(len(f.variants))],
		Platform: g.cfg.Platform,
		Procs:    g.cfg.Procs,
		Scale:    f.scale,
		Params:   suite.Params{"load_seq": g.seq}, //c3ivet:ignore registrylint load_seq is a synthetic cache-busting key; solvers ignore unknown params
		Validate: g.cfg.Validate,
	}
}

// remember adds an issued Spec to the bounded cached pool.
func (g *generator) remember(s run.Spec) {
	if len(g.history) < historyCap {
		g.history = append(g.history, s)
		return
	}
	g.history[g.histNext] = s
	g.histNext = (g.histNext + 1) % historyCap
}

// describeDist renders a distribution for the artifact's config echo.
func describeDist[T any](dist []Choice[T]) string {
	parts := make([]string, len(dist))
	for i, c := range dist {
		parts[i] = fmt.Sprintf("%v=%g", c.Value, c.Weight)
	}
	return strings.Join(parts, ",")
}

// ParseSteps parses a comma-separated RPS sweep, "50,100,200".
func ParseSteps(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		rps, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || rps <= 0 {
			return nil, fmt.Errorf("load: step %q must be a positive RPS", part)
		}
		out = append(out, rps)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty step list %q", s)
	}
	return out, nil
}

// describeSteps renders the RPS steps for the config echo.
func describeSteps(steps []float64) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = strconv.FormatFloat(s, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// sortedEndpoints returns map keys in stable order for rendering.
func sortedEndpoints[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
