package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LatencyBuckets are the client-side request-latency histogram bounds in
// seconds. Serving latency lives orders of magnitude below the engine
// latencies obs.DefLatencyBuckets were laid out for (a cached record answers
// in well under a millisecond on loopback), so the low end is finer here;
// the top still covers a cold paper-scale Spec held open for half a minute.
var LatencyBuckets = []float64{
	0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 30,
}

// collector accumulates one traffic series (a step, or an endpoint across
// the whole run). Counters are atomic and the histogram is obs.Histogram,
// so concurrent in-flight requests record without coordination.
type collector struct {
	hist       *obs.Histogram
	requests   atomic.Int64
	errors     atomic.Int64
	rejected   atomic.Int64
	dropped    atomic.Int64
	specs      atomic.Int64
	records    atomic.Int64
	specErrors atomic.Int64
}

func newCollector() *collector {
	return &collector{hist: obs.NewHistogram(LatencyBuckets...)}
}

// outcome is one finished (or refused) request as the collectors see it.
type outcome struct {
	latency    time.Duration
	rejected   bool // 429 admission pushback
	failed     bool // transport error or any other non-200
	specs      int
	records    int
	specErrors int
}

// observe folds one outcome in. Only successful requests contribute to the
// latency percentiles — a 429 answers in microseconds and a transport error
// in whatever the failure took, and mixing either into the distribution
// would flatter or slander the server for reasons that are not latency.
func (c *collector) observe(o outcome) {
	c.requests.Add(1)
	switch {
	case o.rejected:
		c.rejected.Add(1)
	case o.failed:
		c.errors.Add(1)
	default:
		c.hist.Observe(o.latency.Seconds())
		c.specs.Add(int64(o.specs))
		c.records.Add(int64(o.records))
		c.specErrors.Add(int64(o.specErrors))
	}
}

// TrafficStats is one measured traffic series in the artifact.
type TrafficStats struct {
	// Requests counts everything sent in the measured window (successes,
	// errors and 429s; not drops).
	Requests int64 `json:"requests"`
	// Errors counts transport failures and non-200/non-429 statuses.
	Errors int64 `json:"errors"`
	// Rejected counts 429 admission-control rejections.
	Rejected int64 `json:"rejected_429"`
	// Dropped counts launches the harness refused because MaxInflight was
	// reached — the client-side saturation signal.
	Dropped int64 `json:"dropped"`
	// Specs/Records/SpecErrors count individual Specs inside successful
	// requests: submitted, answered with a Record, answered with a per-spec
	// error.
	Specs      int64 `json:"specs"`
	Records    int64 `json:"records"`
	SpecErrors int64 `json:"spec_errors"`
	// AchievedRPS is requests sent per second of the measured window — under
	// open-loop pacing it tracks the target unless the harness dropped.
	AchievedRPS float64 `json:"achieved_rps"`
	// RecordsPerSecond is the delivered throughput in Records per second.
	RecordsPerSecond float64 `json:"throughput_records_per_s"`
	// Latency percentiles over successful requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// stats snapshots the collector over a measured window.
func (c *collector) stats(window time.Duration) TrafficStats {
	s := TrafficStats{
		Requests:   c.requests.Load(),
		Errors:     c.errors.Load(),
		Rejected:   c.rejected.Load(),
		Dropped:    c.dropped.Load(),
		Specs:      c.specs.Load(),
		Records:    c.records.Load(),
		SpecErrors: c.specErrors.Load(),
		P50Ms:      c.hist.Quantile(0.50) * 1000,
		P95Ms:      c.hist.Quantile(0.95) * 1000,
		P99Ms:      c.hist.Quantile(0.99) * 1000,
	}
	if n := c.hist.Count(); n > 0 {
		s.MeanMs = c.hist.Sum() / float64(n) * 1000
	}
	if secs := window.Seconds(); secs > 0 {
		s.AchievedRPS = float64(s.Requests) / secs
		s.RecordsPerSecond = float64(s.Records) / secs
	}
	return s
}

// StepStats is one point of the saturation curve.
type StepStats struct {
	TargetRPS float64 `json:"target_rps"`
	DurationS float64 `json:"duration_s"`
	TrafficStats
}

// ConfigEcho is the artifact's record of how the run was parameterized —
// enough to reproduce it exactly (the schedule is a pure function of these).
type ConfigEcho struct {
	Addr        string  `json:"addr"`
	Seed        int64   `json:"seed"`
	Steps       string  `json:"steps_rps"`
	StepS       float64 `json:"step_duration_s"`
	WarmupS     float64 `json:"warmup_s"`
	Mix         Mix     `json:"mix"`
	BatchSizes  string  `json:"batch_sizes"`
	Workloads   string  `json:"workloads"`
	StreamRatio float64 `json:"stream_ratio"`
	Scale       float64 `json:"scale"`
	Platform    string  `json:"platform"`
	Procs       int     `json:"procs"`
	Validate    bool    `json:"validate"`
	MaxInflight int     `json:"max_inflight"`
}

// Result is the artifact c3iload emits: the config echo, per-endpoint
// aggregates over every measured window, and the stepped-RPS curve.
type Result struct {
	Config    ConfigEcho              `json:"config"`
	Endpoints map[string]TrafficStats `json:"endpoints"`
	Curve     []StepStats             `json:"curve"`
}

// LatencyFamily flattens the per-endpoint percentiles into the benchgate
// serve_latency family: "<endpoint>|p50_ms" → milliseconds, for every
// endpoint that measured at least one successful request. These keys are
// what a committed serving baseline gates on.
func (r *Result) LatencyFamily() map[string]float64 {
	out := map[string]float64{}
	for _, ep := range sortedEndpoints(r.Endpoints) {
		st := r.Endpoints[ep]
		if st.Requests-st.Errors-st.Rejected <= 0 {
			continue
		}
		out[ep+"|p50_ms"] = st.P50Ms
		out[ep+"|p95_ms"] = st.P95Ms
		out[ep+"|p99_ms"] = st.P99Ms
	}
	return out
}

// WriteJSON writes the artifact as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the artifact to a path ("-" = stdout).
func (r *Result) WriteFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("load: writing %s: %w", path, err)
	}
	return f.Close()
}

// ParseResult reads an artifact back (benchgate's serve_latency extractor).
// An artifact with no measured endpoints is rejected: gating on it would
// compare nothing and pass.
func ParseResult(rd io.Reader) (*Result, error) {
	var r Result
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("load: decoding artifact: %w", err)
	}
	if len(r.Curve) == 0 {
		return nil, fmt.Errorf("load: artifact has no saturation curve")
	}
	if len(r.LatencyFamily()) == 0 {
		return nil, fmt.Errorf("load: artifact measured no successful requests on any endpoint")
	}
	return &r, nil
}
