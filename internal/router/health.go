package router

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// State is one shard's position in the router's health state machine.
//
//	up ──failure──▶ degraded ──DownAfter consecutive failures──▶ down
//	▲                  │                                           │
//	└──────success─────┴───────────────success─────────────────────┘
//
// Degraded shards still take traffic (one failure is usually a blip); down
// shards are bypassed at partition time until a probe or a desperation
// request succeeds.
type State int32

const (
	StateUp State = iota
	StateDegraded
	StateDown
)

// String renders the state for /healthz.
func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// currentState reads the shard's state under its lock.
func (sh *shard) currentState() State {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.state
}

// observe feeds one outcome — probe or routed request — into the shard's
// state machine and mirrors routability to the router_shard_up gauge.
func (rt *Router) observe(sh *shard, ok bool) {
	sh.mu.Lock()
	if ok {
		sh.fails = 0
		sh.state = StateUp
	} else {
		sh.fails++
		if sh.fails >= rt.downAfter {
			sh.state = StateDown
		} else {
			sh.state = StateDegraded
		}
	}
	state := sh.state
	sh.mu.Unlock()
	up := int64(1)
	if state == StateDown {
		up = 0
	}
	rt.metrics.Gauge(MetricShardUp, obs.Labels{"shard": sh.cfg.URL}).Set(up)
}

// Start launches the periodic health probes: every shard's /healthz is
// fetched concurrently each interval, and each verdict drives that shard's
// state machine. Probing is what brings a down shard back — routed traffic
// bypasses it, so without probes a recovered shard would stay black-listed
// until a desperation request happened to land on it.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.probeAll()
		t := time.NewTicker(rt.probeEvery)
		defer t.Stop()
		for {
			select {
			case <-rt.quit:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

// probeAll probes every shard concurrently and waits for the verdicts.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			ctx, cancel := rt.probeCtx()
			defer cancel()
			_, err := sh.client.Healthz(ctx)
			rt.observe(sh, err == nil)
		}(sh)
	}
	wg.Wait()
}

// ShardHealth is one shard's entry in the router's /healthz body.
type ShardHealth struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// ConsecutiveFailures is the state machine's failure streak (0 when up).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Workloads is the shard's configured constraint; empty means all.
	Workloads []string `json:"workloads,omitempty"`
}

// Health is the router's /healthz body: overall status ("ok" when every
// shard is routable, "degraded" when some are down but at least one remains,
// "down" when none are), the per-shard state, and the full metrics snapshot.
type Health struct {
	Status  string        `json:"status"`
	Shards  []ShardHealth `json:"shards"`
	Metrics obs.Snapshot  `json:"metrics"`
}

// handleHealth answers GET /healthz.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{Shards: make([]ShardHealth, 0, len(rt.shards))}
	routable := 0
	for _, sh := range rt.shards {
		sh.mu.Lock()
		state, fails := sh.state, sh.fails
		sh.mu.Unlock()
		if state != StateDown {
			routable++
		}
		h.Shards = append(h.Shards, ShardHealth{
			URL:                 sh.cfg.URL,
			State:               state.String(),
			ConsecutiveFailures: fails,
			Workloads:           sh.cfg.Workloads,
		})
	}
	switch {
	case routable == len(rt.shards):
		h.Status = "ok"
	case routable > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	h.Metrics = rt.metrics.Snapshot()
	serve.WriteJSON(w, http.StatusOK, h)
}
