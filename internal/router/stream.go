package router

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/serve"
)

// handleStream answers POST /v1/run/stream by streaming each shard's
// /v1/run/stream back to the caller: sub-batch events are remapped to the
// original batch's indices and forwarded (and flushed) the moment they
// arrive, so the client sees one merged incremental stream regardless of how
// many shards are computing. A shard whose stream dies mid-flight fails over
// like a batch would — the events it already delivered are final (Specs are
// deterministic, so a record is a record wherever it was computed), and only
// the undelivered remainder is re-partitioned onto the live candidates.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	specs, ok := serve.DecodeBatch(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one event per line

	// emit serializes event lines across the per-shard stream goroutines.
	// Once a write fails the client is gone; remaining events are dropped
	// (the shards still finish and warm their caches).
	var wmu sync.Mutex
	aborted := false
	emit := func(ev serve.StreamEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		if aborted {
			return
		}
		if err := enc.Encode(ev); err != nil {
			aborted = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	excluded := map[*shard]bool{}
	for len(pending) > 0 {
		if r.Context().Err() != nil {
			return
		}
		errs := make([]string, len(specs))
		groups, failovers := rt.plan(specs, pending, excluded, errs)
		for sh, n := range failovers {
			rt.metrics.Counter(MetricShardFailovers, obs.Labels{"shard": sh.cfg.URL}).Add(n)
		}
		// Specs plan could not route are resolved now, as error events.
		for _, i := range pending {
			if errs[i] != "" {
				emit(serve.StreamEvent{Index: i, Error: errs[i]})
			}
		}
		if len(groups) == 0 {
			return
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		var refeed []int
		for sh, idxs := range groups {
			wg.Add(1)
			go func(sh *shard, idxs []int) {
				defer wg.Done()
				sub := make([]run.Spec, len(idxs))
				for j, i := range idxs {
					sub[j] = specs[i]
				}
				seen := make([]bool, len(idxs))
				err := sh.client.RunStream(r.Context(), sub, func(ev serve.StreamEvent) {
					seen[ev.Index] = true
					ev.Index = idxs[ev.Index]
					emit(ev)
				})
				rt.observeShard(sh, err == nil)
				if err != nil {
					// Fail the undelivered remainder over; delivered events
					// are final.
					rt.metrics.Counter(MetricShardFailovers, obs.Labels{"shard": sh.cfg.URL}).Inc()
					mu.Lock()
					excluded[sh] = true
					for j, i := range idxs {
						if !seen[j] {
							refeed = append(refeed, i)
						}
					}
					mu.Unlock()
				}
			}(sh, idxs)
		}
		wg.Wait()
		sort.Ints(refeed)
		pending = refeed
	}
}
