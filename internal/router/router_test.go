package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/router"
	"repro/internal/run"
	"repro/internal/serve"
)

// A cheap deterministic workload so the router tests do not pay for real
// benchmark suites. Registered once for this test process.
func init() {
	suite.MustRegister(&suite.Workload{
		Name: "router-hook", Key: "rh", FileTag: "rh", Title: "Router Test Hook",
		Order: 97, PaperUnits: 1, UnitName: "units/scenario",
		Generate: func(scale float64) []suite.Scenario {
			return []suite.Scenario{hookScenario{}}
		},
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Variants: []*suite.Variant{{
			Name: "sequential", Style: suite.Sequential,
			Defaults: suite.Params{"work": 100},
			Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
				t.Compute(int64(p["work"]))
				return suite.Output{Checksum: uint64(p["work"]) * 3}
			},
		}},
	})
}

type hookScenario struct{}

func (hookScenario) ScenarioName() string { return "rh-1" }
func (hookScenario) Units() int           { return 1 }
func (hookScenario) Warm()                {}

func hookSpec(work int) run.Spec {
	return run.Spec{Workload: "router-hook", Variant: "sequential", Platform: "alpha", Procs: 1,
		Params: suite.Params{"work": work}, Validate: true}
}

// flakyShard is a real serve.Server behind a kill switch: run/stream requests
// past the allowance fail with a 500 before they reach the server, the way a
// SIGKILLed process fails them at the socket. /healthz stays alive so the
// state machine is driven by routed-request outcomes, the harder case.
type flakyShard struct {
	ts      *httptest.Server
	runner  *run.Runner
	allowed atomic.Int64
}

func newFlakyShard(t *testing.T, storeDir string) *flakyShard {
	t.Helper()
	runner := run.NewRunner(0)
	var ds *run.DiskStore
	if storeDir != "" {
		var err error
		ds, err = run.NewDiskStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		runner.SetStore(ds)
	}
	srv := serve.New(runner, serve.Options{WorkersPerWorkload: 4, Store: ds})
	f := &flakyShard{runner: runner}
	f.allowed.Store(math.MaxInt64)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if (r.URL.Path == serve.RunPath || r.URL.Path == serve.StreamPath) && f.allowed.Add(-1) < 0 {
			http.Error(w, "shard killed", http.StatusInternalServerError)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		f.ts.Close()
		srv.Close()
	})
	return f
}

// kill makes every subsequent run/stream request fail.
func (f *flakyShard) kill() { f.allowed.Store(0) }

// failAfter allows n more run/stream requests, then fails the rest.
func (f *flakyShard) failAfter(n int64) { f.allowed.Store(n) }

func (f *flakyShard) url() string { return f.ts.URL }

// newRouter builds a router over the shard URLs. Probes are effectively off
// (hour-long interval) so tests control health observations through traffic.
func newRouter(t *testing.T, opts router.Options) (*router.Router, *httptest.Server, *serve.Client) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Hour
	}
	rt, err := router.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts, &serve.Client{Addr: ts.URL, Retries: -1}
}

func shardConfigs(urls ...string) []router.Shard {
	out := make([]router.Shard, len(urls))
	for i, u := range urls {
		out[i] = router.Shard{URL: u}
	}
	return out
}

// specHomedOn finds a hook Spec whose rendezvous home among urls is home.
func specHomedOn(t *testing.T, home string, urls []string, exclude map[int]bool) (run.Spec, int) {
	t.Helper()
	for work := 1; work < 10000; work++ {
		if exclude[work] {
			continue
		}
		spec := hookSpec(work)
		if router.Rank(spec.Key(), urls)[0] == home {
			return spec, work
		}
	}
	t.Fatal("no spec homes on", home)
	return run.Spec{}, 0
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, opts := range []router.Options{
		{},
		{Shards: shardConfigs("not a url")},
		{Shards: shardConfigs("ftp://host:1")},
		{Shards: shardConfigs("http://h:1", "http://h:1/")},
	} {
		if _, err := router.New(opts); err == nil {
			t.Errorf("New(%+v) accepted a bad config", opts)
		}
	}
}

func TestRendezvousRankStability(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = hookSpec(i + 1).Key()
	}
	two := []string{"http://a:1", "http://b:1"}
	three := []string{"http://a:1", "http://b:1", "http://c:1"}

	// Determinism and totality: same inputs, same total order, regardless of
	// candidate slice order.
	for _, k := range keys {
		r1 := router.Rank(k, three)
		r2 := router.Rank(k, []string{"http://c:1", "http://a:1", "http://b:1"})
		if fmt.Sprint(r1) != fmt.Sprint(r2) {
			t.Fatalf("Rank(%q) depends on candidate order: %v vs %v", k, r1, r2)
		}
	}

	// Adding a shard moves ONLY the keys the newcomer wins; every other key
	// keeps its home (and therefore its warm caches).
	moved := 0
	for _, k := range keys {
		before := router.Rank(k, two)[0]
		after := router.Rank(k, three)[0]
		if after != before {
			if after != "http://c:1" {
				t.Fatalf("key %q moved %s → %s, not to the new shard", k, before, after)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("adding a shard moved %d/%d keys; want a proper subset", moved, len(keys))
	}

	// Removing a shard re-homes only its own keys: for every key not homed on
	// c, the two-shard home equals the three-shard home.
	for _, k := range keys {
		if router.Rank(k, three)[0] == "http://c:1" {
			continue
		}
		if router.Rank(k, three)[0] != router.Rank(k, two)[0] {
			t.Fatalf("key %q re-homed by an unrelated shard's removal", k)
		}
	}

	// Both shards actually take traffic (the hash is not degenerate).
	byHome := map[string]int{}
	for _, k := range keys {
		byHome[router.Rank(k, two)[0]]++
	}
	for _, u := range two {
		if byHome[u] == 0 {
			t.Fatalf("shard %s won no keys out of %d: %v", u, len(keys), byHome)
		}
	}
}

func TestRouterBatchTransparent(t *testing.T) {
	// Two replicas over one record store; through the router, serve.Client
	// sees a single server and the records are byte-identical to local
	// execution. Every distinct spec executes exactly once across the tier.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	_, _, client := newRouter(t, router.Options{Shards: shardConfigs(a.url(), b.url())})

	specs := make([]run.Spec, 8)
	for i := range specs {
		specs[i] = hookSpec(10 * (i + 1))
	}
	specs = append(specs, hookSpec(10)) // duplicate: dedup must survive routing
	recs, err := client.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Key != recs[8].Key || recs[0].ModelSeconds != recs[8].ModelSeconds {
		t.Error("identical specs diverged across the router")
	}
	if total := a.runner.Executions() + b.runner.Executions(); total != 8 {
		t.Errorf("9 specs (8 distinct) executed %d times across shards", total)
	}
	if a.runner.Executions() == 0 || b.runner.Executions() == 0 {
		t.Errorf("partitioning is degenerate: %d/%d executions",
			a.runner.Executions(), b.runner.Executions())
	}
	local, err := run.NewRunner(0).Run(context.Background(), specs[0])
	if err != nil {
		t.Fatal(err)
	}
	remote := recs[0]
	local.HostElapsed, remote.HostElapsed = 0, 0
	lb, _ := json.Marshal(local)
	rb, _ := json.Marshal(remote)
	if !bytes.Equal(lb, rb) {
		t.Errorf("routed record differs from local:\n  local  %s\n  routed %s", lb, rb)
	}
}

func TestRouterFailover(t *testing.T) {
	// A shard dies mid-batch: the batch still completes through the replica,
	// no spec executes twice, and the failover is visible in the metrics.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	urls := []string{a.url(), b.url()}
	_, ts, client := newRouter(t, router.Options{Shards: shardConfigs(urls...)})

	// Build a batch with at least one spec homed on each shard.
	used := map[int]bool{}
	var specs []run.Spec
	for i := 0; i < 3; i++ {
		for _, home := range urls {
			spec, work := specHomedOn(t, home, urls, used)
			used[work] = true
			specs = append(specs, spec)
		}
	}

	a.kill()
	recs, err := client.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatalf("batch failed despite a live replica: %v", err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("got %d records for %d specs", len(recs), len(specs))
	}
	// The dead shard executed nothing; the replica executed every distinct
	// spec exactly once — failover re-partitioned, it did not duplicate.
	if a.runner.Executions() != 0 {
		t.Errorf("killed shard executed %d specs", a.runner.Executions())
	}
	if got := b.runner.Executions(); got != int64(len(specs)) {
		t.Errorf("replica executed %d, want %d", got, len(specs))
	}

	// Metrics: failovers are charged to the dead shard, and its request
	// counter shows the error outcome.
	body := fetchMetrics(t, ts)
	failKey := fmt.Sprintf("router_shard_failovers_total{shard=%q}", a.url())
	if !strings.Contains(body, failKey) {
		t.Errorf("metrics missing %s:\n%s", failKey, body)
	}
	errKey := fmt.Sprintf("router_shard_requests_total{outcome=\"error\",shard=%q} 1", a.url())
	if !strings.Contains(body, errKey) {
		t.Errorf("metrics missing %s:\n%s", errKey, body)
	}

	// The shard is degraded after one failed sub-batch (DownAfter defaults to
	// 3) but still routable; /healthz says so.
	h := fetchRouterHealth(t, ts)
	if h.Status != "ok" {
		t.Errorf("router health %q, want ok (degraded shards are routable)", h.Status)
	}
	stateOf := map[string]string{}
	for _, sh := range h.Shards {
		stateOf[sh.URL] = sh.State
	}
	if stateOf[a.url()] != "degraded" || stateOf[b.url()] != "up" {
		t.Errorf("shard states %v, want a degraded / b up", stateOf)
	}
}

func TestRouterShardDownAndNoCandidates(t *testing.T) {
	// With DownAfter=1 a single failure turns the shard down: router_shard_up
	// drops to 0 and /healthz reports degraded. Kill the last replica too and
	// specs come back with per-spec routing errors, not a failed batch.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	_, ts, client := newRouter(t, router.Options{
		Shards:    shardConfigs(a.url(), b.url()),
		DownAfter: 1,
	})

	a.kill()
	if _, err := client.RunAll(context.Background(), []run.Spec{hookSpec(42)}); err != nil {
		t.Fatalf("one dead shard must not fail the batch: %v", err)
	}
	if a.runner.Executions() != 0 || b.runner.Executions() == 0 {
		t.Errorf("executions a=%d b=%d after a killed", a.runner.Executions(), b.runner.Executions())
	}
	// Spec 42 may not have homed on a, so force an observation with a spec
	// that does; one failure at DownAfter=1 turns the shard down.
	spec, _ := specHomedOn(t, a.url(), []string{a.url(), b.url()}, nil)
	if _, err := client.RunAll(context.Background(), []run.Spec{spec}); err != nil {
		t.Fatal(err)
	}
	body := fetchMetrics(t, ts)
	upKey := fmt.Sprintf("router_shard_up{shard=%q} 0", a.url())
	if !strings.Contains(body, upKey) {
		t.Errorf("metrics missing %s:\n%s", upKey, body)
	}
	if h := fetchRouterHealth(t, ts); h.Status != "degraded" {
		t.Errorf("router health %q, want degraded (one shard down)", h.Status)
	}

	b.kill()
	br, err := client.RunBatch(context.Background(), []run.Spec{hookSpec(4242)})
	if err != nil {
		t.Fatalf("all-dead tier must still answer positionally: %v", err)
	}
	if br.Records[0] != nil || !strings.Contains(br.Errors[0], "router: no live shard serves workload") {
		t.Errorf("all-dead tier: record %v, error %q", br.Records[0], br.Errors[0])
	}
}

func TestRouterWorkloadConstraints(t *testing.T) {
	// A shard constrained to a workload set never sees other workloads, and a
	// workload no shard serves is a per-spec error.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	_, _, client := newRouter(t, router.Options{Shards: []router.Shard{
		{URL: a.url(), Workloads: []string{"some-other-workload"}},
		{URL: b.url(), Workloads: []string{"router-hook"}},
	}})
	br, err := client.RunBatch(context.Background(), []run.Spec{
		hookSpec(77),
		{Workload: "unserved", Variant: "x", Platform: "alpha", Procs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Errors[0] != "" || br.Records[0] == nil {
		t.Errorf("constrained spec failed: %q", br.Errors[0])
	}
	if a.runner.Executions() != 0 || b.runner.Executions() != 1 {
		t.Errorf("constraint ignored: executions a=%d b=%d", a.runner.Executions(), b.runner.Executions())
	}
	if br.Records[1] != nil || !strings.Contains(br.Errors[1], `workload "unserved"`) {
		t.Errorf("unserved workload: record %v, error %q", br.Records[1], br.Errors[1])
	}
}

func TestRouterStream(t *testing.T) {
	// The router's /v1/run/stream merges the shards' streams: every index
	// arrives exactly once and the records match the batch endpoint's.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	_, _, client := newRouter(t, router.Options{Shards: shardConfigs(a.url(), b.url())})

	specs := make([]run.Spec, 6)
	for i := range specs {
		specs[i] = hookSpec(20 * (i + 1))
	}
	got := make([]*run.Record, len(specs))
	err := client.RunStream(context.Background(), specs, func(ev serve.StreamEvent) {
		if ev.Error != "" {
			t.Errorf("spec %d streamed error %q", ev.Index, ev.Error)
			return
		}
		got[ev.Index] = ev.Record
	})
	if err != nil {
		t.Fatal(err)
	}
	br, err := client.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i] == nil {
			t.Fatalf("spec %d never streamed", i)
		}
		sb, _ := json.Marshal(got[i])
		bb, _ := json.Marshal(br.Records[i])
		if !bytes.Equal(sb, bb) {
			t.Errorf("spec %d: streamed record differs from batch record:\n  stream %s\n  batch  %s", i, sb, bb)
		}
	}
}

func TestRouterStreamFailover(t *testing.T) {
	// A shard that fails its stream loses only the undelivered remainder: the
	// merged stream still yields every index exactly once (client.RunStream
	// verifies exactly-once itself).
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	urls := []string{a.url(), b.url()}
	_, ts, client := newRouter(t, router.Options{Shards: shardConfigs(urls...)})

	used := map[int]bool{}
	var specs []run.Spec
	for i := 0; i < 2; i++ {
		for _, home := range urls {
			spec, work := specHomedOn(t, home, urls, used)
			used[work] = true
			specs = append(specs, spec)
		}
	}
	a.kill()
	delivered := 0
	err := client.RunStream(context.Background(), specs, func(ev serve.StreamEvent) {
		if ev.Error != "" {
			t.Errorf("spec %d streamed error %q", ev.Index, ev.Error)
		}
		delivered++
	})
	if err != nil {
		t.Fatalf("stream failed despite a live replica: %v", err)
	}
	if delivered != len(specs) {
		t.Errorf("stream delivered %d of %d events", delivered, len(specs))
	}
	if a.runner.Executions() != 0 {
		t.Errorf("killed shard executed %d specs", a.runner.Executions())
	}
	body := fetchMetrics(t, ts)
	failKey := fmt.Sprintf("router_shard_failovers_total{shard=%q}", a.url())
	if !strings.Contains(body, failKey) {
		t.Errorf("metrics missing %s:\n%s", failKey, body)
	}
}

func TestRouterProbesRecoverShard(t *testing.T) {
	// Probes bring a down shard back: kill it, drive it down, revive it, and
	// the next probe marks it up again.
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	urls := []string{a.url(), b.url()}
	rt, _, client := newRouter(t, router.Options{
		Shards:        shardConfigs(urls...),
		DownAfter:     1,
		ProbeInterval: 20 * time.Millisecond,
	})
	rt.Start()

	a.kill()
	spec, _ := specHomedOn(t, a.url(), urls, nil)
	if _, err := client.RunAll(context.Background(), []run.Spec{spec}); err != nil {
		t.Fatal(err)
	}
	// a is down. Revive it: probes hit /healthz (alive throughout), and any
	// probe success resets the state machine to up.
	a.failAfter(math.MaxInt64)
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := client.Healthz(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never recovered via probes")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterEndpointLabels(t *testing.T) {
	// The router's request counters classify its real endpoints; junk paths
	// fold into "other".
	dir := t.TempDir()
	a := newFlakyShard(t, dir)
	_, ts, client := newRouter(t, router.Options{Shards: shardConfigs(a.url())})
	if _, err := client.RunAll(context.Background(), []run.Spec{hookSpec(5)}); err != nil {
		t.Fatal(err)
	}
	if err := client.RunStream(context.Background(), []run.Spec{hookSpec(6)}, func(serve.StreamEvent) {}); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/no/such")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := fetchMetrics(t, ts)
	for _, want := range []string{
		`router_requests_total{code="2xx",path="/v1/run"} 1`,
		`router_requests_total{code="2xx",path="/v1/run/stream"} 1`,
		`router_requests_total{code="4xx",path="other"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestExperimentThroughRouterMatchesLocal(t *testing.T) {
	// The acceptance check: a c3ibench-driven experiment through the router —
	// two replicas over one store, one of which dies mid-sweep — produces
	// records and tables identical to local execution.
	if testing.Short() {
		t.Skip("runs a real experiment twice")
	}
	dir := t.TempDir()
	a, b := newFlakyShard(t, dir), newFlakyShard(t, dir)
	_, ts, _ := newRouter(t, router.Options{Shards: shardConfigs(a.url(), b.url())})
	client := &serve.Client{Addr: ts.URL}
	scales := map[string]float64{experiments.TA: 0.02}

	exp, err := experiments.Get("table5")
	if err != nil {
		t.Fatal(err)
	}
	// The shard dies after its second request, mid-sweep.
	a.failAfter(2)
	remote, err := exp.Run(experiments.Config{Scales: scales, Executor: client})
	if err != nil {
		t.Fatal(err)
	}
	local, err := exp.Run(experiments.Config{Scales: scales})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Records) == 0 || len(remote.Records) != len(local.Records) {
		t.Fatalf("record counts differ: remote %d, local %d", len(remote.Records), len(local.Records))
	}
	for i := range local.Records {
		l, r := local.Records[i], remote.Records[i]
		l.HostElapsed, r.HostElapsed = 0, 0
		lb, _ := json.Marshal(l)
		rb, _ := json.Marshal(r)
		if !bytes.Equal(lb, rb) {
			t.Errorf("record %d differs:\n  local  %s\n  remote %s", i, lb, rb)
		}
	}
	var lt, rt []string
	for _, tb := range local.Tables {
		lt = append(lt, tb.Render())
	}
	for _, tb := range remote.Tables {
		rt = append(rt, tb.Render())
	}
	if fmt.Sprint(lt) != fmt.Sprint(rt) {
		t.Error("rendered tables differ between local and routed execution")
	}
}

// fetchMetrics GETs the router's Prometheus exposition.
func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", serve.MetricsPath, resp.StatusCode)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// fetchRouterHealth GETs and decodes the router's /healthz.
func fetchRouterHealth(t *testing.T, ts *httptest.Server) router.Health {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + serve.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h router.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}
