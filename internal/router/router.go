// Package router is the sharded, replicated front tier over c3iserve: an
// http.Handler speaking the same wire API as internal/serve (POST /v1/run,
// POST /v1/run/stream, GET /healthz, GET /metrics) that partitions each
// batch's Specs across a configured set of c3iserve shard URLs and fans the
// sub-batches out concurrently. Shards may be constrained to a workload set
// (partitioning suite *memory*, not just goroutine warmth); within a Spec's
// candidate shards the router picks by rendezvous hashing on the canonical
// Spec key, so replicas split a workload's key space stably — adding a shard
// moves only the keys the new shard wins, everything else keeps its home and
// its warm caches.
//
// The router owns shard health: periodic /healthz probes (and every routed
// request) feed a per-shard up/degraded/down state machine, a sub-batch sent
// to a shard that fails is re-partitioned onto the remaining live candidates
// (failover — safe because Specs are deterministic and shards deduplicate
// through their caches and the shared record store), and the whole tier is
// observable through router_shard_* metrics. Because the router serves the
// identical API, serve.Client — and therefore `c3ibench -remote` — cannot
// tell a router from a single server: the Records that come back are
// byte-identical either way.
package router

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/serve"
)

// Metric names the router publishes on its /metrics endpoint. The CI router
// smoke job greps MetricShardFailovers, so these are part of the observable
// API.
const (
	// MetricShardRequests counts sub-batch requests per shard, labeled
	// {shard=..., outcome="ok"|"error"}.
	MetricShardRequests = "router_shard_requests_total"
	// MetricShardFailovers counts sub-batches a shard should have served but
	// could not — either it failed the request in flight or it was already
	// down at routing time — labeled {shard=...} by the bypassed shard.
	MetricShardFailovers = "router_shard_failovers_total"
	// MetricShardUp gauges routability per shard: 1 while up or degraded,
	// 0 once the state machine declares it down.
	MetricShardUp = "router_shard_up"
	// MetricRequests counts finished router HTTP requests, labeled
	// {path=..., code=...} like the serving tier's serve_requests_total.
	MetricRequests = "router_requests_total"
	// MetricRequestSeconds is the router's per-endpoint latency histogram.
	MetricRequestSeconds = "router_request_seconds"
)

// Shard configures one backend c3iserve process.
type Shard struct {
	// URL is the shard's base URL ("http://host:port").
	URL string
	// Workloads constrains the shard to a set of workload names; empty means
	// the shard serves every workload. Constraining shards partitions suite
	// memory: only the shards a workload routes to ever generate (and hold)
	// its memoized scenario suites.
	Workloads []string
}

// Options configures a Router.
type Options struct {
	// Shards is the backend set; at least one, URLs unique.
	Shards []Shard
	// ProbeInterval spaces the health probes Start launches; <= 0 means 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe; <= 0 means 2s.
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive failures (probe or request) turn a
	// shard from degraded to down; < 1 means 3. The first failure always
	// degrades; any success resets to up.
	DownAfter int
	// ShardTimeout bounds each sub-batch request to a shard; 0 means none
	// (a cold paper-scale sub-batch legitimately runs for minutes).
	ShardTimeout time.Duration
	// HTTP overrides the transport every shard client uses (tests inject
	// httptest transports here). Nil means the default per-client behavior.
	HTTP *http.Client
	// Metrics receives every router_* series; nil means a fresh registry.
	Metrics *obs.Registry
}

// shard is one backend plus its health state.
type shard struct {
	cfg       Shard
	client    *serve.Client
	workloads map[string]bool // nil = serves everything

	mu    sync.Mutex
	fails int
	state State
}

// serves reports whether the shard is configured for the workload.
func (sh *shard) serves(workload string) bool {
	return sh.workloads == nil || sh.workloads[workload]
}

// Router fans Spec batches out over the shard set. Create with New, start
// the health probes with Start, and Close when done. Safe for concurrent
// use; it is an http.Handler.
type Router struct {
	shards       []*shard
	downAfter    int
	probeEvery   time.Duration
	probeTimeout time.Duration
	shardTimeout time.Duration
	metrics      *obs.Registry
	mux          *http.ServeMux

	closeOnce sync.Once
	quit      chan struct{}
	wg        sync.WaitGroup
}

// New builds a Router over the configured shards. Probes do not run until
// Start; until the first probe (or request) touches a shard it is assumed
// up, so a router is routable the moment it is constructed.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	rt := &Router{
		downAfter:    opts.DownAfter,
		probeEvery:   opts.ProbeInterval,
		probeTimeout: opts.ProbeTimeout,
		shardTimeout: opts.ShardTimeout,
		metrics:      metrics,
		quit:         make(chan struct{}),
	}
	if rt.downAfter < 1 {
		rt.downAfter = 3
	}
	if rt.probeEvery <= 0 {
		rt.probeEvery = 2 * time.Second
	}
	if rt.probeTimeout <= 0 {
		rt.probeTimeout = 2 * time.Second
	}
	seen := map[string]bool{}
	for _, cfg := range opts.Shards {
		cfg.URL = strings.TrimRight(cfg.URL, "/")
		u, err := url.Parse(cfg.URL)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return nil, fmt.Errorf("router: shard %q is not an http(s) base URL", cfg.URL)
		}
		if seen[cfg.URL] {
			return nil, fmt.Errorf("router: duplicate shard %q", cfg.URL)
		}
		seen[cfg.URL] = true
		sh := &shard{
			cfg: cfg,
			// One quick in-place retry, then the router's failover to a
			// replica IS the retry policy — a dead shard should cost
			// milliseconds, not a full client backoff ladder.
			client: &serve.Client{
				Addr:         cfg.URL,
				HTTP:         opts.HTTP,
				Timeout:      opts.ShardTimeout,
				Retries:      1,
				RetryBackoff: 50 * time.Millisecond,
				Metrics:      metrics,
			},
		}
		if len(cfg.Workloads) > 0 {
			sh.workloads = map[string]bool{}
			for _, w := range cfg.Workloads {
				sh.workloads[w] = true
			}
		}
		rt.shards = append(rt.shards, sh)
		metrics.Gauge(MetricShardUp, obs.Labels{"shard": cfg.URL}).Set(1)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc(serve.RunPath, rt.handleRun)
	rt.mux.HandleFunc(serve.StreamPath, rt.handleStream)
	rt.mux.HandleFunc(serve.HealthPath, rt.handleHealth)
	rt.mux.HandleFunc(serve.MetricsPath, rt.handleMetrics)
	return rt, nil
}

// Metrics returns the router's registry (shard health, failovers, request
// series, plus the shard clients' attempt counters).
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// ServeHTTP implements http.Handler with the same request middleware shape
// as the serving tier: latency histogram and a status-class request counter
// per endpoint.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	labels := obs.Labels{"path": endpointLabel(r.URL.Path)}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	rt.mux.ServeHTTP(sw, r)
	rt.metrics.Histogram(MetricRequestSeconds, labels, obs.DefLatencyBuckets).
		Observe(time.Since(start).Seconds())
	rt.metrics.Counter(MetricRequests,
		obs.Labels{"path": labels["path"], "code": statusClass(sw.status)}).Inc()
}

// endpointLabel folds a request path onto the router's bounded label set.
func endpointLabel(path string) string {
	switch path {
	case serve.RunPath, serve.StreamPath, serve.HealthPath, serve.MetricsPath:
		return path
	}
	return "other"
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass folds a status code to its class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Close stops the probe loop. It does not touch the shards — they are
// independent processes.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.quit) })
	rt.wg.Wait()
}

// --- Rendezvous partitioning ------------------------------------------------

// Rank orders candidate shard URLs for a canonical Spec key by rendezvous
// (highest-random-weight) hashing: each (shard, key) pair is scored
// independently, so removing a shard re-homes only the keys it was serving
// and adding one moves only the keys the newcomer wins. Ties break by URL so
// the order is total and deterministic. Exported for the stability tests —
// this is the routing function, not a lookalike.
func Rank(key string, shards []string) []string {
	out := append([]string(nil), shards...)
	scores := make(map[string]uint64, len(out))
	for _, s := range out {
		scores[s] = rendezvousScore(s, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if scores[out[i]] != scores[out[j]] {
			return scores[out[i]] > scores[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// rendezvousScore hashes one (shard, key) pair with FNV-1a 64; the zero byte
// separator keeps ("ab","c") and ("a","bc") from colliding by construction.
func rendezvousScore(shardURL, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shardURL))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// candidates returns the Spec's shard preference order: every shard
// configured for its workload, ranked by rendezvous score on the canonical
// Spec key.
func (rt *Router) candidates(spec run.Spec) []*shard {
	var urls []string
	byURL := make(map[string]*shard, len(rt.shards))
	for _, sh := range rt.shards {
		if sh.serves(spec.Workload) {
			urls = append(urls, sh.cfg.URL)
			byURL[sh.cfg.URL] = sh
		}
	}
	ranked := Rank(spec.Key(), urls)
	out := make([]*shard, len(ranked))
	for i, u := range ranked {
		out[i] = byURL[u]
	}
	return out
}

// assign picks the shard a Spec routes to this round: the best-ranked
// candidate that is not excluded and not down, falling back to the best
// non-excluded candidate of any state (a "down" verdict may be stale, and a
// failed desperation attempt only grows excluded — the loop still
// terminates). It returns nil when every candidate is excluded or none
// exist. preferred is the health-blind first choice; when the pick differs,
// the caller records a failover against preferred.
func (rt *Router) assign(spec run.Spec, excluded map[*shard]bool) (pick, preferred *shard) {
	var desperation *shard
	for _, sh := range rt.candidates(spec) {
		if excluded[sh] {
			continue
		}
		if preferred == nil {
			preferred = sh
		}
		if desperation == nil {
			desperation = sh
		}
		if sh.currentState() != StateDown {
			return sh, preferred
		}
	}
	return desperation, preferred
}

// --- Batch execution ---------------------------------------------------------

// runBatch partitions the batch, fans sub-batches out to their shards
// concurrently, and keeps re-partitioning failed sub-batches onto the
// remaining candidates until every Spec has a record, a per-spec error, or
// no shard left to try. Failed Specs never fail the batch — the response is
// positional, exactly like a single c3iserve's.
func (rt *Router) runBatch(ctx context.Context, specs []run.Spec) serve.BatchResponse {
	resp := serve.BatchResponse{
		Records: make([]*run.Record, len(specs)),
		Errors:  make([]string, len(specs)),
	}
	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	excluded := map[*shard]bool{}
	for len(pending) > 0 {
		groups, failovers := rt.plan(specs, pending, excluded, resp.Errors)
		for sh, n := range failovers {
			rt.metrics.Counter(MetricShardFailovers, obs.Labels{"shard": sh.cfg.URL}).Add(n)
		}
		if len(groups) == 0 {
			break
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		var refeed []int
		for sh, idxs := range groups {
			wg.Add(1)
			go func(sh *shard, idxs []int) {
				defer wg.Done()
				sub := make([]run.Spec, len(idxs))
				for j, i := range idxs {
					sub[j] = specs[i]
				}
				br, err := sh.client.RunBatch(ctx, sub)
				rt.observeShard(sh, err == nil)
				if err != nil {
					// The whole sub-batch fails over: exclude the shard for
					// this batch and re-partition its Specs.
					rt.metrics.Counter(MetricShardFailovers, obs.Labels{"shard": sh.cfg.URL}).Inc()
					mu.Lock()
					excluded[sh] = true
					refeed = append(refeed, idxs...)
					mu.Unlock()
					return
				}
				mu.Lock()
				for j, i := range idxs {
					resp.Records[i] = br.Records[j]
					resp.Errors[i] = br.Errors[j]
				}
				mu.Unlock()
			}(sh, idxs)
		}
		wg.Wait()
		sort.Ints(refeed)
		pending = refeed
	}
	return resp
}

// plan partitions the pending Spec indices into per-shard groups. Specs with
// no remaining shard get their error written into errs directly; Specs whose
// health-blind preferred shard was bypassed (down) are tallied per bypassed
// shard in the returned failover map.
func (rt *Router) plan(specs []run.Spec, pending []int, excluded map[*shard]bool, errs []string) (map[*shard][]int, map[*shard]int64) {
	groups := map[*shard][]int{}
	failovers := map[*shard]int64{}
	for _, i := range pending {
		pick, preferred := rt.assign(specs[i], excluded)
		if pick == nil {
			errs[i] = fmt.Sprintf("router: no live shard serves workload %q (%d shards excluded)",
				specs[i].Workload, len(excluded))
			continue
		}
		if pick != preferred {
			failovers[preferred]++
		}
		groups[pick] = append(groups[pick], i)
	}
	return groups, failovers
}

// observeShard feeds one request outcome into the shard's state machine and
// request counter.
func (rt *Router) observeShard(sh *shard, ok bool) {
	outcome := "ok"
	if !ok {
		outcome = "error"
	}
	rt.metrics.Counter(MetricShardRequests, obs.Labels{"shard": sh.cfg.URL, "outcome": outcome}).Inc()
	rt.observe(sh, ok)
}

// handleRun answers POST /v1/run with the same positional contract as a
// single c3iserve — the router is transparent to serve.Client.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	specs, ok := serve.DecodeBatch(w, r)
	if !ok {
		return
	}
	serve.WriteJSON(w, http.StatusOK, rt.runBatch(r.Context(), specs))
}

// handleMetrics answers GET /metrics with the Prometheus text exposition of
// every router_* and serve_client_* series.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.WritePrometheus(w)
}

// shardTimeoutCtx derives the context a probe runs under.
func (rt *Router) probeCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), rt.probeTimeout)
}
