package run

import (
	"strings"
	"testing"

	_ "repro/internal/c3i/hypothesis" // register the gridded workloads
	_ "repro/internal/c3i/plottrack"
	"repro/internal/c3i/suite"
)

func TestGridSpecsExpandsDeclaredGrid(t *testing.T) {
	pts, err := GridSpecs("hypothesis-testing", "", "tera", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := suite.Lookup("hypothesis-testing")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != w.Grid.NumPoints() {
		t.Fatalf("%d grid specs for %d declared points", len(pts), w.Grid.NumPoints())
	}
	keys := map[string]bool{}
	labels := map[string]bool{}
	for i, gp := range pts {
		if gp.Spec.Workload != "hypothesis-testing" {
			t.Fatalf("point %d: workload %q", i, gp.Spec.Workload)
		}
		// Empty variant selects the workload's reference.
		if gp.Spec.Variant != w.Reference {
			t.Errorf("point %d: variant %q, want reference %q", i, gp.Spec.Variant, w.Reference)
		}
		// Grid specs always validate: every sweep record carries the
		// checksum the conformance contract is stated over.
		if !gp.Spec.Validate {
			t.Errorf("point %d (%s): Validate not set", i, gp.Label)
		}
		// The axes landed where their kinds say: scale on Spec.Scale, params
		// in Spec.Params, net on Spec.NetLatencyMult.
		if gp.Spec.Scale != gp.Point["scale"] {
			t.Errorf("point %s: Scale %g != axis %g", gp.Label, gp.Spec.Scale, gp.Point["scale"])
		}
		if got := gp.Spec.Params["gate"]; got != int(gp.Point["gate"]) {
			t.Errorf("point %s: gate param %d != axis %g", gp.Label, got, gp.Point["gate"])
		}
		if got := gp.Spec.Params["prune"]; got != int(gp.Point["prune"]) {
			t.Errorf("point %s: prune param %d != axis %g", gp.Label, got, gp.Point["prune"])
		}
		if k := gp.Spec.Key(); keys[k] {
			t.Errorf("duplicate spec key %s", k)
		} else {
			keys[k] = true
		}
		if labels[gp.Label] {
			t.Errorf("duplicate point label %s", gp.Label)
		} else {
			labels[gp.Label] = true
		}
	}
	// Canonical order: row-major over the declared axes, first axis slowest —
	// the first point is every axis at its first declared value, the last at
	// its last.
	first, last := pts[0], pts[len(pts)-1]
	for _, a := range w.Grid.Axes {
		if first.Point[a.Name] != a.Values[0] {
			t.Errorf("first point %s: axis %s = %g, want %g", first.Label, a.Name, first.Point[a.Name], a.Values[0])
		}
		if lv := a.Values[len(a.Values)-1]; last.Point[a.Name] != lv {
			t.Errorf("last point %s: axis %s = %g, want %g", last.Label, a.Name, last.Point[a.Name], lv)
		}
	}
}

func TestGridSpecsNetAxis(t *testing.T) {
	pts, err := GridSpecs("hypothesis-testing", "fine", "tera", 2,
		map[string][]float64{"scale": {0.05}, "gate": {32}, "prune": {250}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want the 3 net values", len(pts))
	}
	// net=0 is the calibrated default (no override); nonzero values land on
	// NetLatencyMult with the bandwidth side filled from the calibration.
	if pts[0].Spec.NetLatencyMult != 0 || pts[0].Spec.NetBandwidthEff != 0 {
		t.Errorf("net=0 point carries overrides: %+v", pts[0].Spec)
	}
	if pts[1].Spec.NetLatencyMult != 1 || pts[2].Spec.NetLatencyMult != 2.5 {
		t.Errorf("net override points: %g, %g", pts[1].Spec.NetLatencyMult, pts[2].Spec.NetLatencyMult)
	}
	for _, gp := range pts[1:] {
		if gp.Spec.NetBandwidthEff == 0 {
			t.Errorf("point %s: bandwidth side not filled from calibration", gp.Label)
		}
	}
	// A nonzero net value is tera-only; sweeping the net axis on another
	// platform must fail loudly, not silently drop the axis.
	if _, err := GridSpecs("hypothesis-testing", "fine", "alpha", 1, nil); err == nil ||
		!strings.Contains(err.Error(), "tera") {
		t.Errorf("net axis on alpha: err = %v", err)
	}
	// Restricted to the calibrated point it runs anywhere.
	if _, err := GridSpecs("hypothesis-testing", "fine", "alpha", 1,
		map[string][]float64{"net": {0}}); err != nil {
		t.Errorf("net=0 on alpha: %v", err)
	}
}

func TestGridSpecsErrors(t *testing.T) {
	if _, err := GridSpecs("no-such-workload", "", "tera", 2, nil); err == nil {
		t.Error("unknown workload did not fail")
	}
	// A workload without a declared grid cannot be swept.
	if _, err := GridSpecs("threat-analysis", "", "tera", 2, nil); err == nil ||
		!strings.Contains(err.Error(), "declares no scenario grid") {
		t.Errorf("gridless workload: err = %v", err)
	}
	if _, err := GridSpecs("hypothesis-testing", "", "tera", 2,
		map[string][]float64{"gate": {17}}); err == nil ||
		!strings.Contains(err.Error(), "no declared value") {
		t.Errorf("undeclared restriction: err = %v", err)
	}
	if _, err := GridSpecs("hypothesis-testing", "no-such-variant", "tera", 2, nil); err == nil {
		t.Error("unknown variant did not fail")
	}
}

func TestGridSpecsPlotTrack(t *testing.T) {
	pts, err := GridSpecs("plot-track-assignment", "fine", "tera", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points, want 3 scales × 2 gates", len(pts))
	}
	for _, gp := range pts {
		if gp.Spec.Variant != "fine" {
			t.Errorf("point %s: variant %q", gp.Label, gp.Spec.Variant)
		}
		// Normalization spelled out the fine variant's other tunables.
		if gp.Spec.Params["threads"] == 0 {
			t.Errorf("point %s: normalized params missing variant defaults: %v", gp.Label, gp.Spec.Params)
		}
	}
}
