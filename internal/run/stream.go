package run

import (
	"context"
	"fmt"
	"sync"
)

// StreamEvent is one incrementally delivered result of a streamed Spec batch:
// Index addresses the submitted batch positionally, and exactly one of Record
// and Error is set — the same per-spec contract as a positional batch
// response, delivered as each Spec completes rather than at batch end. It is
// also the wire format of the serving tier's NDJSON /v1/run/stream lines
// (one JSON object per line), which is why the fields carry JSON tags here:
// local and remote streams speak the same event.
type StreamEvent struct {
	Index  int     `json:"index"`
	Record *Record `json:"record,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// StreamExecutor is the streaming counterpart of Executor: it executes a Spec
// batch and invokes fn once per StreamEvent as each Spec's Record completes,
// in completion order, exactly once per submitted Spec. fn is never called
// concurrently with itself. The returned error covers transport and protocol
// problems only — per-spec failures arrive as error events — so a consumer
// written against this interface (c3iload's stream traffic, a progress UI)
// selects batch vs. stream transport by choosing Executor or StreamExecutor,
// not by naming a concrete client. The local *Runner implements it; so does
// serve.Client, which streams from a c3iserve or c3irouter endpoint.
type StreamExecutor interface {
	RunStream(ctx context.Context, specs []Spec, fn func(StreamEvent)) error
}

// Event renders a completed Spec's outcome as its StreamEvent — the one
// constructor both the local Runner and the serving tier use, so a failed
// Spec always travels as a non-empty Error with a nil Record and a
// successful one as the reverse.
func Event(index int, rec Record, err error) StreamEvent {
	if err != nil {
		return StreamEvent{Index: index, Error: err.Error()}
	}
	return StreamEvent{Index: index, Record: &rec}
}

// RunStream executes the Specs through the Runner's worker pool (the same
// fan-out bound as RunAll) and delivers one StreamEvent per Spec as it
// completes, serially, in completion order. Once ctx is cancelled,
// not-yet-started Specs fail fast with the context error — as error events,
// so the exactly-once-per-Spec contract holds even for an abandoned batch.
func (r *Runner) RunStream(ctx context.Context, specs []Spec, fn func(StreamEvent)) error {
	if len(specs) == 0 {
		return nil
	}
	jobs := r.jobs
	if jobs > len(specs) {
		jobs = len(specs)
	}
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan int)
	events := make(chan StreamEvent, len(specs))
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rec, err := r.Run(ctx, specs[i])
				if err != nil {
					err = fmt.Errorf("spec %d (%s): %w", i, specs[i].Key(), err)
				}
				events <- Event(i, rec, err)
			}
		}()
	}
	go func() {
		for i := range specs {
			work <- i
		}
		close(work)
		wg.Wait()
		close(events)
	}()
	for ev := range events {
		fn(ev)
	}
	return nil
}
