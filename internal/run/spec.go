// Package run is the typed execution API between the workload registry and
// everything that wants numbers out of it: a Spec is a serializable,
// individually addressable description of one benchmark run (workload ×
// variant × platform × scale × params), and a Record is the machine-readable
// result of executing it (simulated seconds, checksum, overhead, engine
// statistics). The Runner owns the memoized scenario suites and single-flight
// result caches that used to be private to internal/experiments, so any
// consumer — the experiment tables, the CLIs, the benchmarks, CI — executes
// runs through one shared, deduplicated path, and a Record re-executed from
// its own Spec reproduces the same simulated seconds and checksum.
//
// This is the Task Bench separation of task description from runner: adding
// a workload or a consumer is O(1) integration work, and a serialized
// Spec/Record pair is the wire format any future serving or sharding layer
// would speak.
package run

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/platforms"
)

// Spec describes one benchmark run. The zero values of Scale and Params are
// meaningful: Normalized fills them from the registry (the workload's default
// scale, the variant's default params), so two Specs that differ only in how
// explicitly they spell the defaults share one canonical Key.
type Spec struct {
	// Workload is a registered workload name ("threat-analysis").
	Workload string `json:"workload"`
	// Variant is one of the workload's program styles ("coarse").
	Variant string `json:"variant"`
	// Platform is a paper platform key ("alpha", "ppro", "exemplar", "tera").
	Platform string `json:"platform"`
	// Procs is the processor count the platform model is built with.
	Procs int `json:"procs"`
	// Scale is the fraction of the paper-scale workload to run; non-positive
	// means the workload's registered default.
	Scale float64 `json:"scale,omitempty"`
	// Params are the variant's tunables, merged over the variant defaults.
	Params suite.Params `json:"params,omitempty"`
	// Validate requests a fully-computed, checksummed output (the registry's
	// ValidateParam); without it variants may run in charge-only mode.
	Validate bool `json:"validate,omitempty"`
	// NetLatencyMult and NetBandwidthEff, when non-zero, override the Tera
	// MTA's network-maturity factors (the ablations' and projections' knob);
	// they are only valid with Platform "tera".
	NetLatencyMult  float64 `json:"net_latency_mult,omitempty"`
	NetBandwidthEff float64 `json:"net_bandwidth_eff,omitempty"`
}

// Normalized resolves the Spec against the registries and returns its
// canonical form: defaults merged into Params, Scale defaulted, the reserved
// validate param folded into the Validate flag. Two Specs describing the same
// run normalize to equal values (and therefore equal Keys). Normalizing an
// already-normalized Spec is the identity.
func (s Spec) Normalized() (Spec, error) {
	w, err := suite.Lookup(s.Workload)
	if err != nil {
		return Spec{}, err
	}
	v, err := w.Variant(s.Variant)
	if err != nil {
		return Spec{}, err
	}
	if _, err := platforms.Get(s.Platform); err != nil {
		return Spec{}, err
	}
	if s.Procs < 1 {
		return Spec{}, fmt.Errorf("run: spec %s/%s needs a positive proc count, got %d", s.Workload, s.Variant, s.Procs)
	}
	if s.NetLatencyMult != 0 || s.NetBandwidthEff != 0 {
		if s.Platform != "tera" {
			return Spec{}, fmt.Errorf("run: network overrides apply only to platform tera, not %q", s.Platform)
		}
		// Canonicalize the overrides like Params: a partial override is
		// filled from the calibrated defaults, and a Spec that spells the
		// defaults out describes the same engine as one that omits them, so
		// both must render one Key.
		d := mta.DefaultParams(s.Procs)
		if s.NetLatencyMult == 0 {
			s.NetLatencyMult = d.NetLatencyMult
		}
		if s.NetBandwidthEff == 0 {
			s.NetBandwidthEff = d.NetBandwidthEff
		}
		if s.NetLatencyMult == d.NetLatencyMult && s.NetBandwidthEff == d.NetBandwidthEff {
			s.NetLatencyMult, s.NetBandwidthEff = 0, 0
		}
	}
	if s.Scale <= 0 {
		s.Scale = w.DefaultScale
	}
	p := s.Params.Merged(v.Defaults)
	if p[suite.ValidateParam] != 0 {
		s.Validate = true
	}
	delete(p, suite.ValidateParam)
	if len(p) == 0 {
		p = nil
	}
	s.Params = p
	return s, nil
}

// Key renders the Spec's canonical cache/artifact key. Specs that normalize
// equal render equal keys regardless of param order or how many defaults the
// caller spelled out. A Spec that cannot be normalized (e.g. its workload is
// not registered in this process) renders as-is, so Records deserialized in
// registry-less tools keep the keys they were written with.
func (s Spec) Key() string {
	if ns, err := s.Normalized(); err == nil {
		s = ns
	}
	return s.render()
}

// render formats the key fields; Params render sorted via Params.String.
func (s Spec) render() string {
	key := fmt.Sprintf("%s|%s|%s|p%d|s%g|%s", s.Workload, s.Variant, s.Platform, s.Procs, s.Scale, s.Params.String())
	if s.Validate {
		key += "|validate"
	}
	if s.NetLatencyMult != 0 || s.NetBandwidthEff != 0 {
		key += fmt.Sprintf("|net%g/%g", s.NetLatencyMult, s.NetBandwidthEff)
	}
	return key
}

// engine returns a constructor for the Spec's machine model. Every engine a
// Spec can describe is built here — consumers never construct machine.Engine
// values for registered variants themselves.
func (s Spec) engine() (func() *machine.Engine, error) {
	if s.NetLatencyMult != 0 || s.NetBandwidthEff != 0 {
		if s.Platform != "tera" {
			return nil, fmt.Errorf("run: network overrides apply only to platform tera, not %q", s.Platform)
		}
		p := mta.DefaultParams(s.Procs)
		if s.NetLatencyMult != 0 {
			p.NetLatencyMult = s.NetLatencyMult
		}
		if s.NetBandwidthEff != 0 {
			p.NetBandwidthEff = s.NetBandwidthEff
		}
		return func() *machine.Engine { return mta.New(p) }, nil
	}
	spec, err := platforms.Get(s.Platform)
	if err != nil {
		return nil, err
	}
	procs := s.Procs
	return func() *machine.Engine { return spec.New(procs) }, nil
}

// Checksum is a 64-bit output checksum that serializes as a quoted
// fixed-width hex string: JSON numbers cannot carry a full uint64.
type Checksum uint64

// MarshalJSON renders the checksum as "%016x".
func (c Checksum) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%016x", uint64(c)))
}

// UnmarshalJSON parses the quoted hex form. Only the canonical encoding
// MarshalJSON emits — exactly 16 lowercase hex digits — is accepted:
// strconv-style relaxed parsing (a leading "+", short widths, uppercase)
// would let byte-different artifacts decode to the same checksum value, and
// a checksum that compares equal for different spellings is no checksum.
func (c *Checksum) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("run: checksum: %w", err)
	}
	if len(s) != 16 {
		return fmt.Errorf("run: checksum %q: need exactly 16 lowercase hex digits", s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		d := s[i]
		switch {
		case d >= '0' && d <= '9':
			v = v<<4 | uint64(d-'0')
		case d >= 'a' && d <= 'f':
			v = v<<4 | uint64(d-'a'+10)
		default:
			return fmt.Errorf("run: checksum %q: need exactly 16 lowercase hex digits", s)
		}
	}
	*c = Checksum(v)
	return nil
}

// Record is the machine-readable result of executing one Spec. The Spec
// stored inside is the normalized form, so a Record is self-reproducing:
// re-running record.Spec yields the same ModelSeconds and Checksum.
type Record struct {
	Spec Spec `json:"spec"`
	// Key is Spec.Key(), precomputed so registry-less consumers (the CI
	// gate) can address the record without normalizing.
	Key string `json:"key"`
	// ModelSeconds is the simulated wall-clock time of the run at its scale.
	ModelSeconds float64 `json:"model_seconds"`
	// PaperSeconds is ModelSeconds normalized to the paper's scale-1
	// workload size — the number the tables print next to the paper column.
	PaperSeconds float64 `json:"paper_seconds"`
	// Checksum is the validated output checksum (zero for charge-only runs).
	// A single-scenario run reports the scenario's own checksum; a suite run
	// folds the per-scenario checksums in order.
	Checksum Checksum `json:"checksum"`
	// OverheadBytes is the largest private-buffer allocation any scenario
	// charged — the coarse styles' memory-overhead drawback.
	OverheadBytes uint64 `json:"overhead_bytes"`
	// Stats are the engine's counters (utilization, sync ops, spawns, …).
	Stats machine.Stats `json:"stats"`
	// HostElapsed is the host wall-clock cost of computing the record; a
	// cache hit returns the original computation's value.
	HostElapsed time.Duration `json:"host_elapsed_ns"`
}

// ExperimentRecords groups the records one experiment executed — the element
// type of `c3ibench -json` output and the input of the CI gate's model_s
// family.
type ExperimentRecords struct {
	Experiment string   `json:"experiment"`
	Title      string   `json:"title"`
	ElapsedS   float64  `json:"elapsed_s"`
	Records    []Record `json:"records"`
}

// ExperimentFailure names one requested experiment that produced no records,
// and why — the failure manifest entry of `c3ibench -json`.
type ExperimentFailure struct {
	Experiment string `json:"experiment"`
	Error      string `json:"error"`
}

// RecordSet is the envelope `c3ibench -json` emits: every experiment that
// completed, plus an explicit manifest of the ones that failed. A consumer
// gating on the artifact (the CI model_s family) can therefore tell a
// complete sweep from a partial one instead of silently accepting whatever
// subset happened to succeed. Both slices are present in the JSON even when
// empty (`[]`, never `null`), so `jq '.failed == []'` is a complete-sweep
// check.
type RecordSet struct {
	Experiments []ExperimentRecords `json:"experiments"`
	Failed      []ExperimentFailure `json:"failed"`
}

// Canonicalize replaces nil slices with empty ones so the envelope always
// serializes its arrays explicitly.
func (rs *RecordSet) Canonicalize() {
	if rs.Experiments == nil {
		rs.Experiments = []ExperimentRecords{}
	}
	if rs.Failed == nil {
		rs.Failed = []ExperimentFailure{}
	}
}
