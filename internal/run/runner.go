package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Metric names the Runner publishes in its registry, all labeled
// {workload=...}. The serving tier exposes the same registry on
// `GET /metrics`, and the CI smoke job greps these names, so they are part
// of the observable API.
const (
	// MetricExecutions counts engine executions (cache hits and
	// single-flight collapses excluded) — the counter form of Executions().
	MetricExecutions = "run_executions_total"
	// MetricExecSeconds is the per-workload engine execution latency
	// histogram (host seconds, not simulated seconds).
	MetricExecSeconds = "run_exec_seconds"
	// MetricWaitSeconds is how long callers blocked on another caller's
	// in-flight computation of the same Spec (single-flight queue wait).
	MetricWaitSeconds = "run_wait_seconds"
	// MetricCacheHits counts Runs served without executing: in-memory
	// record-cache hits plus single-flight collapses.
	MetricCacheHits = "run_cache_hits_total"
	// MetricStoreHits counts Runs answered from the persistent record
	// store instead of an engine execution.
	MetricStoreHits = "run_store_hits_total"
	// MetricStoreErrors counts failed record-store writes (persistence
	// degraded to recomputation) — the counter form of StoreErrors().
	MetricStoreErrors = "run_store_errors_total"
)

// Executor executes Specs into Records — the consumer-facing face of the
// run API. The local *Runner implements it; so does serve.Client, which
// forwards Specs to a c3iserve process, so any consumer written against
// Executor (the experiment tables, `c3ibench -remote`) runs locally or
// remotely unchanged.
type Executor interface {
	Run(ctx context.Context, spec Spec) (Record, error)
}

// The Runner is both faces of the run API: batch and stream.
var (
	_ Executor       = (*Runner)(nil)
	_ StreamExecutor = (*Runner)(nil)
)

// Runner executes Specs. It owns the two caches every consumer shares: the
// memoized (and pre-warmed) scenario suites per workload×scale, and the
// single-flight Record cache keyed by Spec.Key, so concurrent consumers that
// need the same cell compute it exactly once. A Runner is safe for
// concurrent use; create one per process (or per benchmark iteration, when
// the point is to measure uncached cost).
type Runner struct {
	jobs    int
	suites  onceMap[[]suite.Scenario]
	runs    onceMap[Record]
	execs   atomic.Int64
	metrics *obs.Registry

	storeMu   sync.RWMutex
	store     Store
	storeErrs atomic.Int64
}

// NewRunner returns a Runner whose RunAll fans out over at most jobs
// concurrent executions; jobs < 1 means GOMAXPROCS.
func NewRunner(jobs int) *Runner {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Runner{jobs: jobs, metrics: obs.NewRegistry()}
}

// Metrics returns the Runner's metrics registry: per-workload execution
// latency histograms, cache/store/execution counters and single-flight wait
// times (the Metric* names above). The serving tier merges its own request
// metrics into the same registry and serves both on GET /metrics;
// `c3ibench -stats` snapshots it after a sweep.
func (r *Runner) Metrics() *obs.Registry { return r.metrics }

// workloadLabels renders the one label set every Runner metric carries.
func workloadLabels(workload string) obs.Labels { return obs.Labels{"workload": workload} }

// SetStore layers a persistent Record store under the in-memory
// single-flight cache: a cache miss consults the store before executing, and
// a freshly computed Record is saved back. Load and Save run inside the
// single-flight critical section, so one key is probed and written at most
// once per process even under concurrent identical batches, and a store hit
// never counts as an engine execution. Save failures do not fail the run —
// persistence degrades to recomputation — but are counted for StoreErrors.
// A nil store detaches persistence again.
func (r *Runner) SetStore(s Store) {
	r.storeMu.Lock()
	r.store = s
	r.storeMu.Unlock()
}

// getStore returns the currently attached store, if any.
func (r *Runner) getStore() Store {
	r.storeMu.RLock()
	defer r.storeMu.RUnlock()
	return r.store
}

// StoreErrors reports how many store Save calls have failed so far — the
// serving layer's health endpoint surfaces it, since a store that silently
// stopped persisting turns every restart into a cold start.
func (r *Runner) StoreErrors() int64 { return r.storeErrs.Load() }

// Warm generates (or returns the memoized) scenario suite for a workload at
// a scale, with every scenario's internal caches populated so concurrent
// runs only read shared state.
func (r *Runner) Warm(workload string, scale float64) ([]suite.Scenario, error) {
	if scale <= 0 {
		w, err := suite.Lookup(workload)
		if err != nil {
			return nil, err
		}
		scale = w.DefaultScale
	}
	return r.suites.do(fmt.Sprintf("%s|s%g", workload, scale), func() ([]suite.Scenario, error) {
		w, err := suite.Lookup(workload)
		if err != nil {
			return nil, err
		}
		scs := w.Generate(scale)
		for _, sc := range scs {
			sc.Warm()
		}
		return scs, nil
	})
}

// Run executes the Spec and returns its Record, serving repeats from the
// single-flight cache. Cancellation is checked before the engine starts; a
// run already executing completes (the simulation is not preemptible), and
// concurrent callers collapsed onto it receive its Record.
func (r *Runner) Run(ctx context.Context, spec Spec) (Record, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Record{}, err
	}
	key := ns.render()
	labels := workloadLabels(ns.Workload)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		rec, err, shared, wait := r.runs.doTracked(key, func() (Record, error) {
			if s := r.getStore(); s != nil {
				if rec, ok := s.Load(key); ok {
					r.metrics.Counter(MetricStoreHits, labels).Inc()
					return rec, nil
				}
			}
			rec, err := r.execute(ctx, ns)
			if err == nil {
				if s := r.getStore(); s != nil {
					if serr := s.Save(rec); serr != nil {
						r.storeErrs.Add(1)
						r.metrics.Counter(MetricStoreErrors, labels).Inc()
					}
				}
			}
			return rec, err
		})
		if wait > 0 {
			r.metrics.Histogram(MetricWaitSeconds, labels, obs.DefLatencyBuckets).Observe(wait.Seconds())
		}
		if shared && err == nil {
			r.metrics.Counter(MetricCacheHits, labels).Inc()
		}
		// A single-flight winner whose context was cancelled fails every
		// caller collapsed onto it with *its* context error. Errors are
		// never memoized, so a caller whose own context is still live tries
		// again rather than inheriting the winner's cancellation — but only
		// after yielding: a fresh caller that keeps collapsing onto winners
		// cancelled just after they start would otherwise hot-spin on the
		// scheduler instead of letting a live winner get going. Repeat
		// losses back off a little (capped), bounding the retry rate even
		// when every winner keeps dying immediately.
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			runtime.Gosched()
			if attempt > 0 {
				backoff := time.Duration(attempt) * 100 * time.Microsecond
				if backoff > 5*time.Millisecond {
					backoff = 5 * time.Millisecond
				}
				time.Sleep(backoff)
			}
			continue
		}
		return rec, err
	}
}

// Execute runs the Spec without consulting or populating the Record cache
// (the scenario-suite cache is still used). Benchmarks use it to measure the
// true per-run cost repeatedly.
func (r *Runner) Execute(ctx context.Context, spec Spec) (Record, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Record{}, err
	}
	return r.execute(ctx, ns)
}

// RunScenario executes the Spec's variant over explicitly supplied scenarios
// instead of the registry-generated suite — the data tools validate
// scenarios loaded from disk this way. Results are not cached: scenario
// identity is not part of a Spec's Key.
func (r *Runner) RunScenario(ctx context.Context, spec Spec, scs ...suite.Scenario) (Record, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Record{}, err
	}
	if len(scs) == 0 {
		return Record{}, fmt.Errorf("run: RunScenario %s: no scenarios", ns.render())
	}
	return r.executeOn(ctx, ns, scs)
}

// RunAll executes the Specs through a pool of at most the Runner's
// configured jobs, returning records positionally. Once ctx is cancelled,
// not-yet-started Specs fail fast with the context error; the returned error
// joins every per-Spec failure, and successful entries are valid regardless.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) ([]Record, error) {
	if len(specs) == 0 {
		// Nothing to do — and nothing to spawn: the worker clamp below
		// would otherwise start one goroutine just to drain an empty feed.
		return nil, nil
	}
	recs := make([]Record, len(specs))
	errs := make([]error, len(specs))
	jobs := r.jobs
	if jobs > len(specs) {
		jobs = len(specs)
	}
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				recs[i], errs[i] = r.Run(ctx, specs[i])
				if errs[i] != nil {
					errs[i] = fmt.Errorf("spec %d (%s): %w", i, specs[i].Key(), errs[i])
				}
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return recs, errors.Join(errs...)
}

// Executions reports how many engine runs this Runner has performed —
// cache hits and single-flight collapses do not count. Tests and capacity
// accounting use it.
func (r *Runner) Executions() int64 { return r.execs.Load() }

// Reset drops both caches (tests and per-iteration benchmark harnesses
// control memory and measurement this way). In-flight computations from
// before the reset cannot repopulate the caches.
func (r *Runner) Reset() {
	r.suites.reset()
	r.runs.reset()
}

// execute runs a normalized Spec over its memoized scenario suite.
func (r *Runner) execute(ctx context.Context, ns Spec) (Record, error) {
	scs, err := r.Warm(ns.Workload, ns.Scale)
	if err != nil {
		return Record{}, err
	}
	return r.executeOn(ctx, ns, scs)
}

// executeOn runs a normalized Spec over the given scenarios on a fresh
// engine and assembles the Record.
func (r *Runner) executeOn(ctx context.Context, ns Spec, scs []suite.Scenario) (Record, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, err
	}
	w, err := suite.Lookup(ns.Workload)
	if err != nil {
		return Record{}, err
	}
	v, err := w.Variant(ns.Variant)
	if err != nil {
		return Record{}, err
	}
	newEngine, err := ns.engine()
	if err != nil {
		return Record{}, err
	}
	p := ns.Params
	if ns.Validate {
		p = p.Merged(nil) // copy before inserting the reserved param
		p[suite.ValidateParam] = 1
	}
	key := ns.render()
	start := time.Now() //c3ivet:ignore determinism HostElapsed is host wall-clock cost, reported beside the model artifact
	r.execs.Add(1)
	r.metrics.Counter(MetricExecutions, workloadLabels(ns.Workload)).Inc()
	var checksum, overhead uint64
	res, err := newEngine().Run(key, func(t *machine.Thread) {
		for i, sc := range scs {
			out := v.Run(t, sc, p)
			if i == 0 {
				checksum = out.Checksum
			} else {
				// Fold suite checksums order-sensitively (FNV-style mix) so
				// a multi-scenario record stays a stable fingerprint while a
				// single-scenario record keeps the scenario's own checksum.
				checksum = (checksum ^ out.Checksum) * 1099511628211
			}
			if out.OverheadBytes > overhead {
				overhead = out.OverheadBytes
			}
		}
	})
	r.metrics.Histogram(MetricExecSeconds, workloadLabels(ns.Workload), obs.DefLatencyBuckets).
		Observe(time.Since(start).Seconds()) //c3ivet:ignore determinism exec-latency metric is host-side observability
	if err != nil {
		return Record{}, fmt.Errorf("run: %s: %w", key, err)
	}
	return Record{
		Spec:          ns,
		Key:           key,
		ModelSeconds:  res.Seconds,
		PaperSeconds:  res.Seconds * w.Norm(scs),
		Checksum:      Checksum(checksum),
		OverheadBytes: overhead,
		Stats:         res.Stats,
		HostElapsed:   time.Since(start), //c3ivet:ignore determinism HostElapsed is explicitly host-dependent and excluded from the checksum
	}, nil
}

// --- Single-flight memoization ----------------------------------------------

// onceMap memoizes expensive computations by key and collapses concurrent
// calls for the same key into one execution. reset advances a generation so
// computations started before a reset cannot repopulate the post-reset maps.
// (Lifted from internal/experiments, which now consumes it through Runner.)
type onceMap[T any] struct {
	mu       sync.Mutex
	gen      int
	done     map[string]T
	inflight map[string]*onceCall[T]
}

type onceCall[T any] struct {
	ready chan struct{}
	val   T
	err   error
}

// initLocked lazily allocates the maps; callers hold mu.
func (m *onceMap[T]) initLocked() {
	if m.done == nil {
		m.done = map[string]T{}
	}
	if m.inflight == nil {
		m.inflight = map[string]*onceCall[T]{}
	}
}

func (m *onceMap[T]) do(key string, fn func() (T, error)) (T, error) {
	v, err, _, _ := m.doTracked(key, fn)
	return v, err
}

// doTracked is do with observability: shared reports whether the result came
// from the done map or from collapsing onto another caller's in-flight
// computation (i.e. fn did not run in this call), and wait is how long the
// caller blocked on that in-flight computation (zero for done-map hits and
// for the winner).
func (m *onceMap[T]) doTracked(key string, fn func() (T, error)) (val T, err error, shared bool, wait time.Duration) {
	m.mu.Lock()
	m.initLocked()
	if v, ok := m.done[key]; ok {
		m.mu.Unlock()
		return v, nil, true, 0
	}
	if c, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		start := time.Now() //c3ivet:ignore determinism single-flight wait time is host-side observability
		<-c.ready
		return c.val, c.err, true, time.Since(start) //c3ivet:ignore determinism single-flight wait time is host-side observability
	}
	c := &onceCall[T]{ready: make(chan struct{})}
	m.inflight[key] = c
	gen := m.gen
	m.mu.Unlock()

	c.val, c.err = fn()
	m.mu.Lock()
	// A reset during the computation dropped this call from inflight and
	// invalidated its result; only same-generation results are memoized.
	if m.gen == gen {
		if c.err == nil {
			m.done[key] = c.val
		}
		delete(m.inflight, key)
	}
	m.mu.Unlock()
	close(c.ready)
	return c.val, c.err, false, 0
}

func (m *onceMap[T]) reset() {
	m.mu.Lock()
	m.gen++
	m.done = map[string]T{}
	m.inflight = map[string]*onceCall[T]{}
	m.mu.Unlock()
}
