package run

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/c3i/suite"
	_ "repro/internal/c3i/threat" // register a real workload for normalization tests
)

func TestSpecKeyCanonicalization(t *testing.T) {
	// A Spec that spells out the variant defaults and one that relies on
	// merging must share one canonical key.
	implicit := Spec{Workload: "threat-analysis", Variant: "coarse", Platform: "tera", Procs: 2}
	explicit := Spec{
		Workload: "threat-analysis", Variant: "coarse", Platform: "tera", Procs: 2,
		Scale:  0.25, // the registered default
		Params: suite.Params{"chunks": 16, "pipelined": 0},
	}
	if implicit.Key() != explicit.Key() {
		t.Errorf("keys differ:\n  implicit %s\n  explicit %s", implicit.Key(), explicit.Key())
	}
	// Overriding one param changes the key; param insertion order cannot
	// matter because rendering sorts.
	other := explicit
	other.Params = suite.Params{"pipelined": 0, "chunks": 256}
	if other.Key() == explicit.Key() {
		t.Error("different chunk counts rendered the same key")
	}
	if !strings.Contains(other.Key(), "chunks=256,pipelined=0") {
		t.Errorf("key params not sorted: %s", other.Key())
	}
}

func TestSpecKeyFoldsValidateParam(t *testing.T) {
	viaParam := Spec{Workload: "threat-analysis", Variant: "sequential", Platform: "alpha", Procs: 1,
		Params: suite.Params{suite.ValidateParam: 1}}
	viaField := Spec{Workload: "threat-analysis", Variant: "sequential", Platform: "alpha", Procs: 1,
		Validate: true}
	if viaParam.Key() != viaField.Key() {
		t.Errorf("validate spellings diverge:\n  param %s\n  field %s", viaParam.Key(), viaField.Key())
	}
	ns, err := viaParam.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !ns.Validate {
		t.Error("validate param did not fold into the Validate flag")
	}
	if _, ok := ns.Params[suite.ValidateParam]; ok {
		t.Error("reserved validate param left inside normalized Params")
	}
}

func TestNetOverridesCanonicalize(t *testing.T) {
	plain := Spec{Workload: "threat-analysis", Variant: "coarse", Platform: "tera", Procs: 2}
	// Spelling out the calibrated defaults describes the identical engine,
	// so it must collapse to the no-override Key.
	explicit := plain
	explicit.NetLatencyMult, explicit.NetBandwidthEff = 1.7, 0.75
	if explicit.Key() != plain.Key() {
		t.Errorf("explicit default network factors render a distinct key:\n  %s\n  %s",
			explicit.Key(), plain.Key())
	}
	// A partial override fills the other factor from the defaults, so the
	// two spellings of that run share one key too.
	partial := plain
	partial.NetLatencyMult = 1.4
	full := plain
	full.NetLatencyMult, full.NetBandwidthEff = 1.4, 0.75
	if partial.Key() != full.Key() {
		t.Errorf("partial override diverges from its filled form:\n  %s\n  %s",
			partial.Key(), full.Key())
	}
	if partial.Key() == plain.Key() {
		t.Error("a real override collapsed to the default key")
	}
	ns, err := partial.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if ns.NetBandwidthEff != 0.75 {
		t.Errorf("partial override not filled: %+v", ns)
	}
}

func TestNormalizedIsIdempotent(t *testing.T) {
	s := Spec{Workload: "threat-analysis", Variant: "coarse", Platform: "tera", Procs: 1,
		Params: suite.Params{"chunks": 64}}
	once, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if once.Key() != twice.Key() || once.Scale != twice.Scale {
		t.Errorf("normalization not idempotent: %+v vs %+v", once, twice)
	}
}

func TestNormalizedRejectsBadSpecs(t *testing.T) {
	good := Spec{Workload: "threat-analysis", Variant: "sequential", Platform: "alpha", Procs: 1}
	for name, breakIt := range map[string]func(*Spec){
		"unknown workload":         func(s *Spec) { s.Workload = "no-such-workload" },
		"unknown variant":          func(s *Spec) { s.Variant = "turbo" },
		"unknown platform":         func(s *Spec) { s.Platform = "cray" },
		"non-positive procs":       func(s *Spec) { s.Procs = 0 },
		"net override off the MTA": func(s *Spec) { s.NetLatencyMult = 1.5 },
	} {
		s := good
		breakIt(&s)
		if _, err := s.Normalized(); err == nil {
			t.Errorf("%s: Normalized accepted %+v", name, s)
		}
	}
	if _, err := good.Normalized(); err != nil {
		t.Errorf("baseline spec rejected: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Workload: "threat-analysis", Variant: "coarse", Platform: "tera", Procs: 2,
		Scale: 0.1, Params: suite.Params{"chunks": 256}, Validate: true,
		NetLatencyMult: 1.4, NetBandwidthEff: 0.8,
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != s.Key() {
		t.Errorf("round trip changed the key: %s vs %s", back.Key(), s.Key())
	}
	if back.Params["chunks"] != 256 || !back.Validate || back.NetBandwidthEff != 0.8 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestChecksumJSONIsHexString(t *testing.T) {
	// JSON numbers cannot carry a full uint64; checksums must travel as hex
	// strings and survive the round trip bit-exactly.
	c := Checksum(0xdeadbeefcafef00d)
	buf, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != `"deadbeefcafef00d"` {
		t.Errorf("checksum marshals as %s", buf)
	}
	var back Checksum
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("round trip %016x != %016x", uint64(back), uint64(c))
	}
	if err := json.Unmarshal([]byte(`"not hex"`), &back); err == nil {
		t.Error("garbage checksum accepted")
	}
}

func TestChecksumUnmarshalRejectsNonCanonicalHex(t *testing.T) {
	// Only the exact encoding MarshalJSON produces — 16 lowercase hex digits
	// — may decode. Relaxed parsing would let byte-different artifacts (a
	// leading "+", a shorter width, uppercase) collide onto one value.
	for _, tc := range []struct {
		name, in string
	}{
		{"leading plus", `"+eadbeefcafef00d"`},
		{"leading plus full width", `"+deadbeefcafef00d"`},
		{"too short", `"deadbeef"`},
		{"15 digits", `"eadbeefcafef00d"`},
		{"17 digits", `"0deadbeefcafef00d"`},
		{"uppercase", `"DEADBEEFCAFEF00D"`},
		{"mixed case", `"deadBEEFcafef00d"`},
		{"0x prefix", `"0xdeadbeefcafef0"`},
		{"embedded space", `"deadbeef cafef00"`},
		{"underscores", `"dead_beefcafef00"`},
		{"empty", `""`},
		{"number not string", `123456`},
	} {
		var c Checksum
		if err := json.Unmarshal([]byte(tc.in), &c); err == nil {
			t.Errorf("%s: checksum %s accepted as %016x", tc.name, tc.in, uint64(c))
		}
	}
	// The canonical form still round-trips, all-digits and all-letters alike.
	for _, in := range []string{`"0000000000000000"`, `"ffffffffffffffff"`, `"0123456789abcdef"`} {
		var c Checksum
		if err := json.Unmarshal([]byte(in), &c); err != nil {
			t.Errorf("canonical checksum %s rejected: %v", in, err)
		}
	}
}

func TestRecordSetCanonicalize(t *testing.T) {
	// The envelope's arrays must serialize as [] even when empty, so jq
	// consumers can gate on `.failed == []` without null-checks.
	var rs RecordSet
	rs.Canonicalize()
	buf, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"experiments":[],"failed":[]}`
	if string(buf) != want {
		t.Errorf("empty RecordSet marshals as %s, want %s", buf, want)
	}
	rs.Failed = append(rs.Failed, ExperimentFailure{Experiment: "table9", Error: "boom"})
	buf, err = json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	var back RecordSet
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Failed) != 1 || back.Failed[0].Experiment != "table9" || back.Failed[0].Error != "boom" {
		t.Errorf("failure manifest lost in round trip: %+v", back.Failed)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rec := Record{
		Spec:          Spec{Workload: "threat-analysis", Variant: "sequential", Platform: "alpha", Procs: 1, Scale: 0.25},
		Key:           "threat-analysis|sequential|alpha|p1|s0.25|pipelined=0",
		ModelSeconds:  1.25,
		PaperSeconds:  12.5,
		Checksum:      Checksum(0xffffffffffffffff),
		OverheadBytes: 4096,
	}
	rec.Stats.Ops = 1000
	rec.Stats.ProcUtil = []float64{0.5}
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Checksum != rec.Checksum || back.ModelSeconds != rec.ModelSeconds ||
		back.Key != rec.Key || back.Stats.Ops != 1000 || back.Stats.ProcUtil[0] != 0.5 {
		t.Errorf("round trip mismatch: %+v", back)
	}
}
